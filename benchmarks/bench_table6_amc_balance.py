"""Table 6 — distribution of active metacells across 4 nodes.

Paper claim: "our scheme achieves a very good load balancing
irrespective of the isovalue" — the per-node active-metacell counts for
any isovalue are nearly equal, with the provable bound
max - min <= number of active bricks.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import emit, get_cluster
from repro.bench.tables import format_table
from repro.core.striping import striping_balance_bound


def test_table6_amc_balance(benchmark, cfg, sweep):
    p = 4
    cluster = get_cluster(cfg, p)
    serial = get_cluster(cfg, 1)
    mid = cfg.isovalues[len(cfg.isovalues) // 2]
    benchmark.pedantic(lambda: cluster.extract(float(mid)), rounds=3, iterations=1)

    rows = []
    for lam in cfg.isovalues:
        r = sweep.row(p, lam)
        counts = np.asarray(r.per_node_amc)
        bound = striping_balance_bound(serial.datasets[0].tree, float(lam))
        spread = int(counts.max() - counts.min())
        rows.append([
            int(lam), *counts.tolist(), int(counts.sum()), spread, bound,
            f"{counts.max() / counts.mean():.3f}" if counts.sum() else "-",
        ])
        assert spread <= bound, f"iso {lam}: spread {spread} > bound {bound}"
        if counts.sum() >= 200:
            assert counts.max() / counts.mean() < 1.15, (
                f"iso {lam}: poor balance {counts.tolist()}"
            )

    table = format_table(
        ["isovalue", "node 0", "node 1", "node 2", "node 3", "total",
         "max-min", "provable bound", "max/mean"],
        rows,
        title="Table 6 — active metacell distribution across 4 nodes "
        "(paper: 'very good load balancing irrespective of the isovalue')",
    )
    emit("table6_amc_balance.txt", table)
