"""Table 1 — index sizes: compact interval tree vs standard interval tree.

Paper claim (Section 4, Table 1): "our indexing structure is
substantially smaller than the standard interval tree", at least 2x
"even in the case of N ~ n such as Pressure and Velocity data sets",
and for one-byte fields it fits in KBs regardless of data size.

The original Stanford/LLNL datasets are not redistributable; synthetic
stand-ins match grid dimensions and byte depth (quarter-scale by
default; set REPRO_TABLE1_FULL=1 for the paper's full dimensions).
"""

from __future__ import annotations

import os

import pytest

from repro.baselines.interval_tree import StandardIntervalTree
from repro.bench.harness import emit, rm_bench_volume
from repro.bench.paper_data import PAPER_TABLE1_DATASETS
from repro.bench.tables import format_table, human_bytes
from repro.core.compact_tree import CompactIntervalTree
from repro.core.intervals import IntervalSet
from repro.grid import datasets as D
from repro.grid.metacell import partition_metacells

_FACTORIES = {
    "bunny": D.bunny_ct_like,
    "mrbrain": D.mr_brain_like,
    "cthead": D.ct_head_like,
    "pressure": D.pressure_like,
    "velocity": D.velocity_like,
}


def _scaled_dims(dims, full: bool):
    if full:
        return dims
    return tuple(max(33, d // 4) for d in dims)


def _row(name, volume, metacell_shape=(9, 9, 9)):
    part = partition_metacells(volume, metacell_shape)
    iv = IntervalSet.from_partition(part)
    compact = CompactIntervalTree.build(iv)
    standard = StandardIntervalTree.build(iv)
    c_bytes = compact.index_size_bytes()
    s_bytes = standard.size_bytes()
    return {
        "name": name,
        "dims": "x".join(map(str, volume.shape)),
        "dtype": str(volume.dtype),
        "N": len(iv),
        "n": iv.n_distinct_endpoints,
        "compact": c_bytes,
        "standard": s_bytes,
        "ratio": s_bytes / max(c_bytes, 1),
        "iv": iv,
    }


def test_table1_index_sizes(benchmark, cfg):
    full = os.environ.get("REPRO_TABLE1_FULL", "0") == "1"
    rows = []
    for name, (dims, _bytes) in PAPER_TABLE1_DATASETS.items():
        vol = _FACTORIES[name](shape=_scaled_dims(dims, full))
        rows.append(_row(name, vol))
    # The paper's headline dataset as the one-byte regime.
    rm = rm_bench_volume(cfg)
    rows.append(_row("rm_step250 (uint8)", rm))

    # Timed kernel: building the compact index for the largest stand-in.
    big = rows[0]["iv"]
    benchmark.pedantic(lambda: CompactIntervalTree.build(big), rounds=3, iterations=1)

    table = format_table(
        ["dataset", "dims", "dtype", "N intervals", "n endpoints",
         "compact", "standard", "standard/compact"],
        [
            [r["name"], r["dims"], r["dtype"], r["N"], r["n"],
             human_bytes(r["compact"]), human_bytes(r["standard"]), f"{r['ratio']:.1f}x"]
            for r in rows
        ],
        title="Table 1 — index structure sizes (paper claim: compact is >= 2x "
        "smaller, 'usually much larger' gap; one-byte index stays in KBs)",
    )
    emit("table1_index_sizes.txt", table)

    for r in rows:
        assert r["ratio"] >= 2.0, f"{r['name']}: standard tree only {r['ratio']:.2f}x"
    # One-byte regime: KB-scale index no matter the interval count.
    rm_row = rows[-1]
    assert rm_row["compact"] < 64 * 1024
