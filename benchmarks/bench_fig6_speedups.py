"""Figure 6 — speedups vs isovalue for p = 2, 4, 8.

Paper shape: three nearly-flat bands (speedup is independent of the
isovalue — the load-balance claim in time units), with 4-node speedups
3.54-3.97 and 8-node 6.91-7.83.
"""

from __future__ import annotations

import numpy as np

from repro.bench.figures import ascii_chart, write_csv
from repro.bench.harness import emit, get_cluster, output_path
from repro.bench.paper_data import PAPER_SPEEDUPS


def test_fig6_speedups(benchmark, cfg, sweep):
    cluster = get_cluster(cfg, 4)
    mid = cfg.isovalues[len(cfg.isovalues) // 2]
    benchmark.pedantic(lambda: cluster.extract(float(mid)), rounds=3, iterations=1)

    busy = [lam for lam in cfg.isovalues if sweep.row(1, lam).n_triangles > 1000]
    series = {}
    table_rows = []
    for p in (2, 4, 8):
        s = [sweep.row(1, lam).total_time / sweep.row(p, lam).total_time for lam in busy]
        series[f"p={p}"] = (busy, s)
        lo, hi = PAPER_SPEEDUPS.get(p, ("-", "-"))
        table_rows.append(
            [p, f"{min(s):.2f}", f"{np.median(s):.2f}", f"{max(s):.2f}", f"{lo}-{hi}"]
        )

    chart = ascii_chart(
        series,
        title="Figure 6 — speedup vs isovalue (modeled)",
        xlabel="isovalue",
        ylabel="speedup",
    )
    from repro.bench.tables import format_table

    summary = format_table(
        ["nodes", "min speedup", "median", "max", "paper range"],
        table_rows,
        title="Speedup summary vs the paper",
    )
    emit("fig6_speedups.txt", chart + "\n\n" + summary)
    write_csv(
        output_path("fig6_speedups.csv"),
        ["isovalue", "s2", "s4", "s8"],
        [
            [lam] + [sweep.row(1, lam).total_time / sweep.row(p, lam).total_time
                     for p in (2, 4, 8)]
            for lam in busy
        ],
    )

    # Shape claims: speedups near-flat across isovalues and ordered.  The
    # paper's own bands span ~±6% (3.54-3.97 at 4 nodes); we allow CV 15%
    # to absorb the Case-1/Case-2 asymmetry that per-brick I/O tails
    # produce at miniature scale (isovalues below the root split pay a
    # fixed per-node brick-scan overhead that λ above it avoids).
    for p in (2, 4, 8):
        _, s = series[f"p={p}"]
        s = np.asarray(s)
        assert s.std() / s.mean() < 0.15, f"p={p}: speedup varies with isovalue"
    assert np.median(series["p=2"][1]) < np.median(series["p=4"][1])
    assert np.median(series["p=4"][1]) < np.median(series["p=8"][1])
    # Bands: generous envelopes around the paper's values.
    assert 1.5 <= float(np.median(series["p=2"][1])) <= 2.1
    assert 2.8 <= float(np.median(series["p=4"][1])) <= 4.1
    assert 4.5 <= float(np.median(series["p=8"][1])) <= 8.3
