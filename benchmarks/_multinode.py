"""Shared report builder for the multi-node benches (Tables 3, 4, 5)."""

from __future__ import annotations

import numpy as np

from repro.bench.figures import write_csv
from repro.bench.harness import SweepData, emit, output_path
from repro.bench.paper_data import PAPER_SPEEDUPS
from repro.bench.tables import format_table


def multinode_report(cfg, sweep: SweepData, p: int, table_no: int) -> None:
    """Emit the Table-3/4/5-style per-node breakdown and check speedups."""
    rows = []
    speedups = []
    for lam in cfg.isovalues:
        serial = sweep.row(1, lam)
        par = sweep.row(p, lam)
        s = serial.total_time / par.total_time if par.total_time > 0 else float("nan")
        if par.n_triangles > 1000:
            speedups.append(s)
        for q in range(p):
            rows.append([
                int(lam), q, par.per_node_amc[q], par.per_node_tris[q],
                f"{par.per_node_io[q] * 1e3:.2f}",
                f"{par.per_node_tri_t[q] * 1e3:.2f}",
                f"{par.per_node_render_t[q] * 1e3:.2f}",
            ])
        rows.append([
            int(lam), "all", par.n_active_metacells, par.n_triangles,
            f"total={par.total_time * 1e3:.2f}ms",
            f"speedup={s:.2f}", "",
        ])

    lo, hi = PAPER_SPEEDUPS.get(p, (None, None))
    ref = f" (paper: {lo}-{hi})" if lo else ""
    table = format_table(
        ["isovalue", "node", "active MC", "triangles", "AMC I/O (ms)",
         "triangulate (ms)", "render (ms)"],
        rows,
        title=f"Table {table_no} — per-node performance on {p} nodes{ref}",
    )
    emit(f"table{table_no}_{p}_nodes.txt", table)
    write_csv(
        output_path(f"table{table_no}_{p}_nodes.csv"),
        ["isovalue", "node", "active_mc", "triangles", "io_s", "tri_s", "render_s"],
        [
            [lam, q, sweep.row(p, lam).per_node_amc[q], sweep.row(p, lam).per_node_tris[q],
             sweep.row(p, lam).per_node_io[q], sweep.row(p, lam).per_node_tri_t[q],
             sweep.row(p, lam).per_node_render_t[q]]
            for lam in cfg.isovalues
            for q in range(p)
        ],
    )

    assert speedups, "no busy isovalues to judge speedup"
    med = float(np.median(speedups))
    # Shape claim: near-linear scaling.  Accept a generous band around the
    # paper's range to absorb small-scale residual overheads.
    assert med > 0.55 * p, f"median speedup {med:.2f} too low for p={p}"
    assert med <= p + 0.5, f"median speedup {med:.2f} superlinear for p={p}?"
