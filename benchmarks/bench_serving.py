"""Overload soak for the multi-tenant serving front-end.

The acceptance scenario from docs/robustness.md ("Overload &
admission"): a seeded trace whose middle third runs at a 4x overload
burst, with one worker node killed mid-burst (replication r=2 keeps its
stripe reachable).  The soak asserts the serving layer's contract under
that abuse:

* **no unhandled exceptions** — the whole trace runs to completion;
* **exactly one terminal state per request** — every generated request
  appears once in the report as ``ok | degraded | shed | failed``;
* **gold stays fast** — gold p99 latency <= 2x the gold deadline
  budget even through the burst (admission + preemption + brownout do
  their jobs);
* **bulk is not starved** — bulk completes work and its observed
  ``max_service_gap_rounds`` stays within the deficit-round-robin
  bound ``ceil(max_cost / (quantum * w)) + 1``;
* **byte-identical determinism** — two runs with the same seed (each
  on a fresh cluster) produce identical ``BENCH_serving.json``
  payloads; the modeled clock owns every timestamp.

The volume is a small analytic sphere rather than the RM bench volume:
the soak exercises the serving layer (hundreds of queries), not the
extraction kernels, so per-query cost is kept tiny to fit the CI
``serving-soak`` job's 120 s cap.
"""

from __future__ import annotations

import json

from repro.bench.harness import emit_bench_json
from repro.grid.datasets import sphere_field
from repro.parallel.cluster import SimulatedCluster
from repro.serve import (
    BrownoutConfig,
    BurstWindow,
    ClusterEvent,
    ServeConfig,
    TERMINAL_STATES,
    TenantSpec,
    TrafficConfig,
    QueryServer,
    generate_trace,
)

SEED = 1337
OVERLOAD = 4.0
KILL_RANK = 2


def _build_cluster() -> SimulatedCluster:
    """A fresh 4-node r=2 cluster (fresh per run: node kills and cache
    state must not leak between the determinism runs)."""
    return SimulatedCluster(
        sphere_field((24, 24, 24)), 4, metacell_shape=(5, 5, 5), replication=2
    )


def _isovalues(cluster: SimulatedCluster, n: int = 5) -> "tuple[float, ...]":
    """``n`` isovalues spread across the scalar range (Zipf ranks them)."""
    endpoints = cluster.datasets[0].tree.endpoints
    lo, hi = float(min(endpoints)), float(max(endpoints))
    return tuple(lo + (hi - lo) * (i + 1) / (n + 1) for i in range(n))


def _scenario(cluster: SimulatedCluster):
    """The soak (trace, serve-config) pair, scaled in *service units*:
    one unit is the worst-case estimated modeled seconds per query, so
    the scenario stays calibrated if the cost model changes."""
    isovalues = _isovalues(cluster)
    unit = max(cluster.estimate_extract_time(lam) for lam in isovalues)
    duration = 120.0 * unit
    base_rate = 2.0 / unit  # ~2 queries per service unit: saturating
    tenants = (
        TenantSpec("gold-a", tier="gold", arrival_share=0.3,
                   rate=base_rate, burst=8, deadline_budget=4.0 * unit),
        TenantSpec("silver-b", tier="silver", arrival_share=0.4,
                   rate=base_rate, burst=8, deadline_budget=6.0 * unit),
        TenantSpec("bulk-c", tier="bulk", arrival_share=0.3,
                   rate=base_rate, burst=8, deadline_budget=12.0 * unit),
    )
    burst = BurstWindow(start=duration / 3.0, duration=duration / 3.0,
                        factor=OVERLOAD)
    kill = ClusterEvent(time=duration / 2.0, action="kill", rank=KILL_RANK)
    traffic = TrafficConfig(
        duration=duration,
        base_rate=base_rate,
        isovalues=isovalues,
        seed=SEED,
        bursts=(burst,),
        overlays=(kill,),
    )
    config = ServeConfig(
        tenants=tenants,
        n_executors=2,
        max_queue_depth=32,
        quantum=unit / 5.0,
        brownout=BrownoutConfig(eval_interval=2.0 * unit),
    )
    return generate_trace(traffic, tenants), config, unit


def _run():
    cluster = _build_cluster()
    trace, config, unit = _scenario(cluster)
    report = QueryServer(cluster, config).serve(trace)
    return trace, config, unit, report


def test_serving_soak(cfg):
    trace, config, unit, report = _run()

    # Every request in exactly one terminal state: the report covers the
    # full id space once, and each row's state is a known terminal.
    assert [r.request_id for r in report.records] == [
        q.request_id for q in trace.requests
    ]
    for r in report.records:
        assert r.state in TERMINAL_STATES, r
        assert (r.reason != "") == (r.state == "shed"), r
    counts = {s: len(report.by_state(s)) for s in TERMINAL_STATES}
    assert sum(counts.values()) == report.n_requests

    # The burst actually overloaded the server and the ladder engaged.
    assert counts["shed"] > 0
    assert report.max_brownout_level >= 1

    # Gold p99 within 2x its deadline budget.
    gold_budget = next(
        t.deadline_budget for t in config.tenants if t.tier == "gold"
    )
    gold_p99 = report.latency_quantile(0.99, "gold")
    assert report.latencies("gold"), "no gold request completed"
    assert gold_p99 <= 2.0 * gold_budget, (
        f"gold p99 {gold_p99:.4f}s > 2x budget {gold_budget:.4f}s"
    )

    # Bulk is not starved: it completes work, and every tenant's observed
    # service gap respects the deficit-counter bound.
    bulk_done = [r for r in report.completed if r.tier == "bulk"]
    assert bulk_done, "bulk tenant starved: zero completions"
    for name, gap in report.scheduler_gaps.items():
        bound = report.scheduler_gap_bounds[name]
        assert gap <= bound, f"{name}: gap {gap} rounds > bound {bound}"

    # Same seed, fresh cluster => byte-identical payload.
    *_, report_b = _run()
    payload = report.to_payload()
    payload_b = report_b.to_payload()
    assert json.dumps(payload, sort_keys=True) == json.dumps(
        payload_b, sort_keys=True
    ), "same-seed serving runs diverged"

    metrics = dict(payload["metrics"])
    metrics["service_unit_seconds"] = unit
    metrics["overload_factor"] = OVERLOAD
    extra = dict(payload["series"])
    extra["seed"] = SEED
    extra["killed_rank"] = KILL_RANK
    emit_bench_json("serving", metrics, scale=cfg.scale, extra=extra)

    print()
    print(f"serving soak: {report.n_requests} requests over "
          f"{trace.horizon:.2f}s modeled ({OVERLOAD:.0f}x burst, "
          f"rank {KILL_RANK} killed mid-burst)")
    print("  states: " + "  ".join(
        f"{s}={counts[s]}" for s in TERMINAL_STATES))
    print(f"  goodput {report.goodput:.2f} q/s  shed_rate "
          f"{report.shed_rate:.3f}  gold p99 {gold_p99:.3f}s "
          f"(budget {gold_budget:.3f}s)  brownout max level "
          f"{report.max_brownout_level}")
