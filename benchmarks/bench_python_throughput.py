"""Honesty bench — raw Python throughput of this implementation.

Every other bench reports *modeled* time (see docs/PERFMODEL.md).  This
one reports what the pure-Python/numpy implementation actually sustains
on the machine running the suite, so readers can calibrate expectations:
the reproduction is built for fidelity and measurement, not speed —
the paper's C/GPU pipeline did ~4M triangles/s in 2006; numpy Marching
Cubes manages a respectable fraction of that, while the simulated disk
is orders of magnitude faster than a real one.
"""

from __future__ import annotations

import time

from repro.bench.harness import emit, rm_bench_volume
from repro.bench.tables import format_table
from repro.core.builder import build_indexed_dataset
from repro.core.query import execute_query
from repro.mc.marching_cubes import marching_cubes_batch
from repro.pipeline import IsosurfacePipeline


def _timed(fn, repeats=3):
    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return out, best


def test_python_throughput(benchmark, cfg):
    volume = rm_bench_volume(cfg)
    lam = float(cfg.isovalues[len(cfg.isovalues) // 2])

    ds, t_build = _timed(lambda: build_indexed_dataset(volume, cfg.metacell_shape), 2)
    qr, t_query = _timed(lambda: execute_query(ds, lam))
    values = ds.codec.values_grid(qr.records)
    origins = ds.meta.vertex_origins(qr.records.ids)
    mesh, t_tri = _timed(lambda: marching_cubes_batch(values, lam, origins))

    pipe = IsosurfacePipeline(ds)
    res = benchmark.pedantic(lambda: pipe.extract(lam), rounds=3, iterations=1)

    rows = [
        ["preprocess (scan+index+layout)",
         f"{volume.nbytes / t_build / 1e6:.1f} MB/s of volume",
         f"{t_build * 1e3:.0f} ms"],
        ["out-of-core query (simulated disk)",
         f"{qr.io_stats.bytes_read / max(t_query, 1e-9) / 1e6:.1f} MB/s retrieved",
         f"{t_query * 1e3:.1f} ms"],
        ["marching cubes (numpy, batched)",
         f"{mesh.n_triangles / max(t_tri, 1e-9) / 1e6:.2f} Mtri/s",
         f"{t_tri * 1e3:.1f} ms"],
        ["full extract() (query+triangulate)",
         f"{res.n_triangles / max(res.metrics.measured_seconds, 1e-9) / 1e6:.2f} Mtri/s",
         f"{res.metrics.measured_seconds * 1e3:.1f} ms"],
    ]
    table = format_table(
        ["stage", "measured Python throughput", "wall time"],
        rows,
        title=(
            "Python wall-clock throughput on this machine "
            f"(volume {('x'.join(map(str, volume.shape)))}, isovalue {int(lam)}; "
            "modeled times elsewhere use docs/PERFMODEL.md)"
        ),
    )
    emit("python_throughput.txt", table)

    assert mesh.n_triangles == res.n_triangles
    assert mesh.n_triangles / max(t_tri, 1e-9) > 1e5  # >0.1 Mtri/s in numpy
