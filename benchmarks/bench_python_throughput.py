"""Honesty bench — raw Python throughput of this implementation.

Every other bench reports *modeled* time (see docs/PERFMODEL.md).  This
one reports what the pure-Python/numpy implementation actually sustains
on the machine running the suite, so readers can calibrate expectations:
the reproduction is built for fidelity and measurement, not speed —
the paper's C/GPU pipeline did ~4M triangles/s in 2006; numpy Marching
Cubes manages a respectable fraction of that, while the simulated disk
is orders of magnitude faster than a real one.

Both extraction backends are timed — the exact ``mc-batch`` kernel and
the ``surface-nets`` dual kernel the renderer defaults to — as raw
triangulation rate and as end-to-end ``extract()`` throughput.

Alongside the stage table it micro-benchmarks the three checksum-verify
strategies the I/O layer grew (per-record ``zlib.crc32`` loop, the
table-driven vectorized kernel, and one-call span verification against
the cumulative table); each speedup is quoted against the loop baseline
*at the record size where that strategy deploys* (span at 734 B,
vectorized at 16 B).  The headline numbers land in
``BENCH_throughput.json`` (schema ``repro-bench/1``) for CI's
perf-smoke and kernel-soak jobs.
"""

from __future__ import annotations

import time
import zlib

import numpy as np

from repro.bench.harness import emit, emit_bench_json, rm_bench_volume
from repro.bench.tables import format_table
from repro.core.builder import build_indexed_dataset
from repro.core.query import QueryOptions, execute_query
from repro.io.layout import _vectorized_record_crcs, compute_cum_crcs
from repro.mc.marching_cubes import marching_cubes_batch
from repro.mc.surface_nets import surface_nets_batch
from repro.pipeline import IsosurfacePipeline

#: Full-extract throughput (Mtri/s) this bench measured on the reference
#: container *before* the zero-copy streaming work (scalar CRC loop,
#: per-record buffer concatenation, temporary-heavy Marching Cubes).
#: Kept as the denominator so the speedup the rework bought stays
#: visible in every BENCH_throughput.json.
PRE_REWORK_FULL_EXTRACT_MTRI_S = 1.48


def _timed(fn, repeats=3):
    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return out, best


def _crc_verify_bench(record_size: int = 734, n_records: int = 4096,
                      small_record_size: int = 16):
    """Wall cost of the three verify strategies, each where it deploys.

    The hot read path verifies *spans* of ``record_size``-byte metacell
    records against the cumulative table (one ``zlib.crc32`` C call);
    the per-record loop is its pre-rework baseline on the same blob.
    The vectorized column-wise kernel targets narrow records (it beats
    the loop below :data:`repro.io.layout.VECTOR_CRC_MAX_RECORD_SIZE`
    bytes), so it is measured against the loop at ``small_record_size``.
    """
    rng = np.random.default_rng(7)
    blob = rng.integers(0, 256, size=record_size * n_records, dtype=np.uint8).tobytes()
    mb = len(blob) / 1e6

    def loop():
        return [
            zlib.crc32(blob[p * record_size : (p + 1) * record_size])
            for p in range(n_records)
        ]

    cum = compute_cum_crcs(blob, record_size)

    def span():
        return zlib.crc32(blob, int(cum[0])) == int(cum[n_records])

    n_small = len(blob) // small_record_size
    small = np.frombuffer(blob, dtype=np.uint8, count=n_small * small_record_size)
    small = small.reshape(n_small, small_record_size)

    def small_loop():
        return [
            zlib.crc32(blob[p * small_record_size : (p + 1) * small_record_size])
            for p in range(n_small)
        ]

    def vectorized():
        return _vectorized_record_crcs(small, small_record_size)

    ref, t_loop = _timed(loop)
    ok, t_span = _timed(span)
    small_ref, t_small_loop = _timed(small_loop)
    vec, t_vec = _timed(vectorized)
    # All strategies agree before we time-trust them.
    assert ok and list(vec) == small_ref
    assert int(cum[1]) == ref[0]
    return {
        "loop_mb_s": mb / t_loop,
        "span_mb_s": mb / t_span,
        "span_speedup": t_loop / t_span,
        "small_loop_mb_s": mb / t_small_loop,
        "vectorized_mb_s": mb / t_vec,
        "vectorized_speedup": t_small_loop / t_vec,
    }


def test_python_throughput(benchmark, cfg):
    volume = rm_bench_volume(cfg)
    lam = float(cfg.isovalues[len(cfg.isovalues) // 2])

    ds, t_build = _timed(lambda: build_indexed_dataset(volume, cfg.metacell_shape), 2)
    qr, t_query = _timed(lambda: execute_query(ds, lam))
    values = ds.codec.values_grid(qr.records)
    origins = ds.meta.vertex_origins(qr.records.ids)
    mesh, t_tri = _timed(lambda: marching_cubes_batch(values, lam, origins), 10)
    sn_mesh, t_sn = _timed(lambda: surface_nets_batch(values, lam, origins), 10)

    pipe = IsosurfacePipeline(ds)
    sn_opts = QueryOptions(backend="surface-nets")
    # The headline full-extract number runs the SurfaceNets backend; the
    # exact MC path is timed alongside it so the geometry-fidelity cost
    # stays visible.  Both are best-of-N wall clock, the same protocol
    # as every other stage row (the in-result ``measured_seconds``
    # includes per-stage metric bookkeeping and reads ~10% high).
    benchmark.pedantic(
        lambda: pipe.extract(lam, options=sn_opts), rounds=3, iterations=1
    )
    res, t_full = _timed(lambda: pipe.extract(lam, options=sn_opts), 10)
    res_mc, t_full_mc = _timed(lambda: pipe.extract(lam), 10)

    crc = _crc_verify_bench(ds.codec.record_size)

    rows = [
        ["preprocess (scan+index+layout)",
         f"{volume.nbytes / t_build / 1e6:.1f} MB/s of volume",
         f"{t_build * 1e3:.0f} ms"],
        ["out-of-core query (simulated disk)",
         f"{qr.io_stats.bytes_read / max(t_query, 1e-9) / 1e6:.1f} MB/s retrieved",
         f"{t_query * 1e3:.1f} ms"],
        ["marching cubes (numpy, batched)",
         f"{mesh.n_triangles / max(t_tri, 1e-9) / 1e6:.2f} Mtri/s",
         f"{t_tri * 1e3:.1f} ms"],
        ["surface nets (numpy, batched)",
         f"{sn_mesh.n_triangles / max(t_sn, 1e-9) / 1e6:.2f} Mtri/s",
         f"{t_sn * 1e3:.1f} ms"],
        ["full extract(), mc-batch backend",
         f"{res_mc.n_triangles / max(t_full_mc, 1e-9) / 1e6:.2f} Mtri/s",
         f"{t_full_mc * 1e3:.1f} ms"],
        ["full extract(), surface-nets backend",
         f"{res.n_triangles / max(t_full, 1e-9) / 1e6:.2f} Mtri/s",
         f"{t_full * 1e3:.1f} ms"],
        ["crc verify: per-record loop (734 B records)",
         f"{crc['loop_mb_s']:.0f} MB/s", "-"],
        ["crc verify: cumulative span (hot read path)",
         f"{crc['span_mb_s']:.0f} MB/s "
         f"({crc['span_speedup']:.1f}x 734 B loop)", "-"],
        ["crc verify: per-record loop (16 B records)",
         f"{crc['small_loop_mb_s']:.0f} MB/s", "-"],
        ["crc verify: vectorized (16 B records)",
         f"{crc['vectorized_mb_s']:.0f} MB/s "
         f"({crc['vectorized_speedup']:.1f}x 16 B loop)", "-"],
    ]
    table = format_table(
        ["stage", "measured Python throughput", "wall time"],
        rows,
        title=(
            "Python wall-clock throughput on this machine "
            f"(volume {('x'.join(map(str, volume.shape)))}, isovalue {int(lam)}; "
            "modeled times elsewhere use docs/PERFMODEL.md)"
        ),
    )
    emit("python_throughput.txt", table)

    full_mtri_s = res.n_triangles / max(t_full, 1e-9) / 1e6
    full_mc_mtri_s = res_mc.n_triangles / max(t_full_mc, 1e-9) / 1e6
    # Emitted under the fixed name "throughput" (not the module-derived
    # one) because CI's perf-smoke job and the acceptance record point
    # at BENCH_throughput.json.
    emit_bench_json("throughput", {
        "preprocess_mb_s": volume.nbytes / t_build / 1e6,
        "query_mb_s": qr.io_stats.bytes_read / max(t_query, 1e-9) / 1e6,
        "mc_batch_mtri_s": mesh.n_triangles / max(t_tri, 1e-9) / 1e6,
        "surface_nets_mtri_s": sn_mesh.n_triangles / max(t_sn, 1e-9) / 1e6,
        "full_extract_mtri_s": full_mtri_s,
        "full_extract_mc_mtri_s": full_mc_mtri_s,
        "full_extract_ms": t_full * 1e3,
        "full_extract_baseline_mtri_s": PRE_REWORK_FULL_EXTRACT_MTRI_S,
        "full_extract_speedup_vs_baseline":
            full_mtri_s / PRE_REWORK_FULL_EXTRACT_MTRI_S,
        "crc_verify_loop_mb_s": crc["loop_mb_s"],
        "crc_verify_span_mb_s": crc["span_mb_s"],
        "crc_verify_span_speedup": crc["span_speedup"],
        "crc_verify_small_loop_mb_s": crc["small_loop_mb_s"],
        "crc_verify_vectorized_mb_s": crc["vectorized_mb_s"],
        "crc_verify_vectorized_speedup": crc["vectorized_speedup"],
    }, scale=cfg.scale)

    assert mesh.n_triangles == res_mc.n_triangles
    assert sn_mesh.n_triangles == res.n_triangles
    assert mesh.n_triangles / max(t_tri, 1e-9) > 1e5  # >0.1 Mtri/s in numpy
    # Each verify strategy must beat the loop baseline where it deploys.
    assert crc["span_speedup"] > 1.0
    assert crc["vectorized_speedup"] > 1.0
    if cfg.scale == 1:
        # The zero-copy rework's acceptance bar on the reference scale,
        # now held by the *exact* backend; the SurfaceNets headline path
        # must clear it with room to spare.
        assert full_mc_mtri_s >= 2.0 * PRE_REWORK_FULL_EXTRACT_MTRI_S
        assert full_mtri_s > full_mc_mtri_s
