"""Table 8 — time-varying exploration: steps 180-195 at one isovalue on
4 nodes.

Paper rows: per time step, the number of active metacells, triangles
generated, execution time on four nodes, and the overall rendered rate
(Mtri/s).  The per-step indexes all live in memory at once (Section
5.2); selecting a step is a lookup.

Paper's isovalue is 70 on its entropy scale; we use the matching
interior value of the stand-in's range (the config's sweep start).
"""

from __future__ import annotations

import numpy as np

from repro.bench.figures import write_csv
from repro.bench.harness import emit, output_path, scaled_perf_model
from repro.bench.paper_data import PAPER_TIMEVARYING
from repro.bench.tables import format_table, human_bytes
from repro.core.timevarying import TimeVaryingIndex
from repro.grid.rm_instability import RMInstabilityModel
from repro.mc.marching_cubes import marching_cubes_batch
from repro.parallel.perfmodel import PAPER_CLUSTER


def _step_time(tvi, perf, t, lam, image_bytes):
    """Modeled 4-node execution time for one (step, isovalue) query."""
    results = tvi.query(t, lam)
    node_times = []
    amc = 0
    tris = 0
    for q, res in enumerate(results):
        ds = tvi.datasets(t)[q]
        codec = ds.codec
        cells = res.n_active * int(np.prod([m - 1 for m in codec.metacell_shape]))
        if res.n_active:
            mesh = marching_cubes_batch(
                codec.values_grid(res.records), lam,
                ds.meta.vertex_origins(res.records.ids),
            )
            n_tris = mesh.n_triangles
        else:
            n_tris = 0
        t_node = (
            perf.io_time(res.io_stats)
            + perf.cpu.triangulation_time(cells, n_tris)
            + perf.gpu.render_time(n_tris, image_bytes)
        )
        node_times.append(t_node)
        amc += res.n_active
        tris += n_tris
    total = max(node_times) + perf.network.transfer_time(
        len(results) * image_bytes, n_messages=len(results)
    )
    return amc, tris, total


def test_table8_timevarying(benchmark, cfg):
    p = PAPER_TIMEVARYING["nodes"]
    steps = PAPER_TIMEVARYING["steps"]  # 180..195
    lam = float(cfg.isovalues[2])
    shape = tuple(max(33, s // 2 + 1) for s in cfg.rm_shape)
    # Exact metacell tiling for the halved shape:
    shape = tuple(8 * ((s - 1) // 8) + 1 for s in shape)
    model = RMInstabilityModel(shape=shape, n_steps=cfg.n_steps, seed=cfg.seed)

    tvi = TimeVaryingIndex(p=p, metacell_shape=cfg.metacell_shape)
    for t in steps:
        tvi.add_step(t, model.evaluate(t))
    perf = scaled_perf_model(tvi.datasets(steps[0])[0], PAPER_CLUSTER)
    image_bytes = cfg.image_size[0] * cfg.image_size[1] * 16

    benchmark.pedantic(lambda: tvi.query(steps[0], lam), rounds=3, iterations=1)

    rows = []
    raw = []
    for t in steps:
        amc, tris, total = _step_time(tvi, perf, t, lam, image_bytes)
        rate = tris / total / 1e6 if total > 0 else 0.0
        rows.append([t, amc, tris, f"{total * 1e3:.2f}", f"{rate:.2f}"])
        raw.append([t, amc, tris, total, rate])

    table = format_table(
        ["time step", "active MC", "triangles", "4-node time (ms)", "Mtri/s"],
        rows,
        title=(
            f"Table 8 — time-varying case: steps {steps[0]}-{steps[-1]}, "
            f"isovalue {int(lam)}, {p} nodes.  Combined in-memory index: "
            f"{human_bytes(tvi.total_index_size_bytes())} "
            "(paper: 1.6 MiB for all 270 full-resolution steps)"
        ),
    )
    emit("table8_timevarying.txt", table)
    write_csv(
        output_path("table8_timevarying.csv"),
        ["step", "active_mc", "triangles", "time_s", "mtri_per_s"],
        raw,
    )

    # Shape claims: every step has work at this isovalue; the index for
    # 16 one-byte steps stays tiny; rates are mutually consistent.
    assert all(r[1] > 0 for r in raw), "mixing-layer isovalue inactive at some step"
    assert tvi.total_index_size_bytes() < 256 * 1024
    rates = [r[4] for r in raw]
    assert max(rates) / max(min(rates), 1e-9) < 4.0, "wildly inconsistent step rates"
