"""Ablation — in-memory vs external (blocked) vs unblocked index.

Paper Section 5: the compact interval tree normally lives in memory
(index traversal is free); if it didn't fit, blocking B nodes per disk
block gives O(log_B n) traversal I/O.  This bench measures the index
traversal bill per query for:

* in-memory index (0 blocks — the paper's main mode);
* blocked external index at the device block size;
* a degenerate 'one node per block' external index — what storing the
  binary tree naively would cost (O(log2 n) block reads).
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import emit, rm_bench_volume
from repro.bench.tables import format_table
from repro.core.builder import build_indexed_dataset
from repro.core.external_tree import ExternalCompactIndex
from repro.core.query import execute_plan
from repro.io.blockdevice import SimulatedBlockDevice
from repro.io.cost_model import IOCostModel


def test_ablation_external_index(benchmark, cfg):
    volume = rm_bench_volume(cfg)
    ds = build_indexed_dataset(volume, cfg.metacell_shape)
    tree = ds.tree

    blocked = ExternalCompactIndex(
        SimulatedBlockDevice(IOCostModel(block_size=8192)), tree
    )
    # 'One node per block': block barely larger than the fattest node.
    fat = max(
        blocked._node_bytes(n) + 8 for n in tree.nodes
    )
    unblocked = ExternalCompactIndex(
        SimulatedBlockDevice(IOCostModel(block_size=fat)), tree
    )

    mid = float(cfg.isovalues[len(cfg.isovalues) // 2])
    benchmark.pedantic(lambda: blocked.plan_query(mid), rounds=5, iterations=1)

    rows = []
    sums = {"blocked": 0, "unblocked": 0}
    for lam in cfg.isovalues:
        plan_b, io_b = blocked.plan_query(float(lam))
        plan_u, io_u = unblocked.plan_query(float(lam))
        # Same plans regardless of blocking.
        res_b = execute_plan(ds, plan_b)
        res_u = execute_plan(ds, plan_u)
        assert res_b.n_active == res_u.n_active
        rows.append([
            int(lam), plan_b.nodes_visited, 0, io_b.blocks_read, io_u.blocks_read,
        ])
        sums["blocked"] += io_b.blocks_read
        sums["unblocked"] += io_u.blocks_read

    table = format_table(
        ["isovalue", "path nodes", "in-memory blocks", "blocked index blocks",
         "one-node-per-block blocks"],
        rows,
        title=(
            "Ablation — index traversal I/O (paper: in-memory is the normal "
            f"mode; blocked external tree = O(log_B n); index has {tree.n_nodes} "
            f"nodes, blocked into {blocked.n_blocks} disk blocks)"
        ),
    )
    emit("ablation_external_index.txt", table)

    assert sums["blocked"] <= sums["unblocked"]
    # Blocking must compress the traversal: strictly fewer blocks than
    # nodes visited whenever the path is deeper than one block.
    for (lam, nodes, _zero, b_blocks, u_blocks) in rows:
        assert b_blocks <= nodes
        assert u_blocks >= min(nodes, 1)
