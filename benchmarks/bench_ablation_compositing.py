"""Ablation — compositing schedules: direct send vs binary swap.

Section 6 uses sort-last compositing through Chromium and reports no
noticeable overhead.  This bench compares the two classic schedules on
the actual rendered buffers of a cluster extraction: bytes moved per
node, total bytes, rounds, and pixel-exactness against the reference
z-merge.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import emit, get_cluster
from repro.bench.tables import format_table
from repro.render.camera import Camera
from repro.render.compositor import binary_swap, composite, direct_send
from repro.render.rasterizer import Framebuffer, render_mesh
from repro.render.tiled_display import TileLayout
from repro.mc.geometry import TriangleMesh
from repro.parallel.perfmodel import PAPER_CLUSTER


def test_ablation_compositing(benchmark, cfg):
    p = 4
    cluster = get_cluster(cfg, p)
    lam = float(cfg.isovalues[len(cfg.isovalues) // 2])
    res = cluster.extract(lam, keep_meshes=True)
    combined = TriangleMesh.concat([m for m in res.meshes if m.n_triangles])
    cam = Camera.fit_mesh(combined)

    size = 256
    fbs = []
    for mesh in res.meshes:
        fb = Framebuffer(size, size)
        render_mesh(fb, mesh, cam)
        fbs.append(fb)

    ref = composite(fbs)
    layout = TileLayout(2, 2, size, size)

    ds_img, ds_stats = direct_send(fbs, layout)
    bs_img, bs_stats = binary_swap(fbs)
    benchmark.pedantic(lambda: binary_swap(fbs), rounds=3, iterations=1)

    assert np.array_equal(ds_img.color, ref.color)
    assert np.array_equal(bs_img.color, ref.color)

    net = PAPER_CLUSTER.network
    rows = []
    for name, stats, msgs in (
        ("direct send (2x2 wall)", ds_stats, p * layout.n_tiles),
        ("binary swap", bs_stats, p * (bs_stats.rounds + 1)),
    ):
        rows.append([
            name, stats.rounds, stats.total_bytes, stats.max_bytes_per_node,
            f"{net.transfer_time(stats.max_bytes_per_node, msgs // p) * 1e3:.3f}",
        ])
    table = format_table(
        ["schedule", "rounds", "total bytes", "max bytes/node", "modeled ms/node"],
        rows,
        title=(
            f"Ablation — sort-last compositing schedules (p={p}, {size}x{size}, "
            "both pixel-exact vs reference z-merge)"
        ),
    )
    emit("ablation_compositing.txt", table)

    # Aggregate bytes are equal (one screen per node either way);
    # binary swap trades rounds for distributed merge work.
    assert ds_stats.total_bytes == bs_stats.total_bytes
    assert bs_stats.rounds == 2
