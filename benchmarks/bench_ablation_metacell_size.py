"""Ablation — metacell size: 5^3 vs 9^3 vs 17^3 vertices.

The paper fixes 9x9x9 ('a small multiple of the disk block size')
without measuring alternatives.  This bench quantifies the trade-off on
identical data:

* smaller metacells -> finer activity resolution (fewer wasted cells
  triangulated) but more records, more boundary-layer duplication on
  disk, and more index entries;
* larger metacells -> compact index and fat sequential runs but many
  inactive cells examined per active metacell.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import emit, rm_bench_volume
from repro.bench.tables import format_table, human_bytes
from repro.core.builder import build_indexed_dataset
from repro.core.query import execute_query
from repro.mc.marching_cubes import count_active_cells


def test_ablation_metacell_size(benchmark, cfg):
    volume = rm_bench_volume(cfg)
    lam = float(cfg.isovalues[len(cfg.isovalues) // 2])
    true_active_cells = count_active_cells(volume.data, lam)

    benchmark.pedantic(
        lambda: build_indexed_dataset(volume, (9, 9, 9)), rounds=2, iterations=1
    )

    rows = []
    measured = {}
    for m in (5, 9, 17):
        ds = build_indexed_dataset(volume, (m, m, m))
        res = execute_query(ds, lam)
        cells_per = (m - 1) ** 3
        examined = res.n_active * cells_per
        waste = examined / max(true_active_cells, 1)
        measured[m] = {
            "stored": ds.report.stored_bytes,
            "index": ds.report.index_bytes,
            "blocks": res.io_stats.blocks_read,
            "waste": waste,
        }
        rows.append([
            f"{m}^3",
            ds.report.n_metacells_stored,
            human_bytes(ds.report.stored_bytes),
            human_bytes(ds.report.index_bytes),
            res.n_active,
            res.io_stats.blocks_read,
            f"{waste:.1f}x",
        ])

    table = format_table(
        ["metacell", "stored MC", "store size", "index size", "active MC",
         "blocks/query", "cells examined / truly active"],
        rows,
        title=(
            "Ablation — metacell size trade-off at isovalue "
            f"{int(lam)} (truly active cells: {true_active_cells})"
        ),
    )
    emit("ablation_metacell_size.txt", table)

    # The trade-off's two monotone arms:
    assert measured[5]["waste"] < measured[9]["waste"] < measured[17]["waste"]
    assert measured[5]["index"] > measured[9]["index"] > measured[17]["index"]
    # 5^3 pays heavy boundary duplication on disk relative to 9^3.
    assert measured[5]["stored"] > measured[9]["stored"]
