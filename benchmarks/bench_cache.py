"""Cache soak: cross-query result reuse under a Zipf isovalue sweep.

The interactive-exploration scenario the result cache exists for: a
Zipf-distributed sweep of 32 queries over a handful of nearby isovalues
(users dwell near interesting surfaces, revisiting and nudging λ).  The
soak asserts the reuse contract from ISSUE acceptance:

* **≥3x I/O reduction** — the hot sweep (λ-keyed result cache on) does
  at least 3x less modeled read I/O than the same sweep on an uncached
  cluster;
* **bit-identity** — every hot answer's triangles are byte-for-byte the
  cold answer's, per query (reuse is an optimisation, never an
  approximation);
* **hit-rate floor** — the cache's hit rate over the sweep clears 0.5;
* **epoch fencing** — an ownership change mid-soak invalidates every
  cached key (zero stale entries survive) and post-event answers still
  match cold;
* **byte-identical determinism** — two same-seed runs on fresh clusters
  emit identical ``BENCH_cache.json`` payloads.

The incremental sweep planner (:func:`~repro.core.multi_query.
execute_sweep_query`) rides along: its delta reads must also beat the
query-at-a-time baseline by >= 3x on this access pattern.
"""

from __future__ import annotations

import json

import numpy as np

from repro.bench.harness import emit_bench_json
from repro.core.builder import build_indexed_dataset
from repro.core.multi_query import execute_sweep_query
from repro.core.query import execute_query
from repro.grid.datasets import sphere_field
from repro.io.cache import CacheOptions
from repro.parallel.cluster import ExtractRequest, SimulatedCluster

SEED = 1337
N_QUERIES = 32
MB = 1 << 20


def _build_cluster(cache: "CacheOptions | None" = None) -> SimulatedCluster:
    """A fresh 4-node r=2 cluster (fresh per run: cache state must not
    leak between the cold, hot, and determinism runs)."""
    return SimulatedCluster(
        sphere_field((24, 24, 24)), 4, metacell_shape=(5, 5, 5),
        replication=2, cache=cache,
    )


def _zipf_sweep(cluster: SimulatedCluster) -> "list[float]":
    """32 isovalues: Zipf-ranked picks from 8 nearby values around the
    sphere's mid-range — the dwell-and-nudge slider access pattern."""
    endpoints = cluster.datasets[0].tree.endpoints
    lo, hi = float(min(endpoints)), float(max(endpoints))
    universe = [lo + (hi - lo) * (0.40 + 0.02 * i) for i in range(8)]
    ranks = np.arange(1, len(universe) + 1, dtype=np.float64)
    weights = (1.0 / ranks) / (1.0 / ranks).sum()
    rng = np.random.default_rng(SEED)
    return [universe[i] for i in rng.choice(len(universe), size=N_QUERIES,
                                            p=weights)]


def _read_bytes(cluster: SimulatedCluster) -> int:
    return sum(d.device.stats.bytes_read for d in cluster.datasets)


def _run_sweep(cluster: SimulatedCluster, sweep: "list[float]"):
    """Run the sweep; returns (list of per-query results, read bytes)."""
    req = ExtractRequest(keep_meshes=True)
    before = _read_bytes(cluster)
    results = [cluster.extract(lam, req) for lam in sweep]
    return results, _read_bytes(cluster) - before


def _hot_options() -> CacheOptions:
    return CacheOptions(result_cache_bytes=8 * MB, lambda_bucket=0.02)


def _run_hot():
    """One full hot run: sweep, epoch bump, post-event re-sweep.

    Returns the metrics dict (the determinism comparand).
    """
    hot = _build_cluster(cache=_hot_options())
    sweep = _zipf_sweep(hot)
    _, hot_bytes = _run_sweep(hot, sweep)
    stats = hot.result_cache.stats
    entries_before = len(hot.result_cache)

    # Ownership change mid-soak: stripe 0 fails over to its replica.
    hot.ownership.assign(0, 1, reason="bench-failover")
    stale_entries = len(hot.result_cache)
    invalidations = stats.invalidations
    _, post_bytes = _run_sweep(hot, sweep[:8])

    return {
        "n_queries": float(N_QUERIES),
        "hot_read_bytes": float(hot_bytes),
        "post_epoch_read_bytes": float(post_bytes),
        "rcache_hits": float(stats.hits),
        "rcache_misses": float(stats.misses),
        "rcache_hit_rate": float(stats.hit_rate),
        "rcache_records_from_cache": float(stats.records_from_cache),
        "rcache_entries_before_epoch_bump": float(entries_before),
        "rcache_stale_entries_after_epoch_bump": float(stale_entries),
        "rcache_invalidations": float(invalidations),
    }


def test_cache_soak(cfg):
    cold = _build_cluster()
    sweep = _zipf_sweep(cold)
    cold_results, cold_bytes = _run_sweep(cold, sweep)

    hot = _build_cluster(cache=_hot_options())
    hot_results, hot_bytes = _run_sweep(hot, sweep)

    # Bit-identity: every hot answer is byte-for-byte the cold answer.
    for lam, want, got in zip(sweep, cold_results, hot_results):
        assert got.n_triangles == want.n_triangles, lam
        for wm, gm in zip(want.meshes, got.meshes):
            assert np.array_equal(wm.vertices, gm.vertices), lam
            assert np.array_equal(wm.faces, gm.faces), lam

    # >= 3x modeled read-I/O reduction on the hot sweep.
    assert hot_bytes * 3 <= cold_bytes, (
        f"hot sweep read {hot_bytes} bytes, cold {cold_bytes}: < 3x reduction"
    )
    # Hit-rate floor over the Zipf sweep.
    stats = hot.result_cache.stats
    assert stats.hit_rate >= 0.5, f"hit rate {stats.hit_rate:.3f} < 0.5"

    # Epoch fencing: an ownership change invalidates every key; no stale
    # entry survives, and post-event answers still match a cold cluster.
    n_entries = len(hot.result_cache)
    assert n_entries > 0
    hot.ownership.assign(0, 1, reason="bench-failover")
    assert len(hot.result_cache) == 0, "stale entries survived the epoch bump"
    assert stats.invalidations == n_entries
    req = ExtractRequest(keep_meshes=True)
    for lam in sweep[:4]:
        want = cold.extract(lam, req)
        got = hot.extract(lam, req)
        assert got.n_triangles == want.n_triangles
        for wm, gm in zip(want.meshes, got.meshes):
            assert np.array_equal(wm.vertices, gm.vertices)
            assert np.array_equal(wm.faces, gm.faces)

    # The incremental sweep planner beats query-at-a-time >= 3x too.
    ds = build_indexed_dataset(sphere_field((24, 24, 24)), (5, 5, 5))
    sweep_res = execute_sweep_query(ds, sweep)
    serial_bytes = 0
    for step in sweep_res.steps:
        before = ds.device.stats.copy()
        want = execute_query(ds, step.lam)
        serial_bytes += (ds.device.stats.copy() - before).bytes_read
        assert np.array_equal(want.records.ids, step.records.ids)
    assert sweep_res.io_stats.bytes_read * 3 <= serial_bytes

    # Same seed, fresh clusters => byte-identical payload.
    metrics_a = _run_hot()
    metrics_b = _run_hot()
    assert json.dumps(metrics_a, sort_keys=True) == json.dumps(
        metrics_b, sort_keys=True
    ), "same-seed cache soak runs diverged"

    metrics = dict(metrics_a)
    metrics["cold_read_bytes"] = float(cold_bytes)
    metrics["io_reduction_factor"] = cold_bytes / max(hot_bytes, 1)
    metrics["sweep_planner_read_bytes"] = float(sweep_res.io_stats.bytes_read)
    metrics["sweep_planner_reduction_factor"] = serial_bytes / max(
        sweep_res.io_stats.bytes_read, 1
    )
    emit_bench_json("cache", metrics, scale=cfg.scale, extra={
        "seed": SEED,
        "lambda_bucket": _hot_options().lambda_bucket,
        "result_cache_bytes": _hot_options().result_cache_bytes,
        "sweep": sweep,
    })

    print()
    print(f"cache soak: {N_QUERIES} Zipf queries over 8 nearby isovalues")
    print(f"  read I/O : cold {cold_bytes} B, hot {hot_bytes} B "
          f"({cold_bytes / max(hot_bytes, 1):.1f}x less)")
    print(f"  rcache   : hit rate {stats.hit_rate:.1%} "
          f"({stats.hits} hits / {stats.misses} misses), "
          f"{stats.records_from_cache} records reused")
    print(f"  fencing  : {n_entries} entries -> 0 across the epoch bump, "
          f"{stats.invalidations} invalidated, post-event answers == cold")
    print(f"  planner  : sweep {sweep_res.io_stats.bytes_read} B vs "
          f"serial {serial_bytes} B "
          f"({serial_bytes / max(sweep_res.io_stats.bytes_read, 1):.1f}x)")
