"""Section 7 preamble — preprocessing statistics.

Paper figures for time step 250: 5,592,802 metacells stored occupying
3.828 GB (~50% smaller than the raw 7.5 GB), a 6 KB single-step index,
and 1.6 MB for all 270 steps.  At bench scale we verify the same
*relationships*: substantial culling, KB-scale one-byte index whose size
is driven by n (distinct endpoints), not N (metacells), and per-step
index size times steps ~ multi-step index size.
"""

from __future__ import annotations

from repro.bench.harness import emit, get_cluster, rm_bench_volume
from repro.bench.paper_data import PAPER_FACTS
from repro.bench.tables import format_kv, human_bytes
from repro.core.builder import build_indexed_dataset
from repro.core.timevarying import TimeVaryingIndex
from repro.grid.rm_instability import rm_time_series


def test_preprocess_stats(benchmark, cfg):
    volume = rm_bench_volume(cfg)
    report = benchmark.pedantic(
        lambda: build_indexed_dataset(volume, cfg.metacell_shape).report,
        rounds=2,
        iterations=1,
    )

    # A few time steps to extrapolate the multi-step index size.
    steps = [100, 150, 200, 250]
    small_shape = tuple(8 * max(4, ((s - 1) // 16)) + 1 for s in cfg.rm_shape)
    tvi = TimeVaryingIndex.from_series(
        rm_time_series(steps, shape=small_shape, n_steps=cfg.n_steps, seed=cfg.seed),
        metacell_shape=cfg.metacell_shape,
    )
    per_step = tvi.total_index_size_bytes() / len(steps)

    pairs = [
        ("volume", "x".join(map(str, volume.shape))),
        ("raw bytes", human_bytes(report.original_bytes)),
        ("metacells total", report.n_metacells_total),
        ("metacells culled (constant)", report.n_metacells_culled),
        ("metacells stored", report.n_metacells_stored),
        ("stored bytes", human_bytes(report.stored_bytes)),
        ("space saving", f"{report.space_saving:.1%} (paper: ~49%)"),
        ("distinct endpoints n", report.n_distinct_endpoints),
        ("bricks", report.n_bricks),
        ("tree height", report.tree_height),
        ("index size", f"{human_bytes(report.index_bytes)} (paper: 6 KiB)"),
        (
            "extrapolated 270-step index",
            f"{human_bytes(per_step * PAPER_FACTS['rm_time_steps'])} (paper: 1.6 MiB)",
        ),
    ]
    emit("preprocess_stats.txt", format_kv("Preprocessing statistics (Section 7)", pairs))

    # Relationships, not absolutes:
    assert report.n_metacells_culled > 0.25 * report.n_metacells_total
    assert report.index_bytes < 16 * 1024  # one-byte scalars => KB index
    assert report.index_bytes < 0.01 * report.stored_bytes
    assert per_step * PAPER_FACTS["rm_time_steps"] < 4 * 2**20
