"""Shared fixtures for the paper-reproduction benches.

Every bench prints its table/figure to stdout (run with ``-s`` to see)
and persists it under ``benchmarks/output/``.  Scale knobs:

* ``REPRO_BENCH_SCALE=N`` — linear volume scale (default 1 ~ 100^3).
* ``REPRO_TABLE1_FULL=1`` — build Table 1 stand-ins at the paper's full
  grid dimensions instead of quarter scale.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import BenchConfig, emit_bench_json, get_sweep


@pytest.fixture(scope="session")
def cfg() -> BenchConfig:
    return BenchConfig.from_env()


@pytest.fixture
def bench_record(request, cfg):
    """Dict a bench fills with its headline numbers; written out as
    ``benchmarks/output/BENCH_<name>.json`` (schema ``repro-bench/1``)
    after the test passes.  ``<name>`` is the bench module minus its
    ``bench_`` prefix.  Leave the dict empty to emit nothing."""
    record: "dict[str, float]" = {}
    yield record
    if record:
        name = request.module.__name__
        name = name[len("bench_"):] if name.startswith("bench_") else name
        emit_bench_json(name, record, scale=cfg.scale)


@pytest.fixture(scope="session")
def sweep(cfg):
    """The {1,2,4,8}-node x isovalue sweep shared by Tables 2-7, Figs 5-6."""
    return get_sweep(cfg)
