"""Shared fixtures for the paper-reproduction benches.

Every bench prints its table/figure to stdout (run with ``-s`` to see)
and persists it under ``benchmarks/output/``.  Scale knobs:

* ``REPRO_BENCH_SCALE=N`` — linear volume scale (default 1 ~ 100^3).
* ``REPRO_TABLE1_FULL=1`` — build Table 1 stand-ins at the paper's full
  grid dimensions instead of quarter scale.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import BenchConfig, get_sweep


@pytest.fixture(scope="session")
def cfg() -> BenchConfig:
    return BenchConfig.from_env()


@pytest.fixture(scope="session")
def sweep(cfg):
    """The {1,2,4,8}-node x isovalue sweep shared by Tables 2-7, Figs 5-6."""
    return get_sweep(cfg)
