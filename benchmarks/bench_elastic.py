"""Elastic membership soak: scale 4 -> 8 -> 3 under the burst trace.

The acceptance scenario from docs/robustness.md ("Elasticity"): the
PR 6 overload trace (middle third at a 4x burst) runs against an
:class:`~repro.elastic.cluster.ElasticCluster` that is actively
reshaped while serving — scale-out to 8 nodes a third of the way in,
one original node killed mid-burst, scale-in to 3 nodes at the
two-thirds mark.  The soak asserts the elasticity contract under that
abuse:

* **zero failed queries** — every request ends ``ok | degraded |
  shed``; joins, drains, and the kill never surface as a
  zero-coverage terminal;
* **the load-balance invariant survives** — after every completed
  rebalance the per-λ spread bound from the paper's round-robin
  analysis holds (asserted per :class:`RebalanceEvent` and once more
  at the end);
* **bit-identical results** — every ``ok`` query's triangle count
  equals the static single-node reference for its isovalue, no matter
  how many migrations its stripes have been through;
* **rebalance cost is measured** — migration bytes/modeled-seconds
  and per-event costs are emitted as ``BENCH_elastic.json``;
* **byte-identical determinism** — two same-seed runs on fresh
  clusters produce identical payloads.

Volume and scale knobs mirror ``bench_serving.py``: a small analytic
sphere keeps per-query cost tiny so the CI ``elastic-soak`` job fits
its 120 s cap.
"""

from __future__ import annotations

import json

from repro.bench.harness import emit_bench_json
from repro.elastic import (
    ElasticCluster,
    ElasticController,
    Rebalancer,
    ScaleEvent,
    check_balance,
)
from repro.grid.datasets import sphere_field
from repro.parallel.cluster import SimulatedCluster
from repro.serve import (
    BrownoutConfig,
    BurstWindow,
    ClusterEvent,
    ServeConfig,
    TERMINAL_STATES,
    TenantSpec,
    TrafficConfig,
    QueryServer,
    generate_trace,
)

SEED = 1337
OVERLOAD = 4.0
KILL_RANK = 2
NODES = 4
STRIPES = 12
SCALE_OUT = 8
SCALE_IN = 3
MAX_IO_FRACTION = 0.5


def _build_cluster() -> ElasticCluster:
    """A fresh 4-node, 12-stripe elastic cluster (fresh per run: the
    kill and every migration must not leak between determinism runs)."""
    return ElasticCluster(
        sphere_field((24, 24, 24)), nodes=NODES, n_stripes=STRIPES,
        metacell_shape=(5, 5, 5),
    )


def _isovalues(cluster, n: int = 5) -> "tuple[float, ...]":
    endpoints = cluster.datasets[0].tree.endpoints
    lo, hi = float(min(endpoints)), float(max(endpoints))
    return tuple(lo + (hi - lo) * (i + 1) / (n + 1) for i in range(n))


def _reference_triangles(isovalues) -> "dict[float, int]":
    """Ground truth per isovalue from a static, unreplicated cluster —
    the value every migrated/promoted/resharded query must still hit."""
    static = SimulatedCluster(
        sphere_field((24, 24, 24)), NODES, metacell_shape=(5, 5, 5),
        replication=1,
    )
    return {lam: int(static.extract(lam).n_triangles) for lam in isovalues}


def _scenario(cluster):
    """(trace, serve-config, scale plan, unit) in service units, like
    ``bench_serving.py`` — plus the elastic waypoints: 8 nodes at 1/3,
    a kill at 1/2, 3 nodes at 2/3."""
    isovalues = _isovalues(cluster)
    unit = max(cluster.estimate_extract_time(lam) for lam in isovalues)
    duration = 90.0 * unit
    base_rate = 2.0 / unit
    tenants = (
        TenantSpec("gold-a", tier="gold", arrival_share=0.3,
                   rate=base_rate, burst=8, deadline_budget=4.0 * unit),
        TenantSpec("silver-b", tier="silver", arrival_share=0.4,
                   rate=base_rate, burst=8, deadline_budget=6.0 * unit),
        TenantSpec("bulk-c", tier="bulk", arrival_share=0.3,
                   rate=base_rate, burst=8, deadline_budget=12.0 * unit),
    )
    burst = BurstWindow(start=duration / 3.0, duration=duration / 3.0,
                        factor=OVERLOAD)
    kill = ClusterEvent(time=duration / 2.0, action="kill", rank=KILL_RANK)
    traffic = TrafficConfig(
        duration=duration,
        base_rate=base_rate,
        isovalues=isovalues,
        seed=SEED,
        bursts=(burst,),
        overlays=(kill,),
    )
    config = ServeConfig(
        tenants=tenants,
        n_executors=2,
        max_queue_depth=32,
        quantum=unit / 5.0,
        brownout=BrownoutConfig(eval_interval=unit),
    )
    plan = (
        ScaleEvent(time=duration / 3.0, nodes=SCALE_OUT),
        ScaleEvent(time=2.0 * duration / 3.0, nodes=SCALE_IN),
    )
    return generate_trace(traffic, tenants), config, plan, isovalues, unit


def _run():
    cluster = _build_cluster()
    trace, config, plan, isovalues, unit = _scenario(cluster)
    controller = ElasticController(
        cluster,
        rebalancer=Rebalancer(cluster, max_io_fraction=MAX_IO_FRACTION),
        plan=plan,
        balance_isovalues=isovalues,
    )
    report = QueryServer(cluster, config, controller=controller).serve(trace)
    controller.finish(trace.horizon)
    return cluster, controller, trace, config, isovalues, unit, report


def _payload(cluster, controller, report) -> dict:
    payload = report.to_payload()
    payload["elastic"] = {
        "migrations": len(cluster.migrations),
        "migration_bytes": cluster.migration_bytes,
        "migration_seconds": cluster.migration_seconds,
        "epoch": cluster.ownership.epoch,
        "members": cluster.membership.counts(),
        "rebalances": [ev.as_dict() for ev in controller.rebalance_events],
        "scale_actions": [
            {"time": a.time, "action": a.action, "node": a.node_id,
             "source": a.source}
            for a in controller.scale_actions
        ],
    }
    return payload


def test_elastic_soak(cfg):
    cluster, controller, trace, config, isovalues, unit, report = _run()

    # Every request in exactly one terminal state — and NEVER 'failed':
    # the elasticity contract is that membership churn is invisible to
    # correctness, only (at worst) to latency.
    assert [r.request_id for r in report.records] == [
        q.request_id for q in trace.requests
    ]
    counts = {s: len(report.by_state(s)) for s in TERMINAL_STATES}
    assert sum(counts.values()) == report.n_requests
    assert counts["failed"] == 0, (
        f"{counts['failed']} queries failed during membership churn"
    )

    # The cluster really was reshaped mid-workload: scale-out, kill,
    # scale-in all executed, and stripes physically moved.
    actions = [(a.action, a.source) for a in controller.scale_actions]
    assert ("join", "plan") in actions and ("drain", "plan") in actions
    assert len(cluster.migrations) > 0
    assert cluster.migration_bytes > 0
    assert cluster.ownership.epoch > 0
    serving = cluster.membership.target_ids()
    assert len(serving) == SCALE_IN, serving

    # The per-λ load-balance invariant is re-established after every
    # completed rebalance, and holds in the final state.
    assert controller.rebalance_events, "no rebalance ever completed"
    for ev in controller.rebalance_events:
        assert ev.balance.ok, (
            f"balance invariant violated after rebalance at "
            f"{ev.finished:.4f}s: {ev.balance}"
        )
    final = check_balance(cluster, isovalues)
    assert final.ok, f"final balance violated: {final}"

    # Bit-identical results through migration: every ok query's
    # triangle count matches the static reference for its isovalue.
    reference = _reference_triangles(isovalues)
    ok_records = report.by_state("ok")
    assert ok_records, "no query completed ok"
    for r in ok_records:
        assert r.triangles == reference[r.lam], (
            f"request {r.request_id} (λ={r.lam}): {r.triangles} triangles "
            f"!= reference {reference[r.lam]} after elastic churn"
        )

    # Same seed, fresh cluster => byte-identical payload, elastic
    # section included (migration order, epochs, costs).
    cluster_b, controller_b, *_, report_b = _run()
    payload = _payload(cluster, controller, report)
    payload_b = _payload(cluster_b, controller_b, report_b)
    assert json.dumps(payload, sort_keys=True) == json.dumps(
        payload_b, sort_keys=True
    ), "same-seed elastic runs diverged"

    metrics = dict(payload["metrics"])
    metrics["service_unit_seconds"] = unit
    metrics["overload_factor"] = OVERLOAD
    metrics["migrations"] = len(cluster.migrations)
    metrics["migration_bytes"] = cluster.migration_bytes
    metrics["migration_seconds"] = cluster.migration_seconds
    metrics["rebalances"] = len(controller.rebalance_events)
    metrics["final_epoch"] = cluster.ownership.epoch
    metrics["final_nodes"] = len(serving)
    metrics["final_assignment_spread"] = final.assignment_spread
    extra = dict(payload["series"])
    extra["seed"] = SEED
    extra["killed_rank"] = KILL_RANK
    extra["scale_plan"] = f"{NODES}->{SCALE_OUT}->{SCALE_IN}"
    extra["elastic"] = payload["elastic"]
    emit_bench_json("elastic", metrics, scale=cfg.scale, extra=extra)

    print()
    print(f"elastic soak: {report.n_requests} requests over "
          f"{trace.horizon:.2f}s modeled "
          f"({NODES}->{SCALE_OUT}->{SCALE_IN} nodes, rank {KILL_RANK} "
          f"killed mid-burst, {OVERLOAD:.0f}x overload)")
    print("  states: " + "  ".join(
        f"{s}={counts[s]}" for s in TERMINAL_STATES))
    print(f"  migrations {len(cluster.migrations)} "
          f"({cluster.migration_bytes} bytes, "
          f"{cluster.migration_seconds * 1e3:.2f} ms modeled) over "
          f"{len(controller.rebalance_events)} rebalances, "
          f"final epoch {cluster.ownership.epoch}")
    print(f"  balance: spread {final.assignment_spread} (ok), "
          f"members " + ", ".join(
              f"{k}={v}" for k, v in sorted(cluster.membership.counts().items())))
