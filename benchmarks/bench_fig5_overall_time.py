"""Figure 5 — overall extraction+rendering time vs isovalue, p = 1,2,4,8.

Paper shape: four roughly-flat-ish curves ordered 1 > 2 > 4 > 8 for
every isovalue (time drops with node count everywhere, no crossovers).
"""

from __future__ import annotations

from repro.bench.figures import ascii_chart, write_csv
from repro.bench.harness import emit, get_cluster, output_path


def test_fig5_overall_time(benchmark, cfg, sweep):
    cluster = get_cluster(cfg, 2)
    mid = cfg.isovalues[len(cfg.isovalues) // 2]
    benchmark.pedantic(lambda: cluster.extract(float(mid)), rounds=3, iterations=1)

    series = {}
    for p in cfg.node_counts:
        lams, times = sweep.series(p, "total_time")
        series[f"p={p}"] = (lams, [t * 1e3 for t in times])

    chart = ascii_chart(
        series,
        title="Figure 5 — overall time vs isovalue (ms, modeled)",
        xlabel="isovalue",
        ylabel="time (ms)",
    )
    emit("fig5_overall_time.txt", chart)
    write_csv(
        output_path("fig5_overall_time.csv"),
        ["isovalue"] + [f"p{p}_seconds" for p in cfg.node_counts],
        [
            [lam] + [sweep.row(p, lam).total_time for p in cfg.node_counts]
            for lam in cfg.isovalues
        ],
    )

    # No crossovers on busy isovalues: more nodes is never slower.
    for lam in cfg.isovalues:
        if sweep.row(1, lam).n_triangles < 1000:
            continue
        times = [sweep.row(p, lam).total_time for p in cfg.node_counts]
        for a, b in zip(times, times[1:]):
            assert b < a, f"iso {lam}: adding nodes slowed the run {times}"
