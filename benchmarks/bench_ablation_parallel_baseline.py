"""Ablation — parallel execution models: striping vs host dispatch.

Paper Section 2, on the BBIO-based parallel systems [10, 17]: "A
significant bottleneck with this scheme is the host overhead in
coordinating and dispatching jobs, and the access pattern to the
available disks is quite unpredictable."

This bench pits three ways of parallelizing the *same* per-isovalue
workload (the actual active-metacell jobs of the bench dataset, costed
with the calibrated CPU model) against each other:

* striping (ours): jobs pre-placed round-robin; makespan = max node sum,
  zero host time;
* host dispatch: a master hands each job to the next free worker,
  paying serial dispatch overhead per job;
* static blocks: contiguous pre-partition, no host — but balance at the
  mercy of the workload's spatial skew.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import emit, get_cluster
from repro.bench.tables import format_table
from repro.core.query import execute_query
from repro.parallel.scheduler import host_dispatch, round_robin
from repro.parallel.perfmodel import PAPER_CLUSTER


def test_ablation_parallel_baseline(benchmark, cfg):
    p = 8
    cluster = get_cluster(cfg, 1)
    ds = cluster.datasets[0]
    cells = int(np.prod([m - 1 for m in ds.codec.metacell_shape]))
    cpu = PAPER_CLUSTER.cpu

    benchmark.pedantic(
        lambda: execute_query(ds, float(cfg.isovalues[3])), rounds=3, iterations=1
    )

    from repro.mc.marching_cubes import _CORNER_OFFSETS
    from repro.mc.tables import N_TRI

    def per_record_triangles(values: np.ndarray, lam: float) -> np.ndarray:
        """Exact triangle count each metacell will emit."""
        v = values.astype(np.float64)
        pos = v > lam
        b, nx, ny, nz = v.shape
        case = np.zeros((b, nx - 1, ny - 1, nz - 1), dtype=np.uint16)
        for bit, (dx, dy, dz) in enumerate(_CORNER_OFFSETS):
            case |= (
                pos[:, dx : nx - 1 + dx, dy : ny - 1 + dy, dz : nz - 1 + dz]
                .astype(np.uint16) << bit
            )
        return N_TRI[case].reshape(b, -1).sum(axis=1)

    rows = []
    worst = {"striping": 0.0, "host dispatch": 0.0, "z-slab blocks": 0.0}
    for lam in cfg.isovalues:
        res = execute_query(ds, float(lam))
        if res.n_active < 50:
            continue
        values = ds.codec.values_grid(res.records)
        tris = per_record_triangles(values, float(lam))
        job_costs = np.array(
            [cpu.triangulation_time(cells, int(t)) for t in tris]
        )
        # Striping / host dispatch see jobs in layout (brick) order.
        stripe = round_robin(job_costs, p)
        dispatch = host_dispatch(job_costs, p)
        # The naive pre-partition assigns each worker a contiguous z-slab
        # of the *volume*; active jobs fall to whoever owns their slab.
        ijk = ds.meta.id_to_ijk(res.records.ids)
        gz = ds.meta.grid_shape[2]
        owner = np.minimum(ijk[:, 2] * p // gz, p - 1)
        slab_times = np.bincount(owner, weights=job_costs, minlength=p)
        from repro.parallel.scheduler import ScheduleResult

        blocks = ScheduleResult(worker_times=slab_times, host_time=0.0)
        ideal = job_costs.sum() / p
        rows.append([
            int(lam), res.n_active,
            f"{stripe.makespan / ideal:.3f}",
            f"{dispatch.makespan / ideal:.3f}",
            f"{blocks.makespan / ideal:.3f}",
        ])
        worst["striping"] = max(worst["striping"], stripe.makespan / ideal)
        worst["host dispatch"] = max(worst["host dispatch"], dispatch.makespan / ideal)
        worst["z-slab blocks"] = max(worst["z-slab blocks"], blocks.makespan / ideal)

    table = format_table(
        ["isovalue", "jobs", "striping / ideal", "host dispatch / ideal",
         "z-slab blocks / ideal"],
        rows,
        title=(
            f"Ablation — parallel execution models on {p} workers "
            "(makespan relative to perfect balance; paper: host dispatch is "
            "'a significant bottleneck', spatial pre-partition is unbalanced)"
        ),
    )
    emit("ablation_parallel_baseline.txt", table)

    assert worst["striping"] < 1.2
    # The host's serial dispatch adds real overhead on top of ideal.
    assert worst["host dispatch"] > worst["striping"]
    # Spatial pre-partitioning concentrates the mixing band on few workers.
    assert worst["z-slab blocks"] > 1.5
