"""Ablation — data distribution schemes: striping vs range partition.

The paper's Section 2 argues the range-space partition of [21] "could be
extremely unbalanced" for some isovalues while brick striping is
provably balanced for all of them.  This bench measures worst-case and
median imbalance (max/mean of per-node active metacells) across the
isovalue sweep for:

* round-robin brick striping (ours, staggered),
* round-robin brick striping (paper-literal, no stagger),
* range partition, static entry assignment [21],
* range partition with greedy work-balanced entries [22]-style.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.range_partition import RangePartitionDistribution
from repro.bench.harness import emit, rm_bench_volume
from repro.bench.tables import format_table
from repro.core.compact_tree import CompactIntervalTree
from repro.core.intervals import IntervalSet
from repro.core.striping import stripe_brick_records, striped_active_counts
from repro.grid.metacell import partition_metacells


def _imbalances(counts_fn, isovalues):
    out = []
    for lam in isovalues:
        counts = np.asarray(counts_fn(float(lam)), dtype=np.float64)
        if counts.sum() >= 100:
            out.append(counts.max() / counts.mean())
    return np.asarray(out)


def test_ablation_distribution(benchmark, cfg):
    p = 4
    volume = rm_bench_volume(cfg)
    part = partition_metacells(volume, cfg.metacell_shape)
    intervals = IntervalSet.from_partition(part)
    tree = CompactIntervalTree.build(intervals)

    striped = stripe_brick_records(tree, p, stagger=True)
    literal = stripe_brick_records(tree, p, stagger=False)
    rp_static = RangePartitionDistribution(intervals, p=p, k=8)
    rp_greedy = RangePartitionDistribution(intervals, p=p, k=8, assignment="work-balanced")

    benchmark.pedantic(
        lambda: stripe_brick_records(tree, p, stagger=True), rounds=3, iterations=1
    )

    schemes = {
        "brick striping (staggered)": lambda lam: striped_active_counts(striped, lam),
        "brick striping (paper-literal)": lambda lam: striped_active_counts(literal, lam),
        "range partition [21]": rp_static.active_counts,
        "range partition, greedy [22]": rp_greedy.active_counts,
    }
    rows = []
    stats = {}
    for name, fn in schemes.items():
        imb = _imbalances(fn, cfg.isovalues)
        stats[name] = imb
        rows.append([
            name, f"{np.median(imb):.3f}", f"{imb.max():.3f}",
            f"{(imb > 1.5).mean():.0%}",
        ])

    table = format_table(
        ["distribution scheme", "median max/mean", "worst max/mean", "isovalues >1.5x"],
        rows,
        title="Ablation — per-isovalue load imbalance of distribution schemes "
        "(p=4; 1.0 = perfect balance)",
    )
    emit("ablation_distribution.txt", table)

    # The paper's structural claims:
    assert stats["brick striping (staggered)"].max() < 1.2
    assert stats["range partition [21]"].max() > stats["brick striping (staggered)"].max()
    assert stats["range partition [21]"].max() > 1.5, (
        "range partition should be demonstrably unbalanced somewhere"
    )
