"""Weak scaling — data grows with node count.

The paper's strong-scaling numbers (Figures 5/6) keep the data fixed;
the natural companion experiment grows the volume with p so each node's
share stays constant.  Ideal weak scaling: per-node work and total time
flat as (p, volume) grow together — which the striped layout should
deliver since every node holds ~1/p of every brick.
"""

from __future__ import annotations

import numpy as np

from repro.bench.figures import write_csv
from repro.bench.harness import emit, output_path, scaled_perf_model
from repro.bench.tables import format_table
from repro.core.builder import build_indexed_dataset
from repro.grid.rm_instability import rm_timestep
from repro.parallel.cluster import SimulatedCluster


def test_weak_scaling(benchmark, cfg):
    lam = float(cfg.isovalues[len(cfg.isovalues) // 2])
    # Grow the lateral extent with p: the mixing layer (where the active
    # metacells live) covers the full x-y footprint, so active work grows
    # ~linearly with x while each node's share stays constant.
    base = 8 * 7 + 1  # 57
    configs = {p: (8 * 5 * p + 1, base, base) for p in (1, 2, 4, 8)}

    rows = []
    raw = []
    t_ref = None
    for p, shape in configs.items():
        volume = rm_timestep(cfg.time_step, shape=shape, seed=cfg.seed)
        probe = build_indexed_dataset(volume, cfg.metacell_shape)
        perf = scaled_perf_model(probe)
        cluster = SimulatedCluster(
            volume, p, cfg.metacell_shape, perf=perf, image_size=cfg.image_size
        )
        res = cluster.extract(lam)
        if p == 1:
            benchmark.pedantic(lambda: cluster.extract(lam), rounds=2, iterations=1)
            t_ref = res.total_time
        eff = t_ref / res.total_time if res.total_time > 0 else float("nan")
        per_node = res.n_active_metacells / p
        rows.append([
            p, "x".join(map(str, shape)), res.n_active_metacells,
            f"{per_node:.0f}", f"{res.total_time * 1e3:.2f}", f"{eff:.2f}",
        ])
        raw.append([p, res.n_active_metacells, res.total_time, eff])

    table = format_table(
        ["nodes", "volume", "active MC total", "active MC / node",
         "time (ms)", "weak efficiency"],
        rows,
        title=(
            f"Weak scaling at isovalue {int(lam)}: data grows with p "
            "(ideal: flat per-node work and time)"
        ),
    )
    emit("weak_scaling.txt", table)
    write_csv(
        output_path("weak_scaling.csv"),
        ["p", "active_mc", "time_s", "efficiency"],
        raw,
    )

    # Per-node work stays flat (within 30%) and efficiency stays decent.
    per_node = [r[1] / r[0] for r in raw]
    assert max(per_node) / min(per_node) < 1.3
    effs = [r[3] for r in raw[1:]]
    assert min(effs) > 0.5
