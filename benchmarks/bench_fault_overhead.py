"""Extension — what resilience costs on the healthy path.

The robustness subsystem (docs/robustness.md) must be effectively free
when nothing goes wrong:

* **checksum verification** adds zero modeled I/O — the CRC tables live
  in the index, so the healthy read pattern is block-for-block identical
  to an unchecksummed build; the only cost is a CPU pass over decoded
  bytes, measured here as wall overhead (budget: <10% modeled, which the
  block-identity makes 0%, and a loose wall-clock sanity bound);
* **replication r=2** doubles preprocessing writes but must leave the
  healthy query's primary layout byte-identical — same blocks, same
  seeks, same modeled time;
* **degraded-mode recovery** (r=2, one node lost) costs roughly one
  node's extra reads on the serving node and nothing anywhere else.
"""

from __future__ import annotations

import time

from repro.bench.harness import emit, rm_bench_volume, scaled_perf_model
from repro.bench.tables import format_table
from repro.core.builder import build_indexed_dataset, build_striped_datasets
from repro.core.query import QueryOptions, execute_query
from repro.parallel.cluster import SimulatedCluster


def _wall(fn, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_fault_overhead(benchmark, cfg, bench_record):
    volume = rm_bench_volume(cfg)
    probe = build_indexed_dataset(volume, cfg.metacell_shape)
    perf = scaled_perf_model(probe)
    disk = perf.disk

    plain = build_indexed_dataset(
        volume, cfg.metacell_shape, cost_model=disk, checksum=False
    )
    checked = build_indexed_dataset(volume, cfg.metacell_shape, cost_model=disk)

    mid = float(cfg.isovalues[len(cfg.isovalues) // 2])
    benchmark.pedantic(lambda: execute_query(checked, mid), rounds=3, iterations=1)

    rows = []
    for lam in cfg.isovalues:
        a = execute_query(plain, float(lam))
        b = execute_query(checked, float(lam))
        assert a.n_active == b.n_active
        # The headline: verification changes NOTHING about the I/O.
        assert a.io_stats.blocks_read == b.io_stats.blocks_read
        assert a.io_stats.seeks == b.io_stats.seeks
        assert b.io_stats.checksum_failures == 0 and b.io_stats.retries == 0
        t_plain = a.io_stats.read_time(disk)
        t_checked = b.io_stats.read_time(disk)
        assert t_checked <= 1.10 * t_plain  # the <10% budget; actually 0%
        w_plain = _wall(lambda lam=lam: execute_query(plain, float(lam)))
        w_checked = _wall(
            lambda lam=lam: execute_query(
                checked, float(lam), QueryOptions(verify_checksums=True)
            )
        )
        rows.append([
            int(lam), b.n_active, b.io_stats.blocks_read,
            f"{t_plain * 1e3:.2f}", f"{t_checked * 1e3:.2f}",
            f"{w_plain * 1e3:.2f}", f"{w_checked * 1e3:.2f}",
            f"{(w_checked / w_plain - 1) * 100:+.0f}%",
        ])

    # -- replication build cost + healthy-path neutrality ------------------
    p = 4
    t0 = time.perf_counter()
    build_striped_datasets(volume, p, cfg.metacell_shape, cost_model=disk)
    t_r1 = time.perf_counter() - t0
    t0 = time.perf_counter()
    build_striped_datasets(
        volume, p, cfg.metacell_shape, cost_model=disk, replication=2
    )
    t_r2 = time.perf_counter() - t0

    healthy = SimulatedCluster(volume, p, cfg.metacell_shape, perf=perf)
    replicated = SimulatedCluster(
        volume, p, cfg.metacell_shape, perf=perf, replication=2
    )
    h = healthy.extract(mid)
    r = replicated.extract(mid)
    assert h.n_triangles == r.n_triangles
    for hn, rn in zip(h.nodes, r.nodes):
        assert hn.io_stats.blocks_read == rn.io_stats.blocks_read
        assert hn.io_stats.seeks == rn.io_stats.seeks
    replicated.fail_node(1)
    d = replicated.extract(mid)
    assert not d.degraded and d.n_triangles == h.n_triangles

    extra_blocks = sum(n.io_stats.blocks_read for n in d.nodes) - sum(
        n.io_stats.blocks_read for n in h.nodes
    )
    summary = [
        f"replication build: r=1 {t_r1 * 1e3:.0f} ms, r=2 {t_r2 * 1e3:.0f} ms "
        f"({t_r2 / t_r1:.2f}x; extra copy of every brick)",
        f"healthy query under r=2: block/seek-identical on all {p} nodes",
        f"recovery (node 1 lost): +{extra_blocks} blocks re-read from the "
        f"replica, modeled {h.total_time * 1e3:.2f} -> {d.total_time * 1e3:.2f} ms",
    ]

    table = format_table(
        ["isovalue", "active MC", "blocks",
         "modeled ms (plain)", "modeled ms (crc)",
         "wall ms (plain)", "wall ms (crc)", "wall overhead"],
        rows,
        title="Extension — checksum verification overhead on the healthy "
        "path (modeled I/O identical by construction; wall overhead is "
        "the CRC32 pass)\n" + "\n".join(summary),
    )
    emit("fault_overhead.txt", table)

    bench_record.update({
        "replication_build_ratio": t_r2 / t_r1,
        "recovery_extra_blocks": extra_blocks,
        "healthy_total_ms": h.total_time * 1e3,
        "degraded_total_ms": d.total_time * 1e3,
        "n_triangles": h.n_triangles,
    })
