"""Figures 1 and 2 — the paper's structural diagrams, regenerated from
real data.

Figure 1 shows the span-space partitioning: interval points above the
diagonal, recursively covered by squares anchored at each tree node's
split value.  Figure 2 shows the binary tree with its per-node brick
index lists.  Both are illustrations in the paper; here they are
*computed* from the bench dataset — a density heatmap PPM with square
overlays, and an ASCII tree dump — which doubles as a structural sanity
check (squares tile all intervals; entries mirror the brick table).
"""

from __future__ import annotations

import numpy as np

from repro.bench.figures import draw_box, heatmap_to_rgb, upscale_nearest
from repro.bench.harness import emit, output_path, rm_bench_volume
from repro.core.compact_tree import CompactIntervalTree
from repro.core.intervals import IntervalSet
from repro.core.span_space import (
    ascii_span_space,
    ascii_tree,
    span_space_histogram,
    tree_span_squares,
)
from repro.grid.metacell import partition_metacells
from repro.render.image import write_ppm


def test_fig1_fig2_structures(benchmark, cfg):
    volume = rm_bench_volume(cfg)
    part = partition_metacells(volume, cfg.metacell_shape)
    intervals = IntervalSet.from_partition(part)
    tree = benchmark.pedantic(
        lambda: CompactIntervalTree.build(intervals), rounds=3, iterations=1
    )

    # ---- Figure 1: span-space density + recursive squares ------------------
    bins = 96
    hist, edges = span_space_histogram(intervals, bins=bins)
    img = upscale_nearest(heatmap_to_rgb(hist), 4)
    scale = img.shape[0] / (edges[-1] - edges[0])

    def to_px(value: float) -> int:
        return int((value - edges[0]) * scale)

    squares = tree_span_squares(tree)
    for sq in squares:
        # Square covers vmin in [lo, split], vmax in [split, hi]:
        col0, col1 = to_px(sq.lo), to_px(sq.split)
        # vmax axis points up: row = height - px(vmax).
        row0 = img.shape[0] - 1 - to_px(sq.hi)
        row1 = img.shape[0] - 1 - to_px(sq.split)
        draw_box(img, row0, row1, col0, col1)
    ppm = write_ppm(output_path("fig1_span_space.ppm"), img)

    # Structural checks: squares tile all intervals exactly once; every
    # interval's point lies inside its node's square.
    assert sum(sq.n_intervals for sq in squares) == len(intervals)
    for node in tree.nodes:
        for j in range(node.n_bricks):
            s = int(node.entry_start[j])
            c = int(node.entry_count[j])
            vmins = tree.record_vmins[s : s + c].astype(np.float64)
            assert np.all(vmins <= float(node.split) + 1e-12)
            assert float(node.entry_vmax[j]) >= float(node.split) - 1e-12

    # ---- Figure 2: the tree with its index lists ----------------------------
    tree_txt = ascii_tree(tree, max_depth=4)
    report = (
        "Figure 1 — span-space density with the recursive square partition\n"
        f"({len(intervals)} intervals, {len(squares)} squares) -> {ppm}\n\n"
        + ascii_span_space(intervals, bins=28)
        + "\n\nFigure 2 — compact interval tree with per-node brick entries\n"
        f"(n={len(tree.endpoints)} endpoints, {tree.n_nodes} nodes, "
        f"{tree.n_bricks} bricks, height {tree.height()})\n\n"
        + tree_txt
    )
    emit("fig1_fig2_structures.txt", report)
