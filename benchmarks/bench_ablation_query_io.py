"""Ablation — query I/O: compact tree vs BBIO layout vs full scan.

Measures blocks read and seeks per query across the isovalue sweep for
three ways of answering the same out-of-core query:

* compact interval tree + span-space brick layout (ours): touches only
  blocks holding active records, sequential within runs;
* BBIO-style external interval tree + id-ordered store: same active
  set, but scattered retrieval (a seek per id-run) and an Omega(N)
  on-disk index;
* naive full scan: O(N/B) always — the floor both indexes must beat.

Paper claim (Sections 4-5): I/O-optimal retrieval, 'more effective bulk
data movement than the previous schemes'.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.bbio_tree import BBIODataset
from repro.baselines.naive_scan import full_scan_query
from repro.bench.harness import emit, rm_bench_volume
from repro.bench.tables import format_table
from repro.core.builder import build_indexed_dataset
from repro.core.query import execute_query
from repro.grid.metacell import partition_metacells


def test_ablation_query_io(benchmark, cfg):
    from repro.bench.harness import scaled_perf_model

    volume = rm_bench_volume(cfg)
    part = partition_metacells(volume, cfg.metacell_shape)
    # Brick-size-scaled block size (see harness docstring): with physical
    # 8 KiB blocks against this miniature's ~4 KiB bricks, every scheme's
    # counts would measure block granularity rather than layout quality.
    probe = build_indexed_dataset(volume, cfg.metacell_shape)
    disk = scaled_perf_model(probe).disk
    compact = build_indexed_dataset(volume, cfg.metacell_shape, cost_model=disk)
    bbio = BBIODataset(part, cost_model=disk)

    mid = float(cfg.isovalues[len(cfg.isovalues) // 2])
    benchmark.pedantic(lambda: execute_query(compact, mid), rounds=3, iterations=1)

    # Sweep beyond the paper's band to expose the selectivity crossover:
    # near-empty isovalues at the range edges, ~40% selectivity inside
    # the mixing band (the stored metacells are the mixing layer, so mid
    # isovalues activate a large fraction of the *stored* set).
    lams = sorted(set(list(cfg.isovalues) + [5, 15, 245, 250]))
    rows = []
    per_lam = {}
    seek_totals = {"compact": 0, "bbio": 0}
    totals = {"compact": 0, "bbio": 0, "scan": 0}
    for lam in lams:
        c = execute_query(compact, float(lam))
        b = bbio.query(float(lam))
        s = full_scan_query(compact, float(lam))
        assert c.n_active == b.n_active == s.n_active
        rows.append([
            int(lam), c.n_active,
            c.io_stats.blocks_read, c.io_stats.seeks,
            b.io_stats.blocks_read, b.io_stats.seeks,
            s.io_stats.blocks_read,
        ])
        per_lam[lam] = (c, b, s)
        totals["compact"] += c.io_stats.blocks_read
        totals["bbio"] += b.io_stats.blocks_read
        totals["scan"] += s.io_stats.blocks_read
        seek_totals["compact"] += c.io_stats.seeks
        seek_totals["bbio"] += b.io_stats.seeks

    table = format_table(
        ["isovalue", "active MC", "compact blocks", "compact seeks",
         "BBIO blocks", "BBIO seeks", "scan blocks"],
        rows,
        title="Ablation — block reads and seeks per query "
        "(compact layout vs BBIO id-ordered store vs full scan; note the "
        "crossover: indexes win at low selectivity, converge to the scan "
        "as the active fraction grows)",
    )
    emit("ablation_query_io.txt", table)

    n_store = compact.n_records
    for lam, (c, b, s) in per_lam.items():
        frac = c.n_active / max(n_store, 1)
        if frac < 0.05:
            # Low selectivity: the index touches a small fraction of the
            # blocks the scan must read (the O(log + T/B) regime).
            assert c.io_stats.blocks_read < 0.35 * s.io_stats.blocks_read, (
                f"iso {lam}: {c.io_stats.blocks_read} vs scan {s.io_stats.blocks_read}"
            )
        # Never catastrophically worse than scanning, at any selectivity
        # (block-granularity slack only).
        assert c.io_stats.blocks_read <= 1.3 * s.io_stats.blocks_read + 4

    # The span-space layout needs far fewer repositionings than the
    # id-ordered store for the same active sets.
    assert seek_totals["compact"] < seek_totals["bbio"]
    # And no more blocks than BBIO's scattered retrieval.
    assert totals["compact"] <= totals["bbio"]
