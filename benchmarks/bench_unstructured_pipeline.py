"""Extension bench — the unstructured-grid claim, quantified.

The paper opens Section 4 with "Our algorithm can handle both structured
and unstructured grids and makes use of the metacell notion", but
evaluates only the structured Richtmyer–Meshkov data.  This bench runs
the full unstructured pipeline (Morton cell clustering, denormalized tet
records, the same compact interval tree, striping) over a
tetrahedralized field and reports the structured-case metrics: index
size vs standard interval tree, selective I/O, per-node balance.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.interval_tree import StandardIntervalTree
from repro.bench.harness import emit, rm_bench_volume
from repro.bench.tables import format_table, human_bytes
from repro.core.unstructured_builder import (
    build_striped_unstructured,
    build_unstructured_dataset,
    extract_unstructured,
)
from repro.grid.unstructured import cluster_cells, structured_to_tets
from repro.core.intervals import IntervalSet


def test_unstructured_pipeline(benchmark, cfg):
    # A tetrahedralization of the (downsampled) RM step: 6 tets per cell.
    volume = rm_bench_volume(cfg).downsample(2, method="mean")
    mesh = structured_to_tets(volume)
    clusters = cluster_cells(mesh, 64)
    vmin = clusters.vmin.astype(np.float32)
    vmax = clusters.vmax.astype(np.float32)
    keep = vmin != vmax
    intervals = IntervalSet(vmin=vmin[keep], vmax=vmax[keep], ids=clusters.ids[keep])

    ds = benchmark.pedantic(
        lambda: build_unstructured_dataset(mesh, cells_per_cluster=64),
        rounds=2,
        iterations=1,
    )
    std = StandardIntervalTree.build(intervals)

    p = 4
    striped = build_striped_unstructured(mesh, p, cells_per_cluster=64)

    rows = []
    balances = []
    for lam in cfg.isovalues[::2]:
        surf, qr = extract_unstructured(ds, float(lam))
        per_node = [extract_unstructured(d, float(lam))[1].n_active for d in striped]
        store = ds.n_records * ds.codec.record_size
        rows.append([
            int(lam), qr.n_active, surf.n_triangles,
            f"{qr.io_stats.bytes_read / max(store, 1):.0%}",
            str(per_node),
        ])
        balances.append((qr.n_active, per_node))

    table = format_table(
        ["isovalue", "active clusters", "triangles", "store read", "per-node active (p=4)"],
        rows,
        title=(
            f"Unstructured pipeline on {mesh.n_cells} tetrahedra "
            f"({clusters.n_clusters} clusters of 64; index "
            f"{human_bytes(ds.report.index_bytes)} vs standard interval tree "
            f"{human_bytes(std.size_bytes())})"
        ),
    )
    emit("unstructured_pipeline.txt", table)

    # Structured-case claims transfer:
    assert ds.report.index_bytes * 2 <= std.size_bytes()
    busy = [(total, per_node) for total, per_node in balances if total > 50]
    assert busy, "no busy isovalues on the tet mesh"
    for _total, per_node in busy:
        assert max(per_node) - min(per_node) <= max(4, 0.2 * max(per_node))