"""Table 5 — per-node performance on 8 nodes.

Paper rows: for each isovalue, every node's active-metacell count,
triangle count, and stage times; the cross-check is the speedup over the
single-node run of Table 2 (paper: 4 nodes reach 3.54-3.97, 8 nodes
6.91-7.83, 2 nodes near 2).
"""

from _multinode import multinode_report
from repro.bench.harness import get_cluster


def test_table5_8_nodes(benchmark, cfg, sweep):
    cluster = get_cluster(cfg, 8)
    mid = cfg.isovalues[len(cfg.isovalues) // 2]
    benchmark.pedantic(lambda: cluster.extract(float(mid)), rounds=3, iterations=1)
    multinode_report(cfg, sweep, p=8, table_no=5)
