"""Chaos soak: composed-fault trials with zero invariant violations.

The acceptance scenario from docs/robustness.md ("Chaos testing"):
every trial draws a composed fault schedule — a node kill, a storage
fault burst, a scale waypoint, and a network partition — from its
seed, runs the three-tenant burst workload on an elastic cluster with
per-link network faults active, and judges the outcome with the full
oracle catalog.  The soak asserts:

* **zero oracle violations** across every trial — bit-identity of
  ``ok`` results, exactly-one terminal state, no stale cache entries
  across epoch bumps, the load-balance bound after every rebalance,
  coverage-accounting identity, no leaked shm segments;
* **chaos actually happened** — the trials collectively killed nodes,
  aborted migrations across partitions, dropped/duplicated/reordered
  messages (the soak is vacuous if the schedules are no-ops);
* **byte-identical determinism** — re-running a seed yields an
  identical trial result, which is what makes a failing seed a repro.

Trial count here is CI-tier (the dedicated ``chaos-soak`` job runs the
standalone harness at 300+ trials); ``REPRO_CHAOS_TRIALS`` overrides.
"""

from __future__ import annotations

import json
import os
from dataclasses import replace

from repro.bench.harness import emit_bench_json
from repro.chaos import ChaosEngine, ChaosSpec
from repro.obs.metrics import MetricsRegistry

SEED = 2000
TRIALS = int(os.environ.get("REPRO_CHAOS_TRIALS", "25"))


def test_chaos_soak(cfg):
    registry = MetricsRegistry()
    engine = ChaosEngine(metrics=registry)
    base = ChaosSpec(seed=SEED)

    results = engine.run_trials(base, TRIALS)
    assert len(results) == TRIALS

    violations = [
        (r.seed, v) for r in results for v in r.violations
    ]
    assert not violations, (
        f"{len(violations)} invariant violation(s): " + "; ".join(
            f"seed {s} [{v.oracle}] {v.message}" for s, v in violations[:5]
        )
    )

    # The soak must not be vacuous: chaos visibly happened.
    states: "dict[str, int]" = {}
    for r in results:
        for k, v in r.states.items():
            states[k] = states.get(k, 0) + v
    assert sum(states.values()) == sum(r.n_requests for r in results)
    metrics = registry.to_dict()
    assert metrics["chaos.trials"] == TRIALS
    assert metrics["chaos.net.messages"] > 0, "network session never engaged"
    assert metrics["chaos.net.dropped"] > 0, "no message was ever dropped"
    assert any(r.final_epoch > 0 for r in results), "no trial ever resharded"
    assert any(r.migrations > 0 for r in results), "no stripe ever moved"

    # A failing seed is only a repro if trials are pure functions of it.
    again = engine.run_trial(replace(base, seed=SEED))
    assert json.dumps(again.as_dict(), sort_keys=True) == json.dumps(
        results[0].as_dict(), sort_keys=True
    ), "same-seed chaos trials diverged"

    bench = {
        "trials": float(TRIALS),
        "violations": 0.0,
        "violating_trials": 0.0,
        "events": float(sum(len(r.schedule) for r in results)),
        "migrations": float(sum(r.migrations for r in results)),
        "migrations_aborted": float(
            sum(r.migrations_aborted for r in results)
        ),
    }
    for state, n in sorted(states.items()):
        bench[f"state_{state}"] = float(n)
    for k, v in metrics.items():
        if k.startswith("chaos.net."):
            bench[k.replace("chaos.net.", "net_")] = float(v)
    extra = {"seed": SEED, "repro_schedules": []}
    emit_bench_json("chaos", bench, scale=cfg.scale, extra=extra)

    print()
    print(f"chaos soak: {TRIALS} trials, "
          f"{int(bench['events'])} events composed, 0 violations")
    print("  states: " + "  ".join(
        f"{k}={v}" for k, v in sorted(states.items())))
    print(f"  net: {int(metrics['chaos.net.messages'])} messages, "
          f"{int(metrics['chaos.net.dropped'])} dropped, "
          f"{int(metrics['chaos.net.duplicates'])} duplicated, "
          f"{int(metrics['chaos.net.reordered'])} reordered, "
          f"{int(metrics['chaos.net.lost'])} lost past retries")
    print(f"  elastic: {int(bench['migrations'])} migrations "
          f"({int(bench['migrations_aborted'])} aborted across partitions)")
