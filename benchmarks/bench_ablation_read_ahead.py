"""Ablation — Case-2 read-ahead granularity.

The incremental brick reader fetches ``read_ahead_blocks`` blocks per
step and stops at the first record with ``vmin > lam``.  Small
read-ahead minimizes overshoot bytes but issues more read calls; large
read-ahead amortizes calls but drags in unread tail blocks.  This bench
sweeps the knob and verifies the executor's behaviour matches the
analytic cost model block-for-block (repro.core.analysis).
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import emit, rm_bench_volume
from repro.bench.tables import format_table
from repro.core.analysis import estimate_query_cost
from repro.core.builder import build_indexed_dataset
from repro.core.query import QueryOptions, execute_query


def test_ablation_read_ahead(benchmark, cfg, bench_record):
    volume = rm_bench_volume(cfg)
    ds = build_indexed_dataset(volume, cfg.metacell_shape)
    # A Case-2-heavy isovalue: below most splits.
    lam = float(cfg.isovalues[0])

    benchmark.pedantic(
        lambda: execute_query(ds, lam, QueryOptions(read_ahead_blocks=8)),
        rounds=3, iterations=1,
    )

    rows = []
    blocks_by_ra = {}
    for ra in (1, 2, 4, 8, 16, 64):
        res = execute_query(ds, lam, QueryOptions(read_ahead_blocks=ra))
        est = estimate_query_cost(
            ds.tree, lam, ds.codec.record_size, ds.device.cost_model,
            ds.base_offset, read_ahead_blocks=ra,
        )
        assert est.blocks == res.io_stats.blocks_read  # model is block-exact
        overshoot = res.io_stats.bytes_read - res.n_active * ds.codec.record_size
        rows.append([
            ra, res.n_active, res.io_stats.read_ops, res.io_stats.blocks_read,
            overshoot,
        ])
        blocks_by_ra[ra] = res.io_stats.blocks_read

    table = format_table(
        ["read-ahead (blocks)", "active MC", "read calls", "blocks read",
         "overshoot bytes"],
        rows,
        title=(
            f"Ablation — Case-2 read-ahead at isovalue {int(lam)} "
            "(cost model verified block-exact at every setting)"
        ),
    )
    emit("ablation_read_ahead.txt", table)

    # Monotone trade-off arms: blocks never decrease with read-ahead,
    # read calls never increase.
    ras = sorted(blocks_by_ra)
    for a, b in zip(ras, ras[1:]):
        assert blocks_by_ra[b] >= blocks_by_ra[a]
    calls = {r[0]: r[2] for r in rows}
    for a, b in zip(ras, ras[1:]):
        assert calls[b] <= calls[a]

    bench_record.update({
        "active_metacells": rows[0][1],
        "blocks_min_read_ahead": blocks_by_ra[ras[0]],
        "blocks_max_read_ahead": blocks_by_ra[ras[-1]],
        "read_calls_min_read_ahead": calls[ras[0]],
        "read_calls_max_read_ahead": calls[ras[-1]],
    })
