"""Table 2 — single-node performance across isovalues.

Paper rows: per isovalue (10..210 step 20 in the paper; the matching
interior sweep of our stand-in's value range here): number of active
metacells, triangles generated, AMC retrieval (I/O) time, triangulation
time, rendering time, and the overall triangles/second rate.

Shape claims checked:
* I/O time is linear in the retrieved data (paper: 'a linear
  relationship between the I/O time and the number of triangles');
* triangulation is the bottleneck stage;
* the end-to-end modeled rate lands in the paper's 3.5-4.0 M tri/s
  bracket (the calibration target — see repro.parallel.perfmodel).
"""

from __future__ import annotations

import numpy as np

from repro.bench.figures import write_csv
from repro.bench.harness import emit, get_cluster, output_path
from repro.bench.paper_data import PAPER_SINGLE_NODE
from repro.bench.tables import format_table


def test_table2_single_node(benchmark, cfg, sweep):
    rows = [sweep.row(1, lam) for lam in cfg.isovalues]

    cluster = get_cluster(cfg, 1)
    mid = cfg.isovalues[len(cfg.isovalues) // 2]
    benchmark.pedantic(lambda: cluster.extract(float(mid)), rounds=3, iterations=1)

    table_rows = []
    for r in rows:
        table_rows.append([
            int(r.lam), r.n_active_metacells, r.n_triangles,
            f"{r.io_time * 1e3:.2f}", f"{r.triangulation_time * 1e3:.2f}",
            f"{r.render_time * 1e3:.2f}", f"{r.total_time * 1e3:.2f}",
            f"{r.rate_tri_per_s / 1e6:.2f}",
        ])
    table = format_table(
        ["isovalue", "active MC", "triangles", "AMC I/O (ms)", "triangulate (ms)",
         "render (ms)", "total (ms)", "Mtri/s"],
        table_rows,
        title=(
            "Table 2 — single node (paper: triangulation dominates; rate "
            f"{PAPER_SINGLE_NODE['rate_tri_per_s'][0] / 1e6:.1f}-"
            f"{PAPER_SINGLE_NODE['rate_tri_per_s'][1] / 1e6:.1f} Mtri/s; I/O linear in output)"
        ),
    )
    emit("table2_single_node.txt", table)
    write_csv(
        output_path("table2_single_node.csv"),
        ["isovalue", "active_mc", "triangles", "io_s", "tri_s", "render_s", "total_s"],
        [[r.lam, r.n_active_metacells, r.n_triangles, r.io_time,
          r.triangulation_time, r.render_time, r.total_time] for r in rows],
    )

    busy = [r for r in rows if r.n_triangles > 1000]
    assert len(busy) >= 8, "sweep should hit active isovalues nearly everywhere"

    # Triangulation is the bottleneck stage on every busy row.
    for r in busy:
        assert r.triangulation_time > r.io_time, f"iso {r.lam}: I/O-bound, not CPU-bound"
        assert r.triangulation_time > r.render_time

    # I/O time ~ linear in retrieved triangles: correlation of io vs tris.
    io = np.array([r.io_time for r in busy])
    tris = np.array([r.n_triangles for r in busy], dtype=float)
    if tris.std() > 0 and io.std() > 0:
        corr = float(np.corrcoef(io, tris)[0, 1])
        assert corr > 0.5, f"I/O not tracking output size (corr={corr:.2f})"

    # End-to-end rate in the paper's bracket (calibration check).
    rates = [r.rate_tri_per_s for r in busy]
    assert 1.5e6 < float(np.median(rates)) < 6.0e6
