"""Figure 4 — rendered isosurface of the (downsampled) RM dataset.

The paper's Figure 4 shows the isovalue-190 surface at time step 250 of
a 256x256x240 downsample.  We render the matching interior isovalue of
the stand-in through the full out-of-core pipeline and write PPM/PGM
images under benchmarks/output/ plus an ASCII preview to stdout.
"""

from __future__ import annotations

from repro.bench.harness import emit, output_path, rm_bench_volume
from repro.bench.paper_data import PAPER_FIG4
from repro.bench.tables import format_kv
from repro.pipeline import IsosurfacePipeline
from repro.render.image import ascii_preview, depth_to_gray, write_pgm, write_ppm


def test_fig4_render(benchmark, cfg):
    vol = rm_bench_volume(cfg, time_step=PAPER_FIG4["time_step"])
    pipe = IsosurfacePipeline.from_volume(vol, metacell_shape=cfg.metacell_shape)
    # Paper's iso 190 on 0..255 maps to the same absolute value inside our
    # stand-in's [16, 243] span — still within the heavy-gas flank.
    lam = float(PAPER_FIG4["isovalue"])

    res = benchmark.pedantic(
        lambda: pipe.extract(lam, render=True, image_size=(384, 384), smooth=True),
        rounds=2,
        iterations=1,
    )
    assert res.image is not None
    assert res.n_triangles > 1000
    assert res.image.coverage() > 0.05

    ppm = write_ppm(output_path("fig4_isosurface.ppm"), res.image.to_uint8())
    write_pgm(output_path("fig4_depth.pgm"), depth_to_gray(res.image.depth))

    report = format_kv(
        "Figure 4 — isosurface render (paper: iso 190, step 250, "
        "256x256x240 downsample)",
        [
            ("volume", "x".join(map(str, vol.shape))),
            ("isovalue", lam),
            ("active metacells", res.n_active_metacells),
            ("triangles", res.n_triangles),
            ("image coverage", f"{res.image.coverage():.1%}"),
            ("color image", str(ppm)),
        ],
    )
    emit("fig4_render.txt", report + "\n\n" + ascii_preview(res.image.to_uint8(), 72))
