"""Exploration bench — the interactive slider workload.

The paper's motivation is *interactive exploration*: a scientist drags
an isovalue slider and scrubs through time steps.  This bench replays
that access pattern — a random walk of nearby isovalues — against three
server configurations:

* cold: no cache, every query pays full disk I/O;
* cached: an LRU block cache sized at ~25% of the store;
* batch: the multi-isovalue shared-read path answering the whole
  trajectory at once.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import emit, rm_bench_volume
from repro.bench.tables import format_table
from repro.core.builder import build_indexed_dataset
from repro.core.multi_query import execute_multi_query
from repro.core.query import execute_query
from repro.io.blockdevice import SimulatedBlockDevice
from repro.io.cache import CachedDevice
from repro.io.cost_model import IOCostModel


def _trajectory(cfg, n=24, seed=123):
    """A bounded random walk over the busy isovalue band."""
    rng = np.random.default_rng(seed)
    lo, hi = cfg.isovalues[0], cfg.isovalues[-2]
    lam = (lo + hi) / 2
    out = []
    for _ in range(n):
        lam = float(np.clip(lam + rng.normal(0, 8), lo, hi))
        out.append(round(lam))
    return out

def test_interactive_exploration(benchmark, cfg):
    volume = rm_bench_volume(cfg)
    walk = _trajectory(cfg)
    cm = IOCostModel(block_size=1024, bandwidth=50e6, seek_latency=1e-4)

    cold_ds = build_indexed_dataset(volume, cfg.metacell_shape, cost_model=cm)
    backing = SimulatedBlockDevice(cm)
    store_blocks = 1 + cold_ds.device.size // cm.block_size
    # The paper's nodes hold 8 GB RAM against a ~0.5-4 GB per-node store
    # share: the hot working set fits comfortably.  75% here; note that an
    # *undersized* LRU thrashes on this workload (each query scans bricks
    # in layout order — the classic LRU sequential-flood worst case).
    cached_dev = CachedDevice(backing, capacity_blocks=max(4, 3 * store_blocks // 4))
    cached_ds = build_indexed_dataset(volume, cfg.metacell_shape, device=cached_dev)
    backing.reset_stats()
    cached_dev.reset_stats()

    benchmark.pedantic(lambda: execute_query(cold_ds, float(walk[0])), rounds=3, iterations=1)

    cold_blocks = 0
    actives_cold = []
    for lam in walk:
        res = execute_query(cold_ds, float(lam))
        cold_blocks += res.io_stats.blocks_read
        actives_cold.append(res.n_active)

    actives_cached = []
    for lam in walk:
        res = execute_query(cached_ds, float(lam))
        actives_cached.append(res.n_active)
    cached_disk_blocks = backing.stats.blocks_read
    hit_rate = cached_dev.cache_stats.hit_rate

    cold_ds.device.reset_stats()
    multi = execute_multi_query(cold_ds, sorted(set(float(l) for l in walk)))
    batch_blocks = multi.io_stats.blocks_read

    assert actives_cold == actives_cached  # identical answers

    table = format_table(
        ["configuration", "disk blocks for trajectory", "vs cold"],
        [
            ["cold (no cache)", cold_blocks, "1.00x"],
            [f"LRU cache (hit rate {hit_rate:.0%})", cached_disk_blocks,
             f"{cached_disk_blocks / cold_blocks:.2f}x"],
            ["multi-isovalue batch (one pass)", batch_blocks,
             f"{batch_blocks / cold_blocks:.2f}x"],
        ],
        title=(
            f"Interactive exploration: {len(walk)}-step isovalue walk "
            f"(isovalues {min(walk)}..{max(walk)})"
        ),
    )
    emit("interactive_exploration.txt", table)

    assert cached_disk_blocks < 0.7 * cold_blocks
    assert batch_blocks < 0.7 * cold_blocks
    assert hit_rate > 0.3
