"""Tests for the scheduling models used by the ablations."""

import numpy as np
import pytest

from repro.parallel.scheduler import (
    HostDispatchModel,
    host_dispatch,
    round_robin,
    static_blocks,
)


class TestHostDispatch:
    def test_host_overhead_serializes_small_jobs(self):
        """Many tiny jobs: the host's serial dispatch becomes the
        bottleneck, the effect the paper calls out for BBIO schemes."""
        jobs = np.full(10_000, 1e-6)
        res = host_dispatch(jobs, p=8, model=HostDispatchModel(dispatch_overhead=50e-6))
        assert res.host_time == pytest.approx(0.5)
        assert res.makespan >= 0.5

    def test_large_jobs_not_host_bound(self):
        jobs = np.full(16, 1.0)
        res = host_dispatch(jobs, p=4)
        assert res.makespan == pytest.approx(4.0, rel=0.01)

    def test_zero_jobs(self):
        res = host_dispatch(np.empty(0), p=4)
        assert res.makespan == 0.0

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            host_dispatch(np.ones(4), p=0)


class TestStaticBlocks:
    def test_skewed_costs_unbalanced(self):
        """Costs concentrated at the front: static blocks leave most
        workers idle."""
        jobs = np.zeros(100)
        jobs[:25] = 1.0
        res = static_blocks(jobs, p=4)
        assert res.worker_times[0] == pytest.approx(25.0)
        assert res.worker_times[1:].max() == 0.0
        assert res.balance_spread == pytest.approx(25.0)

    def test_uniform_costs_balanced(self):
        res = static_blocks(np.ones(100), p=4)
        assert res.balance_spread == 0.0


class TestRoundRobin:
    def test_skewed_costs_balanced(self):
        """The same adversarial input round-robin handles well — the
        scheduling analogue of the paper's striping."""
        jobs = np.zeros(100)
        jobs[:25] = 1.0
        res = round_robin(jobs, p=4)
        assert res.balance_spread <= 1.0

    def test_sum_preserved(self):
        rng = np.random.default_rng(0)
        jobs = rng.random(97)
        res = round_robin(jobs, p=5)
        assert res.worker_times.sum() == pytest.approx(jobs.sum())

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            round_robin(np.ones(4), p=0)
        with pytest.raises(ValueError):
            static_blocks(np.ones(4), p=-1)
