"""Tests for index persistence (save/load dataset directories)."""

import json

import numpy as np
import pytest

from repro.core.builder import build_indexed_dataset
from repro.core.compact_tree import CompactIntervalTree
from repro.core.persistence import (
    BRICKS_FILE,
    INDEX_FILE,
    META_FILE,
    build_persistent_dataset,
    load_dataset,
    save_dataset,
    tree_from_arrays,
    tree_to_arrays,
)
from repro.core.query import execute_query
from repro.grid.datasets import sphere_field
from repro.grid.rm_instability import rm_timestep


class TestTreeRoundTrip:
    def test_arrays_roundtrip_preserves_queries(self, sphere_intervals):
        tree = CompactIntervalTree.build(sphere_intervals)
        back = tree_from_arrays(tree_to_arrays(tree))
        back.validate(sphere_intervals)
        for lam in (0.2, 0.6, 1.0, 1.5):
            assert np.array_equal(back.query_ids(lam), tree.query_ids(lam))

    def test_roundtrip_preserves_structure(self, sphere_intervals):
        tree = CompactIntervalTree.build(sphere_intervals)
        back = tree_from_arrays(tree_to_arrays(tree))
        assert back.n_nodes == tree.n_nodes
        assert back.n_bricks == tree.n_bricks
        assert back.height() == tree.height()
        assert back.index_size_bytes() == tree.index_size_bytes()

    def test_empty_tree(self):
        from repro.core.intervals import IntervalSet

        empty = IntervalSet(
            vmin=np.empty(0), vmax=np.empty(0), ids=np.empty(0, np.uint32)
        )
        tree = CompactIntervalTree.build(empty)
        back = tree_from_arrays(tree_to_arrays(tree))
        assert back.n_nodes == 0
        assert back.query_count(1.0) == 0


class TestDatasetDirectory:
    @pytest.fixture()
    def saved(self, tmp_path):
        vol = rm_timestep(150, shape=(33, 33, 29))
        ds = build_persistent_dataset(vol, tmp_path / "ds", metacell_shape=(5, 5, 5))
        return vol, ds, tmp_path / "ds"

    def test_files_written(self, saved):
        _, _, d = saved
        assert (d / BRICKS_FILE).exists()
        assert (d / INDEX_FILE).exists()
        assert (d / META_FILE).exists()

    def test_reload_is_deterministic(self, saved):
        _, original, d = saved
        original.device.close()
        a = load_dataset(d)
        b = load_dataset(d)
        for lam in (60.0, 128.0):
            ra = execute_query(a, lam)
            rb = execute_query(b, lam)
            assert np.array_equal(ra.records.ids, rb.records.ids)
            assert ra.io_stats.blocks_read == rb.io_stats.blocks_read
        a.device.close()
        b.device.close()

    def test_reload_matches_fresh_build(self, saved):
        vol, original, d = saved
        original.device.close()
        loaded = load_dataset(d)
        fresh = build_indexed_dataset(vol, (5, 5, 5))
        for lam in (60.0, 128.0, 200.0):
            got = execute_query(loaded, lam)
            ref = execute_query(fresh, lam)
            assert np.array_equal(np.sort(got.records.ids), np.sort(ref.records.ids))
            assert np.array_equal(
                got.records.values[np.argsort(got.records.ids)],
                ref.records.values[np.argsort(ref.records.ids)],
            )
        assert loaded.report == original.report
        assert loaded.meta == original.meta
        loaded.device.close()

    def test_missing_meta_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset(tmp_path)

    def test_missing_bricks_rejected(self, saved, tmp_path):
        _, original, d = saved
        original.device.close()
        (d / BRICKS_FILE).rename(tmp_path / "elsewhere.bin")
        with pytest.raises(FileNotFoundError):
            load_dataset(d)

    def test_truncated_bricks_rejected(self, saved):
        _, original, d = saved
        original.device.close()
        path = d / BRICKS_FILE
        with open(path, "r+b") as fh:
            fh.truncate(path.stat().st_size // 2)
        with pytest.raises(IOError):
            load_dataset(d)

    def test_bad_format_version_rejected(self, saved):
        _, original, d = saved
        original.device.close()
        blob = json.loads((d / META_FILE).read_text())
        blob["format_version"] = 999
        (d / META_FILE).write_text(json.dumps(blob))
        with pytest.raises(ValueError, match="format"):
            load_dataset(d)

    def test_save_dataset_with_memory_device(self, tmp_path, sphere_volume):
        """save_dataset on an in-memory dataset persists index+meta only."""
        ds = build_indexed_dataset(sphere_volume, (5, 5, 5))
        out = save_dataset(ds, tmp_path / "mem")
        assert (out / INDEX_FILE).exists()
        assert not (out / BRICKS_FILE).exists()


class TestCumCrcCompat:
    """v1->v2 index compatibility: ``cum_crcs`` is a fast-path
    accelerator only — a store whose index lacks it (or carries a
    truncated table) must load fine and fall back to per-record CRC
    verification, never crash."""

    @pytest.fixture()
    def saved(self, tmp_path, sphere_volume):
        d = tmp_path / "ds"
        ds = build_persistent_dataset(
            sphere_volume, d, metacell_shape=(5, 5, 5)
        )
        ds.device.close()
        return d

    @staticmethod
    def _rewrite_index(directory, mutate):
        with np.load(directory / INDEX_FILE) as npz:
            arrays = {k: npz[k] for k in npz.files}
        mutate(arrays)
        np.savez_compressed(directory / INDEX_FILE, **arrays)

    def _assert_degrades_gracefully(self, directory):
        from repro.core.query import QueryOptions, execute_query
        from repro.core.validation import verify_dataset

        ds = load_dataset(directory)
        try:
            assert ds.checksums is not None
            assert ds.checksums.cum_crcs is None  # fast path dropped
            # Per-record verification still works end to end.
            qr = execute_query(ds, 0.62, QueryOptions(verify_checksums=True))
            assert qr.n_records_read > 0
            assert verify_dataset(ds, deep=True).ok
        finally:
            ds.device.close()

    def test_cum_crcs_absent(self, saved):
        self._rewrite_index(saved, lambda a: a.pop("cum_crcs"))
        self._assert_degrades_gracefully(saved)

    def test_cum_crcs_truncated(self, saved):
        self._rewrite_index(
            saved, lambda a: a.__setitem__("cum_crcs", a["cum_crcs"][:3])
        )
        self._assert_degrades_gracefully(saved)

    def test_cum_crcs_empty(self, saved):
        self._rewrite_index(
            saved, lambda a: a.__setitem__("cum_crcs", a["cum_crcs"][:0])
        )
        self._assert_degrades_gracefully(saved)

    def test_intact_cum_crcs_still_used(self, saved):
        ds = load_dataset(saved)
        try:
            assert ds.checksums is not None
            assert ds.checksums.cum_crcs is not None
        finally:
            ds.device.close()
