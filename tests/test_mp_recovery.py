"""mp-worker crash recovery + shared-memory lifecycle tests.

Supervisor side: a worker killed mid-job (``os._exit``, no unwinding)
is detected by the parent, respawned up to ``max_respawns`` times, then
the job is finished inline — results are identical to a run with no
deaths.  Pipeline side: no ``repro_pl_*`` shared-memory segment ever
survives a ``pipelined_marching_cubes`` call — success, worker
exception, or worker death — and segments orphaned by a SIGKILLed
parent are reclaimed by :func:`purge_orphan_segments`.
"""

import dataclasses
import glob
import os

import numpy as np
import pytest

import repro.mc.backends as backends_mod
import repro.parallel.mp_backend as mp_backend
import repro.parallel.pipeline as pipeline_mod
from repro.core.builder import build_striped_datasets
from repro.grid.datasets import sphere_field
from repro.mc.marching_cubes import DEFAULT_BATCH_CHUNK, marching_cubes_batch
from repro.parallel.mp_backend import (
    SupervisorOptions,
    SupervisorStats,
    extract_parallel_mp,
    node_task,
)
from repro.parallel.pipeline import (
    SHM_PREFIX,
    PipelineOptions,
    pipelined_marching_cubes,
    purge_orphan_segments,
)

ISO = 0.62


def live_segments():
    return glob.glob(f"/dev/shm/{SHM_PREFIX}_*")


@pytest.fixture(scope="module")
def nodes():
    return build_striped_datasets(
        sphere_field((33, 33, 33)), p=3, metacell_shape=(5, 5, 5)
    )


@pytest.fixture(scope="module")
def serial_outputs(nodes):
    return [node_task((ds, ISO, None)) for ds in nodes]


def patch_node_task(monkeypatch, behave):
    """Replace ``node_task`` in the worker path (fork-inherited)."""
    orig = node_task

    def wrapper(args):
        behave(args)
        return orig(args)

    monkeypatch.setattr(mp_backend, "node_task", wrapper)


def in_worker():
    import multiprocessing

    return multiprocessing.current_process().daemon


class TestSupervisorRecovery:
    def test_death_respawned_and_identical(
        self, nodes, serial_outputs, monkeypatch, tmp_path
    ):
        """Rank-1's worker dies once; the respawn completes the job."""
        flag = tmp_path / "died_once"

        def die_once(args):
            if in_worker() and args[0].node_rank == 1 and not flag.exists():
                flag.write_text("x")
                os._exit(137)

        patch_node_task(monkeypatch, die_once)
        stats = SupervisorStats()
        outs = extract_parallel_mp(
            nodes, ISO, processes=3,
            supervisor=SupervisorOptions(max_respawns=2, poll_interval=0.02),
            supervisor_stats=stats,
        )
        assert stats.dead_workers == [1]
        assert stats.respawns == 1
        assert stats.inline_recoveries == 0
        for got, ref in zip(outs, serial_outputs):
            assert got.n_triangles == ref.n_triangles
            assert np.array_equal(got.vertices, ref.vertices)
            assert np.array_equal(got.faces, ref.faces)

    def test_respawn_budget_exhausted_runs_inline(
        self, nodes, serial_outputs, monkeypatch
    ):
        """A worker that always dies exhausts the budget; the parent
        finishes the job itself — nothing is lost."""

        def always_die(args):
            if in_worker() and args[0].node_rank == 1:
                os._exit(137)

        patch_node_task(monkeypatch, always_die)
        stats = SupervisorStats()
        outs = extract_parallel_mp(
            nodes, ISO, processes=3,
            supervisor=SupervisorOptions(max_respawns=1, poll_interval=0.02),
            supervisor_stats=stats,
        )
        assert stats.dead_workers == [1, 1]
        assert stats.respawns == 1
        assert stats.inline_recoveries == 1
        for got, ref in zip(outs, serial_outputs):
            assert np.array_equal(got.vertices, ref.vertices)
            assert np.array_equal(got.faces, ref.faces)

    def test_worker_exception_propagates(self, nodes, monkeypatch):
        def explode(args):
            if in_worker() and args[0].node_rank == 2:
                raise ValueError("deliberate worker failure")

        patch_node_task(monkeypatch, explode)
        with pytest.raises(ValueError, match="deliberate"):
            extract_parallel_mp(
                nodes, ISO, processes=3,
                supervisor=SupervisorOptions(poll_interval=0.02),
            )

    def test_no_deaths_no_respawns(self, nodes, serial_outputs):
        stats = SupervisorStats()
        outs = extract_parallel_mp(
            nodes, ISO, processes=3, supervisor_stats=stats
        )
        assert stats.dead_workers == []
        assert stats.respawns == 0
        assert stats.inline_recoveries == 0
        for got, ref in zip(outs, serial_outputs):
            assert np.array_equal(got.vertices, ref.vertices)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_respawns": -1},
            {"poll_interval": 0.0},
            {"heartbeat_timeout": 0.0},
        ],
    )
    def test_options_validation(self, kwargs):
        with pytest.raises(ValueError):
            SupervisorOptions(**kwargs)


class TestPipelineShmLifecycle:
    @pytest.fixture(scope="class")
    def batch(self):
        rng = np.random.default_rng(3)
        n = DEFAULT_BATCH_CHUNK * 6
        values = rng.random((n, 5, 5, 5))
        origins = np.zeros((n, 3))
        origins[:, 0] = np.arange(n) * 4
        ref = marching_cubes_batch(values, 0.5, origins)
        return values, origins, ref

    def test_success_leaves_no_segments(self, batch):
        values, origins, ref = batch
        mesh = pipelined_marching_cubes(
            values, 0.5, origins,
            options=PipelineOptions(workers=2, batch_chunks=2),
        )
        assert np.array_equal(mesh.vertices, ref.vertices)
        assert np.array_equal(mesh.faces, ref.faces)
        assert live_segments() == []

    def test_failed_run_leaves_no_segments(self, batch, monkeypatch):
        """The satellite invariant: a run whose worker raises leaves
        zero ``repro_pl_*`` segments in /dev/shm."""
        values, origins, _ = batch
        bk = backends_mod.get_backend("mc-batch")
        orig = bk.extract_chunks

        def raising(values, lam, origins, chunk, with_normals):
            if in_worker():
                raise RuntimeError("worker boom")
            return orig(values, lam, origins, chunk, with_normals)

        monkeypatch.setitem(
            backends_mod._REGISTRY, "mc-batch",
            dataclasses.replace(bk, extract_chunks=raising),
        )
        with pytest.raises(RuntimeError, match="worker boom"):
            pipelined_marching_cubes(
                values, 0.5, origins,
                options=PipelineOptions(workers=2, batch_chunks=2),
            )
        assert live_segments() == []

    def test_dead_worker_recovered_inline_no_segments(self, batch, monkeypatch):
        """A worker killed outright (no unwinding): the parent re-runs
        the timed-out job from its staged copy, bit-identically."""
        values, origins, ref = batch
        bk = backends_mod.get_backend("mc-batch")
        orig = bk.extract_chunks

        def dying(values, lam, origins, chunk, with_normals):
            if in_worker():
                os._exit(137)
            return orig(values, lam, origins, chunk, with_normals)

        monkeypatch.setitem(
            backends_mod._REGISTRY, "mc-batch",
            dataclasses.replace(bk, extract_chunks=dying),
        )
        mesh = pipelined_marching_cubes(
            values, 0.5, origins,
            options=PipelineOptions(workers=2, batch_chunks=2, job_timeout=3.0),
        )
        assert np.array_equal(mesh.vertices, ref.vertices)
        assert np.array_equal(mesh.faces, ref.faces)
        assert live_segments() == []

    def test_purge_reclaims_dead_owner_segments(self):
        from multiprocessing import resource_tracker, shared_memory

        name = f"{SHM_PREFIX}_999999_0"  # pid 999999 does not exist
        seg = shared_memory.SharedMemory(create=True, size=64, name=name)
        seg.close()
        try:
            resource_tracker.unregister(seg._name, "shared_memory")
        except Exception:
            pass
        assert os.path.exists(f"/dev/shm/{name}")
        removed = purge_orphan_segments()
        assert name in removed
        assert not os.path.exists(f"/dev/shm/{name}")

    def test_purge_spares_live_owner_segments(self):
        from multiprocessing import shared_memory

        name = f"{SHM_PREFIX}_{os.getpid()}_424242"
        seg = shared_memory.SharedMemory(create=True, size=64, name=name)
        try:
            assert name not in purge_orphan_segments()
            assert os.path.exists(f"/dev/shm/{name}")
        finally:
            seg.close()
            seg.unlink()

    def test_job_timeout_validation(self):
        with pytest.raises(ValueError):
            PipelineOptions(job_timeout=0.0)
        with pytest.raises(ValueError):
            PipelineOptions(job_timeout=-1.0)
