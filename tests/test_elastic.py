"""Elastic membership: state machine, live migration, failover,
autoscaling, and the ownership-aware fsck.

The contract under test (see docs/robustness.md, "Elasticity"):

* membership transitions follow the validated joining → syncing →
  active → draining → gone graph; illegal edges raise;
* a live stripe migration is CRC-verified end to end, bumps the
  ownership epoch, and leaves query results bit-identical;
* killing a node promotes its replicas at the next membership
  notification, re-establishes the replication factor, and no query
  loses coverage;
* the per-λ load-balance invariant holds after every rebalance;
* admission feasibility tracks live capacity (estimates re-key on the
  ownership epoch);
* fsck distinguishes stale copies (migration residue — expected) from
  corruption of live copies (an issue).
"""

import numpy as np
import pytest

from repro.grid.datasets import sphere_field
from repro.io.faults import DeviceFailedError, FaultInjectingDevice, FaultPlan
from repro.parallel.cluster import ExtractRequest, SimulatedCluster
from repro.elastic import (
    Autoscaler,
    AutoscalerConfig,
    ElasticCluster,
    ElasticController,
    ElasticSignals,
    MemberState,
    Membership,
    Rebalancer,
    ScaleEvent,
    check_balance,
    fsck_cluster,
    scrub_cluster,
)

ISO = 0.5
NODES = 4
STRIPES = 12
ISOVALUES = (0.3, 0.5, 0.7)


@pytest.fixture(scope="module")
def volume():
    return sphere_field((24, 24, 24))


@pytest.fixture(scope="module")
def reference(volume):
    """Ground-truth triangle counts from a static cluster."""
    static = SimulatedCluster(
        volume, NODES, metacell_shape=(5, 5, 5), replication=1
    )
    return {lam: int(static.extract(lam).n_triangles) for lam in ISOVALUES}


def make_cluster(volume, nodes=NODES, stripes=STRIPES):
    return ElasticCluster(
        volume, nodes=nodes, n_stripes=stripes, metacell_shape=(5, 5, 5)
    )


class TestMembership:
    def _membership(self, n=2):
        m = Membership()
        for _ in range(n):
            m.add(device=None, state=MemberState.ACTIVE)
        return m

    def test_full_lifecycle(self):
        m = self._membership(0)
        nid = m.add(device=None, state=MemberState.JOINING).node_id
        for dst in (MemberState.SYNCING, MemberState.ACTIVE,
                    MemberState.DRAINING, MemberState.GONE):
            m.transition(nid, dst, now=1.0)
            assert m.state(nid) is dst
        # One log row per transition, in order.
        assert [c.dst for c in m.log] == [
            MemberState.JOINING, MemberState.SYNCING, MemberState.ACTIVE,
            MemberState.DRAINING, MemberState.GONE,
        ]

    @pytest.mark.parametrize("src,dst", [
        (MemberState.JOINING, MemberState.ACTIVE),     # must sync first
        (MemberState.JOINING, MemberState.DRAINING),
        (MemberState.ACTIVE, MemberState.JOINING),
        (MemberState.ACTIVE, MemberState.SYNCING),
        (MemberState.DRAINING, MemberState.ACTIVE),    # no un-drain
        (MemberState.GONE, MemberState.ACTIVE),        # terminal
        (MemberState.GONE, MemberState.JOINING),
    ])
    def test_illegal_transition_raises(self, src, dst):
        m = Membership()
        nid = m.add(device=None, state=src).node_id
        with pytest.raises(ValueError, match="illegal membership"):
            m.transition(nid, dst, now=0.0)

    def test_same_state_is_noop(self):
        m = self._membership(1)
        before = len(m.log)
        m.transition(0, MemberState.ACTIVE, now=0.0)
        assert len(m.log) == before

    def test_node_ids_never_reused(self):
        m = self._membership(2)
        m.transition(1, MemberState.GONE, now=0.0)
        nid = m.add(device=None, state=MemberState.JOINING).node_id
        assert nid == 2  # not 1: gone ids stay retired forever

    def test_id_queries(self):
        m = self._membership(2)
        m.transition(1, MemberState.DRAINING, now=0.0)
        assert m.target_ids() == [0]
        assert m.serving_ids() == [0, 1]  # draining still serves reads
        assert m.counts() == {"active": 1, "draining": 1}


class TestMigration:
    def test_migrate_bumps_epoch_and_keeps_results_bit_identical(
        self, volume, reference
    ):
        cluster = make_cluster(volume)
        before = {lam: cluster.extract(lam) for lam in ISOVALUES}
        epoch0 = cluster.ownership.epoch

        # Move stripe 0 to a freshly joined node.
        nid = cluster.join(now=1.0)
        cluster.migrate_primary(0, nid, now=2.0, reason="test")
        assert cluster.ownership.owner(0) == nid
        assert cluster.ownership.epoch > epoch0
        assert cluster.migrations and cluster.migration_bytes > 0

        for lam in ISOVALUES:
            res = cluster.extract(lam)
            assert res.coverage == 1.0
            assert int(res.n_triangles) == reference[lam]
            assert int(res.n_triangles) == int(before[lam].n_triangles)

    def test_old_primary_recorded_as_stale(self, volume):
        cluster = make_cluster(volume)
        src = cluster.ownership.owner(0)
        nid = cluster.join(now=1.0)
        cluster.migrate_primary(0, nid, now=2.0, reason="test")
        stale = cluster.membership.members[src].stale
        assert any(c.stripe == 0 for c in stale)

    def test_join_syncs_then_activates_via_rebalance(self, volume):
        cluster = make_cluster(volume)
        controller = ElasticController(
            cluster, rebalancer=Rebalancer(cluster, max_io_fraction=float("inf")),
            balance_isovalues=ISOVALUES,
        )
        nid = cluster.join(now=1.0)
        assert cluster.membership.state(nid) is MemberState.JOINING
        controller.on_tick(2.0)
        assert cluster.membership.state(nid) is MemberState.ACTIVE
        assert cluster.ownership.counts()[nid] >= 1

    def test_drain_empties_node_and_goes_gone(self, volume, reference):
        cluster = make_cluster(volume)
        controller = ElasticController(
            cluster, rebalancer=Rebalancer(cluster, max_io_fraction=float("inf")),
            balance_isovalues=ISOVALUES,
        )
        cluster.drain(3, now=1.0)
        controller.on_tick(2.0)
        assert cluster.membership.state(3) is MemberState.GONE
        assert 3 not in cluster.ownership.counts()
        # The drained node keeps its old bytes as stale copies.
        assert cluster.membership.members[3].stale
        res = cluster.extract(ISO)
        assert res.coverage == 1.0
        assert int(res.n_triangles) == reference[ISO]

    def test_epoch_fenced_views_capture_once(self, volume):
        cluster = make_cluster(volume)
        res0 = cluster.extract(ISO)
        nid = cluster.join(now=1.0)
        cluster.migrate_primary(0, nid, now=2.0, reason="test")
        res1 = cluster.extract(ISO)
        assert res1.epoch > res0.epoch
        # Groups reflect the new ownership: the joined node now owns
        # stripe 0 and appears as its own group.
        assert [0] in res1.node_groups


class TestFailover:
    def test_kill_promotes_replicas_and_keeps_coverage(
        self, volume, reference
    ):
        cluster = make_cluster(volume)
        owned = [s for s in range(STRIPES) if cluster.ownership.owner(s) == 2]
        cluster.fail_node(2, now=1.0)
        assert cluster.membership.state(2) is MemberState.GONE
        # Every stripe the dead node owned has a new live owner.
        for s in owned:
            assert cluster.ownership.owner(s) != 2
        assert not cluster.lost_stripes
        res = cluster.extract(ISO)
        assert res.coverage == 1.0
        assert not res.failed_nodes
        assert int(res.n_triangles) == reference[ISO]

    def test_replication_reestablished_after_failover(self, volume):
        cluster = make_cluster(volume)
        cluster.fail_node(2, now=1.0)
        for s in range(STRIPES):
            loc = cluster.replica_locations()[s]
            assert loc is not None, f"stripe {s} left unreplicated"
            host = loc[0]
            assert host != 2
            assert host != cluster.ownership.owner(s)

    def test_second_failure_still_serves(self, volume, reference):
        cluster = make_cluster(volume)
        cluster.fail_node(2, now=1.0)
        cluster.fail_node(0, now=2.0)
        res = cluster.extract(ISO)
        assert res.coverage == 1.0
        assert int(res.n_triangles) == reference[ISO]

    def test_promotion_races_hedged_read_bit_identical(
        self, volume, reference
    ):
        """A hedged extraction concurrent with a kill: the failover
        hedge policy falls back to the replica mid-read, and the
        payload is bit-identical to the healthy run."""
        cluster = make_cluster(volume)
        healthy = cluster.extract(
            ISO, ExtractRequest(hedge=True, keep_meshes=True)
        )
        # Spiky primaries so hedging engages, then a mid-trace kill.
        for nid in range(NODES):
            cluster.inject_faults(nid, FaultPlan(
                seed=nid + 1, latency_spike_rate=0.25,
                latency_spike_seconds=0.5,
            ))
        cluster.fail_node(1, now=1.0)
        res = cluster.extract(ISO, ExtractRequest(hedge=True, keep_meshes=True))
        assert res.coverage == 1.0
        assert int(res.n_triangles) == reference[ISO]
        def tri_soup(result):
            parts = [
                m.vertices[m.faces].reshape(-1, 9)
                for m in result.meshes if len(m.faces)
            ]
            soup = np.concatenate(parts)
            return soup[np.lexsort(soup.T[::-1])]

        assert np.array_equal(tri_soup(healthy), tri_soup(res))


class TestRebalanceInvariant:
    @pytest.mark.parametrize("target", [8, 3, 6])
    def test_balance_holds_after_scaling(self, volume, reference, target):
        cluster = make_cluster(volume)
        controller = ElasticController(
            cluster, rebalancer=Rebalancer(cluster, max_io_fraction=float("inf")),
            balance_isovalues=ISOVALUES,
        )
        controller.scale_to(1.0, target)
        controller.finish(2.0)
        assert len(cluster.membership.target_ids()) == target
        report = check_balance(cluster, ISOVALUES)
        assert report.ok, report
        assert report.assignment_spread <= 1
        res = cluster.extract(ISO)
        assert int(res.n_triangles) == reference[ISO]

    def test_pacing_bounds_migration_io(self, volume):
        """With a tiny I/O fraction and no serving traffic, the paced
        rebalancer cannot move anything; serving I/O unlocks it."""
        cluster = make_cluster(volume)
        reb = Rebalancer(cluster, max_io_fraction=0.01)
        cluster.join(now=1.0)
        assert reb.plan()
        reb.step(2.0)
        assert not cluster.migrations  # no serving I/O -> no budget
        for _ in range(60):
            cluster.extract(ISO)
        reb.step(3.0)
        assert cluster.migrations  # budget accrued from serving reads

    def test_rebalance_event_records_cost(self, volume):
        cluster = make_cluster(volume)
        controller = ElasticController(
            cluster, rebalancer=Rebalancer(cluster, max_io_fraction=float("inf")),
            balance_isovalues=ISOVALUES,
        )
        controller.scale_to(1.0, 6)
        controller.finish(2.0)
        assert controller.rebalance_events
        ev = controller.rebalance_events[-1]
        assert ev.n_moves > 0 and ev.moved_bytes > 0
        assert ev.balance.ok
        assert ev.serving_nodes == 6


class TestAutoscaler:
    CFG = AutoscalerConfig(min_nodes=2, max_nodes=8, queue_high=10,
                           queue_low=2, ratio_high=1.0, ratio_low=0.5,
                           util_low=0.3, cooldown=5.0)

    def test_scales_up_on_queue_pressure(self):
        a = Autoscaler(config=self.CFG)
        d = a.decide(0.0, ElasticSignals(queue_depth=10), 4)
        assert d is not None and d.direction == +1 and d.target_nodes == 5

    def test_scales_up_on_tail_latency(self):
        a = Autoscaler(config=self.CFG)
        d = a.decide(0.0, ElasticSignals(p99_budget_ratio=1.2), 4)
        assert d is not None and d.direction == +1

    def test_scales_down_only_when_everything_calm(self):
        a = Autoscaler(config=self.CFG)
        calm = ElasticSignals(queue_depth=0, p99_budget_ratio=0.1,
                              utilization=0.1)
        d = a.decide(0.0, calm, 4)
        assert d is not None and d.direction == -1 and d.target_nodes == 3
        # Same signals but an open breaker: hold.
        a2 = Autoscaler(config=self.CFG)
        held = a2.decide(0.0, ElasticSignals(
            queue_depth=0, p99_budget_ratio=0.1, utilization=0.1,
            open_breakers=1,
        ), 4)
        assert held is None

    def test_mixed_signals_hold(self):
        a = Autoscaler(config=self.CFG)
        # Queue calm but utilization high: neither up nor down.
        d = a.decide(0.0, ElasticSignals(queue_depth=0, utilization=0.9), 4)
        assert d is None

    def test_cooldown_suppresses_flapping(self):
        a = Autoscaler(config=self.CFG)
        assert a.decide(0.0, ElasticSignals(queue_depth=10), 4) is not None
        assert a.decide(1.0, ElasticSignals(queue_depth=10), 5) is None
        assert a.decide(6.0, ElasticSignals(queue_depth=10), 5) is not None

    def test_respects_bounds(self):
        a = Autoscaler(config=self.CFG)
        assert a.decide(0.0, ElasticSignals(queue_depth=99), 8) is None
        calm = ElasticSignals()
        assert a.decide(10.0, calm, 2) is None


class TestLiveEstimates:
    def test_estimate_tracks_ownership(self, volume):
        """Satellite 1: estimate_extract_time follows the live map —
        more nodes, shorter critical path."""
        cluster = make_cluster(volume)
        controller = ElasticController(
            cluster, rebalancer=Rebalancer(cluster, max_io_fraction=float("inf")),
        )
        est4 = cluster.estimate_extract_time(ISO)
        controller.scale_to(1.0, 8)
        controller.finish(2.0)
        est8 = cluster.estimate_extract_time(ISO)
        assert est8 < est4

    def test_server_estimate_cache_keys_on_epoch(self, volume):
        from repro.serve import QueryServer, ServeConfig, TenantSpec

        cluster = make_cluster(volume)
        tenants = (TenantSpec("t", tier="gold", arrival_share=1.0,
                              rate=10.0, burst=8, deadline_budget=1.0),)
        server = QueryServer(cluster, ServeConfig(tenants=tenants))
        e0 = server._estimate(ISO)
        nid = cluster.join(now=1.0)
        cluster.migrate_primary(0, nid, now=2.0, reason="test")
        e1 = server._estimate(ISO)
        assert len(server._est_cache) == 2  # re-keyed, not overwritten
        assert {k[0] for k in server._est_cache} == {ISO}
        assert e1 != e0 or cluster.ownership_epoch > 0


class TestElasticFsck:
    def test_clean_cluster_is_clean(self, volume):
        report = fsck_cluster(make_cluster(volume))
        assert report.clean
        assert report.verified_primaries == STRIPES
        assert report.verified_replicas == STRIPES
        assert not report.stale

    def test_stale_copies_reported_not_corrupt(self, volume):
        cluster = make_cluster(volume)
        controller = ElasticController(
            cluster, rebalancer=Rebalancer(cluster, max_io_fraction=float("inf")),
        )
        cluster.drain(3, now=1.0)
        controller.on_tick(2.0)
        report = fsck_cluster(cluster)
        assert report.clean, report.summary()
        assert report.stale
        assert {c.status for c in report.stale} == {"intact"}
        assert any(c.node_id == 3 for c in report.stale)

    def test_stale_on_dead_node_is_unreachable(self, volume):
        cluster = make_cluster(volume)
        nid = cluster.join(now=1.0)
        cluster.migrate_primary(0, nid, now=2.0, reason="test")
        src = cluster.migrations[0].src_node
        cluster.fail_node(src, now=3.0)
        report = fsck_cluster(cluster)
        assert report.clean, report.summary()
        statuses = {c.status for c in report.stale if c.node_id == src}
        assert statuses == {"unreachable"}

    def test_corrupt_live_primary_is_an_issue(self, volume):
        cluster = make_cluster(volume)
        owner, offset = cluster.primary_location(0)
        dev = cluster._member_device(owner)
        raw = bytearray(dev.read(offset, 64))
        raw[0] ^= 0xFF
        dev.write(offset, bytes(raw))
        report = fsck_cluster(cluster)
        assert not report.clean
        assert any(
            i.kind == "corrupt-primary" and i.stripe == 0
            for i in report.issues
        )

    def test_scrub_follows_migrations(self, volume):
        cluster = make_cluster(volume)
        nid = cluster.join(now=1.0)
        cluster.migrate_primary(0, nid, now=2.0, reason="test")
        reports = scrub_cluster(cluster)
        assert set(reports) == set(range(STRIPES))


class TestElasticServing:
    def test_scripted_scale_under_traffic_zero_failed(self, volume, reference):
        from repro.serve import (
            BrownoutConfig, QueryServer, ServeConfig, TenantSpec,
            TrafficConfig, generate_trace,
        )

        cluster = make_cluster(volume)
        unit = max(cluster.estimate_extract_time(l) for l in ISOVALUES)
        duration = 30.0 * unit
        tenants = (
            TenantSpec("t", tier="gold", arrival_share=1.0,
                       rate=2.0 / unit, burst=8,
                       deadline_budget=8.0 * unit),
        )
        trace = generate_trace(
            TrafficConfig(duration=duration, base_rate=2.0 / unit,
                          isovalues=ISOVALUES, seed=3),
            tenants,
        )
        controller = ElasticController(
            cluster,
            rebalancer=Rebalancer(cluster, max_io_fraction=0.5),
            plan=(ScaleEvent(time=duration / 3, nodes=6),
                  ScaleEvent(time=2 * duration / 3, nodes=3)),
            balance_isovalues=ISOVALUES,
        )
        server = QueryServer(
            cluster,
            ServeConfig(tenants=tenants, quantum=unit / 5,
                        brownout=BrownoutConfig(eval_interval=unit)),
            controller=controller,
        )
        report = server.serve(trace)
        controller.finish(trace.horizon)
        assert not report.by_state("failed")
        for r in report.by_state("ok"):
            assert r.triangles == reference[r.lam]
        for ev in controller.rebalance_events:
            assert ev.balance.ok
        assert check_balance(cluster, ISOVALUES).ok


class TestConstruction:
    def test_rejects_collocated_replica_layout(self, volume):
        with pytest.raises(ValueError, match="replica"):
            ElasticCluster(volume, nodes=4, n_stripes=13,
                           metacell_shape=(5, 5, 5))

    def test_rejects_fewer_stripes_than_nodes(self, volume):
        with pytest.raises(ValueError):
            ElasticCluster(volume, nodes=4, n_stripes=2,
                           metacell_shape=(5, 5, 5))

    def test_cache_unsupported(self, volume):
        with pytest.raises(NotImplementedError):
            make_cluster(volume).enable_cache(0, 8)
