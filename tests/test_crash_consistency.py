"""Crash-consistency tests for the journaled builder.

Representative tier-1 subset of ``tools/crash_kill_harness.py``: every
kill point of one small build is exercised in-process, plus a
crash-during-resume, a genuine forked ``SIGKILL``-style death, and
torn-write recovery.  The invariant throughout: a build killed anywhere
and resumed produces artifacts **byte-identical** to an uninterrupted
build, with the journal gone and a deep verify clean.
"""

import hashlib
import os

import numpy as np
import pytest

from repro.core.journal import JOURNAL_FILE, BuildJournal
from repro.core.persistence import (
    BRICKS_FILE,
    BRICKS_PARTIAL_FILE,
    INDEX_FILE,
    META_FILE,
    build_persistent_dataset,
)
from repro.core.validation import verify_dataset
from repro.grid.volume import Volume
from repro.io.faults import (
    CrashSchedule,
    FaultInjectingDevice,
    FaultPlan,
    SimulatedCrash,
)

ARTIFACTS = (BRICKS_FILE, INDEX_FILE, META_FILE)
MC = (4, 4, 4)
GROUP_RECORDS = 16


def small_volume(seed=5):
    shape = (17, 17, 17)
    zz, yy, xx = np.meshgrid(
        *(np.linspace(-1.0, 1.0, s) for s in shape), indexing="ij"
    )
    rng = np.random.default_rng(seed)
    data = (
        np.sqrt(xx**2 + yy**2 + zz**2) + 0.05 * rng.standard_normal(shape)
    ).astype(np.float32)
    return Volume(data)


def hashes(directory):
    return {
        name: hashlib.sha256((directory / name).read_bytes()).hexdigest()
        for name in ARTIFACTS
    }


def clear(directory):
    for entry in directory.iterdir():
        entry.unlink()


@pytest.fixture(scope="module")
def volume():
    return small_volume()


@pytest.fixture(scope="module")
def reference(volume, tmp_path_factory):
    """Uninterrupted build + its artifact hashes + kill-point count."""
    ref_dir = tmp_path_factory.mktemp("crash_ref")
    probe = CrashSchedule(kill_at=None)
    build_persistent_dataset(
        volume, ref_dir, MC, group_records=GROUP_RECORDS, crash=probe
    )
    return {"hashes": hashes(ref_dir), "n_points": probe.points_seen,
            "trace": list(probe.trace)}


class TestKillPointSpace:
    def test_discovery_counts_points(self, reference):
        assert reference["n_points"] > 10

    def test_commit_protocol_points_present(self, reference):
        trace = reference["trace"]
        for name in ("begin_journaled", "store_closed", "bricks_renamed",
                     "index_renamed", "meta_renamed", "journal_committed"):
            assert name in trace
        # Rename order is the commit protocol: bricks before index
        # before meta before the journal's commit record.
        assert (trace.index("bricks_renamed")
                < trace.index("index_renamed")
                < trace.index("meta_renamed")
                < trace.index("journal_committed"))


class TestEveryKillPoint:
    def test_all_kill_points_resume_byte_identical(
        self, volume, reference, tmp_path
    ):
        trial = tmp_path / "trial"
        trial.mkdir()
        for k in range(reference["n_points"]):
            clear(trial)
            with pytest.raises(SimulatedCrash):
                build_persistent_dataset(
                    volume, trial, MC, group_records=GROUP_RECORDS,
                    crash=CrashSchedule(kill_at=k),
                )
            ds = build_persistent_dataset(
                volume, trial, MC, group_records=GROUP_RECORDS
            )
            assert hashes(trial) == reference["hashes"], f"kill point {k}"
            assert not (trial / JOURNAL_FILE).exists(), f"kill point {k}"
            assert not (trial / BRICKS_PARTIAL_FILE).exists(), f"kill point {k}"
            assert verify_dataset(ds, deep=True).ok, f"kill point {k}"

    def test_crash_during_resume(self, volume, reference, tmp_path):
        out = tmp_path / "ds"
        out.mkdir()
        with pytest.raises(SimulatedCrash):
            build_persistent_dataset(
                volume, out, MC, group_records=GROUP_RECORDS,
                crash=CrashSchedule(kill_at=3),
            )
        with pytest.raises(SimulatedCrash):
            build_persistent_dataset(
                volume, out, MC, group_records=GROUP_RECORDS,
                crash=CrashSchedule(kill_at=4),
            )
        build_persistent_dataset(volume, out, MC, group_records=GROUP_RECORDS)
        assert hashes(out) == reference["hashes"]

    @pytest.mark.skipif(not hasattr(os, "fork"), reason="fork-only")
    def test_hard_process_kill(self, volume, reference, tmp_path):
        """A real ``os._exit(137)`` death — no unwinding, no finally."""
        out = tmp_path / "ds"
        out.mkdir()
        kill_at = reference["n_points"] // 2
        pid = os.fork()
        if pid == 0:
            try:
                build_persistent_dataset(
                    volume, out, MC, group_records=GROUP_RECORDS,
                    crash=CrashSchedule(kill_at=kill_at, hard=True),
                )
            finally:
                os._exit(0)
        _, status = os.waitpid(pid, 0)
        assert os.waitstatus_to_exitcode(status) == 137
        build_persistent_dataset(volume, out, MC, group_records=GROUP_RECORDS)
        assert hashes(out) == reference["hashes"]


class TestJournalState:
    def test_journal_present_after_crash(self, volume, tmp_path):
        out = tmp_path / "ds"
        out.mkdir()
        with pytest.raises(SimulatedCrash):
            build_persistent_dataset(
                volume, out, MC, group_records=GROUP_RECORDS,
                crash=CrashSchedule(kill_at=5),
            )
        state = BuildJournal.read_state(out)
        assert state is not None
        assert not state.committed
        assert state.records_done >= 0

    def test_committed_build_loads_without_rewrite(self, volume, tmp_path):
        out = tmp_path / "ds"
        out.mkdir()
        build_persistent_dataset(volume, out, MC, group_records=GROUP_RECORDS)
        before = (out / BRICKS_FILE).stat().st_mtime_ns
        ds = build_persistent_dataset(
            volume, out, MC, group_records=GROUP_RECORDS
        )
        assert (out / BRICKS_FILE).stat().st_mtime_ns == before
        assert verify_dataset(ds, deep=False).ok

    def test_changed_volume_triggers_rebuild(self, volume, tmp_path):
        out = tmp_path / "ds"
        out.mkdir()
        with pytest.raises(SimulatedCrash):
            build_persistent_dataset(
                volume, out, MC, group_records=GROUP_RECORDS,
                crash=CrashSchedule(kill_at=2),
            )
        other = small_volume(seed=99)
        ds = build_persistent_dataset(
            other, out, MC, group_records=GROUP_RECORDS
        )
        assert verify_dataset(ds, deep=True).ok
        # And it really is the other volume's build: a clean build of
        # ``other`` elsewhere matches byte-for-byte.
        ref2 = tmp_path / "ref2"
        ref2.mkdir()
        build_persistent_dataset(other, ref2, MC, group_records=GROUP_RECORDS)
        assert hashes(out) == hashes(ref2)


class TestTornWrites:
    def test_torn_writes_detected_and_rewritten(
        self, volume, reference, tmp_path
    ):
        """A device that tears writes still yields byte-identical
        artifacts: write-verify reads every group back and rewrites."""
        out = tmp_path / "ds"
        out.mkdir()
        ds = build_persistent_dataset(
            volume, out, MC, group_records=GROUP_RECORDS,
            wrap_device=lambda raw: FaultInjectingDevice(
                raw, FaultPlan(torn_write_rate=0.3, seed=21)
            ),
        )
        assert hashes(out) == reference["hashes"]
        assert verify_dataset(ds, deep=True).ok

    def test_torn_write_then_crash_then_resume(self, volume, reference, tmp_path):
        out = tmp_path / "ds"
        out.mkdir()
        with pytest.raises(SimulatedCrash):
            build_persistent_dataset(
                volume, out, MC, group_records=GROUP_RECORDS,
                crash=CrashSchedule(kill_at=7),
                wrap_device=lambda raw: FaultInjectingDevice(
                    raw, FaultPlan(torn_write_rate=0.3, seed=22)
                ),
            )
        build_persistent_dataset(
            volume, out, MC, group_records=GROUP_RECORDS
        )
        assert hashes(out) == reference["hashes"]
