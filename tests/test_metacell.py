"""Unit and property tests for the metacell decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.metacell import (
    metacell_grid_shape,
    pad_for_metacells,
    partition_metacells,
)
from repro.grid.volume import Volume


class TestGridShape:
    def test_exact_fit(self):
        # 2048 vertices with 9-vertex metacells -> 256 metacells (the paper).
        assert metacell_grid_shape((2049, 2049, 1921), (9, 9, 9)) == (256, 256, 240)

    def test_paper_dimensions_are_padded(self):
        # The RM grid is 2048 vertices/axis = 255 full metacells + remainder,
        # so the partition pads up to 256 metacells (matching 256x256x240).
        assert metacell_grid_shape((2048, 2048, 1920), (9, 9, 9)) == (256, 256, 240)

    def test_small_volume_single_metacell(self):
        assert metacell_grid_shape((3, 4, 5), (9, 9, 9)) == (1, 1, 1)

    def test_rejects_bad_metacell(self):
        with pytest.raises(ValueError):
            metacell_grid_shape((8, 8, 8), (1, 9, 9))


class TestPadding:
    def test_no_padding_when_exact(self):
        data = np.zeros((9, 17, 25))
        padded = pad_for_metacells(data, (9, 9, 9))
        assert padded is data

    def test_padding_replicates_edge(self):
        data = np.arange(2 * 2 * 3, dtype=np.float64).reshape(2, 2, 3)
        padded = pad_for_metacells(data, (3, 3, 3))
        assert padded.shape == (3, 3, 3)
        assert np.array_equal(padded[2], padded[1])  # replicated x layer

    def test_padding_never_creates_crossings(self):
        rng = np.random.default_rng(3)
        data = rng.random((6, 7, 5))
        padded = pad_for_metacells(data, (5, 5, 5))
        # Differences across the padded region are zero -> no new isovalue
        # can cross between replicated layers.
        assert np.all(padded[6:] == padded[6][None]) if padded.shape[0] > 6 else True


class TestPartition:
    def test_extrema_match_bruteforce(self):
        rng = np.random.default_rng(4)
        vol = Volume(rng.integers(0, 255, size=(13, 9, 17)).astype(np.uint8))
        part = partition_metacells(vol, (5, 5, 5))
        m = 5
        for mid in range(part.n_metacells):
            i, j, k = part.id_to_ijk(np.array([mid]))[0]
            x0, y0, z0 = i * (m - 1), j * (m - 1), k * (m - 1)
            sub = part._padded[x0 : x0 + m, y0 : y0 + m, z0 : z0 + m]
            assert part.vmin[mid] == sub.min()
            assert part.vmax[mid] == sub.max()

    def test_grid_shape_and_count(self):
        vol = Volume(np.zeros((13, 9, 17), dtype=np.uint8))
        part = partition_metacells(vol, (5, 5, 5))
        assert part.grid_shape == (3, 2, 4)
        assert part.n_metacells == 24

    def test_id_roundtrip(self):
        vol = Volume(np.zeros((13, 9, 17), dtype=np.uint8))
        part = partition_metacells(vol, (5, 5, 5))
        ids = part.ids
        ijk = part.id_to_ijk(ids)
        assert np.array_equal(part.ijk_to_id(ijk), ids)

    def test_vertex_origins(self):
        vol = Volume(np.zeros((13, 9, 17), dtype=np.uint8))
        part = partition_metacells(vol, (5, 5, 5))
        origins = part.vertex_origins(np.array([0, part.n_metacells - 1]))
        assert np.array_equal(origins[0], [0, 0, 0])
        assert np.array_equal(origins[1], [8, 4, 12])

    def test_constant_mask(self):
        data = np.zeros((9, 9, 9), dtype=np.uint8)
        data[:4, :4, :4] = np.random.default_rng(5).integers(1, 100, (4, 4, 4))
        vol = Volume(data)
        part = partition_metacells(vol, (5, 5, 5))
        mask = part.constant_mask()
        assert mask.sum() >= 1  # far corner metacell is all zeros
        assert not mask[0]  # origin metacell has variation

    def test_extract_values_matches_padded_volume(self):
        rng = np.random.default_rng(6)
        vol = Volume(rng.integers(0, 255, size=(9, 9, 9)).astype(np.uint8))
        part = partition_metacells(vol, (5, 5, 5))
        vals = part.extract_values(np.array([3]))
        i, j, k = part.id_to_ijk(np.array([3]))[0]
        sub = part._padded[4 * i : 4 * i + 5, 4 * j : 4 * j + 5, 4 * k : 4 * k + 5]
        assert np.array_equal(vals[0], sub.reshape(-1))

    def test_shared_boundary_layers(self):
        """Adjacent metacells share exactly one vertex layer."""
        rng = np.random.default_rng(7)
        vol = Volume(rng.integers(0, 255, size=(9, 5, 5)).astype(np.uint8))
        part = partition_metacells(vol, (5, 5, 5))
        a = part.extract_values(np.array([part.ijk_to_id(np.array([[0, 0, 0]]))[0]]))
        b = part.extract_values(np.array([part.ijk_to_id(np.array([[1, 0, 0]]))[0]]))
        a_grid = a.reshape(5, 5, 5)
        b_grid = b.reshape(5, 5, 5)
        assert np.array_equal(a_grid[4], b_grid[0])

    @settings(max_examples=20, deadline=None)
    @given(
        nx=st.integers(3, 14),
        ny=st.integers(3, 14),
        nz=st.integers(3, 14),
        m=st.sampled_from([3, 5]),
        seed=st.integers(0, 2**16),
    )
    def test_extrema_property(self, nx, ny, nz, m, seed):
        """Global min/max over metacells equals the volume's min/max."""
        rng = np.random.default_rng(seed)
        vol = Volume(rng.integers(0, 255, size=(nx, ny, nz)).astype(np.uint8))
        part = partition_metacells(vol, (m, m, m))
        assert part.vmin.min() == vol.data.min()
        assert part.vmax.max() == vol.data.max()
        assert np.all(part.vmin <= part.vmax)
