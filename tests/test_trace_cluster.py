"""End-to-end tracing of a cluster extraction (the acceptance contract).

The contract under test (see ISSUE/docs/PERFMODEL.md):

* a traced 4-node extraction produces per-node ``stage.*`` summary
  spans whose totals reconcile with the ``ClusterResult`` metrics —
  I/O seconds, triangulation seconds, composite bytes — within float
  tolerance;
* two same-seed runs (including seeded failures and recovery) produce
  **byte-identical** Chrome trace files;
* the trace is Chrome-loadable JSON with one named thread per modeled
  track (``cluster`` plus one per node);
* ``repro cluster --trace out.json`` wires the same tracer through the
  CLI.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.grid.datasets import sphere_field
from repro.obs import MetricsRegistry, Tracer, dumps_chrome_trace
from repro.parallel.cluster import ExtractRequest, SimulatedCluster

ISO = 0.7
P = 4


@pytest.fixture(scope="module")
def volume():
    return sphere_field((33, 33, 33))


def traced_extract(volume, fail_rank=None):
    cluster = SimulatedCluster(volume, p=P, metacell_shape=(5, 5, 5),
                               replication=2)
    if fail_rank is not None:
        cluster.fail_node(fail_rank)
    tracer = Tracer()
    res = cluster.extract(ISO, ExtractRequest(render=True, tracer=tracer))
    return tracer, res


class TestReconciliation:
    @pytest.fixture(scope="class")
    def traced(self, volume):
        return traced_extract(volume)

    def test_tracks_cover_cluster_and_every_node(self, traced):
        tracer, _ = traced
        assert tracer.tracks() == ["cluster"] + [f"node{k}" for k in range(P)]

    def test_stage_totals_match_node_metrics(self, traced):
        tracer, res = traced
        for node in res.nodes:
            track = f"node{node.node_rank}"
            assert tracer.total("stage.io", track=track) == pytest.approx(
                node.io_time, abs=1e-12)
            assert tracer.total("stage.triangulate", track=track) == \
                pytest.approx(node.triangulation_time, abs=1e-12)
            assert tracer.total("stage.render", track=track) == \
                pytest.approx(node.render_time, abs=1e-12)

    def test_composite_span_matches_result(self, traced):
        tracer, res = traced
        [comp] = tracer.find("composite", track="cluster")
        assert comp.duration == pytest.approx(res.composite_time, abs=1e-12)
        assert comp.args["bytes"] == res.composite_bytes

    def test_cluster_span_covers_total_time(self, traced):
        tracer, res = traced
        [top] = tracer.find("cluster.extract")
        assert top.start == 0.0
        assert top.duration == pytest.approx(res.total_time, abs=1e-12)

    def test_live_read_spans_nest_inside_query_span(self, traced):
        """The live (as-executed) spans obey the nesting invariant:
        every read span lies within its node's query.execute span, and
        their charged durations sum to at most the parent's."""
        tracer, _ = traced
        for rank in range(P):
            track = f"node{rank}"
            queries = tracer.find("query.execute", track=track)
            assert queries, f"no query span on {track}"
            [q] = queries
            reads = [s for s in tracer.spans
                     if s.track == track and s.name.startswith("read.")]
            assert reads, f"no read spans on {track}"
            for s in reads:
                assert s.start >= q.start - 1e-12
                assert s.start + s.duration <= q.start + q.duration + 1e-12
            assert sum(s.duration for s in reads) <= q.duration + 1e-12


class TestDeterminism:
    def test_same_seed_trace_byte_identical(self, volume):
        a, _ = traced_extract(volume)
        b, _ = traced_extract(volume)
        assert dumps_chrome_trace(a) == dumps_chrome_trace(b)

    def test_same_seed_trace_byte_identical_with_failure(self, volume):
        a, ra = traced_extract(volume, fail_rank=1)
        b, rb = traced_extract(volume, fail_rank=1)
        assert not ra.degraded and ra.nodes[1].failed  # recovery exercised
        assert dumps_chrome_trace(a) == dumps_chrome_trace(b)

    def test_recovery_charges_appear_on_serving_track(self, volume):
        tracer, res = traced_extract(volume, fail_rank=1)
        host = res.nodes[1].served_by
        assert host is not None
        assert tracer.total("stage.io", track=f"node{host}") == \
            pytest.approx(res.nodes[host].io_time, abs=1e-12)
        assert tracer.total("stage.io", track="node1") == pytest.approx(
            res.nodes[1].io_time, abs=1e-12)


class TestMetricsPublish:
    def test_cluster_metrics_reconcile_with_result(self, volume):
        cluster = SimulatedCluster(volume, p=P, metacell_shape=(5, 5, 5),
                                   replication=2)
        reg = MetricsRegistry()
        res = cluster.extract(ISO, ExtractRequest(metrics=reg))
        flat = reg.to_dict()
        assert reg.value("cluster.active_metacells") == res.n_active_metacells
        assert reg.value("cluster.triangles") == res.n_triangles
        assert reg.value("cluster.composite_bytes") == res.composite_bytes
        assert reg.value("cluster.coverage") == pytest.approx(res.coverage)
        assert flat["cluster.total_seconds.sum"] == pytest.approx(
            res.total_time)
        assert flat["node.io_seconds.sum"] == pytest.approx(
            sum(n.io_time for n in res.nodes))
        assert reg.value("io.blocks_read") == sum(
            n.io_stats.blocks_read for n in res.nodes)
        # Health monitor published: one state gauge per node, all healthy.
        for rank in range(P):
            assert reg.value(f"health.node.{rank}.state_code") == 0


class TestCLITrace:
    def test_cluster_trace_flag_writes_chrome_json(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        rc = main([
            "cluster", "0.5", "--shape", "25x25x21", "--metacell", "5",
            "-p", str(P), "--replication", "2", "--trace", str(out),
        ])
        assert rc == 0
        doc = json.loads(out.read_text())
        names = {ev["name"] for ev in doc["traceEvents"]}
        assert {"cluster.extract", "composite", "stage.io",
                "query.execute"} <= names
        assert "trace" in capsys.readouterr().out

    def test_cli_trace_deterministic_across_runs(self, tmp_path):
        paths = []
        for tag in ("a", "b"):
            out = tmp_path / f"{tag}.json"
            rc = main([
                "trace", "0.5", "--shape", "25x25x21", "--metacell", "5",
                "-p", str(P), "--replication", "2", "--fail-node", "1",
                "--out", str(out),
            ])
            assert rc == 0
            paths.append(out)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_metrics_subcommand_writes_flat_json(self, tmp_path, capsys):
        out = tmp_path / "metrics.json"
        rc = main([
            "metrics", "0.5", "--shape", "25x25x21", "--metacell", "5",
            "-p", "2", "--out", str(out),
        ])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro-metrics/1"
        assert doc["metrics"]["cluster.extractions"] == 1
