"""Tests for the deterministic chaos engine.

Covers the network fault domain (link faults, partitions, the
``direct_send`` / result-return / migration wiring), the composed
schedule builder, the invariant-oracle registry, ddmin shrinking of
failing schedules (including the planted-bug acceptance path), the
seeded retry jitter, and the crash-kill schedule shared with
``tools/crash_kill_harness.py``.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.chaos import (
    COORDINATOR,
    ChaosEngine,
    ChaosSpec,
    LinkFaults,
    NetworkFaultPlan,
    PartitionWindow,
    TrialContext,
    Violation,
    build_schedule,
    kill_schedule,
    load_schedule,
    register_oracle,
    run_oracles,
    save_schedule,
    schedule_as_dicts,
    schedule_from_dicts,
    shrink_schedule,
    unregister_oracle,
)
from repro.chaos.engine import ChaosEvent
from repro.grid.datasets import sphere_field
from repro.io.faults import RetryPolicy
from repro.parallel.cluster import SimulatedCluster


# ---------------------------------------------------------------------------
# Network fault plans and sessions
# ---------------------------------------------------------------------------


class TestNetworkFaultPlan:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            LinkFaults(drop_rate=1.5)
        with pytest.raises(ValueError):
            LinkFaults(delay_seconds=-1.0)
        with pytest.raises(ValueError):
            NetworkFaultPlan(max_retries=-1)

    def test_empty_plan_has_no_session(self):
        assert NetworkFaultPlan().empty
        assert NetworkFaultPlan().session() is None
        assert not NetworkFaultPlan(default=LinkFaults(drop_rate=0.1)).empty
        # A partition alone makes the plan non-empty.
        plan = NetworkFaultPlan(partitions=(
            PartitionWindow(start=0.0, duration=1.0, groups=((0,), (1,))),
        ))
        assert not plan.empty and plan.session() is not None

    def test_partition_window_validation(self):
        with pytest.raises(ValueError):
            PartitionWindow(start=0.0, duration=0.0, groups=((0,), (1,)))
        with pytest.raises(ValueError):
            PartitionWindow(start=0.0, duration=1.0, groups=((0,),))
        with pytest.raises(ValueError):  # endpoint in two groups
            PartitionWindow(start=0.0, duration=1.0, groups=((0, 1), (1,)))

    def test_link_overrides_are_directed(self):
        lossy = LinkFaults(drop_rate=0.5)
        plan = NetworkFaultPlan(link_overrides=(((2, COORDINATOR), lossy),))
        assert plan.faults_for(2, COORDINATOR) is lossy
        assert plan.faults_for(COORDINATOR, 2).empty
        assert plan.faults_for(1, COORDINATOR).empty

    def test_dict_roundtrip(self):
        plan = NetworkFaultPlan(
            seed=9,
            default=LinkFaults(drop_rate=0.1, delay_rate=0.2,
                               delay_seconds=1e-3),
            link_overrides=(((0, 1), LinkFaults(dup_rate=0.3)),),
            partitions=(PartitionWindow(
                start=0.2, duration=0.1, groups=((COORDINATOR,), (1, 2)),
            ),),
            max_retries=5, retry_backoff=1e-4,
        )
        assert NetworkFaultPlan.from_dict(plan.as_dict()) == plan

    def test_scaled_resolves_fractional_windows(self):
        plan = NetworkFaultPlan(partitions=(
            PartitionWindow(start=0.25, duration=0.5, groups=((0,), (1,))),
        ))
        scaled = plan.scaled(40.0)
        assert scaled.partitions[0].start == 10.0
        assert scaled.partitions[0].end == 30.0


class TestNetworkSession:
    def test_same_seed_same_fault_sequence(self):
        plan = NetworkFaultPlan(
            seed=3, default=LinkFaults(drop_rate=0.3, dup_rate=0.2,
                                       reorder_rate=0.2, delay_rate=0.2,
                                       delay_seconds=1e-3),
        )
        runs = []
        for _ in range(2):
            sess = plan.session()
            runs.append([
                (d.delivered, d.attempts, d.duplicates, d.reordered, d.delay)
                for d in (sess.send(q, COORDINATOR) for q in range(32))
            ])
        assert runs[0] == runs[1]

    def test_loss_after_retry_exhaustion(self):
        plan = NetworkFaultPlan(default=LinkFaults(drop_rate=1.0),
                                max_retries=2)
        sess = plan.session()
        d = sess.send(0, COORDINATOR)
        assert not d.delivered and not d.blocked
        assert d.attempts == 3  # 1 try + 2 retries
        assert sess.stats.lost == 1 and sess.stats.dropped == 3
        assert sess.stats.retries == 2
        assert d.delay > 0  # retry backoff was charged before giving up

    def test_overlay_partition_blocks_without_rng(self):
        plan = NetworkFaultPlan(default=LinkFaults(drop_rate=0.5))
        blocked = plan.session()
        blocked.set_partition(((COORDINATOR,), (1, 2)))
        d = blocked.send(1, COORDINATOR)
        assert d.blocked and not d.delivered and d.attempts == 0
        assert blocked.stats.partition_blocked == 1
        # Same-side traffic still flows.
        assert blocked.send(1, 2).delivered or True  # draws RNG, may drop
        blocked.clear_partition()

        # Refusals must not advance the RNG: a session that saw a
        # partition-blocked send first produces the same draw sequence
        # afterwards as one that never did.
        clean = plan.session()
        seq_a = [blocked.send(0, COORDINATOR).delivered for _ in range(16)]
        clean.send(1, 2)  # consume the same one post-partition draw
        seq_b = [clean.send(0, COORDINATOR).delivered for _ in range(16)]
        assert seq_a == seq_b

    def test_timed_windows_need_now(self):
        plan = NetworkFaultPlan(partitions=(
            PartitionWindow(start=1.0, duration=2.0,
                            groups=((COORDINATOR,), (0,))),
        ))
        sess = plan.session()
        assert sess.send(0, COORDINATOR).delivered  # no now: window ignored
        assert sess.send(0, COORDINATOR, now=0.5).delivered
        assert not sess.send(0, COORDINATOR, now=1.5).delivered
        assert sess.send(0, COORDINATOR, now=3.0).delivered
        assert sess.blocked(0, COORDINATOR, now=2.9)
        assert sess.blocked(0, COORDINATOR, now=1.0)
        assert not sess.blocked(0, COORDINATOR, now=3.0)


# ---------------------------------------------------------------------------
# direct_send under message faults (satellite: loss / dup / reorder)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def partitioned_render():
    from repro.mc.marching_cubes import marching_cubes
    from repro.render.camera import Camera
    from repro.render.rasterizer import Framebuffer, render_mesh

    vol = sphere_field((24, 24, 24))
    mesh = marching_cubes(vol.data, 0.6, origin=vol.origin,
                          spacing=vol.spacing)
    cam = Camera.fit_mesh(mesh)
    fbs = []
    for q in range(4):
        fb = Framebuffer(64, 64)
        sub = type(mesh)(mesh.vertices, mesh.faces[q::4])
        render_mesh(fb, sub, cam)
        fbs.append(fb)
    return fbs


class TestDirectSendUnderFaults:
    def _composite(self, fbs, network=None):
        from repro.parallel.perfmodel import InterconnectModel
        from repro.render.compositor import direct_send
        from repro.render.tiled_display import TileLayout

        return direct_send(
            fbs, TileLayout(2, 2, 64, 64),
            interconnect=InterconnectModel(), network=network,
        )

    def test_dup_and_reorder_stay_bit_identical(self, partitioned_render):
        """Duplicated / reordered contributions re-ship bytes and add
        delay but never change the merged pixels."""
        ref, ref_stats = self._composite(partitioned_render)
        sess = NetworkFaultPlan(
            seed=11, default=LinkFaults(dup_rate=0.9, reorder_rate=0.9,
                                        delay_seconds=1e-3),
        ).session()
        out, stats = self._composite(partitioned_render, network=sess)
        assert np.array_equal(out.color, ref.color)
        assert np.array_equal(out.depth, ref.depth)
        assert not stats.lost_nodes and not stats.dropped_nodes
        assert stats.total_bytes > ref_stats.total_bytes  # dups cost bytes
        assert stats.net_delay_seconds > 0  # resequencing delay charged
        assert stats.modeled_seconds > ref_stats.modeled_seconds
        assert sess.stats.duplicates > 0 and sess.stats.reordered > 0

    def test_drops_recovered_by_retries_stay_bit_identical(
        self, partitioned_render,
    ):
        ref, _ = self._composite(partitioned_render)
        sess = NetworkFaultPlan(
            seed=0, default=LinkFaults(drop_rate=0.45), max_retries=16,
        ).session()
        out, stats = self._composite(partitioned_render, network=sess)
        assert sess.stats.retries > 0, "seed never dropped — vacuous test"
        assert sess.stats.lost == 0
        assert np.array_equal(out.color, ref.color)
        assert np.array_equal(out.depth, ref.depth)
        assert not stats.lost_nodes
        assert stats.net_delay_seconds > 0  # retry backoff is paid for

    def test_lost_contribution_is_flagged_never_silent(
        self, partitioned_render,
    ):
        """A contribution dropped past the retry budget yields a frame
        without that node, flagged in ``lost_nodes`` — degraded, never
        silently wrong."""
        sess = NetworkFaultPlan(
            link_overrides=(((2, COORDINATOR), LinkFaults(drop_rate=1.0)),),
            max_retries=1,
        ).session()
        out, stats = self._composite(partitioned_render, network=sess)
        assert stats.lost_nodes == [2]
        assert 2 in stats.dropped_nodes
        assert stats.bytes_sent_per_node[2] == 0
        # The frame equals the composite of the surviving contributions.
        survivors = [fb for q, fb in enumerate(partitioned_render) if q != 2]
        expect, _ = self._composite(survivors)
        assert np.array_equal(out.depth, expect.depth)

    def test_no_network_matches_pre_chaos_behavior(self, partitioned_render):
        out, stats = self._composite(partitioned_render)
        assert stats.lost_nodes == [] and stats.net_delay_seconds == 0.0


# ---------------------------------------------------------------------------
# Cluster wiring: result returns, recovery, empty-plan byte-identity
# ---------------------------------------------------------------------------


def _cluster(replication=2, net_plan=None):
    c = SimulatedCluster(
        sphere_field((20, 20, 20)), p=4, metacell_shape=(5, 5, 5),
        replication=replication,
    )
    session = c.install_network_faults(net_plan) if net_plan else None
    return c, session


class TestClusterNetworkFaults:
    def test_lost_result_return_recovers_via_replica(self):
        baseline = _cluster()[0].extract(0.5)
        plan = NetworkFaultPlan(
            link_overrides=(((0, COORDINATOR), LinkFaults(drop_rate=1.0)),),
            max_retries=1,
        )
        c, sess = _cluster(replication=2, net_plan=plan)
        result = c.extract(0.5)
        # Node 0's return is always lost; the replica host re-serves its
        # stripes and that recovered return crosses an unfaulted link.
        assert sess.stats.lost >= 1
        assert not result.degraded
        assert result.n_triangles == baseline.n_triangles
        assert result.coverage == 1.0

    def test_lost_result_without_replica_degrades(self):
        plan = NetworkFaultPlan(
            link_overrides=(((0, COORDINATOR), LinkFaults(drop_rate=1.0)),),
            max_retries=1,
        )
        c, _ = _cluster(replication=1, net_plan=plan)
        baseline = _cluster(replication=1)[0].extract(0.5)
        result = c.extract(0.5)
        assert result.degraded, "a lost result with no replica must surface"
        assert result.coverage < 1.0
        assert result.n_triangles < baseline.n_triangles
        assert any(m.failed for m in result.nodes)

    def test_empty_plan_is_byte_identical(self):
        """Installing an empty plan changes nothing — including the
        trace byte stream (the acceptance criterion for the PR)."""
        from repro.obs import Tracer, dumps_chrome_trace
        from repro.parallel.cluster import ExtractRequest

        traces = []
        for plan in (None, NetworkFaultPlan()):
            c = SimulatedCluster(
                sphere_field((20, 20, 20)), p=4, metacell_shape=(5, 5, 5),
            )
            if plan is not None:
                assert c.install_network_faults(plan) is None
            tracer = Tracer()
            r = c.extract(0.5, ExtractRequest(tracer=tracer))
            traces.append((r.n_triangles, dumps_chrome_trace(tracer)))
        assert traces[0] == traces[1]


class TestMigrationUnderPartition:
    def _elastic(self):
        from repro.elastic import ElasticCluster

        c = ElasticCluster(
            sphere_field((20, 20, 20)), nodes=4, n_stripes=12,
            metacell_shape=(5, 5, 5),
        )
        sess = c.install_network_faults(NetworkFaultPlan(
            default=LinkFaults(delay_rate=1.0, delay_seconds=1e-4),
        ))
        return c, sess

    def test_abort_then_retry_after_heal(self):
        c, sess = self._elastic()
        s = 0
        owner = c.ownership.owner(s)
        dst = next(n for n in c.membership.target_ids() if n != owner)
        epoch_before = c.ownership.epoch

        sess.set_partition(((owner,), (dst,)))
        rec = c.migrate_primary(s, dst, now=1.0, reason="test")
        assert rec is None
        assert c.ownership.owner(s) == owner, "ownership flipped across a partition"
        assert c.ownership.epoch == epoch_before
        assert len(c.migrations_aborted) == 1
        assert c.migrations_aborted[0]["reason"] == "partition"

        sess.clear_partition()
        rec = c.migrate_primary(s, dst, now=2.0, reason="test")
        assert rec is not None and rec.dst_node == dst
        assert c.ownership.owner(s) == dst
        assert c.ownership.epoch == epoch_before + 1

    def test_transfer_lost_aborts_without_flip(self):
        c, _ = self._elastic()
        s = 0
        owner = c.ownership.owner(s)
        dst = next(n for n in c.membership.target_ids() if n != owner)
        # Replace the session with one that always loses src->dst.
        sess = c.install_network_faults(NetworkFaultPlan(
            link_overrides=(((owner, dst), LinkFaults(drop_rate=1.0)),),
            max_retries=0,
        ))
        migration_secs = c.migration_seconds
        rec = c.migrate_primary(s, dst, now=1.0, reason="test")
        assert rec is None
        assert c.ownership.owner(s) == owner
        assert c.migrations_aborted[-1]["reason"] == "transfer lost"
        assert c.migration_seconds == migration_secs  # no move was recorded
        assert sess.stats.lost == 1


# ---------------------------------------------------------------------------
# Seeded retry jitter (satellite)
# ---------------------------------------------------------------------------


class TestRetryJitter:
    def test_default_is_bit_identical_to_pre_jitter_policy(self):
        policy = RetryPolicy()
        for attempt in range(5):
            assert policy.backoff_for(attempt) == (
                policy.backoff * policy.backoff_multiplier ** attempt
            )
            # The token changes nothing when jitter is off.
            assert policy.backoff_for(attempt, token=12345) == \
                policy.backoff_for(attempt)

    def test_jitter_is_bounded_and_deterministic(self):
        policy = RetryPolicy(jitter=0.5, jitter_seed=3)
        base = policy.backoff * policy.backoff_multiplier ** 2
        vals = {policy.backoff_for(2, token=t) for t in range(8)}
        assert len(vals) > 1, "tokens never de-synchronized"
        for v in vals:
            assert base <= v <= base * 1.5
        assert policy.backoff_for(2, token=4) == policy.backoff_for(2, token=4)
        # A different jitter seed re-draws the whole family.
        other = RetryPolicy(jitter=0.5, jitter_seed=4)
        assert other.backoff_for(2, token=4) != policy.backoff_for(2, token=4)

    def test_jitter_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)


# ---------------------------------------------------------------------------
# Schedules: building, determinism, crash-kill sharing
# ---------------------------------------------------------------------------


class TestSchedules:
    def test_build_schedule_is_deterministic(self):
        spec = ChaosSpec(seed=21, n_kills=2, n_partitions=2)
        a, b = build_schedule(spec), build_schedule(spec)
        assert a == b
        assert build_schedule(ChaosSpec(seed=22, n_kills=2)) != a

    def test_schedule_shape(self):
        spec = ChaosSpec(seed=4, n_kills=2, n_fault_bursts=1, n_scales=1,
                         n_partitions=2)
        sched = build_schedule(spec)
        kinds = [e.kind for e in sched]
        assert kinds.count("kill") == 2
        assert kinds.count("faults") == 1
        assert kinds.count("scale") == 1
        assert kinds.count("partition") == 2
        assert kinds.count("partition-heal") == 2
        assert all(0.0 <= e.time <= 1.0 for e in sched)
        assert sched == sorted(sched, key=lambda e: e.time)
        # Kills are drawn early, scales late: a scale-in can never drain
        # a node before its kill fires.
        kill_t = max(e.time for e in sched if e.kind == "kill")
        scale_t = min(e.time for e in sched if e.kind == "scale")
        assert kill_t < scale_t

    def test_event_validation_and_roundtrip(self):
        with pytest.raises(ValueError):
            ChaosEvent(time=0.5, kind="explode")
        with pytest.raises(ValueError):
            ChaosEvent(time=1.5, kind="kill")
        sched = build_schedule(ChaosSpec(seed=8, n_partitions=2))
        assert schedule_from_dicts(schedule_as_dicts(sched)) == sched

    def test_spec_roundtrip(self):
        spec = ChaosSpec(seed=13, shape=(16, 16, 16), n_scales=2,
                         scale_choices=(3, 5), drop_rate=0.1)
        assert ChaosSpec.from_dict(spec.as_dict()) == spec

    def test_kill_schedule_matches_harness_draw_order(self):
        """The engine's kill scheduler must reproduce the crash
        harness's historical draws exactly (same RNG, same order)."""
        counts = [100, 200, 50]
        rng = np.random.default_rng(7)
        expect = []
        for t in range(30):
            ci = int(rng.integers(len(counts)))
            kill_at = int(rng.integers(counts[ci]))
            hard = t % 10 == 9
            double = not hard and t % 5 == 4
            second = int(rng.integers(max(1, counts[ci] - kill_at))) \
                if double else None
            expect.append((t, ci, kill_at, hard, double, second))
        got = [
            (k.trial, k.config_index, k.kill_at, k.hard, k.double,
             k.second_kill)
            for k in kill_schedule(7, 30, counts, hard_every=10,
                                   double_every=5)
        ]
        assert got == expect

    def test_kill_schedule_second_kill_only_when_double(self):
        for k in kill_schedule(1, 40, [64], hard_every=3, double_every=4):
            assert (k.second_kill is not None) == k.double
            assert not (k.hard and k.double)


# ---------------------------------------------------------------------------
# Oracles
# ---------------------------------------------------------------------------


class _StubRecord:
    def __init__(self, request_id, state, lam=0.5, triangles=0,
                 coverage=1.0):
        self.request_id = request_id
        self.state = state
        self.lam = lam
        self.triangles = triangles
        self.coverage = coverage


class _StubReport:
    def __init__(self, records):
        self.records = records
        self.n_requests = len(records)

    def by_state(self, state):
        return [r for r in self.records if r.state == state]


class TestOracles:
    def test_ok_bit_identity_catches_wrong_triangles(self):
        report = _StubReport([
            _StubRecord(0, "ok", lam=0.5, triangles=812),
            _StubRecord(1, "ok", lam=0.5, triangles=811),
        ])
        ctx = TrialContext(report=report, reference={0.5: 812})
        v = run_oracles(ctx, names=["ok-bit-identity"])
        assert len(v) == 1 and v[0].request_id == 1

    def test_terminal_states_catches_nonterminal(self):
        report = _StubReport([_StubRecord(0, "running")])
        v = run_oracles(TrialContext(report=report),
                        names=["terminal-states"])
        assert any("non-terminal" in x.message for x in v)

    def test_coverage_identity(self):
        report = _StubReport([
            _StubRecord(0, "ok", coverage=0.8),     # ok must be full
            _StubRecord(1, "shed", coverage=0.5),   # shed must be zero
            _StubRecord(2, "degraded", coverage=0.5),  # fine
            _StubRecord(3, "failed", coverage=2.0),    # out of range
        ])
        v = run_oracles(TrialContext(report=report), names=["coverage"])
        assert sorted(x.request_id for x in v) == [0, 1, 3]

    def test_no_stale_cache_detects_old_epoch_keys(self):
        class _Cache:
            _lru = {("rec", "fp", 3): object(), ("mesh", "fp", 4, 0.5): object()}

        class _Ownership:
            epoch = 4

        class _Cluster:
            result_cache = _Cache()
            ownership = _Ownership()

        v = run_oracles(TrialContext(cluster=_Cluster()),
                        names=["no-stale-cache"])
        assert len(v) == 1 and "outlived epoch" in v[0].message

    def test_register_and_unregister(self):
        calls = []

        @register_oracle("test-only-probe")
        def _probe(ctx):
            calls.append(1)
            return []

        try:
            run_oracles(TrialContext(), names=["test-only-probe"])
            assert calls == [1]
        finally:
            unregister_oracle("test-only-probe")
        with pytest.raises(KeyError):
            run_oracles(TrialContext(), names=["test-only-probe"])


# ---------------------------------------------------------------------------
# Shrinking — including the planted-bug acceptance path
# ---------------------------------------------------------------------------


class TestShrink:
    def test_full_schedule_must_fail(self):
        with pytest.raises(ValueError):
            shrink_schedule([1, 2, 3], lambda c: False)

    def test_shrinks_to_single_culprit(self):
        sched = build_schedule(ChaosSpec(
            seed=5, n_kills=3, n_fault_bursts=3, n_scales=3, n_partitions=2,
        ))
        minimal, probes = shrink_schedule(
            sched, lambda c: any(e.kind == "scale" for e in c)
        )
        assert len(minimal) == 1 and minimal[0].kind == "scale"
        assert probes > 0

    def test_result_is_one_minimal(self):
        sched = build_schedule(ChaosSpec(
            seed=5, n_kills=3, n_fault_bursts=3, n_scales=3, n_partitions=2,
        ))

        def failing(c):
            kinds = [e.kind for e in c]
            return "kill" in kinds and "partition" in kinds

        minimal, _ = shrink_schedule(sched, failing)
        assert failing(minimal)
        for i in range(len(minimal)):
            assert not failing(minimal[:i] + minimal[i + 1:])

    def test_save_load_roundtrip(self, tmp_path):
        spec = ChaosSpec(seed=77, n_partitions=2)
        sched = build_schedule(spec)
        path = save_schedule(
            tmp_path / "repro.json", spec, sched,
            violations=[Violation("balance", "spread 4")], probes=9,
        )
        spec2, sched2, payload = load_schedule(path)
        assert spec2 == spec and sched2 == sched
        assert payload["shrink_probes"] == 9
        assert payload["violations"][0]["oracle"] == "balance"

    def test_load_rejects_wrong_schema(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text(json.dumps({"schema": "repro-bench/1"}))
        with pytest.raises(ValueError):
            load_schedule(p)

    def test_planted_bug_is_caught_and_shrinks_small(self, tmp_path):
        """Acceptance: a planted bug — a result cache that forgets to
        purge on the epoch bump a kill causes — is caught by the stock
        ``no-stale-cache`` oracle, and ddmin shrinks the 13-event
        schedule that exposed it to <= 5 events."""
        spec = ChaosSpec(seed=31, n_kills=3, n_fault_bursts=3, n_scales=3,
                         n_partitions=2)
        sched = build_schedule(spec)

        def run_buggy_system(schedule):
            """Deterministic stand-in for a trial against a system with
            the planted bug: kills bump the ownership epoch (failover
            promotion) but the buggy cache never invalidates."""
            epoch = sum(1 for e in schedule if e.kind in ("kill", "scale"))

            class _Cache:
                _lru = {("rec", "fp", 0): object()}  # fenced to epoch 0

            class _Ownership:
                pass

            class _Cluster:
                pass

            _Ownership.epoch = epoch
            _Cluster.result_cache = _Cache() if epoch else None
            _Cluster.ownership = _Ownership()
            return TrialContext(spec=spec, schedule=schedule,
                                cluster=_Cluster())

        def failing(candidate):
            return bool(run_oracles(run_buggy_system(candidate),
                                    names=["no-stale-cache"]))

        # The full schedule trips the oracle...
        violations = run_oracles(run_buggy_system(sched),
                                 names=["no-stale-cache"])
        assert violations and violations[0].oracle == "no-stale-cache"

        # ...and shrinks to a minimal repro of <= 5 events.
        minimal, probes = shrink_schedule(sched, failing)
        assert len(minimal) <= 5
        assert all(e.kind in ("kill", "scale") for e in minimal)
        assert run_oracles(run_buggy_system(minimal),
                           names=["no-stale-cache"])

        # The minimal repro persists and replays.
        path = save_schedule(tmp_path / "planted.json", spec, minimal,
                             violations=violations, probes=probes)
        _, replay, _ = load_schedule(path)
        assert failing(replay)


# ---------------------------------------------------------------------------
# The engine end to end
# ---------------------------------------------------------------------------


class TestChaosEngine:
    def test_one_real_trial(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        engine = ChaosEngine(metrics=registry)
        spec = ChaosSpec(seed=6, duration_units=15.0)
        result = engine.run_trial(spec)
        assert result.ok, [v.as_dict() for v in result.violations]
        assert result.n_requests > 0
        assert sum(result.states.values()) == result.n_requests
        assert result.net_stats["messages"] > 0
        assert result.schedule == build_schedule(spec)
        m = registry.to_dict()
        assert m["chaos.trials"] == 1
        assert m["chaos.violations"] == 0

    def test_trials_are_pure_functions_of_the_seed(self):
        engine = ChaosEngine()
        spec = ChaosSpec(seed=9, duration_units=12.0)
        a = engine.run_trial(spec).as_dict()
        b = engine.run_trial(spec).as_dict()
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_explicit_schedule_replays(self):
        engine = ChaosEngine()
        spec = ChaosSpec(seed=14, duration_units=12.0)
        sched = build_schedule(spec)
        a = engine.run_trial(spec).as_dict()
        b = engine.run_trial(spec, schedule=sched).as_dict()
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
