"""Deadline-aware query execution on the modeled clock.

The contract under test (see docs/robustness.md):

* a :class:`~repro.core.deadline.Deadline` splits a total modeled-time
  budget into a primary node stage and a speculation window;
* a :class:`~repro.core.deadline.QueryClock` reads elapsed modeled time
  off the device meter, so spikes, backoff, and hedge waits all count;
* a node query that blows its budget is cut short *deterministically*:
  it returns the records it has plus the exact skipped runs/bricks,
  never an exception;
* a deadline-bounded cluster extraction reports per-node coverage, the
  skipped span-space bricks, and a :class:`DeadlineReport`; stragglers
  are speculatively re-executed on their replica host with
  bit-identical output.
"""

import numpy as np
import pytest

from repro.core.builder import build_indexed_dataset
from repro.core.deadline import Deadline, DeadlineReport, QueryClock
from repro.core.query import QueryOptions, execute_query
from repro.grid.datasets import sphere_field
from repro.io.faults import FaultPlan
from repro.parallel.cluster import ExtractRequest, SimulatedCluster
from repro.parallel.scheduler import plan_speculation

ISO = 0.5
P = 4


@pytest.fixture(scope="module")
def volume():
    return sphere_field((24, 24, 24))


@pytest.fixture(scope="module")
def dataset(volume):
    return build_indexed_dataset(volume, (5, 5, 5))


@pytest.fixture(scope="module")
def healthy(volume):
    cluster = SimulatedCluster(
        volume, p=P, metacell_shape=(5, 5, 5), replication=2
    )
    return cluster.extract(ISO, ExtractRequest(render=True))


def spiky_cluster(volume, victim=2, seed=1, rate=0.25, seconds=0.5):
    return SimulatedCluster(
        volume, p=P, metacell_shape=(5, 5, 5), replication=2,
        fault_plans={
            victim: FaultPlan(
                seed=seed, latency_spike_rate=rate, latency_spike_seconds=seconds
            )
        },
    )


class TestDeadlineObject:
    def test_budget_split(self):
        dl = Deadline(10.0, node_fraction=0.6)
        assert dl.node_budget == pytest.approx(6.0)
        assert dl.speculation_budget == pytest.approx(4.0)

    def test_full_fraction_leaves_no_speculation_window(self):
        dl = Deadline(5.0, node_fraction=1.0)
        assert dl.speculation_budget == pytest.approx(0.0)

    @pytest.mark.parametrize("budget", [0.0, -1.0])
    def test_nonpositive_budget_is_immediately_expired(self, budget):
        # Regression: a zero/negative budget used to raise from the
        # split; now it is a legal, already-expired deadline (what
        # Deadline.consume produces when wait eats the whole budget).
        dl = Deadline(budget)
        assert dl.expired
        assert dl.node_budget == 0.0
        assert dl.speculation_budget == 0.0

    def test_positive_budget_is_not_expired(self):
        assert not Deadline(1.0).expired

    def test_rejects_nan_budget(self):
        with pytest.raises(ValueError):
            Deadline(float("nan"))

    @pytest.mark.parametrize("frac", [0.0, -0.1, 1.5])
    def test_rejects_bad_fraction(self, frac):
        with pytest.raises(ValueError):
            Deadline(1.0, node_fraction=frac)

    def test_consume_resplits_budget(self):
        dl = Deadline(10.0, node_fraction=0.6)
        rest = dl.consume(4.0)
        assert rest.budget == pytest.approx(6.0)
        assert rest.node_fraction == pytest.approx(0.6)
        assert rest.node_budget == pytest.approx(3.6)
        assert not rest.expired

    def test_consume_past_budget_expires(self):
        rest = Deadline(2.0).consume(5.0)
        assert rest.expired
        assert rest.node_budget == 0.0

    def test_consume_rejects_negative_elapsed(self):
        with pytest.raises(ValueError):
            Deadline(2.0).consume(-0.1)

    def test_coerce(self):
        assert Deadline.coerce(None) is None
        dl = Deadline(2.0)
        assert Deadline.coerce(dl) is dl
        assert Deadline.coerce(3).budget == pytest.approx(3.0)
        assert Deadline.coerce(0.5).node_fraction == pytest.approx(0.6)


class TestQueryClock:
    def test_elapsed_tracks_device_meter(self, volume):
        ds = build_indexed_dataset(volume, (5, 5, 5))
        clock = QueryClock(ds.device, limit=None)
        assert clock.elapsed() == pytest.approx(0.0)
        execute_query(ds, ISO)
        assert clock.elapsed() > 0.0
        assert not clock.expired()
        assert clock.remaining() == float("inf")

    def test_expiry(self, volume):
        ds = build_indexed_dataset(volume, (5, 5, 5))
        clock = QueryClock(ds.device, limit=1e-9)
        execute_query(ds, ISO)
        assert clock.expired()
        assert clock.remaining() < 0

    def test_charged_delay_counts_as_elapsed(self, volume):
        ds = build_indexed_dataset(volume, (5, 5, 5))
        clock = QueryClock(ds.device, limit=1.0)
        ds.device.stats.charge_delay(2.0)
        assert clock.elapsed() == pytest.approx(2.0)
        assert clock.expired()


class TestBudgetedQuery:
    def test_unbudgeted_query_never_expires(self, dataset):
        res = execute_query(dataset, ISO)
        assert not res.deadline_expired
        assert res.skipped_runs == []
        assert res.n_records_skipped == 0
        assert res.skipped_bricks == []

    def test_zero_budget_skips_everything(self, volume):
        ds = build_indexed_dataset(volume, (5, 5, 5))
        full = execute_query(ds, ISO)
        ds2 = build_indexed_dataset(volume, (5, 5, 5))
        cut = execute_query(ds2, ISO, QueryOptions(time_budget=1e-12))
        assert cut.deadline_expired
        assert cut.n_active < full.n_active
        assert cut.n_active + cut.n_records_skipped >= full.n_active

    def test_partial_records_are_prefix_of_full(self, volume):
        full = execute_query(build_indexed_dataset(volume, (5, 5, 5)), ISO)
        ds = build_indexed_dataset(volume, (5, 5, 5))
        half_time = full.io_stats.read_time(ds.device.cost_model) / 2
        cut = execute_query(ds, ISO, QueryOptions(time_budget=half_time))
        assert cut.deadline_expired
        got = cut.records.ids
        # Deterministic cut: the retrieved records are exactly the head
        # of the full result stream — never reordered, never invented.
        assert np.array_equal(got, full.records.ids[: len(got)])

    def test_skipped_bricks_are_reported(self, volume):
        ds = build_indexed_dataset(volume, (5, 5, 5))
        cut = execute_query(ds, ISO, QueryOptions(time_budget=1e-12))
        # Whatever was skipped is attributable: skipped counts cover the
        # shortfall and any skipped prefix scans name their bricks.
        assert cut.n_records_skipped > 0
        assert len(cut.skipped_runs) > 0


class TestClusterDeadline:
    def test_healthy_cluster_meets_generous_deadline(self, volume, healthy):
        cluster = SimulatedCluster(
            volume, p=P, metacell_shape=(5, 5, 5), replication=2
        )
        res = cluster.extract(
            ISO, ExtractRequest(render=True, deadline=healthy.total_time * 3)
        )
        assert isinstance(res.deadline, DeadlineReport)
        assert res.deadline.met
        assert res.coverage == pytest.approx(1.0)
        assert not res.degraded
        assert res.deadline.expired_nodes == []
        assert np.array_equal(res.image.color, healthy.image.color)

    def test_straggler_without_mitigation_yields_partial(self, volume, healthy):
        cluster = spiky_cluster(volume)
        res = cluster.extract(ISO, ExtractRequest(
            render=True, deadline=healthy.total_time * 3,
            hedge=None, speculate=False,
        ))
        assert res.deadline is not None and not res.deadline.met
        assert res.degraded
        assert res.coverage < 1.0
        assert res.deadline.expired_nodes == [2]
        assert res.nodes[2].deadline_expired
        assert 0.0 < res.nodes[2].coverage < 1.0
        assert res.skipped_bricks.get(2), "expected skipped span-space bricks"
        assert res.failed_nodes == []  # partial, not failed

    def test_speculation_rescues_straggler_bit_identically(
        self, volume, healthy
    ):
        budget = healthy.total_time * 3
        res = spiky_cluster(volume, seed=7).extract(ISO, ExtractRequest(
            render=True, deadline=budget, hedge=None, speculate=True
        ))
        assert res.deadline.met
        assert res.coverage == pytest.approx(1.0)
        assert not res.degraded
        assert res.deadline.speculated_nodes == [2]
        host = res.nodes[2].speculated_to
        assert host is not None and host == res.nodes[2].served_by
        assert 2 in res.nodes[host].recovered_ranks
        assert np.array_equal(res.image.color, healthy.image.color)
        assert np.array_equal(res.image.depth, healthy.image.depth)
        # The straggler's clock stopped at the cancellation mark; the
        # host waited for the launch mark before re-executing.
        dl = res.deadline
        assert res.nodes[2].io_time <= dl.node_budget + 1e-9
        assert res.nodes[host].speculation_wait >= 0.0
        assert res.total_time <= budget + 1e-9

    def test_speculation_needs_a_live_replica(self, volume, healthy):
        # replication=1: the straggler has no replica host, so the
        # deadline-partial result stands.
        cluster = SimulatedCluster(
            volume, p=P, metacell_shape=(5, 5, 5), replication=1,
            fault_plans={
                2: FaultPlan(
                    seed=1, latency_spike_rate=0.25, latency_spike_seconds=0.5
                )
            },
        )
        res = cluster.extract(ISO, ExtractRequest(
            deadline=healthy.total_time * 3, speculate=True
        ))
        assert not res.deadline.met
        assert res.deadline.speculated_nodes == []
        assert res.coverage < 1.0

    def test_acceptance_demo(self, volume, healthy):
        """The ISSUE's deterministic demo: same seeded faults, deadline
        met with hedging, missed (coverage-flagged) without."""
        budget = healthy.total_time * 3
        partial = spiky_cluster(volume).extract(ISO, ExtractRequest(
            render=True, deadline=budget, hedge=None, speculate=False
        ))
        rescued = spiky_cluster(volume).extract(ISO, ExtractRequest(
            render=True, deadline=budget, hedge=True
        ))
        assert not partial.deadline.met and partial.degraded
        assert partial.coverage < 1.0
        assert rescued.deadline.met and not rescued.degraded
        assert rescued.coverage == pytest.approx(1.0)
        assert np.array_equal(rescued.image.color, healthy.image.color)
        assert np.array_equal(rescued.image.depth, healthy.image.depth)


class TestExpiredDeadlineExtraction:
    """A zero/negative budget flows through the whole cluster path:
    immediately-expired, coverage 0.0, a well-formed DeadlineReport,
    and never an exception."""

    @pytest.mark.parametrize("budget", [0.0, -0.5])
    def test_cluster_extract_with_expired_budget(self, volume, budget):
        cluster = SimulatedCluster(
            volume, p=P, metacell_shape=(5, 5, 5), replication=2
        )
        res = cluster.extract(ISO, ExtractRequest(deadline=budget))
        assert res.coverage == pytest.approx(0.0)
        assert res.degraded
        assert res.failed_nodes == []
        rep = res.deadline
        assert isinstance(rep, DeadlineReport)
        assert rep.budget == pytest.approx(budget)
        assert rep.node_budget == 0.0
        assert rep.coverage == pytest.approx(0.0)
        assert not rep.met
        assert rep.modeled_total >= 0.0
        assert rep.over_budget_by >= 0.0
        assert sorted(rep.expired_nodes) == list(range(P))

    def test_zero_budget_query_options(self, volume):
        ds = build_indexed_dataset(volume, (5, 5, 5))
        res = execute_query(ds, ISO, QueryOptions(time_budget=0.0))
        assert res.deadline_expired
        assert res.n_active == 0
        assert res.n_records_skipped > 0

    def test_nan_time_budget_rejected(self):
        with pytest.raises(ValueError):
            QueryOptions(time_budget=float("nan"))


class TestSpeculationPlanning:
    def test_load_balanced_assignment(self):
        plan = plan_speculation(
            [0, 1, 2], {0: [3], 1: [3, 4], 2: [3, 4]}, launch_time=1.5
        )
        assert [(d.victim, d.host) for d in plan] == [(0, 3), (1, 4), (2, 3)]
        assert all(d.launch_time == 1.5 for d in plan)

    def test_victims_without_hosts_are_omitted(self):
        plan = plan_speculation([0, 1], {0: [], 1: [2]}, launch_time=0.0)
        assert [(d.victim, d.host) for d in plan] == [(1, 2)]

    def test_deterministic(self):
        a = plan_speculation([5, 3, 1], {5: [0, 2], 3: [2], 1: [0]}, 2.0)
        b = plan_speculation([5, 3, 1], {5: [0, 2], 3: [2], 1: [0]}, 2.0)
        assert a == b
