"""Unit tests for the software rasterizer."""

import numpy as np
import pytest

from repro.mc.geometry import TriangleMesh
from repro.render.camera import Camera
from repro.render.rasterizer import Framebuffer, Light, render_mesh


def front_camera():
    return Camera(eye=[0, -5, 0], target=[0, 0, 0], up=[0, 0, 1])


def quad(y: float, size: float = 1.0, color_offset=0.0) -> TriangleMesh:
    """A screen-facing square at depth plane y (two triangles)."""
    s = size
    v = np.array(
        [[-s, y, -s], [s, y, -s], [s, y, s], [-s, y, s]], dtype=np.float64
    )
    f = np.array([[0, 1, 2], [0, 2, 3]])
    return TriangleMesh(v, f)


class TestFramebuffer:
    def test_initial_state(self):
        fb = Framebuffer(8, 6)
        assert fb.color.shape == (6, 8, 3)
        assert np.all(np.isinf(fb.depth))
        assert fb.coverage() == 0.0

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            Framebuffer(0, 5)

    def test_payload_bytes(self):
        fb = Framebuffer(10, 10)
        assert fb.payload_bytes == 10 * 10 * (12 + 4)

    def test_to_uint8_range(self):
        fb = Framebuffer(4, 4)
        fb.color[:] = 2.0  # over-bright clamps
        img = fb.to_uint8()
        assert img.dtype == np.uint8
        assert img.max() == 255

    def test_copy_independent(self):
        fb = Framebuffer(4, 4)
        cp = fb.copy()
        cp.depth[0, 0] = 1.0
        assert np.isinf(fb.depth[0, 0])


class TestRendering:
    def test_triangle_covers_center(self):
        fb = Framebuffer(64, 64)
        n = render_mesh(fb, quad(0.0), front_camera())
        assert n == 2
        assert np.isfinite(fb.depth[32, 32])
        assert fb.coverage() > 0.05

    def test_depth_value_correct(self):
        fb = Framebuffer(64, 64)
        render_mesh(fb, quad(0.0), front_camera())
        assert fb.depth[32, 32] == pytest.approx(5.0, abs=0.05)

    def test_z_buffer_occlusion(self):
        fb = Framebuffer(64, 64)
        near = quad(-1.0)  # closer to the eye at y=-5
        far = quad(1.0)
        render_mesh(fb, far, front_camera(), color=(0, 0, 1))
        render_mesh(fb, near, front_camera(), color=(1, 0, 0))
        # Near (red) must win at the center.
        center = fb.color[32, 32]
        assert center[0] > center[2]
        # Render order must not matter.
        fb2 = Framebuffer(64, 64)
        render_mesh(fb2, near, front_camera(), color=(1, 0, 0))
        render_mesh(fb2, far, front_camera(), color=(0, 0, 1))
        assert np.array_equal(fb.color, fb2.color)
        assert np.array_equal(fb.depth, fb2.depth)

    def test_empty_mesh_is_noop(self):
        fb = Framebuffer(16, 16)
        assert render_mesh(fb, TriangleMesh(), front_camera()) == 0
        assert fb.coverage() == 0.0

    def test_offscreen_mesh_rejected(self):
        fb = Framebuffer(32, 32)
        n = render_mesh(fb, quad(0.0).translated([100, 0, 0]), front_camera())
        assert fb.coverage() == 0.0

    def test_behind_camera_rejected(self):
        fb = Framebuffer(32, 32)
        render_mesh(fb, quad(-10.0), front_camera())
        assert fb.coverage() == 0.0

    def test_two_sided_shading(self):
        """A back-facing surface is still lit (|n.l|)."""
        fb = Framebuffer(32, 32)
        m = quad(0.0)
        flipped = TriangleMesh(m.vertices, m.faces[:, [0, 2, 1]])
        render_mesh(fb, flipped, front_camera())
        assert fb.coverage() > 0.0
        lit = fb.color[np.isfinite(fb.depth)]
        bg = np.asarray(fb.background, dtype=np.float32)
        assert np.any(np.abs(lit - bg).sum(axis=1) > 0.05)

    def test_light_intensity_bounds(self):
        fb = Framebuffer(32, 32)
        render_mesh(fb, quad(0.0), front_camera(), color=(1.0, 1.0, 1.0))
        lit = fb.color[np.isfinite(fb.depth)]
        assert np.all(lit <= 1.0 + 1e-6)
        assert np.all(lit >= Light().ambient - 1e-6)

    def test_aspect_correction(self):
        """Rendering into a non-square buffer keeps geometry undistorted:
        a square should cover ~equal pixel extents in x and y."""
        fb = Framebuffer(128, 64)
        render_mesh(fb, quad(0.0, size=0.5), front_camera())
        ys, xs = np.where(np.isfinite(fb.depth))
        assert abs((xs.max() - xs.min()) - (ys.max() - ys.min())) <= 2
