"""End-to-end integration: the full paper pipeline on RM-like data.

These tests exercise every stage together — procedural data generation,
preprocessing, striped out-of-core queries, Marching Cubes, rendering,
sort-last compositing to a tiled wall — and assert the cross-stage
invariants the paper's system relies on.
"""

import numpy as np
import pytest

from repro.core.timevarying import TimeVaryingIndex
from repro.grid.rm_instability import rm_time_series, rm_timestep
from repro.io.diskfile import FileBackedDevice
from repro.mc.geometry import TriangleMesh
from repro.parallel.cluster import ExtractRequest, SimulatedCluster
from repro.pipeline import IsosurfacePipeline
from repro.render.camera import Camera
from repro.render.compositor import binary_swap, composite
from repro.render.image import write_ppm
from repro.render.rasterizer import Framebuffer, render_mesh
from repro.render.tiled_display import TileLayout


@pytest.fixture(scope="module")
def rm_vol():
    return rm_timestep(180, shape=(49, 49, 41))


class TestFullPipeline:
    def test_serial_to_image(self, rm_vol, tmp_path_factory):
        pipe = IsosurfacePipeline.from_volume(rm_vol, metacell_shape=(5, 5, 5))
        res = pipe.extract(128.0, render=True, image_size=(128, 128))
        assert res.n_triangles > 100
        assert res.image.coverage() > 0.02
        out = tmp_path_factory.mktemp("img") / "rm.ppm"
        write_ppm(out, res.image.to_uint8())
        assert out.stat().st_size > 128 * 128 * 3

    def test_cluster_image_equals_serial_image(self, rm_vol):
        """Sort-last compositing of per-node renders == single-node render
        of the full surface, pixel-exact (same camera)."""
        lam = 128.0
        serial = SimulatedCluster(rm_vol, 1, metacell_shape=(5, 5, 5))
        cluster = SimulatedCluster(rm_vol, 4, metacell_shape=(5, 5, 5))
        sres = serial.extract(lam, ExtractRequest(keep_meshes=True))
        combined = TriangleMesh.concat(sres.meshes)
        cam = Camera.fit_mesh(combined)
        ref = Framebuffer(128, 128)
        render_mesh(ref, combined, cam)

        cres = cluster.extract(lam, ExtractRequest(keep_meshes=True))
        fbs = []
        for mesh in cres.meshes:
            fb = Framebuffer(128, 128)
            render_mesh(fb, mesh, cam)
            fbs.append(fb)
        merged = composite(fbs)
        assert np.array_equal(merged.depth, ref.depth)
        assert np.array_equal(merged.color, ref.color)
        # Binary swap gives the identical image.
        swapped, _ = binary_swap(fbs)
        assert np.array_equal(swapped.color, merged.color)

    def test_tiled_wall_roundtrip(self, rm_vol):
        cluster = SimulatedCluster(rm_vol, 2, metacell_shape=(5, 5, 5))
        layout = TileLayout(2, 2, 160, 128)
        res = cluster.extract(
            128.0, ExtractRequest(render=True, tile_layout=layout),
        )
        assert res.image.color.shape == (128, 160, 3)

    def test_welded_cluster_surface_is_closed(self, rm_vol):
        """Union of per-node meshes welds into a surface whose boundary
        lies only on the volume border (the isosurface may exit the
        domain)."""
        cluster = SimulatedCluster(rm_vol, 4, metacell_shape=(5, 5, 5))
        res = cluster.extract(128.0, ExtractRequest(keep_meshes=True))
        mesh = TriangleMesh.concat(res.meshes).weld()
        uniq, counts = mesh.edge_counts()
        boundary = np.unique(uniq[counts == 1])
        pts = mesh.vertices[boundary]
        nx, ny, nz = rm_vol.shape
        # Metacell padding may extend one cell beyond the volume.
        eps = 1e-6
        on_border = (
            (pts[:, 0] < eps) | (pts[:, 0] > nx - 1 - 1 - eps)
            | (pts[:, 1] < eps) | (pts[:, 1] > ny - 1 - 1 - eps)
            | (pts[:, 2] < eps) | (pts[:, 2] > nz - 1 - 1 - eps)
        )
        assert on_border.all()


class TestTimeVaryingOnCluster:
    def test_multi_step_striped_exploration(self):
        steps = [60, 120, 180]
        tvi = TimeVaryingIndex.from_series(
            rm_time_series(steps, shape=(33, 33, 29), n_steps=270),
            p=2,
            metacell_shape=(5, 5, 5),
        )
        actives = []
        for t in steps:
            results = tvi.query(t, 128.0)
            actives.append(sum(r.n_active for r in results))
        # The mixing layer grows: later steps have at least as much work.
        assert actives[-1] >= actives[0]
        assert tvi.total_index_size_bytes() < 64 * 1024


class TestOutOfCoreOnRealFiles:
    def test_file_backed_striped_pipeline(self, tmp_path):
        vol = rm_timestep(150, shape=(33, 33, 29))
        from repro.core.builder import build_striped_datasets

        devices = [FileBackedDevice(tmp_path / f"node{q}.bin") for q in range(2)]
        dss = build_striped_datasets(vol, 2, (5, 5, 5), devices=devices)
        from repro.core.query import execute_query

        totals = [execute_query(ds, 128.0).n_active for ds in dss]
        assert sum(totals) > 0
        for dev in devices:
            dev.flush()
            assert dev.path.stat().st_size == dev.size
            dev.close()
