"""Tests for all four baselines: correctness and the comparative claims."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.bbio_tree import BBIODataset
from repro.baselines.interval_tree import StandardIntervalTree
from repro.baselines.naive_scan import full_scan_query
from repro.baselines.range_partition import RangePartitionDistribution
from repro.core.builder import build_indexed_dataset
from repro.core.compact_tree import CompactIntervalTree
from repro.core.intervals import IntervalSet
from repro.core.query import execute_query
from repro.core.striping import stripe_brick_records, striped_active_counts
from repro.grid.metacell import partition_metacells
from repro.grid.rm_instability import rm_timestep
from tests.conftest import random_intervals


class TestStandardIntervalTree:
    @settings(max_examples=50, deadline=None)
    @given(
        n=st.integers(1, 150),
        n_values=st.integers(1, 24),
        seed=st.integers(0, 2**16),
        lam_num=st.integers(-1, 26),
    )
    def test_query_matches_oracle(self, n, n_values, seed, lam_num):
        rng = np.random.default_rng(seed)
        iv = random_intervals(rng, n, n_values)
        tree = StandardIntervalTree.build(iv)
        assert np.array_equal(tree.stabbing_ids(float(lam_num)), iv.stabbing_ids(float(lam_num)))

    def test_empty(self):
        iv = IntervalSet(
            vmin=np.empty(0), vmax=np.empty(0), ids=np.empty(0, np.uint32)
        )
        tree = StandardIntervalTree.build(iv)
        assert len(tree.stabbing_indices(1.0)) == 0
        assert tree.size_bytes() == 0

    def test_stores_every_interval_twice(self, sphere_intervals):
        tree = StandardIntervalTree.build(sphere_intervals)
        assert tree.n_entries == 2 * len(sphere_intervals)

    def test_paper_size_claim(self, sphere_intervals):
        """Table 1's comparison: standard tree at least ~2x the compact
        tree, and usually much larger."""
        std = StandardIntervalTree.build(sphere_intervals)
        cmp_tree = CompactIntervalTree.build(sphere_intervals)
        assert std.size_bytes() >= 2 * cmp_tree.index_size_bytes()

    def test_size_gap_grows_with_duplicate_spans(self):
        """Many metacells sharing few distinct (vmin, vmax) pairs is the
        regime where compact wins by orders of magnitude (N >> n)."""
        rng = np.random.default_rng(7)
        iv = random_intervals(rng, 50_000, n_values=16)
        std = StandardIntervalTree.build(iv)
        cmp_tree = CompactIntervalTree.build(iv)
        assert std.size_bytes() > 100 * cmp_tree.index_size_bytes()

    def test_height_logarithmic(self, sphere_intervals):
        tree = StandardIntervalTree.build(sphere_intervals)
        n = sphere_intervals.n_distinct_endpoints
        assert tree.height() <= int(np.ceil(np.log2(max(n, 2)))) + 1


class TestBBIO:
    @pytest.fixture(scope="class")
    def bbio(self):
        vol = rm_timestep(150, shape=(33, 33, 29))
        part = partition_metacells(vol, (5, 5, 5))
        return part, BBIODataset(part)

    def test_query_matches_oracle(self, bbio):
        part, ds = bbio
        iv = IntervalSet.from_partition(part)
        for lam in (60.0, 128.0, 200.0):
            res = ds.query(lam)
            assert np.array_equal(np.sort(res.records.ids), iv.stabbing_ids(lam))

    def test_more_seeks_than_compact_layout(self, bbio):
        """The structural claim: id-ordered layout scatters the active
        set; span-space layout keeps it contiguous."""
        part, ds = bbio
        compact = build_indexed_dataset(part.volume, (5, 5, 5))
        lam = 128.0
        bbio_res = ds.query(lam)
        comp_res = execute_query(compact, lam)
        assert bbio_res.n_active == comp_res.n_active
        if bbio_res.n_active > 20:
            assert bbio_res.io_stats.seeks > comp_res.io_stats.seeks

    def test_index_is_omega_N(self, bbio):
        part, ds = bbio
        compact = build_indexed_dataset(part.volume, (5, 5, 5))
        assert ds.index_size_bytes > compact.tree.index_size_bytes()

    def test_empty_query(self, bbio):
        _, ds = bbio
        res = ds.query(-1.0)
        assert res.n_active == 0
        assert res.n_runs == 0


class TestRangePartition:
    @pytest.fixture(scope="class")
    def intervals(self):
        vol = rm_timestep(150, shape=(33, 33, 29))
        return IntervalSet.from_partition(partition_metacells(vol, (5, 5, 5)))

    def test_counts_sum_to_active_total(self, intervals):
        dist = RangePartitionDistribution(intervals, p=4, k=8)
        for lam in (60.0, 128.0, 200.0):
            assert dist.active_counts(lam).sum() == intervals.stabbing_count(lam)

    @pytest.mark.parametrize("assignment", ["round-robin", "work-balanced"])
    def test_assignments_valid(self, intervals, assignment):
        dist = RangePartitionDistribution(intervals, p=4, k=8, assignment=assignment)
        procs = dist.processor_of_metacells()
        assert np.all((procs >= 0) & (procs < 4))

    def test_worse_balance_than_striping_somewhere(self, intervals):
        """The paper's criticism of [21]: some isovalue must show clearly
        worse balance than round-robin striping."""
        dist = RangePartitionDistribution(intervals, p=4, k=8)
        tree = CompactIntervalTree.build(intervals)
        layouts = stripe_brick_records(tree, 4)
        worst_rp, worst_stripe = 0.0, 0.0
        for lam in np.linspace(50, 220, 18):
            rp = dist.active_counts(float(lam))
            sp = striped_active_counts(layouts, float(lam))
            if rp.sum() > 50:
                worst_rp = max(worst_rp, rp.max() / rp.mean())
                worst_stripe = max(worst_stripe, sp.max() / sp.mean())
        assert worst_rp > worst_stripe
        assert worst_rp > 1.5  # demonstrably unbalanced somewhere

    def test_empty_intervals(self):
        iv = IntervalSet(vmin=np.empty(0), vmax=np.empty(0), ids=np.empty(0, np.uint32))
        dist = RangePartitionDistribution(iv, p=3, k=4)
        assert np.array_equal(dist.active_counts(1.0), [0, 0, 0])

    def test_validation(self, intervals):
        with pytest.raises(ValueError):
            RangePartitionDistribution(intervals, p=0)
        with pytest.raises(ValueError):
            RangePartitionDistribution(intervals, p=2, k=0)
        with pytest.raises(ValueError):
            RangePartitionDistribution(intervals, p=2, assignment="magic")


class TestNaiveScan:
    def test_matches_oracle(self, sphere_dataset, sphere_intervals):
        res = full_scan_query(sphere_dataset, 0.6)
        assert np.array_equal(np.sort(res.records.ids), sphere_intervals.stabbing_ids(0.6))

    def test_scans_everything_always(self, sphere_dataset):
        empty = full_scan_query(sphere_dataset, -100.0)
        assert empty.n_active == 0
        assert empty.n_records_scanned == sphere_dataset.n_records
        full_bytes = sphere_dataset.n_records * sphere_dataset.codec.record_size
        assert empty.io_stats.bytes_read == full_bytes

    def test_compact_tree_beats_scan_for_selective_queries(self, sphere_dataset):
        lam = 0.2  # small sphere -> few active metacells
        scan = full_scan_query(sphere_dataset, lam)
        sphere_dataset.device.reset_stats()
        idx = execute_query(sphere_dataset, lam)
        assert idx.n_active == scan.n_active
        assert idx.io_stats.blocks_read < scan.io_stats.blocks_read
