"""Cross-module property tests (hypothesis): algebraic invariants that
tie several subsystems together."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compact_tree import CompactIntervalTree
from repro.core.striping import stripe_brick_records
from repro.grid.volume import Volume
from repro.mc.geometry import TriangleMesh
from repro.mc.marching_cubes import marching_cubes
from repro.render.compositor import binary_swap, composite
from repro.render.rasterizer import Framebuffer
from tests.conftest import random_intervals


def random_framebuffer(rng, w=16, h=16, coverage=0.5) -> Framebuffer:
    fb = Framebuffer(w, h)
    mask = rng.random((h, w)) < coverage
    fb.depth[mask] = rng.random(mask.sum()).astype(np.float32) * 10
    fb.color[mask] = rng.random((int(mask.sum()), 3)).astype(np.float32)
    return fb


class TestCompositorAlgebra:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**16), n=st.integers(1, 6))
    def test_composite_is_pixelwise_argmin(self, seed, n):
        rng = np.random.default_rng(seed)
        fbs = [random_framebuffer(rng) for _ in range(n)]
        out = composite(fbs)
        depths = np.stack([fb.depth for fb in fbs])
        assert np.array_equal(out.depth, depths.min(axis=0))

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_composite_idempotent_and_commutative(self, seed):
        rng = np.random.default_rng(seed)
        a, b = random_framebuffer(rng), random_framebuffer(rng)
        ab = composite([a, b])
        ba = composite([b, a])
        assert np.array_equal(ab.depth, ba.depth)
        again = composite([ab, ab])
        assert np.array_equal(again.depth, ab.depth)
        assert np.array_equal(again.color, ab.color)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**16), p=st.sampled_from([2, 4, 8]))
    def test_binary_swap_equals_reference(self, seed, p):
        rng = np.random.default_rng(seed)
        fbs = [random_framebuffer(rng) for _ in range(p)]
        ref = composite(fbs)
        out, _ = binary_swap(fbs)
        assert np.array_equal(out.depth, ref.depth)
        assert np.array_equal(out.color, ref.color)


class TestStripingAlgebra:
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(1, 120),
        p=st.integers(1, 6),
        seed=st.integers(0, 2**16),
        stagger=st.booleans(),
    )
    def test_striping_is_a_partition(self, n, p, seed, stagger):
        rng = np.random.default_rng(seed)
        iv = random_intervals(rng, n, 16)
        tree = CompactIntervalTree.build(iv)
        layouts = stripe_brick_records(tree, p, stagger=stagger)
        allpos = np.concatenate([l.local_positions for l in layouts])
        assert np.array_equal(np.sort(allpos), np.arange(tree.n_records))
        # Local record counts differ by at most 1 brick count per node.
        sizes = [len(l.local_positions) for l in layouts]
        assert max(sizes) - min(sizes) <= tree.n_bricks

    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(1, 80), seed=st.integers(0, 2**16))
    def test_p_equals_one_is_identity(self, n, seed):
        rng = np.random.default_rng(seed)
        iv = random_intervals(rng, n, 12)
        tree = CompactIntervalTree.build(iv)
        (layout,) = stripe_brick_records(tree, 1)
        assert np.array_equal(layout.local_positions, np.arange(tree.n_records))
        assert np.array_equal(layout.tree.record_order, tree.record_order)


class TestMeshAlgebra:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_weld_is_idempotent(self, seed):
        rng = np.random.default_rng(seed)
        from repro.grid.datasets import smooth_noise

        data = smooth_noise((10, 10, 10), 4.0, rng)
        mesh = marching_cubes(data, float(np.median(data)) + 1e-6)
        w1 = mesh.weld()
        w2 = w1.weld()
        assert w1.n_vertices == w2.n_vertices
        assert w1.n_triangles == w2.n_triangles

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**16), s=st.floats(0.5, 3.0))
    def test_volume_scales_cubically(self, seed, s):
        rng = np.random.default_rng(seed)
        from repro.grid.datasets import sphere_field

        vol = sphere_field((12, 12, 12))
        mesh = marching_cubes(vol.data, 0.6, origin=vol.origin, spacing=vol.spacing)
        scaled = mesh.scaled(s)
        assert scaled.enclosed_volume() == pytest.approx(
            mesh.enclosed_volume() * s**3, rel=1e-9
        )
        assert scaled.area() == pytest.approx(mesh.area() * s**2, rel=1e-9)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_translation_invariants(self, seed):
        rng = np.random.default_rng(seed)
        from repro.grid.datasets import sphere_field

        vol = sphere_field((12, 12, 12))
        mesh = marching_cubes(vol.data, 0.6)
        t = rng.normal(size=3) * 10
        moved = mesh.translated(t)
        assert moved.area() == pytest.approx(mesh.area(), rel=1e-12)
        assert moved.enclosed_volume() == pytest.approx(
            mesh.enclosed_volume(), rel=1e-6
        )


class TestExtractionInvariance:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_iso_complement_near_symmetry(self, seed):
        """Negating the field and the isovalue swaps inside/outside.  The
        ambiguous-face rule ('isolate positive corners') is deliberately
        *not* complement-symmetric — negation flips which diagonal pairs
        ambiguous faces connect — so the surfaces may differ in topology
        at ambiguous cells, but they must agree closely in measure and
        exactly in which lattice edges they cross."""
        rng = np.random.default_rng(seed)
        from repro.grid.datasets import smooth_noise

        data = smooth_noise((11, 11, 11), 4.0, rng)
        uniq = np.unique(data)
        q = len(uniq) // 2
        iso = float(0.5 * (uniq[q] + uniq[q + 1]))
        a = marching_cubes(data, iso)
        b = marching_cubes(-data, -iso)
        # Identical crossing-vertex sets (both use the same lattice edges).
        va = a.vertices[np.lexsort(a.vertices.T)]
        vb = b.vertices[np.lexsort(b.vertices.T)]
        assert np.allclose(va, vb)
        # Measures agree to the ambiguous-face tolerance.
        if a.n_triangles:
            assert abs(a.n_triangles - b.n_triangles) <= 0.05 * a.n_triangles + 8
            assert a.area() == pytest.approx(b.area(), rel=0.05)
