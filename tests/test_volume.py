"""Unit tests for the Volume container."""

import numpy as np
import pytest

from repro.grid.volume import Volume


class TestConstruction:
    def test_basic_properties(self):
        v = Volume(np.zeros((4, 5, 6), dtype=np.uint8), spacing=(2, 2, 2))
        assert v.shape == (4, 5, 6)
        assert v.dtype == np.uint8
        assert v.nbytes == 4 * 5 * 6
        assert v.n_cells == 3 * 4 * 5

    def test_rejects_non_3d(self):
        with pytest.raises(ValueError):
            Volume(np.zeros((4, 4)))

    def test_rejects_single_vertex_axis(self):
        with pytest.raises(ValueError):
            Volume(np.zeros((1, 4, 4)))

    def test_value_range(self):
        v = Volume(np.arange(8, dtype=np.float64).reshape(2, 2, 2))
        assert v.value_range() == (0.0, 7.0)


class TestQuantize:
    def test_full_range_mapping(self):
        data = np.linspace(0, 1, 27).reshape(3, 3, 3)
        q = Volume(data).quantize(np.uint8)
        assert q.dtype == np.uint8
        assert q.data.min() == 0
        assert q.data.max() == 255

    def test_constant_field_maps_to_zero(self):
        q = Volume(np.full((3, 3, 3), 5.0)).quantize(np.uint8)
        assert np.all(q.data == 0)

    def test_monotonicity_preserved(self):
        data = np.sort(np.random.default_rng(0).random(27)).reshape(3, 3, 3)
        q = Volume(data).quantize(np.uint16)
        assert np.all(np.diff(q.data.reshape(-1).astype(np.int64)) >= 0)

    def test_rejects_float_target(self):
        with pytest.raises(ValueError):
            Volume(np.zeros((2, 2, 2))).quantize(np.float32)


class TestDownsample:
    def test_shape_and_spacing(self):
        v = Volume(np.zeros((9, 9, 9)), spacing=(1, 1, 1))
        d = v.downsample(2)
        assert d.shape == (5, 5, 5)
        assert d.spacing == (2, 2, 2)

    def test_identity_factor(self):
        v = Volume(np.random.default_rng(1).random((4, 4, 4)))
        d = v.downsample(1)
        assert np.array_equal(d.data, v.data)

    def test_too_aggressive_raises(self):
        with pytest.raises(ValueError):
            Volume(np.zeros((3, 3, 3))).downsample(3)

    def test_bad_factor_raises(self):
        with pytest.raises(ValueError):
            Volume(np.zeros((4, 4, 4))).downsample(0)


class TestFromFunction:
    def test_samples_analytic_field(self):
        v = Volume.from_function(lambda x, y, z: x + y + z, (5, 5, 5))
        assert v.shape == (5, 5, 5)
        assert v.data[0, 0, 0] == pytest.approx(-3.0)
        assert v.data[-1, -1, -1] == pytest.approx(3.0)

    def test_bounds_set_spacing_and_origin(self):
        v = Volume.from_function(
            lambda x, y, z: x, (3, 3, 3), bounds=((0, 4), (0, 2), (0, 2))
        )
        assert v.spacing == (2.0, 1.0, 1.0)
        assert v.origin == (0.0, 0.0, 0.0)

    def test_world_coords(self):
        v = Volume.from_function(lambda x, y, z: x, (3, 3, 3), bounds=((0, 4), (0, 2), (0, 2)))
        pts = v.world_coords(np.array([[1, 1, 1]]))
        assert np.allclose(pts, [[2.0, 1.0, 1.0]])

    def test_broadcast_scalar_field(self):
        # fn returning a broadcastable (not full-size) array still works
        v = Volume.from_function(lambda x, y, z: x * np.ones_like(y) * np.ones_like(z), (4, 3, 2))
        assert v.shape == (4, 3, 2)


class TestMeanDownsample:
    def test_mean_pooling_averages(self):
        data = np.zeros((4, 4, 4))
        data[::2, ::2, ::2] = 8.0  # one of each 2^3 block corner set
        d = Volume(data).downsample(2, method="mean")
        assert d.shape == (2, 2, 2)
        assert np.allclose(d.data, 1.0)  # 8 / 8 voxels

    def test_mean_preserves_integer_dtype(self):
        rng = np.random.default_rng(0)
        v = Volume(rng.integers(0, 255, (8, 8, 8)).astype(np.uint8))
        d = v.downsample(2, method="mean")
        assert d.dtype == np.uint8

    def test_mean_smoother_than_stride(self):
        rng = np.random.default_rng(1)
        noisy = Volume(rng.standard_normal((16, 16, 16)))
        s = noisy.downsample(2, method="stride")
        m = noisy.downsample(2, method="mean")
        assert m.data.std() < s.data.std()

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            Volume(np.zeros((4, 4, 4))).downsample(2, method="median")

    def test_spacing_scaled(self):
        d = Volume(np.zeros((8, 8, 8)), spacing=(1, 2, 3)).downsample(2, method="mean")
        assert d.spacing == (2, 4, 6)
