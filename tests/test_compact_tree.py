"""Unit + property tests for the compact interval tree (the core index)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compact_tree import BrickPrefixScan, CompactIntervalTree, SequentialRun
from repro.core.intervals import IntervalSet

from tests.conftest import random_intervals


def build(vmin, vmax, ids=None):
    vmin = np.asarray(vmin)
    vmax = np.asarray(vmax)
    if ids is None:
        ids = np.arange(len(vmin), dtype=np.uint32)
    iv = IntervalSet(vmin=vmin, vmax=vmax, ids=np.asarray(ids, dtype=np.uint32))
    return iv, CompactIntervalTree.build(iv)


class TestConstruction:
    def test_empty_set(self):
        iv, tree = build([], [])
        assert tree.n_nodes == 0
        assert tree.n_records == 0
        assert tree.query_count(0.5) == 0
        assert tree.plan_query(0.5).runs == []

    def test_single_interval(self):
        iv, tree = build([2], [7])
        tree.validate(iv)
        assert tree.n_nodes == 1
        assert tree.n_bricks == 1
        assert tree.query_count(2) == 1
        assert tree.query_count(7) == 1
        assert tree.query_count(1) == 0
        assert tree.query_count(8) == 0

    def test_degenerate_intervals_allowed(self):
        """vmin == vmax intervals (normally culled) still index correctly."""
        iv, tree = build([3, 3, 5], [3, 4, 5])
        tree.validate(iv)
        assert tree.query_count(3) == 2
        assert tree.query_count(5) == 1

    def test_height_is_logarithmic(self, sphere_intervals):
        tree = CompactIntervalTree.build(sphere_intervals)
        n = len(tree.endpoints)
        assert tree.height() <= int(np.ceil(np.log2(max(n, 2)))) + 1

    def test_validate_passes_on_real_data(self, sphere_intervals):
        tree = CompactIntervalTree.build(sphere_intervals)
        tree.validate(sphere_intervals)

    def test_records_partition_input(self, sphere_intervals):
        tree = CompactIntervalTree.build(sphere_intervals)
        assert tree.n_records == len(sphere_intervals)
        assert np.array_equal(
            np.sort(tree.record_order), np.arange(len(sphere_intervals))
        )

    def test_brick_grouping_by_vmax(self):
        """All intervals with the same (node, vmax) land in one brick."""
        iv, tree = build([0, 0, 0, 1], [5, 5, 5, 5])
        # all contain median -> one node; same vmax -> one brick
        assert tree.n_nodes == 1
        assert tree.n_bricks == 1
        assert tree.brick_count[0] == 4

    def test_brick_vmin_ascending(self):
        iv, tree = build([3, 0, 2, 1], [5, 5, 5, 5])
        members = tree.record_vmins
        assert np.all(np.diff(members) >= 0)


class TestQueryAgainstOracle:
    @pytest.mark.parametrize("lam", [-1.0, 0.0, 0.2, 0.5, 0.87, 1.3, 1.74, 5.0])
    def test_sphere_dataset(self, sphere_intervals, lam):
        tree = CompactIntervalTree.build(sphere_intervals)
        assert np.array_equal(tree.query_ids(lam), sphere_intervals.stabbing_ids(lam))

    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(1, 120),
        n_values=st.integers(1, 24),
        seed=st.integers(0, 2**16),
        lam_num=st.integers(-2, 26),
    )
    def test_random_integer_intervals(self, n, n_values, seed, lam_num):
        rng = np.random.default_rng(seed)
        iv = random_intervals(rng, n, n_values)
        tree = CompactIntervalTree.build(iv)
        tree.validate(iv)
        lam = float(lam_num)
        assert np.array_equal(tree.query_ids(lam), iv.stabbing_ids(lam))

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**16), lam=st.floats(-0.5, 1.5, allow_nan=False))
    def test_random_float_intervals(self, seed, lam):
        rng = np.random.default_rng(seed)
        a = rng.random(60)
        b = rng.random(60)
        iv = IntervalSet(
            vmin=np.minimum(a, b), vmax=np.maximum(a, b),
            ids=np.arange(60, dtype=np.uint32),
        )
        tree = CompactIntervalTree.build(iv)
        assert np.array_equal(tree.query_ids(lam), iv.stabbing_ids(lam))

    def test_query_at_exact_split_value(self):
        """lam == a node's split: all node intervals are active (Case 1)."""
        iv, tree = build([0, 2, 4], [4, 6, 8])
        split = float(tree.nodes[0].split)
        assert np.array_equal(tree.query_ids(split), iv.stabbing_ids(split))


class TestQueryPlanShape:
    def test_case1_produces_sequential_runs(self):
        # One node, several bricks; lam above split -> single sequential run.
        iv, tree = build([0, 0, 1], [5, 6, 7])
        split = float(tree.nodes[0].split)
        plan = tree.plan_query(split + 0.5)
        seq = [r for r in plan.runs if isinstance(r, SequentialRun)]
        assert plan.case1_nodes >= 1
        assert len(seq) >= 1

    def test_case2_produces_prefix_scans(self):
        iv, tree = build([0, 0, 1], [5, 6, 7])
        split = float(tree.nodes[0].split)
        plan = tree.plan_query(split - 0.5)
        scans = [r for r in plan.runs if isinstance(r, BrickPrefixScan)]
        assert len(scans) >= 1

    def test_case2_skips_empty_bricks_without_io(self):
        # Bricks whose min vmin exceeds lam are skipped in the plan itself.
        iv, tree = build([0, 4], [10, 10])
        # One node (both contain median); one brick (same vmax).
        # Query lam=1 (< split): brick min_vmin = 0 <= 1 -> scanned.
        plan = tree.plan_query(1.0)
        assert plan.bricks_skipped == 0
        # Make a brick with min_vmin 4 via distinct vmax values.
        iv2, tree2 = build([0, 4], [10, 9])
        plan2 = tree2.plan_query(1.0)
        # The (vmax=9, min_vmin=4) brick must be skipped.
        assert plan2.bricks_skipped == 1

    def test_case1_run_is_contiguous_prefix(self, sphere_intervals):
        tree = CompactIntervalTree.build(sphere_intervals)
        lam = float(tree.nodes[0].split)
        for run in tree.plan_query(lam).runs:
            if isinstance(run, SequentialRun):
                node = tree.nodes[run.node_id]
                assert run.start == node.run_start
                assert run.count <= node.run_count

    def test_nodes_visited_bounded_by_height(self, sphere_intervals):
        tree = CompactIntervalTree.build(sphere_intervals)
        plan = tree.plan_query(0.9)
        assert plan.nodes_visited <= tree.height() + 1


class TestSizeAccounting:
    def test_paper_6kb_figure_regime(self):
        """One-byte scalars: the index must stay in the KB range no matter
        how many intervals there are (size depends on n, not N)."""
        rng = np.random.default_rng(0)
        iv = random_intervals(rng, 200_000, n_values=256)
        tree = CompactIntervalTree.build(iv)
        # <= (n/2) * ceil(log2 n) entries; generous envelope: 8 KB.
        assert tree.index_size_bytes(value_bytes=1) < 16_384
        assert tree.n_index_entries <= 128 * 9

    def test_entry_bound_nlogn(self):
        rng = np.random.default_rng(1)
        iv = random_intervals(rng, 5000, n_values=64)
        tree = CompactIntervalTree.build(iv)
        n = len(tree.endpoints)
        assert tree.n_index_entries <= (n / 2) * (np.log2(n) + 2)

    def test_size_grows_with_value_bytes(self, sphere_intervals):
        tree = CompactIntervalTree.build(sphere_intervals)
        assert tree.index_size_bytes(value_bytes=2) > tree.index_size_bytes(value_bytes=1)
