"""Tests for the pipeline's batch/ROI/analysis conveniences and the
bench report assembler."""

import numpy as np
import pytest

from repro.bench.report import build_report
from repro.grid.datasets import sphere_field
from repro.pipeline import IsosurfacePipeline


@pytest.fixture(scope="module")
def pipe():
    return IsosurfacePipeline.from_volume(sphere_field((25, 25, 25)), metacell_shape=(5, 5, 5))


class TestExtractMany:
    def test_matches_individual_extracts(self, pipe):
        lams = [0.4, 0.6, 0.8]
        many = pipe.extract_many(lams)
        for lam in lams:
            single = pipe.extract(lam)
            assert many[lam].n_triangles == single.mesh.n_triangles
            assert many[lam].area() == pytest.approx(single.mesh.area())

    def test_includes_empty_isovalues(self, pipe):
        many = pipe.extract_many([-1.0, 0.6])
        assert many[-1.0].n_triangles == 0
        assert many[0.6].n_triangles > 0


class TestExtractROI:
    def test_box_restricts_geometry(self, pipe):
        roi = pipe.extract_roi(0.7, [0, -2, -2], [2, 2, 2])
        full = pipe.extract(0.7)
        assert 0 < roi.mesh.n_triangles < full.mesh.n_triangles


class TestEstimate:
    def test_prediction_matches_execution(self, pipe):
        for lam in (0.4, 0.9):
            est = pipe.estimate_cost(lam)
            res = pipe.extract(lam)
            assert est.blocks == res.query.io_stats.blocks_read
            assert est.n_active == res.n_active_metacells


class TestSuggest:
    def test_returns_requested_targets(self, pipe):
        picks = pipe.suggest_isovalues((0.1, 0.5))
        assert set(picks) == {0.1, 0.5}
        lo, hi = pipe.isovalue_range()
        for iso in picks.values():
            assert lo <= iso <= hi


class TestReport:
    def test_builds_from_outputs(self, tmp_path):
        (tmp_path / "table2_single_node.txt").write_text("TABLE2 CONTENT")
        (tmp_path / "fig6_speedups.txt").write_text("FIG6 CONTENT")
        report = build_report(tmp_path)
        text = report.read_text()
        assert "TABLE2 CONTENT" in text
        assert "FIG6 CONTENT" in text
        assert "Missing outputs" in text  # others not present

    def test_empty_dir(self, tmp_path):
        report = build_report(tmp_path)
        assert "Missing outputs" in report.read_text()
