"""Tests for the serial IsosurfacePipeline façade."""

import numpy as np
import pytest

from repro.grid.datasets import sphere_field, torus_field
from repro.pipeline import IsosurfacePipeline


@pytest.fixture(scope="module")
def pipe():
    return IsosurfacePipeline.from_volume(sphere_field((33, 33, 33)), metacell_shape=(5, 5, 5))


class TestExtraction:
    def test_mesh_is_correct_surface(self, pipe):
        res = pipe.extract(0.6)
        welded = res.mesh.weld()
        welded.validate_watertight()
        assert welded.euler_characteristic() == 2
        r = np.linalg.norm(welded.vertices, axis=1)
        assert np.all(np.abs(r - 0.6) < 0.06)

    def test_matches_direct_marching_cubes(self, pipe):
        from repro.mc.marching_cubes import marching_cubes

        vol = sphere_field((33, 33, 33))
        direct = marching_cubes(vol.data, 0.6, origin=vol.origin, spacing=vol.spacing)
        res = pipe.extract(0.6)
        assert res.mesh.n_triangles == direct.n_triangles
        assert res.mesh.area() == pytest.approx(direct.area(), rel=1e-9)

    def test_empty_extraction(self, pipe):
        res = pipe.extract(-5.0)
        assert res.n_triangles == 0
        assert res.n_active_metacells == 0
        assert res.metrics.io_time == 0.0

    def test_metrics_populated(self, pipe):
        res = pipe.extract(0.6)
        m = res.metrics
        assert m.n_active_metacells == res.query.n_active
        assert m.n_cells_examined == m.n_active_metacells * 4**3
        assert m.total_time == pytest.approx(
            m.io_time + m.triangulation_time + m.render_time
        )

    def test_render(self, pipe):
        res = pipe.extract(0.6, render=True, image_size=(96, 96))
        assert res.image is not None
        assert res.image.coverage() > 0.05

    def test_isovalue_range(self, pipe):
        lo, hi = pipe.isovalue_range()
        assert 0.0 <= lo < hi <= np.sqrt(3) + 1e-9

    def test_report_accessible(self, pipe):
        assert pipe.report.n_metacells_stored == pipe.dataset.n_records


class TestRepeatedQueries:
    def test_many_isovalues_same_dataset(self, pipe):
        """The out-of-core promise: preprocess once, query many."""
        counts = [pipe.extract(lam).n_triangles for lam in (0.3, 0.6, 0.9, 1.2)]
        assert all(c > 0 for c in counts)

    def test_query_does_not_mutate_index(self, pipe):
        before = pipe.dataset.tree.index_size_bytes()
        pipe.extract(0.5)
        pipe.extract(1.0)
        assert pipe.dataset.tree.index_size_bytes() == before


class TestOtherTopology:
    def test_torus_through_pipeline(self):
        p = IsosurfacePipeline.from_volume(torus_field((49, 49, 33)), metacell_shape=(5, 5, 5))
        res = p.extract(0.18)
        welded = res.mesh.weld()
        welded.validate_watertight()
        assert welded.euler_characteristic() == 0
