"""Tests for the time-varying index (Section 5.2)."""

import numpy as np
import pytest

from repro.core.timevarying import TimeVaryingIndex
from repro.grid.rm_instability import rm_time_series
from repro.io.diskfile import FileBackedDevice


@pytest.fixture(scope="module")
def tv_index():
    series = rm_time_series([10, 50, 90], shape=(25, 25, 21), n_steps=100)
    return TimeVaryingIndex.from_series(series, p=1, metacell_shape=(5, 5, 5))


class TestConstruction:
    def test_steps_recorded(self, tv_index):
        assert tv_index.steps == [10, 50, 90]
        assert len(tv_index) == 3
        assert 50 in tv_index
        assert 51 not in tv_index

    def test_duplicate_step_rejected(self, tv_index):
        from repro.grid.rm_instability import rm_timestep

        with pytest.raises(ValueError):
            tv_index.add_step(10, rm_timestep(10, shape=(25, 25, 21), n_steps=100))

    def test_missing_step_raises_keyerror(self, tv_index):
        with pytest.raises(KeyError, match="not indexed"):
            tv_index.datasets(42)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            TimeVaryingIndex(p=0)


class TestQuery:
    def test_query_matches_per_step_oracle(self, tv_index):
        from repro.core.intervals import IntervalSet
        from repro.grid.metacell import partition_metacells
        from repro.grid.rm_instability import rm_timestep

        for t in (10, 90):
            vol = rm_timestep(t, shape=(25, 25, 21), n_steps=100)
            iv = IntervalSet.from_partition(partition_metacells(vol, (5, 5, 5)))
            results = tv_index.query(t, 128.0)
            got = np.sort(np.concatenate([r.records.ids for r in results]))
            assert np.array_equal(got, iv.stabbing_ids(128.0))

    def test_striped_time_varying(self):
        series = rm_time_series([20, 60], shape=(25, 25, 21), n_steps=100)
        tvi = TimeVaryingIndex.from_series(series, p=3, metacell_shape=(5, 5, 5))
        results = tvi.query(20, 100.0)
        assert len(results) == 3
        total = sum(r.n_active for r in results)
        serial = TimeVaryingIndex.from_series(
            rm_time_series([20], shape=(25, 25, 21), n_steps=100),
            p=1,
            metacell_shape=(5, 5, 5),
        )
        assert total == serial.query(20, 100.0)[0].n_active


class TestAccounting:
    def test_total_index_size_sums_steps(self, tv_index):
        per_step = [
            ds.tree.index_size_bytes()
            for t in tv_index.steps
            for ds in tv_index.datasets(t)
        ]
        assert tv_index.total_index_size_bytes() == sum(per_step)

    def test_index_size_stays_small(self, tv_index):
        """One-byte data: per-step index must be KBs (the paper's 1.6 MB /
        270 steps => ~6 KB per step figure)."""
        assert tv_index.total_index_size_bytes() < 3 * 16_384

    def test_device_factory(self, tmp_path):
        created = []

        def factory(step, rank):
            dev = FileBackedDevice(tmp_path / f"s{step}_n{rank}.dat")
            created.append(dev)
            return dev

        series = rm_time_series([5], shape=(17, 17, 13), n_steps=10)
        tvi = TimeVaryingIndex.from_series(
            series, p=2, metacell_shape=(5, 5, 5), device_factory=factory
        )
        assert len(created) == 2
        assert (tmp_path / "s5_n0.dat").exists()
        results = tvi.query(5, 128.0)
        assert len(results) == 2
        for dev in created:
            dev.close()

    def test_iter_steps(self, tv_index):
        pairs = list(tv_index.iter_steps())
        assert [t for t, _ in pairs] == [10, 50, 90]


class TestExtractConvenience:
    def test_extract_meshes(self, tv_index):
        meshes = tv_index.extract(50, 128.0)
        assert len(meshes) == 1
        assert meshes[0].n_triangles > 0

    def test_extract_empty_iso(self, tv_index):
        meshes = tv_index.extract(50, -5.0)
        assert all(m.n_triangles == 0 for m in meshes)

    def test_striped_extract_union(self):
        from repro.mc.geometry import TriangleMesh

        series = rm_time_series([40], shape=(25, 25, 21), n_steps=100)
        tvi = TimeVaryingIndex.from_series(series, p=3, metacell_shape=(5, 5, 5))
        meshes = tvi.extract(40, 128.0)
        total = TriangleMesh.concat(meshes)
        serial = TimeVaryingIndex.from_series(
            rm_time_series([40], shape=(25, 25, 21), n_steps=100),
            metacell_shape=(5, 5, 5),
        ).extract(40, 128.0)[0]
        assert total.n_triangles == serial.n_triangles


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        import numpy as np

        series = rm_time_series([10, 30], shape=(25, 25, 21), n_steps=100)
        tvi = TimeVaryingIndex.from_series(series, p=2, metacell_shape=(5, 5, 5))
        tvi.save(tmp_path / "tv")
        loaded = TimeVaryingIndex.load(tmp_path / "tv")
        assert loaded.steps == [10, 30]
        assert loaded.p == 2
        for t in (10, 30):
            ref = tvi.query(t, 120.0)
            got = loaded.query(t, 120.0)
            a = np.sort(np.concatenate([r.records.ids for r in ref]))
            b = np.sort(np.concatenate([r.records.ids for r in got]))
            assert np.array_equal(a, b)
        for t in loaded.steps:
            for ds in loaded.datasets(t):
                ds.device.close()

    def test_load_missing_dir(self, tmp_path):
        import pytest as _pytest

        with _pytest.raises(FileNotFoundError):
            TimeVaryingIndex.load(tmp_path / "nope")

    def test_save_preserves_index_size(self, tmp_path):
        series = rm_time_series([5], shape=(17, 17, 13), n_steps=10)
        tvi = TimeVaryingIndex.from_series(series, metacell_shape=(5, 5, 5))
        before = tvi.total_index_size_bytes()
        tvi.save(tmp_path / "tv2")
        loaded = TimeVaryingIndex.load(tmp_path / "tv2")
        assert loaded.total_index_size_bytes() == before
        for t in loaded.steps:
            for ds in loaded.datasets(t):
                ds.device.close()
