"""Tests for the simulated cluster: the paper's parallel claims."""

import numpy as np
import pytest

from repro.grid.datasets import sphere_field
from repro.grid.rm_instability import rm_timestep
from repro.parallel.cluster import ExtractRequest, SimulatedCluster
from repro.parallel.metrics import efficiency, speedup
from repro.render.tiled_display import TileLayout


@pytest.fixture(scope="module")
def rm_volume():
    return rm_timestep(150, shape=(41, 41, 37))


@pytest.fixture(scope="module")
def scale_perf():
    """Performance model for scaled-down volumes.

    At test scale, bricks hold ~10 records instead of the paper's
    thousands, so physical 8 ms seeks would swamp everything and hide
    the algorithmic behaviour the paper measures (triangulation-bound
    execution).  Scaling seek latency and the CPU rate to the data size
    restores the paper's stage-time *ratios*; see
    repro.bench.harness.scaled_perf_model for the derivation.
    """
    from repro.io.cost_model import IOCostModel
    from repro.parallel.perfmodel import CPUModel, PerformanceModel

    return PerformanceModel(
        disk=IOCostModel(block_size=8192, bandwidth=50e6, seek_latency=2e-5),
        cpu=CPUModel(cell_rate=1e6, per_triangle=8e-7),
    )


@pytest.fixture(scope="module")
def clusters(rm_volume, scale_perf):
    return {
        p: SimulatedCluster(
            rm_volume, p, metacell_shape=(5, 5, 5), perf=scale_perf, image_size=(64, 64)
        )
        for p in (1, 2, 4, 8)
    }


class TestSerialParallelEquivalence:
    @pytest.mark.parametrize("p", [2, 4, 8])
    def test_triangle_totals_equal(self, clusters, p):
        lam = 128.0
        serial = clusters[1].extract(lam)
        par = clusters[p].extract(lam)
        assert par.n_triangles == serial.n_triangles
        assert par.n_active_metacells == serial.n_active_metacells

    def test_triangle_multisets_equal(self, clusters):
        """The union of per-node meshes is geometrically the serial mesh."""
        lam = 128.0
        serial = clusters[1].extract(lam, ExtractRequest(keep_meshes=True))
        par = clusters[4].extract(lam, ExtractRequest(keep_meshes=True))

        def tri_keys(meshes):
            pts = np.concatenate(
                [m.vertices[m.faces].reshape(-1, 9) for m in meshes if m.n_triangles]
            )
            # Canonicalize triangle vertex order then sort rows.
            tris = pts.reshape(-1, 3, 3)
            order = np.lexsort(
                (tris[:, :, 2], tris[:, :, 1], tris[:, :, 0]), axis=1
            )
            canon = np.take_along_axis(tris, order[:, :, None], axis=1).reshape(-1, 9)
            return canon[np.lexsort(canon.T[::-1])]

        a = tri_keys(serial.meshes)
        b = tri_keys(par.meshes)
        assert np.allclose(a, b)

    def test_no_work_inflation(self, clusters):
        """Total cells examined across nodes equals the serial count (the
        paper: 'almost no overhead in the total amount of work')."""
        lam = 100.0
        serial = clusters[1].extract(lam)
        for p in (2, 4, 8):
            par = clusters[p].extract(lam)
            total = sum(n.n_cells_examined for n in par.nodes)
            assert total == serial.nodes[0].n_cells_examined


class TestLoadBalance:
    @pytest.mark.parametrize("lam", [60.0, 100.0, 128.0, 180.0, 215.0])
    def test_metacell_balance(self, clusters, lam):
        res = clusters[4].extract(lam)
        bal = res.metacell_balance()
        if bal.total == 0:
            pytest.skip("no active metacells at this isovalue")
        # max within 25% of mean at these sizes (paper: 'very good').
        assert bal.max_over_mean < 1.25

    @pytest.mark.parametrize("lam", [100.0, 128.0, 180.0])
    def test_triangle_balance(self, clusters, lam):
        res = clusters[8].extract(lam)
        bal = res.triangle_balance()
        if bal.total < 800:
            pytest.skip("too few triangles for a balance statement")
        assert bal.max_over_mean < 1.4


class TestScaling:
    def test_speedup_grows_with_p(self, clusters):
        lam = 128.0
        times = {p: clusters[p].extract(lam).total_time for p in (1, 2, 4, 8)}
        assert times[2] < times[1]
        assert times[4] < times[2]
        s4 = speedup(times[1], times[4])
        s8 = speedup(times[1], times[8])
        assert 2.0 < s4 <= 4.5
        assert s8 > s4

    def test_efficiency_reasonable(self, clusters):
        lam = 128.0
        t1 = clusters[1].extract(lam).total_time
        t4 = clusters[4].extract(lam).total_time
        assert efficiency(t1, t4, 4) > 0.5

    def test_composite_time_is_minor(self, clusters):
        """The paper: compositing moves orders of magnitude less data than
        the triangles and is not a noticeable overhead."""
        res = clusters[4].extract(128.0)
        node_max = max(n.total_time for n in res.nodes)
        assert res.composite_time < 0.5 * node_max


class TestRendering:
    def test_render_produces_image(self, clusters):
        res = clusters[4].extract(128.0, ExtractRequest(render=True))
        assert res.image is not None
        assert res.image.coverage() > 0.01
        assert res.meshes is not None

    def test_tiled_render(self, clusters):
        layout = TileLayout(2, 2, 256, 256)
        res = clusters[4].extract(
            128.0, ExtractRequest(render=True, tile_layout=layout)
        )
        assert res.image is not None
        assert res.composite_bytes == 4 * 256 * 256 * 16

    def test_render_without_geometry_raises(self, clusters):
        with pytest.raises(ValueError, match="no geometry"):
            clusters[2].extract(1.0, ExtractRequest(render=True))


class TestMetrics:
    def test_rate_and_times_positive(self, clusters):
        res = clusters[2].extract(128.0)
        assert res.total_time > 0
        assert res.triangle_rate > 0
        for n in res.nodes:
            assert n.io_time >= 0
            assert n.triangulation_time > 0
            assert n.measured_seconds > 0

    def test_report_shared(self, clusters):
        rep = clusters[4].report
        assert rep.n_metacells_stored > 0

    def test_invalid_p(self, rm_volume):
        with pytest.raises(ValueError):
            SimulatedCluster(rm_volume, 0)

    def test_sweep(self, clusters):
        out = clusters[2].sweep([100.0, 150.0])
        assert len(out) == 2
        assert out[0].lam == 100.0


class TestSmoothRendering:
    def test_smooth_render_produces_image(self, clusters):
        res = clusters[4].extract(128.0, ExtractRequest(render=True, smooth=True))
        assert res.image is not None
        assert res.image.coverage() > 0.01

    def test_smooth_differs_from_flat(self, clusters):
        flat = clusters[2].extract(128.0, ExtractRequest(render=True, smooth=False))
        smooth = clusters[2].extract(
            128.0, ExtractRequest(render=True, smooth=True)
        )
        # Same silhouette (depth), different shading.
        import numpy as np

        assert np.array_equal(
            np.isfinite(flat.image.depth), np.isfinite(smooth.image.depth)
        )
        assert not np.array_equal(flat.image.color, smooth.image.color)
