"""Failure injection and degenerate-input tests across the stack."""

import numpy as np
import pytest

from repro.core.builder import build_indexed_dataset
from repro.core.compact_tree import CompactIntervalTree
from repro.core.intervals import IntervalSet
from repro.core.query import QueryOptions, execute_query
from repro.grid.datasets import sphere_field
from repro.grid.volume import Volume
from repro.io.faults import (
    BrickCorruptionError,
    FaultInjectingDevice,
    FaultPlan,
    RetryExhaustedError,
    RetryPolicy,
)
from repro.pipeline import IsosurfacePipeline


class TestDegenerateVolumes:
    def test_constant_volume_yields_empty_dataset(self):
        vol = Volume(np.full((9, 9, 9), 7, dtype=np.uint8))
        ds = build_indexed_dataset(vol, (5, 5, 5))
        assert ds.n_records == 0
        res = execute_query(ds, 7.0)
        assert res.n_active == 0

    def test_constant_volume_pipeline_range_raises(self):
        vol = Volume(np.full((9, 9, 9), 7, dtype=np.uint8))
        pipe = IsosurfacePipeline.from_volume(vol, metacell_shape=(5, 5, 5))
        with pytest.raises(ValueError, match="no non-constant"):
            pipe.isovalue_range()

    def test_minimal_volume(self):
        vol = Volume(np.arange(8, dtype=np.uint8).reshape(2, 2, 2))
        ds = build_indexed_dataset(vol, (3, 3, 3))  # padding kicks in
        res = execute_query(ds, 3.5)
        assert res.n_active == 1

    def test_two_value_volume(self):
        data = np.zeros((9, 9, 9), dtype=np.uint8)
        data[4:, :, :] = 255
        ds = build_indexed_dataset(Volume(data), (5, 5, 5))
        # Any isovalue in (0, 255) hits the boundary metacells.
        for lam in (0.5, 100.0, 254.5):
            res = execute_query(ds, lam)
            assert res.n_active > 0

    def test_float_nan_rejected_in_intervals(self):
        with pytest.raises(ValueError):
            # NaN breaks vmin <= vmax; must be rejected, not silently indexed.
            IntervalSet(
                vmin=np.array([np.nan]),
                vmax=np.array([1.0]),
                ids=np.array([0], dtype=np.uint32),
            )


class TestCorruptedStore:
    def test_truncated_store_detected(self, sphere_volume):
        ds = build_indexed_dataset(sphere_volume, (5, 5, 5))
        # Chop the store mid-record through the public damage API.
        ds.device.truncate(ds.device.size - 37)
        with pytest.raises((IOError, ValueError)):
            execute_query(ds, 1.2)

    def test_out_of_bounds_reads_rejected(self, sphere_dataset):
        with pytest.raises(ValueError):
            sphere_dataset.device.read(sphere_dataset.device.size - 1, 100)

    def test_truncate_validates_bounds(self, sphere_volume):
        ds = build_indexed_dataset(sphere_volume, (5, 5, 5))
        with pytest.raises(ValueError):
            ds.device.truncate(-1)
        with pytest.raises(ValueError):
            ds.device.truncate(ds.device.size + 1)

    def test_query_on_foreign_offsets(self, sphere_dataset):
        """A dataset whose base offset is wrong must fail loudly, not
        return garbage silently: decoded record vmins would violate the
        brick invariant and the mismatch surfaces as an error or an
        empty/incorrect decode — we check the device guards the bounds."""
        sphere_dataset.base_offset = sphere_dataset.device.size  # corrupt
        with pytest.raises((ValueError, BrickCorruptionError)):
            execute_query(sphere_dataset, 0.8)

    def test_persistent_corruption_caught_by_checksum(self, sphere_volume):
        """Flip bits inside a record the query plan actually reads: the
        CRC32 tables must catch it and — the damage being persistent —
        the bounded re-read repair must escalate to a typed error."""
        ds = build_indexed_dataset(sphere_volume, (5, 5, 5))
        plan = ds.tree.plan_query(0.8)
        start = plan.runs[0].start  # first record the plan covers
        ds.device = FaultInjectingDevice(
            ds.device,
            FaultPlan(corrupt_extents=((ds.record_offset(start) + 17, 4),)),
        )
        with pytest.raises(BrickCorruptionError, match="CRC32"):
            execute_query(ds, 0.8)
        assert ds.device.stats.checksum_failures > 0
        assert ds.device.stats.retries > 0

    def test_corruption_missed_without_checksums(self, sphere_volume):
        """Control for the test above: built without checksum tables, the
        same corruption silently decodes — which is exactly why the
        tables exist."""
        ds = build_indexed_dataset(sphere_volume, (5, 5, 5), checksum=False)
        plan = ds.tree.plan_query(0.8)
        start = plan.runs[0].start
        ds.device = FaultInjectingDevice(
            ds.device,
            FaultPlan(corrupt_extents=((ds.record_offset(start) + 17, 4),)),
        )
        execute_query(ds, 0.8)  # no error: garbage accepted
        assert ds.device.stats.checksum_failures == 0

    def test_retry_exhaustion_raises_typed_error(self, sphere_volume):
        """A transient-error burst longer than the retry budget must
        surface as RetryExhaustedError, with every retry accounted."""
        ds = build_indexed_dataset(sphere_volume, (5, 5, 5))
        ds.device = FaultInjectingDevice(
            ds.device,
            FaultPlan(seed=3, transient_error_rate=1.0, transient_burst=100),
        )
        with pytest.raises(RetryExhaustedError):
            execute_query(
                ds, 0.8, QueryOptions(retry_policy=RetryPolicy(max_retries=2))
            )
        assert ds.device.stats.retries == 2

    def test_transient_faults_recovered_with_identical_result(
        self, sphere_volume
    ):
        """Sparse transient errors must be absorbed by retries: same
        records as the clean run, with the retry cost on the meter."""
        clean = build_indexed_dataset(sphere_volume, (5, 5, 5))
        want = execute_query(clean, 0.8)
        ds = build_indexed_dataset(sphere_volume, (5, 5, 5))
        ds.device = FaultInjectingDevice(
            ds.device, FaultPlan(seed=11, transient_error_rate=0.2)
        )
        got = execute_query(ds, 0.8)
        assert np.array_equal(got.records.ids, want.records.ids)
        assert np.array_equal(got.records.values, want.records.values)
        assert got.io_stats.retries > 0
        assert got.io_stats.fault_delay > 0.0
        # Honest accounting: the retried run models strictly slower.
        cm = clean.device.cost_model
        assert got.io_stats.read_time(cm) > want.io_stats.read_time(cm)


class TestIsovalueEdges:
    @pytest.fixture(scope="class")
    def ds(self):
        return build_indexed_dataset(sphere_field((25, 25, 25)), (5, 5, 5))

    def test_below_global_min(self, ds):
        assert execute_query(ds, float(ds.tree.endpoints[0]) - 1).n_active == 0

    def test_above_global_max(self, ds):
        assert execute_query(ds, float(ds.tree.endpoints[-1]) + 1).n_active == 0

    def test_exactly_global_min(self, ds):
        lam = float(ds.tree.endpoints[0])
        res = execute_query(ds, lam)
        assert res.n_active >= 1

    def test_exactly_global_max(self, ds):
        lam = float(ds.tree.endpoints[-1])
        res = execute_query(ds, lam)
        assert res.n_active >= 1

    def test_every_endpoint_queryable(self, ds):
        """Query exactly at every distinct endpoint: counts must match the
        brute-force oracle (off-by-one hotspot)."""
        from repro.grid.metacell import partition_metacells

        part = partition_metacells(sphere_field((25, 25, 25)), (5, 5, 5))
        iv = IntervalSet.from_partition(part)
        for v in ds.tree.endpoints[:: max(1, len(ds.tree.endpoints) // 16)]:
            res = execute_query(ds, float(v))
            assert res.n_active == iv.stabbing_count(float(v))


class TestTreeRobustness:
    def test_all_identical_intervals(self):
        iv = IntervalSet(
            vmin=np.full(50, 2.0),
            vmax=np.full(50, 5.0),
            ids=np.arange(50, dtype=np.uint32),
        )
        tree = CompactIntervalTree.build(iv)
        tree.validate(iv)
        assert tree.n_bricks == 1
        assert tree.query_count(3.0) == 50
        assert tree.query_count(5.5) == 0

    def test_all_point_intervals(self):
        iv = IntervalSet(
            vmin=np.arange(20, dtype=np.float64),
            vmax=np.arange(20, dtype=np.float64),
            ids=np.arange(20, dtype=np.uint32),
        )
        tree = CompactIntervalTree.build(iv)
        tree.validate(iv)
        for lam in range(20):
            assert tree.query_count(float(lam)) == 1
        assert tree.query_count(0.5) == 0

    def test_nested_intervals(self):
        n = 30
        iv = IntervalSet(
            vmin=np.arange(n, dtype=np.float64),
            vmax=(2 * n - np.arange(n)).astype(np.float64),
            ids=np.arange(n, dtype=np.uint32),
        )
        tree = CompactIntervalTree.build(iv)
        tree.validate(iv)
        assert tree.query_count(float(n)) == n  # all nested around center
