"""Tests for gradient-based smooth normals and Gouraud rendering."""

import numpy as np
import pytest

from repro.grid.datasets import sphere_field
from repro.grid.volume import Volume
from repro.mc.marching_cubes import marching_cubes
from repro.mc.normals import (
    isosurface_normals,
    sample_gradient,
    smooth_mesh_normals,
    volume_gradient,
)
from repro.render.camera import Camera
from repro.render.rasterizer import Framebuffer, render_mesh, render_mesh_smooth


class TestGradient:
    def test_linear_field_constant_gradient(self):
        vol = Volume.from_function(lambda x, y, z: 2 * x + 3 * y - z, (9, 9, 9))
        g = volume_gradient(vol.data, vol.spacing)
        assert np.allclose(g[..., 0], 2.0, atol=1e-9)
        assert np.allclose(g[..., 1], 3.0, atol=1e-9)
        assert np.allclose(g[..., 2], -1.0, atol=1e-9)

    def test_sample_gradient_interpolates(self):
        vol = Volume.from_function(lambda x, y, z: x * x + 0 * y + 0 * z, (17, 17, 17))
        pts = np.array([[0.5, 0.0, 0.0], [-0.25, 0.0, 0.0]])
        g = sample_gradient(vol.data, pts, vol.spacing, vol.origin)
        assert g[0, 0] == pytest.approx(1.0, abs=0.05)   # d(x^2)/dx = 2x
        assert g[1, 0] == pytest.approx(-0.5, abs=0.05)

    def test_out_of_bounds_points_clamped(self):
        vol = sphere_field((9, 9, 9))
        pts = np.array([[99.0, 99.0, 99.0]])
        g = sample_gradient(vol.data, pts, vol.spacing, vol.origin)
        assert np.isfinite(g).all()


class TestIsosurfaceNormals:
    def test_sphere_normals_point_inward(self):
        """Distance field: negative side is the inside; normals at the
        iso-sphere must point toward the center."""
        vol = sphere_field((33, 33, 33))
        mesh = marching_cubes(vol.data, 0.6, origin=vol.origin, spacing=vol.spacing)
        n = isosurface_normals(vol, mesh.vertices)
        toward_center = -mesh.vertices / np.linalg.norm(mesh.vertices, axis=1, keepdims=True)
        cos = np.einsum("ij,ij->i", n, toward_center)
        assert np.all(cos > 0.9)

    def test_unit_length(self):
        vol = sphere_field((17, 17, 17))
        mesh = marching_cubes(vol.data, 0.6, origin=vol.origin, spacing=vol.spacing)
        n = smooth_mesh_normals(vol, mesh)
        assert np.allclose(np.linalg.norm(n, axis=1), 1.0)

    def test_agrees_with_mesh_normals_up_to_sign_convention(self):
        vol = sphere_field((33, 33, 33))
        mesh = marching_cubes(vol.data, 0.6, origin=vol.origin, spacing=vol.spacing)
        grad_n = smooth_mesh_normals(vol, mesh)
        mesh_n = mesh.vertex_normals()
        cos = np.einsum("ij,ij->i", grad_n, mesh_n)
        assert np.mean(cos > 0.8) > 0.95  # same orientation, smoother

    def test_flat_region_uses_fallback(self):
        vol = Volume(np.zeros((8, 8, 8)))
        pts = np.array([[3.0, 3.0, 3.0]])
        n = isosurface_normals(vol, pts, fallback=np.array([[1.0, 0.0, 0.0]]))
        assert np.allclose(n, [[1.0, 0.0, 0.0]])
        n2 = isosurface_normals(vol, pts)
        assert np.allclose(n2, [[0.0, 0.0, 1.0]])


class TestGouraud:
    @pytest.fixture(scope="class")
    def scene(self):
        vol = sphere_field((33, 33, 33))
        mesh = marching_cubes(vol.data, 0.7, origin=vol.origin, spacing=vol.spacing)
        cam = Camera.fit_mesh(mesh)
        normals = smooth_mesh_normals(vol, mesh)
        return mesh, cam, normals

    def test_renders_same_silhouette_as_flat(self, scene):
        mesh, cam, normals = scene
        flat = Framebuffer(96, 96)
        smooth = Framebuffer(96, 96)
        render_mesh(flat, mesh, cam)
        render_mesh_smooth(smooth, mesh, cam, normals)
        assert np.array_equal(np.isfinite(flat.depth), np.isfinite(smooth.depth))
        assert np.allclose(flat.depth[np.isfinite(flat.depth)],
                           smooth.depth[np.isfinite(smooth.depth)], atol=1e-5)

    def test_smoother_shading_than_flat(self, scene):
        """Gouraud on a sphere: fewer distinct shading plateaus / smaller
        pixel-to-pixel jumps than faceted flat shading."""
        mesh, cam, normals = scene
        flat = Framebuffer(128, 128)
        smooth = Framebuffer(128, 128)
        render_mesh(flat, mesh, cam, color=(1, 1, 1))
        render_mesh_smooth(smooth, mesh, cam, normals, color=(1, 1, 1))

        def roughness(fb):
            lum = fb.color.mean(axis=2)
            mask = np.isfinite(fb.depth)
            inner = mask[1:, :] & mask[:-1, :]
            return float(np.abs(np.diff(lum, axis=0))[inner].mean())

        assert roughness(smooth) < roughness(flat)

    def test_empty_mesh_noop(self, scene):
        from repro.mc.geometry import TriangleMesh

        _, cam, _ = scene
        fb = Framebuffer(16, 16)
        assert render_mesh_smooth(fb, TriangleMesh(), cam, np.empty((0, 3))) == 0
