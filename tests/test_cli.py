"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def dataset_dir(tmp_path_factory):
    d = tmp_path_factory.mktemp("cli") / "ds"
    rc = main([
        "preprocess", "--rm-step", "200", "--shape", "33x33x25",
        "--metacell", "5", "--out", str(d),
    ])
    assert rc == 0
    return d


class TestPreprocess:
    def test_creates_dataset_files(self, dataset_dir):
        assert (dataset_dir / "bricks.bin").exists()
        assert (dataset_dir / "index.npz").exists()
        assert (dataset_dir / "meta.json").exists()

    def test_npy_input(self, tmp_path, capsys):
        rng = np.random.default_rng(0)
        vol = rng.integers(0, 255, size=(17, 17, 13)).astype(np.uint8)
        np.save(tmp_path / "field.npy", vol)
        rc = main([
            "preprocess", "--input", str(tmp_path / "field.npy"),
            "--metacell", "5", "--out", str(tmp_path / "npyds"),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "metacells stored" in out

    def test_rejects_non_3d_npy(self, tmp_path):
        np.save(tmp_path / "bad.npy", np.zeros((4, 4)))
        with pytest.raises(SystemExit):
            main(["preprocess", "--input", str(tmp_path / "bad.npy"),
                  "--out", str(tmp_path / "x")])

    def test_bad_shape_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["preprocess", "--shape", "10x10", "--out", str(tmp_path / "x")])


class TestInfoQuery:
    def test_info(self, dataset_dir, capsys):
        assert main(["info", str(dataset_dir)]) == 0
        out = capsys.readouterr().out
        assert "isovalues" in out
        assert "index" in out

    def test_query_reports_io(self, dataset_dir, capsys):
        assert main(["query", str(dataset_dir), "128"]) == 0
        out = capsys.readouterr().out
        assert "active metacells" in out
        assert "blocks" in out

    def test_query_empty(self, dataset_dir, capsys):
        assert main(["query", str(dataset_dir), "-5"]) == 0
        assert "0 active metacells" in capsys.readouterr().out


class TestExtractRender:
    def test_extract_obj_and_ply(self, dataset_dir, tmp_path, capsys):
        obj = tmp_path / "s.obj"
        ply = tmp_path / "s.ply"
        rc = main([
            "extract", str(dataset_dir), "128",
            "--obj", str(obj), "--ply", str(ply), "--weld",
        ])
        assert rc == 0
        assert obj.exists() and ply.exists()
        from repro.mc.mesh_io import read_obj, read_ply

        assert read_obj(obj).n_triangles == read_ply(ply).n_triangles > 0

    def test_render_flat_and_smooth(self, dataset_dir, tmp_path):
        for extra in ([], ["--smooth"]):
            out = tmp_path / f"img{len(extra)}.ppm"
            rc = main(["render", str(dataset_dir), "128",
                       "--out", str(out), "--size", "96", *extra])
            assert rc == 0
            assert out.stat().st_size > 96 * 96 * 3

    def test_render_empty_iso_fails(self, dataset_dir, tmp_path, capsys):
        rc = main(["render", str(dataset_dir), "-5",
                   "--out", str(tmp_path / "x.ppm")])
        assert rc == 1


class TestSpanspace:
    def test_ascii_output(self, dataset_dir, capsys):
        assert main(["spanspace", str(dataset_dir), "--bins", "12"]) == 0
        out = capsys.readouterr().out
        assert "intervals" in out
        assert "vmin" in out


class TestSuggestEstimate:
    def test_suggest(self, dataset_dir, capsys):
        assert main(["suggest", str(dataset_dir), "--selectivity", "0.1", "0.4"]) == 0
        out = capsys.readouterr().out
        assert "selectivity" in out
        assert out.count("%") >= 2

    def test_estimate_matches_query_blocks(self, dataset_dir, capsys):
        assert main(["estimate", str(dataset_dir), "128"]) == 0
        est_out = capsys.readouterr().out
        assert "blocks" in est_out
        import re
        blocks = int(re.search(r"blocks\s*:\s*(\d+)", est_out).group(1))
        assert main(["query", str(dataset_dir), "128"]) == 0
        q_out = capsys.readouterr().out
        q_blocks = int(re.search(r"(\d+) blocks", q_out).group(1))
        assert blocks == q_blocks


class TestExtractOptions:
    def test_decimate(self, dataset_dir, tmp_path, capsys):
        obj = tmp_path / "d.obj"
        rc = main(["extract", str(dataset_dir), "128", "--obj", str(obj),
                   "--weld", "--decimate", "150"])
        assert rc == 0
        from repro.mc.mesh_io import read_obj
        assert 0 < read_obj(obj).n_triangles <= 150

    def test_stream(self, dataset_dir, tmp_path, capsys):
        ply = tmp_path / "s.ply"
        rc = main(["extract", str(dataset_dir), "128", "--ply", str(ply), "--stream"])
        assert rc == 0
        from repro.mc.mesh_io import read_ply
        assert read_ply(ply).n_triangles > 0

    def test_stream_needs_target(self, dataset_dir):
        assert main(["extract", str(dataset_dir), "128", "--stream"]) == 2


class TestErrorHandling:
    def test_missing_dataset_is_clean_error(self, tmp_path, capsys):
        rc = main(["info", str(tmp_path / "nope")])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestTimeVaryingCLI:
    def test_preprocess_and_query_series(self, tmp_path, capsys):
        rc = main([
            "preprocess-series", "--steps", "40,60", "--shape", "25x25x21",
            "--n-steps", "100", "--metacell", "5", "--nodes", "2",
            "--out", str(tmp_path / "tv"),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 steps" in out
        rc = main(["query-series", str(tmp_path / "tv"), "120"])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("\n") >= 3  # header + 2 steps

    def test_query_series_subset_and_missing(self, tmp_path, capsys):
        main([
            "preprocess-series", "--steps", "5", "--shape", "17x17x13",
            "--n-steps", "10", "--metacell", "5", "--out", str(tmp_path / "tv2"),
        ])
        capsys.readouterr()
        rc = main(["query-series", str(tmp_path / "tv2"), "100", "--steps", "5,6"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "(not indexed)" in out
