"""Zero-copy streaming pipeline invariants.

The rework this file guards (coalesced reads, cumulative-CRC span
verification, the shared-memory triangulation pipeline) is only
acceptable because it is *invisible* on every axis except wall time:

* serial, coalesced, and pipelined extraction must produce byte-identical
  records, meshes, and normals;
* the metered I/O bill — blocks, seeks, read ops — must match the
  uncoalesced execution exactly, including where a time budget cuts;
* every CRC strategy (per-record loop, vectorized kernel, cumulative
  span table) must agree bit-for-bit with ``zlib.crc32``.
"""

from __future__ import annotations

import zlib

import numpy as np
import pytest

from repro.core.builder import build_indexed_dataset, build_striped_datasets
from repro.core.query import QueryOptions, execute_query
from repro.grid.datasets import pressure_like, sphere_field
from repro.io.faults import FaultInjectingDevice, FaultPlan
from repro.io.layout import (
    VECTOR_CRC_MAX_RECORD_SIZE,
    VECTOR_CRC_MIN_RECORDS,
    _vectorized_record_crcs,
    compute_cum_crcs,
    compute_record_crcs,
)
from repro.mc.marching_cubes import marching_cubes_batch
from repro.parallel import ExtractRequest, SimulatedCluster
from repro.parallel.mp_backend import extract_parallel_mp, node_task
from repro.parallel.pipeline import PipelineOptions, pipelined_marching_cubes
from repro.pipeline import IsosurfacePipeline


def _stats_dict(stats):
    return dict(vars(stats))


def _assert_same_result(a, b):
    assert np.array_equal(a.records.ids, b.records.ids)
    assert np.array_equal(a.records.vmins, b.records.vmins)
    assert a.records.values.tobytes() == b.records.values.tobytes()
    assert _stats_dict(a.io_stats) == _stats_dict(b.io_stats)
    assert a.deadline_expired == b.deadline_expired
    assert a.n_records_skipped == b.n_records_skipped


# ---------------------------------------------------------------------------
# Coalesced reads: bit-identical payloads and I/O charges
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("gap", [1, 4, 64])
def test_coalesced_query_identical_to_serial(seed, gap):
    vol = pressure_like((36, 36, 36), seed=seed)
    ds = build_indexed_dataset(vol, (5, 5, 5))
    lo, hi = float(ds.tree.endpoints[0]), float(ds.tree.endpoints[-1])
    for lam in np.linspace(lo, hi, 5)[1:-1]:
        serial = execute_query(ds, lam)
        coalesced = execute_query(
            ds, lam, QueryOptions(coalesce_gap_blocks=gap)
        )
        _assert_same_result(serial, coalesced)


@pytest.mark.parametrize("budget_frac", [0.15, 0.4, 0.8])
def test_coalesced_respects_time_budget_cut_points(budget_frac):
    vol = sphere_field((44, 44, 44))
    lam = 0.5
    full = execute_query(build_indexed_dataset(vol, (5, 5, 5)), lam)
    ds_a = build_indexed_dataset(vol, (5, 5, 5))
    budget = budget_frac * full.io_stats.read_time(ds_a.device.cost_model)
    serial = execute_query(ds_a, lam, QueryOptions(time_budget=budget))
    ds_b = build_indexed_dataset(vol, (5, 5, 5))
    coalesced = execute_query(
        ds_b, lam, QueryOptions(time_budget=budget, coalesce_gap_blocks=16)
    )
    _assert_same_result(serial, coalesced)
    assert serial.skipped_bricks == coalesced.skipped_bricks


@pytest.mark.parametrize("seed", [3, 11])
def test_coalesced_on_faulty_device_matches_serial(seed):
    """Fault wrappers lack ``peek``; coalescing must degrade to the plain
    per-run path so the fault plan's RNG sees the same read sequence."""
    vol = sphere_field((33, 33, 33))
    plan = FaultPlan(seed=seed, transient_error_rate=0.1, corruption_rate=0.05)

    def faulty_dataset():
        ds = build_indexed_dataset(vol, (5, 5, 5))
        ds.device = FaultInjectingDevice(ds.device, plan)
        return ds

    a = execute_query(faulty_dataset(), 0.5)
    b = execute_query(faulty_dataset(), 0.5, QueryOptions(coalesce_gap_blocks=8))
    _assert_same_result(a, b)
    assert b.io_stats.retries == a.io_stats.retries
    assert b.io_stats.checksum_failures == a.io_stats.checksum_failures


def test_coalesced_gap_zero_is_disabled(sphere_dataset):
    res = execute_query(sphere_dataset, 0.5, QueryOptions(coalesce_gap_blocks=0))
    assert res.n_active > 0
    with pytest.raises(ValueError):
        QueryOptions(coalesce_gap_blocks=-1)


# ---------------------------------------------------------------------------
# CRC strategies agree with zlib bit-for-bit
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("record_size", [4, 8, 9, 16, 64, 101, 734])
@pytest.mark.parametrize("n", [0, 1, 5, 300, VECTOR_CRC_MIN_RECORDS + 1])
def test_record_crcs_match_zlib(record_size, n):
    rng = np.random.default_rng(record_size * 1000 + n)
    blob = rng.integers(0, 256, size=record_size * n, dtype=np.uint8).tobytes()
    got = compute_record_crcs(blob, record_size)
    ref = [
        zlib.crc32(blob[p * record_size : (p + 1) * record_size])
        for p in range(n)
    ]
    assert list(got) == ref
    if n and record_size >= 4:
        view = np.frombuffer(blob, dtype=np.uint8).reshape(n, record_size)
        assert list(_vectorized_record_crcs(view, record_size)) == ref


def test_vector_dispatch_bounds():
    """The hybrid only vectorizes where measurement says it wins."""
    assert 4 <= VECTOR_CRC_MAX_RECORD_SIZE < 734
    assert VECTOR_CRC_MIN_RECORDS > 1


def test_cum_crcs_chain_and_verify_span():
    rec, n = 9, 200
    rng = np.random.default_rng(42)
    blob = rng.integers(0, 256, size=rec * n, dtype=np.uint8).tobytes()
    cum = compute_cum_crcs(blob, rec)
    assert cum[0] == 0 and len(cum) == n + 1
    # Chained build from two halves equals the one-shot table.
    half = (n // 2) * rec
    c2 = compute_cum_crcs(blob[half:], rec, initial=int(cum[n // 2]))
    assert np.array_equal(cum[n // 2 :], c2)
    # Span [a, b) verifies with one zlib call.
    for a, b in [(0, n), (3, 17), (n - 1, n), (5, 5)]:
        span = blob[a * rec : b * rec]
        assert zlib.crc32(span, int(cum[a])) == int(cum[b])


def test_dataset_verify_span_detects_corruption(sphere_dataset):
    checks = sphere_dataset.checksums
    rec = sphere_dataset.codec.record_size
    base = sphere_dataset.base_offset
    good = sphere_dataset.device.read(base, 10 * rec)
    assert checks.verify_span(0, good, rec) is True
    bad = bytearray(good)
    bad[3 * rec + 5] ^= 0xFF
    assert checks.verify_span(0, bytes(bad), rec) is False
    # Without the cumulative table the answer is "unknown", not "ok".
    checks_v1 = type(checks)(
        record_crcs=checks.record_crcs, brick_crcs=checks.brick_crcs
    )
    assert checks_v1.verify_span(0, good, rec) is None


# ---------------------------------------------------------------------------
# Shared-memory pipeline: bit-identical meshes
# ---------------------------------------------------------------------------


def _mc_inputs(shape=(72, 72, 72), metacell=(5, 5, 5), lam=0.5):
    vol = sphere_field(shape)
    ds = build_indexed_dataset(vol, metacell)
    qr = execute_query(ds, lam)
    values = ds.codec.values_grid(qr.records)
    origins = ds.meta.vertex_origins(qr.records.ids)
    return ds, values, origins


@pytest.mark.parametrize("opts", [
    PipelineOptions(workers=1, batch_chunks=1),
    PipelineOptions(workers=2, batch_chunks=1),
    PipelineOptions(workers=3, batch_chunks=2),
])
def test_pipelined_mc_bit_identical(opts):
    ds, values, origins = _mc_inputs()
    lam = 0.5
    ref_mesh, ref_normals = marching_cubes_batch(
        values, lam, origins, spacing=ds.meta.spacing,
        world_origin=ds.meta.origin, with_normals=True,
    )
    mesh, normals = pipelined_marching_cubes(
        values, lam, origins, spacing=ds.meta.spacing,
        world_origin=ds.meta.origin, with_normals=True, options=opts,
    )
    assert np.array_equal(ref_mesh.vertices, mesh.vertices)
    assert np.array_equal(ref_mesh.faces, mesh.faces)
    assert np.array_equal(ref_normals, normals)


def test_pipelined_mc_small_batch_falls_back_inline():
    ds, values, origins = _mc_inputs(shape=(24, 24, 24))
    assert len(values) <= PipelineOptions().job_metacells
    ref = marching_cubes_batch(
        values, 0.5, origins, spacing=ds.meta.spacing, world_origin=ds.meta.origin
    )
    got = pipelined_marching_cubes(
        values, 0.5, origins, spacing=ds.meta.spacing, world_origin=ds.meta.origin
    )
    assert np.array_equal(ref.vertices, got.vertices)
    assert np.array_equal(ref.faces, got.faces)


def test_pipeline_options_validate():
    with pytest.raises(ValueError):
        PipelineOptions(workers=0)
    with pytest.raises(ValueError):
        PipelineOptions(batch_chunks=0)


# ---------------------------------------------------------------------------
# The headline property: three execution modes, one result
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 7])
@pytest.mark.parametrize("fault_spec", [None, "transient=0.05,seed=5"])
def test_extraction_three_ways_identical(seed, fault_spec):
    """Serial, coalesced, and shm-pipelined extraction: byte-identical
    meshes and identical modeled block charges, healthy or faulty."""
    vol = pressure_like((32, 32, 32), seed=seed)

    def fresh_pipeline():
        ds = build_indexed_dataset(vol, (5, 5, 5))
        if fault_spec:
            ds.device = FaultInjectingDevice(
                ds.device, FaultPlan.from_spec(fault_spec)
            )
        return IsosurfacePipeline(ds)

    lam = 0.5 * float(fresh_pipeline().dataset.tree.endpoints[-1])
    runs = {
        "serial": fresh_pipeline().extract(lam),
        "coalesced": fresh_pipeline().extract(
            lam, options=QueryOptions(coalesce_gap_blocks=8)
        ),
        "pipelined": fresh_pipeline().extract(
            lam,
            options=QueryOptions(
                coalesce_gap_blocks=8,
                pipeline=PipelineOptions(workers=2, batch_chunks=1),
            ),
        ),
    }
    ref = runs["serial"]
    for name, res in runs.items():
        assert np.array_equal(ref.mesh.vertices, res.mesh.vertices), name
        assert np.array_equal(ref.mesh.faces, res.mesh.faces), name
        assert _stats_dict(ref.query.io_stats) == _stats_dict(res.query.io_stats), name


def test_cluster_request_with_coalesce_and_pipeline():
    vol = sphere_field((40, 40, 40))
    base_cl = SimulatedCluster(vol, p=3, replication=2)
    tuned_cl = SimulatedCluster(vol, p=3, replication=2)
    base = base_cl.extract(0.5, ExtractRequest(keep_meshes=True))
    tuned = tuned_cl.extract(0.5, ExtractRequest(
        keep_meshes=True, coalesce_gap_blocks=4,
        pipeline=PipelineOptions(workers=2),
    ))
    for a, b in zip(base.meshes, tuned.meshes):
        assert np.array_equal(a.vertices, b.vertices)
        assert np.array_equal(a.faces, b.faces)
    for ma, mb in zip(base.nodes, tuned.nodes):
        assert ma.io_stats.blocks_read == mb.io_stats.blocks_read
        assert ma.io_stats.seeks == mb.io_stats.seeks


# ---------------------------------------------------------------------------
# mp backend: path shipping
# ---------------------------------------------------------------------------


def test_node_task_accepts_path_and_legacy_tuple(tmp_path, sphere_volume):
    from repro.core.persistence import build_persistent_dataset

    ds = build_persistent_dataset(sphere_volume, tmp_path, (5, 5, 5))
    assert ds.source_dir == str(tmp_path)
    by_obj = node_task((ds, 0.5))
    by_path = node_task((str(tmp_path), 0.5, None))
    assert by_obj.n_triangles == by_path.n_triangles
    assert np.array_equal(by_obj.vertices, by_path.vertices)
    assert by_obj.blocks_read == by_path.blocks_read


def test_extract_parallel_mp_ships_paths(tmp_path, sphere_volume):
    from repro.core.persistence import build_persistent_dataset, load_dataset

    build_persistent_dataset(sphere_volume, tmp_path, (5, 5, 5))
    dss = [load_dataset(tmp_path), load_dataset(tmp_path)]
    inline = extract_parallel_mp(dss, 0.5, processes=1)
    pooled = extract_parallel_mp(dss, 0.5, processes=2)
    for a, b in zip(inline, pooled):
        assert np.array_equal(a.vertices, b.vertices)
        assert np.array_equal(a.faces, b.faces)


def test_extract_parallel_mp_striped_in_memory(sphere_volume):
    dss = build_striped_datasets(sphere_volume, 3, (5, 5, 5))
    inline = extract_parallel_mp(dss, 0.5, processes=1)
    pooled = extract_parallel_mp(
        dss, 0.5, processes=3, pipeline=PipelineOptions(workers=2)
    )
    assert [o.node_rank for o in pooled] == [0, 1, 2]
    for a, b in zip(inline, pooled):
        assert np.array_equal(a.vertices, b.vertices)
        assert np.array_equal(a.faces, b.faces)
