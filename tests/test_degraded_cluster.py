"""Degraded-mode cluster extraction: node loss, replication, recovery.

The contract under test (see docs/robustness.md):

* with replication ``r >= 2``, losing up to ``r - 1`` nodes yields a
  result *bit-identical* to the healthy run — same records, triangles,
  and composited image — with the recovery I/O charged to the serving
  node;
* with ``r = 1`` (the paper's unreplicated cluster), a lost node yields
  a graceful *partial* result flagged ``degraded=True``, never an
  unhandled exception.
"""

import numpy as np
import pytest

from repro.grid.datasets import sphere_field
from repro.io.faults import FaultPlan
from repro.parallel.cluster import ExtractRequest, SimulatedCluster

ISO = 0.7
P = 4


@pytest.fixture(scope="module")
def volume():
    return sphere_field((33, 33, 33))


@pytest.fixture(scope="module")
def healthy(volume):
    """Reference healthy run (no replication, no faults)."""
    cluster = SimulatedCluster(volume, p=P, metacell_shape=(5, 5, 5))
    return cluster.extract(ISO, ExtractRequest(render=True, keep_meshes=True))


class TestReplicatedRecovery:
    @pytest.mark.parametrize("victim", range(P))
    def test_single_failure_bit_identical(self, volume, healthy, victim):
        cluster = SimulatedCluster(
            volume, p=P, metacell_shape=(5, 5, 5), replication=2
        )
        cluster.fail_node(victim)
        res = cluster.extract(ISO, ExtractRequest(render=True, keep_meshes=True))

        assert res.failed_nodes == [victim]
        assert not res.degraded
        assert res.unrecovered_nodes == []
        assert res.n_triangles == healthy.n_triangles
        assert res.n_active_metacells == healthy.n_active_metacells
        # The recovered mesh occupies the failed rank's slot, identically.
        for i in range(P):
            assert np.array_equal(
                res.meshes[i].vertices, healthy.meshes[i].vertices
            )
        assert np.array_equal(res.image.color, healthy.image.color)
        assert np.array_equal(res.image.depth, healthy.image.depth)

    def test_recovery_work_charged_to_serving_node(self, volume):
        cluster = SimulatedCluster(
            volume, p=P, metacell_shape=(5, 5, 5), replication=2
        )
        cluster.fail_node(1)
        res = cluster.extract(ISO)
        victim, host = res.nodes[1], res.nodes[res.nodes[1].served_by]
        assert victim.failed and victim.n_triangles == 0
        assert 1 in host.recovered_ranks
        # Host did two layouts' worth of work; its metered I/O shows it.
        solo = SimulatedCluster(
            volume, p=P, metacell_shape=(5, 5, 5)
        ).extract(ISO)
        assert (
            host.io_stats.blocks_read
            > solo.nodes[host.node_rank].io_stats.blocks_read
        )

    def test_two_failures_with_r3(self, volume, healthy):
        cluster = SimulatedCluster(
            volume, p=P, metacell_shape=(5, 5, 5), replication=3
        )
        cluster.fail_node(0)
        cluster.fail_node(2)
        res = cluster.extract(ISO, ExtractRequest(render=True))
        assert sorted(res.failed_nodes) == [0, 2]
        assert not res.degraded
        assert res.n_triangles == healthy.n_triangles
        assert np.array_equal(res.image.color, healthy.image.color)

    def test_mid_query_failure_recovers(self, volume, healthy):
        """A device dying partway through the query (not before it) must
        still be recovered from the replica."""
        cluster = SimulatedCluster(
            volume,
            p=P,
            metacell_shape=(5, 5, 5),
            replication=2,
            fault_plans={2: FaultPlan(fail_after_reads=1)},
        )
        res = cluster.extract(ISO)
        assert res.failed_nodes == [2]
        assert not res.degraded
        assert res.n_triangles == healthy.n_triangles

    def test_replication_does_not_change_healthy_run(self, volume, healthy):
        """Replica stores live past the primary layouts; a fault-free
        query never touches them."""
        cluster = SimulatedCluster(
            volume, p=P, metacell_shape=(5, 5, 5), replication=2
        )
        res = cluster.extract(ISO, ExtractRequest(render=True))
        assert res.n_triangles == healthy.n_triangles
        assert not res.failed_nodes
        assert np.array_equal(res.image.color, healthy.image.color)
        for got, want in zip(res.nodes, healthy.nodes):
            assert got.io_stats.blocks_read == want.io_stats.blocks_read


class TestUnreplicatedDegradation:
    def test_single_failure_partial_result(self, volume, healthy):
        cluster = SimulatedCluster(volume, p=P, metacell_shape=(5, 5, 5))
        cluster.fail_node(2)
        res = cluster.extract(ISO, ExtractRequest(render=True))

        assert res.degraded
        assert res.failed_nodes == [2]
        assert res.unrecovered_nodes == [2]
        assert res.nodes[2].failed and res.nodes[2].served_by is None
        assert res.nodes[2].failure  # carries the fault message
        # Partial: exactly the surviving nodes' contribution.
        want = sum(
            m.n_triangles for m in healthy.nodes if m.node_rank != 2
        )
        assert 0 < res.n_triangles == want
        # The partial image is valid and non-empty (some pixels shaded).
        assert res.image is not None
        assert np.isfinite(res.image.depth).any()

    def test_all_nodes_failed_yields_empty_frame(self, volume):
        cluster = SimulatedCluster(volume, p=P, metacell_shape=(5, 5, 5))
        for k in range(P):
            cluster.fail_node(k)
        res = cluster.extract(ISO, ExtractRequest(render=True))
        assert res.degraded and res.failed_nodes == list(range(P))
        assert res.n_triangles == 0
        assert res.composite_bytes == 0
        assert not np.isfinite(res.image.depth).any()

    def test_analytic_composite_counts_survivors_only(self, volume):
        cluster = SimulatedCluster(volume, p=P, metacell_shape=(5, 5, 5))
        cluster.fail_node(0)
        res = cluster.extract(ISO)  # no render: analytic accounting
        w, h = cluster.image_size
        assert res.composite_bytes == (P - 1) * w * h * 16

    def test_heal_restores_full_results(self, volume, healthy):
        cluster = SimulatedCluster(volume, p=P, metacell_shape=(5, 5, 5))
        cluster.fail_node(1)
        assert cluster.extract(ISO).degraded
        cluster.heal_node(1)
        res = cluster.extract(ISO)
        assert not res.degraded and not res.failed_nodes
        assert res.n_triangles == healthy.n_triangles


class TestReplicationValidation:
    def test_replication_needs_multiple_nodes(self, volume):
        with pytest.raises(ValueError, match="replication"):
            SimulatedCluster(
                volume, p=1, metacell_shape=(5, 5, 5), replication=2
            )

    def test_replication_bounded_by_p(self, volume):
        with pytest.raises(ValueError, match="replication"):
            SimulatedCluster(
                volume, p=2, metacell_shape=(5, 5, 5), replication=3
            )

    def test_chained_declustering_layout(self, volume):
        """Node q hosts replicas of the r-1 preceding nodes' layouts."""
        cluster = SimulatedCluster(
            volume, p=P, metacell_shape=(5, 5, 5), replication=3
        )
        for q, ds in enumerate(cluster.datasets):
            assert sorted(ds.replica_stores) == sorted(
                {(q - 1) % P, (q - 2) % P}
            )
