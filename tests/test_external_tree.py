"""Tests for the external (blocked) compact interval tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builder import build_indexed_dataset
from repro.core.compact_tree import BrickPrefixScan, CompactIntervalTree, SequentialRun
from repro.core.external_tree import ExternalCompactIndex
from repro.core.query import execute_plan, execute_query
from repro.grid.datasets import sphere_field
from repro.io.blockdevice import SimulatedBlockDevice
from repro.io.cost_model import IOCostModel
from tests.conftest import random_intervals


def _plan_signature(plan):
    out = []
    for r in plan.runs:
        if isinstance(r, SequentialRun):
            out.append(("seq", r.start, r.count))
        else:
            out.append(("scan", r.start, r.max_count))
    return out


class TestPlanEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(1, 200),
        n_values=st.integers(1, 24),
        seed=st.integers(0, 2**16),
        lam_num=st.integers(-1, 26),
        block=st.sampled_from([512, 1024, 8192]),
    )
    def test_same_plan_as_in_memory(self, n, n_values, seed, lam_num, block):
        rng = np.random.default_rng(seed)
        iv = random_intervals(rng, n, n_values)
        tree = CompactIntervalTree.build(iv)
        dev = SimulatedBlockDevice(IOCostModel(block_size=block))
        ext = ExternalCompactIndex(dev, tree)
        plan_mem = tree.plan_query(float(lam_num))
        plan_ext, io = ext.plan_query(float(lam_num))
        assert _plan_signature(plan_ext) == _plan_signature(plan_mem)
        assert plan_ext.nodes_visited == plan_mem.nodes_visited
        assert plan_ext.bricks_skipped == plan_mem.bricks_skipped
        assert io.blocks_read >= 1

    def test_empty_tree(self):
        from repro.core.intervals import IntervalSet

        iv = IntervalSet(vmin=np.empty(0), vmax=np.empty(0), ids=np.empty(0, np.uint32))
        tree = CompactIntervalTree.build(iv)
        dev = SimulatedBlockDevice(IOCostModel(block_size=1024))
        ext = ExternalCompactIndex(dev, tree)
        plan, io = ext.plan_query(1.0)
        assert plan.runs == []
        assert io.blocks_read == 0


class TestBlockedIO:
    def test_traversal_reads_few_blocks(self, sphere_intervals):
        """With a block holding many nodes, a query's index traversal must
        read far fewer blocks than it visits nodes."""
        tree = CompactIntervalTree.build(sphere_intervals)
        dev = SimulatedBlockDevice(IOCostModel(block_size=8192))
        ext = ExternalCompactIndex(dev, tree)
        plan, io = ext.plan_query(0.9)
        assert io.blocks_read <= max(1, plan.nodes_visited // 2 + 1)

    def test_small_blocks_increase_reads(self, sphere_intervals):
        tree = CompactIntervalTree.build(sphere_intervals)
        big = ExternalCompactIndex(
            SimulatedBlockDevice(IOCostModel(block_size=8192)), tree
        )
        small = ExternalCompactIndex(
            SimulatedBlockDevice(IOCostModel(block_size=512)), tree
        )
        _, io_big = big.plan_query(0.9)
        _, io_small = small.plan_query(0.9)
        assert io_small.blocks_read >= io_big.blocks_read
        assert small.n_blocks > big.n_blocks

    def test_block_overflow_detected(self):
        """A node whose entry list exceeds the block size must fail loudly."""
        rng = np.random.default_rng(0)
        iv = random_intervals(rng, 500, n_values=500)  # many distinct bricks
        tree = CompactIntervalTree.build(iv)
        dev = SimulatedBlockDevice(IOCostModel(block_size=64))
        with pytest.raises(ValueError, match="does not fit"):
            ExternalCompactIndex(dev, tree)


class TestEndToEnd:
    def test_external_plan_executes_identically(self, sphere_volume, sphere_intervals):
        """Full out-of-core query via the external index == via the
        in-memory index, records and all."""
        ds = build_indexed_dataset(sphere_volume, (5, 5, 5))
        index_dev = SimulatedBlockDevice(IOCostModel(block_size=4096))
        ext = ExternalCompactIndex(index_dev, ds.tree)
        for lam in (0.3, 0.8, 1.3):
            plan, _ = ext.plan_query(lam)
            got = execute_plan(ds, plan)
            ref = execute_query(ds, lam)
            assert np.array_equal(
                np.sort(got.records.ids), np.sort(ref.records.ids)
            )
            assert np.array_equal(
                np.sort(got.records.ids), sphere_intervals.stabbing_ids(lam)
            )
