"""Unit tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.grid.datasets import (
    bunny_ct_like,
    ct_head_like,
    gyroid_field,
    marschner_lobb,
    mr_brain_like,
    pressure_like,
    smooth_noise,
    sphere_field,
    torus_field,
    trilinear_upsample,
    velocity_like,
)


class TestAnalyticFields:
    def test_sphere_value_is_distance(self):
        vol = sphere_field((21, 21, 21))
        center = vol.data[10, 10, 10]
        assert center == pytest.approx(0.0, abs=1e-12)
        corner = vol.data[0, 0, 0]
        assert corner == pytest.approx(np.sqrt(3.0))

    def test_torus_min_on_ring(self):
        vol = torus_field((41, 41, 21), major=0.5)
        assert vol.data.min() < 0.05

    def test_gyroid_is_signed(self):
        vol = gyroid_field((24, 24, 24))
        assert vol.data.min() < 0 < vol.data.max()

    def test_marschner_lobb_range(self):
        vol = marschner_lobb((25, 25, 25))
        assert 0.0 <= vol.data.min() and vol.data.max() <= 1.0 + 1e-9


class TestNoise:
    def test_trilinear_upsample_reproduces_corners(self):
        coarse = np.random.default_rng(0).random((2, 2, 2))
        fine = trilinear_upsample(coarse, (5, 5, 5))
        assert fine[0, 0, 0] == pytest.approx(coarse[0, 0, 0])
        assert fine[-1, -1, -1] == pytest.approx(coarse[-1, -1, -1])

    def test_trilinear_upsample_is_interpolatory(self):
        coarse = np.zeros((2, 2, 2))
        coarse[1] = 1.0
        fine = trilinear_upsample(coarse, (3, 3, 3))
        assert fine[1, 0, 0] == pytest.approx(0.5)

    def test_trilinear_rejects_tiny_grid(self):
        with pytest.raises(ValueError):
            trilinear_upsample(np.zeros((1, 2, 2)), (4, 4, 4))

    def test_smooth_noise_range_and_determinism(self):
        rng1 = np.random.default_rng(42)
        rng2 = np.random.default_rng(42)
        a = smooth_noise((16, 16, 16), 4.0, rng1)
        b = smooth_noise((16, 16, 16), 4.0, rng2)
        assert np.array_equal(a, b)
        assert np.abs(a).max() <= 1.0 + 1e-12


class TestStandIns:
    @pytest.mark.parametrize(
        "factory,default_dims",
        [
            (ct_head_like, (256, 256, 113)),
            (mr_brain_like, (256, 256, 109)),
            (bunny_ct_like, (512, 512, 361)),
            (pressure_like, (256, 256, 256)),
            (velocity_like, (256, 256, 256)),
        ],
    )
    def test_default_dimensions_match_table1(self, factory, default_dims):
        # Only check the declared defaults, generating a tiny instance.
        import inspect

        sig = inspect.signature(factory)
        assert sig.parameters["shape"].default == default_dims
        vol = factory(shape=(16, 16, 12))
        assert vol.shape == (16, 16, 12)
        assert vol.dtype == np.uint16

    def test_deterministic_given_seed(self):
        a = ct_head_like(shape=(12, 12, 10), seed=5)
        b = ct_head_like(shape=(12, 12, 10), seed=5)
        assert np.array_equal(a.data, b.data)
        c = ct_head_like(shape=(12, 12, 10), seed=6)
        assert not np.array_equal(a.data, c.data)

    def test_uint8_option(self):
        vol = pressure_like(shape=(10, 10, 10), dtype=np.uint8)
        assert vol.dtype == np.uint8

    def test_pressure_has_few_constant_regions(self):
        """Pressure-like fields sit in the paper's N ~ n regime: the field
        varies everywhere, so almost no metacell is constant."""
        from repro.grid.metacell import partition_metacells

        vol = pressure_like(shape=(33, 33, 33))
        part = partition_metacells(vol, (5, 5, 5))
        assert part.constant_mask().mean() < 0.05

    def test_ct_head_has_air_background(self):
        vol = ct_head_like(shape=(40, 40, 24))
        # Outer shell of the domain should be uniform-ish low values.
        shell = vol.data[0]
        assert shell.std() < vol.data.std()
