"""Tests for the preprocessing pipeline (builder)."""

import numpy as np
import pytest

from repro.core.builder import (
    DatasetMeta,
    build_indexed_dataset,
    build_striped_datasets,
)
from repro.core.query import execute_query
from repro.grid.datasets import sphere_field
from repro.grid.rm_instability import rm_timestep
from repro.io.diskfile import FileBackedDevice


class TestSerialBuild:
    def test_report_counts(self):
        vol = rm_timestep(200, shape=(33, 33, 29))
        ds = build_indexed_dataset(vol, (5, 5, 5))
        rep = ds.report
        assert rep.n_metacells_total == rep.n_metacells_culled + rep.n_metacells_stored
        assert rep.n_metacells_stored == ds.n_records
        assert rep.stored_bytes == ds.n_records * ds.codec.record_size
        assert rep.index_bytes == ds.tree.index_size_bytes()
        # Saving can be negative for tiny metacells (boundary-layer overhead
        # exceeds culling); it is bounded above by 1.
        assert rep.space_saving < 1.0

    def test_rm_space_saving_regime(self):
        """The paper reports ~50% disk saving from culling on RM data."""
        vol = rm_timestep(120, shape=(65, 65, 57))
        ds = build_indexed_dataset(vol, (9, 9, 9))
        assert ds.report.space_saving > 0.1

    def test_device_holds_all_records(self, sphere_dataset):
        expect = sphere_dataset.n_records * sphere_dataset.codec.record_size
        assert sphere_dataset.device.size >= expect

    def test_drop_constant_false_keeps_everything(self):
        vol = rm_timestep(120, shape=(33, 33, 29))
        ds = build_indexed_dataset(vol, (5, 5, 5), drop_constant=False)
        assert ds.n_records == ds.report.n_metacells_total

    def test_record_offsets(self, sphere_dataset):
        rec = sphere_dataset.codec.record_size
        assert sphere_dataset.record_offset(0) == sphere_dataset.base_offset
        assert sphere_dataset.record_offset(5) == sphere_dataset.base_offset + 5 * rec

    def test_file_backed_device(self, tmp_path, sphere_volume, sphere_intervals):
        dev = FileBackedDevice(tmp_path / "sphere.dat")
        ds = build_indexed_dataset(sphere_volume, (5, 5, 5), device=dev)
        res = execute_query(ds, 0.6)
        assert np.array_equal(np.sort(res.records.ids), sphere_intervals.stabbing_ids(0.6))
        dev.close()
        assert (tmp_path / "sphere.dat").stat().st_size == dev.size


class TestStripedBuild:
    @pytest.mark.parametrize("p", [1, 2, 4, 8])
    def test_union_matches_serial(self, sphere_volume, sphere_intervals, p):
        dss = build_striped_datasets(sphere_volume, p, (5, 5, 5))
        assert len(dss) == p
        for lam in (0.3, 0.8):
            ids = np.sort(
                np.concatenate([execute_query(d, lam).records.ids for d in dss])
            )
            assert np.array_equal(ids, sphere_intervals.stabbing_ids(lam))

    def test_shared_report_and_meta(self, sphere_volume):
        dss = build_striped_datasets(sphere_volume, 4, (5, 5, 5))
        assert all(d.report is dss[0].report for d in dss)
        assert all(d.meta == dss[0].meta for d in dss)
        assert [d.node_rank for d in dss] == [0, 1, 2, 3]
        assert all(d.n_cluster_nodes == 4 for d in dss)

    def test_total_records_preserved(self, sphere_volume):
        serial = build_indexed_dataset(sphere_volume, (5, 5, 5))
        dss = build_striped_datasets(sphere_volume, 3, (5, 5, 5))
        assert sum(d.n_records for d in dss) == serial.n_records

    def test_custom_devices(self, tmp_path, sphere_volume):
        devices = [FileBackedDevice(tmp_path / f"node{q}.dat") for q in range(2)]
        dss = build_striped_datasets(sphere_volume, 2, (5, 5, 5), devices=devices)
        assert dss[0].device is devices[0]
        for d in devices:
            d.close()

    def test_device_count_mismatch(self, sphere_volume):
        with pytest.raises(ValueError):
            build_striped_datasets(sphere_volume, 2, (5, 5, 5), devices=[None])

    def test_invalid_p(self, sphere_volume):
        with pytest.raises(ValueError):
            build_striped_datasets(sphere_volume, 0, (5, 5, 5))


class TestDatasetMeta:
    def test_id_mapping_roundtrip(self):
        meta = DatasetMeta(
            grid_shape=(3, 4, 5),
            metacell_shape=(9, 9, 9),
            volume_shape=(17, 25, 33),
            spacing=(1, 1, 1),
            origin=(0, 0, 0),
            name="t",
        )
        ids = np.arange(meta.n_metacells)
        ijk = meta.id_to_ijk(ids)
        flat = (ijk[:, 0] * 4 + ijk[:, 1]) * 5 + ijk[:, 2]
        assert np.array_equal(flat, ids)

    def test_vertex_origins_scaled_by_cells(self):
        meta = DatasetMeta(
            grid_shape=(2, 2, 2),
            metacell_shape=(5, 5, 5),
            volume_shape=(9, 9, 9),
            spacing=(1, 1, 1),
            origin=(0, 0, 0),
            name="t",
        )
        origins = meta.vertex_origins(np.array([7]))  # ijk = (1,1,1)
        assert np.array_equal(origins[0], [4, 4, 4])
