"""Tests for span-space statistics and the square decomposition."""

import numpy as np

from repro.core.compact_tree import CompactIntervalTree
from repro.core.intervals import IntervalSet
from repro.core.span_space import (
    SpanSpaceStats,
    ascii_span_space,
    span_space_histogram,
    tree_span_squares,
)


def make(vmin, vmax):
    vmin, vmax = np.asarray(vmin), np.asarray(vmax)
    return IntervalSet(vmin=vmin, vmax=vmax, ids=np.arange(len(vmin), dtype=np.uint32))


class TestStats:
    def test_empty(self):
        s = SpanSpaceStats.from_intervals(make([], []))
        assert s.n_intervals == 0
        assert s.mean_span == 0.0

    def test_basic_counts(self):
        iv = make([0, 0, 2, 5], [4, 4, 2, 9])
        s = SpanSpaceStats.from_intervals(iv)
        assert s.n_intervals == 4
        assert s.n_distinct_pairs == 3
        assert s.degenerate_fraction == 0.25
        assert s.max_span == 4.0

    def test_endpoint_count_matches_intervalset(self, sphere_intervals):
        s = SpanSpaceStats.from_intervals(sphere_intervals)
        assert s.n_distinct_endpoints == sphere_intervals.n_distinct_endpoints


class TestHistogram:
    def test_total_mass(self, sphere_intervals):
        hist, edges = span_space_histogram(sphere_intervals, bins=16)
        assert hist.sum() == len(sphere_intervals)
        assert len(edges) == 17

    def test_upper_triangular(self, sphere_intervals):
        """All mass lies on or above the diagonal (vmax >= vmin)."""
        hist, edges = span_space_histogram(sphere_intervals, bins=16)
        for i in range(16):
            for j in range(16):
                if j < i - 1:  # strictly-below-diagonal bins (1-bin slack)
                    assert hist[i, j] == 0

    def test_empty_and_constant(self):
        h, _ = span_space_histogram(make([], []), bins=8)
        assert h.sum() == 0
        h2, _ = span_space_histogram(make([3, 3], [3, 3]), bins=8)
        assert h2.sum() == 2


class TestSquares:
    def test_squares_cover_all_intervals(self, sphere_intervals):
        tree = CompactIntervalTree.build(sphere_intervals)
        squares = tree_span_squares(tree)
        assert sum(sq.n_intervals for sq in squares) == len(sphere_intervals)

    def test_square_geometry(self, sphere_intervals):
        """Each square's corner sits on the diagonal inside [lo, hi]."""
        tree = CompactIntervalTree.build(sphere_intervals)
        for sq in tree_span_squares(tree):
            assert sq.lo <= sq.split <= sq.hi

    def test_brick_counts_match_tree(self, sphere_intervals):
        tree = CompactIntervalTree.build(sphere_intervals)
        squares = tree_span_squares(tree)
        assert sum(sq.n_bricks for sq in squares) == tree.n_bricks


class TestAscii:
    def test_renders_something(self, sphere_intervals):
        art = ascii_span_space(sphere_intervals, bins=12)
        assert "vmin" in art
        assert len(art.splitlines()) == 13

    def test_empty_message(self):
        assert "empty" in ascii_span_space(make([], []))
