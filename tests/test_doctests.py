"""Run the doctests embedded in public-API docstrings."""

import doctest

import pytest

import repro.io.blockdevice
import repro.mc
import repro.parallel.cluster
import repro.pipeline

MODULES = [
    repro.io.blockdevice,
    repro.mc,
    repro.parallel.cluster,
    repro.pipeline,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} lost its doctest examples"
    assert results.failed == 0


def test_package_docstring_example():
    results = doctest.testmod(repro, verbose=False)
    assert results.failed == 0


import repro  # noqa: E402  (used by the last test)
