"""Tests for PPM/PGM output."""

import numpy as np
import pytest

from repro.render.image import ascii_preview, depth_to_gray, read_ppm, write_pgm, write_ppm


class TestPPM:
    def test_roundtrip(self, tmp_path):
        rng = np.random.default_rng(0)
        img = rng.integers(0, 255, size=(13, 17, 3)).astype(np.uint8)
        path = write_ppm(tmp_path / "x.ppm", img)
        back = read_ppm(path)
        assert np.array_equal(back, img)

    def test_header(self, tmp_path):
        img = np.zeros((2, 3, 3), dtype=np.uint8)
        path = write_ppm(tmp_path / "h.ppm", img)
        with open(path, "rb") as fh:
            assert fh.readline().strip() == b"P6"
            assert fh.readline().split() == [b"3", b"2"]

    def test_rejects_bad_shape(self, tmp_path):
        with pytest.raises(ValueError):
            write_ppm(tmp_path / "bad.ppm", np.zeros((4, 4), dtype=np.uint8))

    def test_rejects_bad_dtype(self, tmp_path):
        with pytest.raises(ValueError):
            write_ppm(tmp_path / "bad.ppm", np.zeros((4, 4, 3), dtype=np.float32))

    def test_read_rejects_non_ppm(self, tmp_path):
        p = tmp_path / "no.ppm"
        p.write_bytes(b"P5\n1 1\n255\n\x00")
        with pytest.raises(ValueError):
            read_ppm(p)


class TestPGM:
    def test_write(self, tmp_path):
        img = np.arange(12, dtype=np.uint8).reshape(3, 4)
        path = write_pgm(tmp_path / "g.pgm", img)
        data = path.read_bytes()
        assert data.startswith(b"P5\n4 3\n255\n")
        assert data.endswith(img.tobytes())

    def test_rejects_rgb(self, tmp_path):
        with pytest.raises(ValueError):
            write_pgm(tmp_path / "g.pgm", np.zeros((2, 2, 3), dtype=np.uint8))


class TestHelpers:
    def test_depth_to_gray(self):
        depth = np.full((4, 4), np.inf, dtype=np.float32)
        depth[1, 1] = 1.0
        depth[2, 2] = 3.0
        g = depth_to_gray(depth)
        assert g[0, 0] == 0  # empty = black
        assert g[1, 1] > g[2, 2]  # nearer = brighter

    def test_depth_to_gray_all_empty(self):
        g = depth_to_gray(np.full((3, 3), np.inf))
        assert np.all(g == 0)

    def test_ascii_preview_dimensions(self):
        img = np.zeros((20, 40, 3), dtype=np.uint8)
        art = ascii_preview(img, width=20)
        lines = art.splitlines()
        assert len(lines[0]) == 20

    def test_ascii_preview_brightness(self):
        img = np.zeros((10, 10, 3), dtype=np.uint8)
        img[:, 5:] = 255
        art = ascii_preview(img, width=10)
        assert art.splitlines()[0][0] == " "
        assert art.splitlines()[0][-1] == "@"
