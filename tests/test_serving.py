"""Unit and integration tests for the serving front-end.

Covers the pieces individually — token bucket, the four typed shed
gates, the brownout ladder's hysteresis — then end to end: a small
trace where every request lands in exactly one terminal state, gold
preempting a long bulk job at a brick-batch boundary, and a node-kill
overlay absorbed by replication.  The overload acceptance soak itself
lives in ``benchmarks/bench_serving.py``.
"""

from __future__ import annotations

import pytest

from repro.grid.datasets import sphere_field
from repro.obs.metrics import MetricsRegistry
from repro.parallel.cluster import SimulatedCluster
from repro.serve import (
    SHED_BROWNOUT_BULK,
    SHED_DEADLINE_INFEASIBLE,
    SHED_QUEUE_FULL,
    SHED_TENANT_THROTTLED,
    AdmissionController,
    BrownoutConfig,
    BrownoutController,
    ClusterEvent,
    QueryRequest,
    QueryServer,
    RejectedQuery,
    ServeConfig,
    TERMINAL_STATES,
    TenantSpec,
    TokenBucket,
    TrafficConfig,
    TrafficTrace,
    generate_trace,
)

TENANTS = (
    TenantSpec("gold-a", tier="gold", arrival_share=0.3, rate=5.0, burst=2,
               deadline_budget=1.0),
    TenantSpec("bulk-c", tier="bulk", arrival_share=0.7, rate=5.0, burst=4,
               deadline_budget=5.0),
)


def _req(rid=0, tenant="gold-a", tier="gold", arrival=0.0, lam=0.8, budget=1.0):
    return QueryRequest(request_id=rid, arrival=arrival, tenant=tenant,
                        tier=tier, lam=lam, budget=budget)


class TestTokenBucket:
    def test_starts_full_then_denies(self):
        b = TokenBucket(rate=1.0, capacity=2.0)
        assert b.try_take(0.0)
        assert b.try_take(0.0)
        assert not b.try_take(0.0)

    def test_refills_at_rate(self):
        b = TokenBucket(rate=2.0, capacity=2.0)
        b.try_take(0.0), b.try_take(0.0)
        assert not b.try_take(0.1)   # only 0.2 tokens back
        assert b.try_take(0.5)       # 1.0 token accrued by t=0.5

    def test_saturates_at_capacity(self):
        b = TokenBucket(rate=10.0, capacity=3.0)
        b.refill(100.0)
        assert b.level == 3.0

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, capacity=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, capacity=-1.0)


class TestAdmissionGates:
    def _ctrl(self, depth=4, slack=1.0):
        return AdmissionController(TENANTS, max_queue_depth=depth, slack=slack)

    def test_admits_feasible_request(self):
        r = self._ctrl().admit(_req(), now=0.0, queue_depth=0,
                               start_delay=0.0, est_cost=0.5)
        assert r is None

    def test_queue_full(self):
        r = self._ctrl(depth=2).admit(_req(), now=0.0, queue_depth=2,
                                      start_delay=0.0, est_cost=0.1)
        assert isinstance(r, RejectedQuery) and r.reason == SHED_QUEUE_FULL

    def test_tenant_throttled_consumes_tokens(self):
        ctrl = self._ctrl()
        for i in range(2):   # gold-a burst is 2
            assert ctrl.admit(_req(rid=i), now=0.0, queue_depth=0,
                              start_delay=0.0, est_cost=0.1) is None
        r = ctrl.admit(_req(rid=2), now=0.0, queue_depth=0,
                       start_delay=0.0, est_cost=0.1)
        assert r.reason == SHED_TENANT_THROTTLED

    def test_deadline_infeasible(self):
        r = self._ctrl().admit(_req(budget=1.0), now=0.0, queue_depth=0,
                               start_delay=0.8, est_cost=0.5)
        assert r.reason == SHED_DEADLINE_INFEASIBLE
        assert "budget" in r.detail

    def test_slack_loosens_feasibility(self):
        r = self._ctrl(slack=2.0).admit(_req(budget=1.0), now=0.0,
                                        queue_depth=0, start_delay=0.8,
                                        est_cost=0.5)
        assert r is None

    def test_brownout_sheds_bulk_only(self):
        ctrl = self._ctrl()
        bulk = _req(tenant="bulk-c", tier="bulk", budget=5.0)
        r = ctrl.admit(bulk, now=0.0, queue_depth=0, start_delay=0.0,
                       est_cost=0.1, shed_bulk=True)
        assert r.reason == SHED_BROWNOUT_BULK
        gold = _req(rid=1)
        assert ctrl.admit(gold, now=0.0, queue_depth=0, start_delay=0.0,
                          est_cost=0.1, shed_bulk=True) is None

    def test_unknown_tenant_raises(self):
        with pytest.raises(KeyError):
            self._ctrl().admit(_req(tenant="nobody"), now=0.0, queue_depth=0,
                               start_delay=0.0, est_cost=0.1)

    def test_rejected_query_validates_reason(self):
        with pytest.raises(ValueError):
            RejectedQuery(_req(), "because", 0.0)


class TestBrownoutLadder:
    def _ctrl(self, **kw):
        cfg = BrownoutConfig(eval_interval=1.0, queue_high=10, queue_low=2,
                             down_after=2, up_after=3, **kw)
        return BrownoutController(cfg)

    def test_descends_after_sustained_overload(self):
        c = self._ctrl()
        assert c.evaluate(1.0, queue_depth=20, p99_over_budget=None) == 0
        assert c.evaluate(2.0, queue_depth=20, p99_over_budget=None) == 1
        assert c.level_name == "budget-shrink"
        assert c.budget_factor == 0.5 and c.hedging_enabled and not c.shed_bulk
        for t in (3.0, 4.0, 5.0, 6.0):
            c.evaluate(t, queue_depth=20, p99_over_budget=None)
        assert c.level == 3 and c.shed_bulk and not c.hedging_enabled

    def test_p99_signal_alone_triggers(self):
        c = self._ctrl()
        c.evaluate(1.0, queue_depth=0, p99_over_budget=1.5)
        c.evaluate(2.0, queue_depth=0, p99_over_budget=1.5)
        assert c.level == 1

    def test_recovers_only_after_sustained_health(self):
        c = self._ctrl()
        c.evaluate(1.0, 20, None), c.evaluate(2.0, 20, None)
        assert c.level == 1
        c.evaluate(3.0, 0, 0.1), c.evaluate(4.0, 0, 0.1)
        assert c.level == 1   # up_after=3 not yet reached
        c.evaluate(5.0, 0, 0.1)
        assert c.level == 0

    def test_hysteresis_band_resets_streaks(self):
        c = self._ctrl()
        c.evaluate(1.0, 20, None)
        c.evaluate(2.0, 5, 0.8)   # between low and high: resets hot streak
        c.evaluate(3.0, 20, None)
        assert c.level == 0       # never saw down_after consecutive

    def test_transitions_recorded_and_gauged(self):
        m = MetricsRegistry()
        c = BrownoutController(
            BrownoutConfig(eval_interval=1.0, down_after=1), metrics=m)
        c.evaluate(1.0, 99, None)
        assert len(c.transitions) == 1
        t = c.transitions[0]
        assert (t.from_level, t.to_level) == (0, 1) and t.time == 1.0
        assert m.value("serve.brownout.level") == 1
        assert m.value("serve.brownout.transitions") == 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BrownoutConfig(queue_low=5, queue_high=2)
        with pytest.raises(ValueError):
            BrownoutConfig(budget_shrink=0.0)
        with pytest.raises(ValueError):
            BrownoutConfig(down_after=0)


@pytest.fixture(scope="module")
def serve_cluster_factory():
    def make():
        return SimulatedCluster(
            sphere_field((24, 24, 24)), 4, metacell_shape=(5, 5, 5),
            replication=2,
        )
    return make


class TestEndToEnd:
    def _unit(self, cluster):
        return cluster.estimate_extract_time(0.8)

    def test_small_trace_exact_terminal_states(self, serve_cluster_factory):
        cluster = serve_cluster_factory()
        unit = self._unit(cluster)
        tenants = (
            TenantSpec("gold-a", tier="gold", arrival_share=0.5,
                       rate=2.0 / unit, burst=4, deadline_budget=4.0 * unit),
            TenantSpec("bulk-c", tier="bulk", arrival_share=0.5,
                       rate=2.0 / unit, burst=4, deadline_budget=10.0 * unit),
        )
        traffic = TrafficConfig(duration=15.0 * unit, base_rate=1.5 / unit,
                                isovalues=(0.5, 0.8, 1.1), seed=11)
        trace = generate_trace(traffic, tenants)
        metrics = MetricsRegistry()
        config = ServeConfig(tenants=tenants, quantum=unit / 5.0,
                             brownout=BrownoutConfig(eval_interval=2.0 * unit))
        report = QueryServer(cluster, config, metrics=metrics).serve(trace)
        assert report.n_requests == len(trace.requests) > 0
        for r in report.records:
            assert r.state in TERMINAL_STATES
        assert metrics.value("serve.arrivals") == report.n_requests
        done = sum(metrics.query("serve.completed").values())
        shed = sum(metrics.query("serve.shed").values())
        assert done + shed == report.n_requests
        # Tenant attribution flows through the cluster publication.
        assert metrics.query("tenant")

    def test_gold_preempts_bulk_at_batch_boundary(self, serve_cluster_factory):
        cluster = serve_cluster_factory()
        unit = self._unit(cluster)
        tenants = (
            TenantSpec("gold-a", tier="gold", arrival_share=1.0,
                       rate=10.0 / unit, burst=8, deadline_budget=4.0 * unit),
            TenantSpec("bulk-c", tier="bulk", arrival_share=1.0,
                       rate=10.0 / unit, burst=8, deadline_budget=50.0 * unit),
        )
        # Hand-built trace: two bulk jobs fill both slots, then a gold
        # burst arrives mid-service.
        reqs = [
            QueryRequest(0, 0.0, "bulk-c", "bulk", 0.8, 50.0 * unit),
            QueryRequest(1, 0.0, "bulk-c", "bulk", 0.8, 50.0 * unit),
            QueryRequest(2, 0.3 * unit, "gold-a", "gold", 0.8, 4.0 * unit),
        ]
        trace = TrafficTrace(requests=tuple(reqs))
        config = ServeConfig(tenants=tenants, n_executors=2,
                             quantum=unit / 5.0, brick_batches=4)
        report = QueryServer(cluster, config).serve(trace)
        by_id = {r.request_id: r for r in report.records}
        assert sum(r.preemptions for r in report.records) >= 1
        assert by_id[2].state in ("ok", "degraded")
        # The preempted bulk job still finishes (resumed, not re-run).
        assert all(by_id[i].state in ("ok", "degraded") for i in (0, 1))
        # Gold got the slot before the victim's natural finish.
        victim = max(by_id[0], by_id[1], key=lambda r: r.preemptions)
        assert victim.preemptions >= 1
        assert by_id[2].queue_wait < victim.service_time

    def test_preemption_disabled_keeps_bulk_running(self, serve_cluster_factory):
        cluster = serve_cluster_factory()
        unit = self._unit(cluster)
        tenants = (
            TenantSpec("gold-a", tier="gold", arrival_share=1.0,
                       rate=10.0 / unit, burst=8, deadline_budget=4.0 * unit),
            TenantSpec("bulk-c", tier="bulk", arrival_share=1.0,
                       rate=10.0 / unit, burst=8, deadline_budget=50.0 * unit),
        )
        reqs = [
            QueryRequest(0, 0.0, "bulk-c", "bulk", 0.8, 50.0 * unit),
            QueryRequest(1, 0.0, "bulk-c", "bulk", 0.8, 50.0 * unit),
            QueryRequest(2, 0.3 * unit, "gold-a", "gold", 0.8, 4.0 * unit),
        ]
        config = ServeConfig(tenants=tenants, n_executors=2,
                             quantum=unit / 5.0, preemption=False)
        report = QueryServer(cluster, config).serve(
            TrafficTrace(requests=tuple(reqs)))
        assert sum(r.preemptions for r in report.records) == 0

    def test_node_kill_overlay_absorbed_by_replication(
            self, serve_cluster_factory):
        cluster = serve_cluster_factory()
        unit = self._unit(cluster)
        tenants = (
            TenantSpec("gold-a", tier="gold", arrival_share=1.0,
                       rate=5.0 / unit, burst=8, deadline_budget=8.0 * unit),
        )
        traffic = TrafficConfig(
            duration=10.0 * unit, base_rate=1.0 / unit, isovalues=(0.8,),
            seed=3, overlays=(ClusterEvent(4.0 * unit, "kill", 2),),
        )
        trace = generate_trace(traffic, tenants)
        report = QueryServer(
            cluster, ServeConfig(tenants=tenants, quantum=unit / 5.0)
        ).serve(trace)
        assert cluster.datasets[2].device.failed
        # r=2 keeps the killed node's stripe readable: nothing fails.
        assert not report.by_state("failed")
        assert report.completed
