"""Unit tests for TriangleMesh."""

import numpy as np
import pytest

from repro.mc.geometry import TriangleMesh


def tetrahedron() -> TriangleMesh:
    """A regular-ish tetrahedron with outward normals."""
    v = np.array([[0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1]], dtype=np.float64)
    f = np.array([[0, 2, 1], [0, 1, 3], [0, 3, 2], [1, 2, 3]])
    return TriangleMesh(v, f)


class TestMeasures:
    def test_tetrahedron_volume(self):
        assert tetrahedron().enclosed_volume() == pytest.approx(1 / 6)

    def test_tetrahedron_area(self):
        t = tetrahedron()
        expected = 3 * 0.5 + 0.5 * np.sqrt(3)  # three unit right triangles + slanted
        assert t.area() == pytest.approx(expected)

    def test_flipped_orientation_negates_volume(self):
        t = tetrahedron()
        flipped = TriangleMesh(t.vertices, t.faces[:, [0, 2, 1]])
        assert flipped.enclosed_volume() == pytest.approx(-1 / 6)

    def test_bounding_box(self):
        lo, hi = tetrahedron().bounding_box()
        assert np.array_equal(lo, [0, 0, 0])
        assert np.array_equal(hi, [1, 1, 1])

    def test_face_normals_unit_length(self):
        n = tetrahedron().face_normals()
        assert np.allclose(np.linalg.norm(n, axis=1), 1.0)

    def test_vertex_normals_unit_length(self):
        n = tetrahedron().vertex_normals()
        assert np.allclose(np.linalg.norm(n, axis=1), 1.0)

    def test_empty_mesh(self):
        m = TriangleMesh()
        assert m.n_triangles == 0
        assert m.area() == 0.0
        assert not m.is_closed()


class TestTopology:
    def test_tetrahedron_watertight(self):
        t = tetrahedron()
        t.validate_watertight()
        assert t.euler_characteristic() == 2
        assert t.n_edges() == 6
        assert t.boundary_edge_count() == 0

    def test_open_mesh_detected(self):
        t = tetrahedron()
        open_mesh = TriangleMesh(t.vertices, t.faces[:3])
        assert not open_mesh.is_closed()
        assert open_mesh.boundary_edge_count() == 3
        with pytest.raises(AssertionError):
            open_mesh.validate_watertight()

    def test_inconsistent_winding_detected(self):
        t = tetrahedron()
        f = t.faces.copy()
        f[0] = f[0][[0, 2, 1]]
        bad = TriangleMesh(t.vertices, f)
        assert bad.is_closed()
        assert not bad.is_consistently_oriented()


class TestTransforms:
    def test_translation_preserves_volume(self):
        t = tetrahedron().translated([5, -2, 3])
        assert t.enclosed_volume() == pytest.approx(1 / 6)

    def test_scaling_scales_volume_cubically(self):
        t = tetrahedron().scaled(2.0)
        assert t.enclosed_volume() == pytest.approx(8 / 6)

    def test_anisotropic_scaling(self):
        t = tetrahedron().scaled([2.0, 1.0, 1.0])
        assert t.enclosed_volume() == pytest.approx(2 / 6)


class TestConcatWeld:
    def test_concat_offsets_faces(self):
        a, b = tetrahedron(), tetrahedron().translated([10, 0, 0])
        c = TriangleMesh.concat([a, b])
        assert c.n_triangles == 8
        assert c.n_vertices == 8
        assert c.enclosed_volume() == pytest.approx(2 / 6)

    def test_concat_empty_inputs(self):
        assert TriangleMesh.concat([]).n_triangles == 0
        assert TriangleMesh.concat([TriangleMesh(), tetrahedron()]).n_triangles == 4

    def test_weld_merges_coincident_vertices(self):
        t = tetrahedron()
        # Duplicate the mesh on top of itself vertex-wise but reuse faces of
        # the first copy only through concat of soup triangles:
        soup_vertices = t.vertices[t.faces].reshape(-1, 3)
        soup_faces = np.arange(len(soup_vertices)).reshape(-1, 3)
        soup = TriangleMesh(soup_vertices, soup_faces)
        assert soup.n_vertices == 12
        welded = soup.weld()
        assert welded.n_vertices == 4
        welded.validate_watertight()

    def test_weld_drops_degenerate_faces(self):
        v = np.array([[0, 0, 0], [1, 0, 0], [1 + 1e-12, 0, 0], [0, 1, 0]])
        f = np.array([[0, 1, 2], [0, 1, 3]])
        m = TriangleMesh(v, f).weld(decimals=6)
        assert m.n_triangles == 1

    def test_face_index_validation(self):
        with pytest.raises(ValueError):
            TriangleMesh(np.zeros((2, 3)), np.array([[0, 1, 2]]))
        with pytest.raises(ValueError):
            TriangleMesh(np.zeros((0, 3)), np.array([[0, 1, 2]]))
