"""Coalesced-read fallback on wrapped devices.

The coalescer needs the raw-device escape hatch (``peek`` +
``charge_read``); wrapper devices — fault injection, hedging, caching —
deliberately do not expose it, so a query that *requests* coalescing on
a wrapped stack must silently take the plain per-run path and still
produce bit-identical records **and** bit-identical ``IOStats`` (the
coalescer's contract is that the meter is charged exactly the per-run
sequence either way).
"""

import numpy as np
import pytest

from repro.core.persistence import build_persistent_dataset, load_dataset
from repro.core.query import QueryOptions, execute_query
from repro.grid.datasets import sphere_field
from repro.io.cache import CachedDevice
from repro.io.faults import FaultInjectingDevice, FaultPlan, HedgedDevice

ISO = 0.62
GAP = 64  # generous merge threshold so coalescing definitely fires


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    vol = sphere_field((33, 33, 33))
    directory = tmp_path_factory.mktemp("coalesce_ds")
    build_persistent_dataset(vol, directory, metacell_shape=(5, 5, 5))
    return directory


def run(ds, gap):
    qr = execute_query(ds, ISO, QueryOptions(coalesce_gap_blocks=gap))
    return qr


def stats_tuple(qr):
    return (qr.io_stats.blocks_read, qr.io_stats.seeks, qr.n_records_read)


def count_reads(device):
    """Shadow ``device.read`` with a counting wrapper (per instance)."""
    counter = {"n": 0}
    orig = device.read

    def counted(offset, nbytes):
        counter["n"] += 1
        return orig(offset, nbytes)

    device.read = counted
    return counter


class TestRawDeviceCoalesces:
    def test_raw_device_exposes_escape_hatch(self, store):
        ds = load_dataset(store)
        assert hasattr(ds.device, "peek")
        assert hasattr(ds.device, "charge_read")

    def test_coalescing_fires_and_preserves_everything(self, store):
        per_run_ds = load_dataset(store)
        per_run_calls = count_reads(per_run_ds.device)
        per_run = run(per_run_ds, gap=0)

        fast_ds = load_dataset(store)
        fast_calls = count_reads(fast_ds.device)
        fast = run(fast_ds, gap=GAP)

        # Coalescing genuinely merged extents (fewer read calls) ...
        assert fast_calls["n"] < per_run_calls["n"]
        # ... while records and the modeled meter are bit-identical.
        assert np.array_equal(fast.records.ids, per_run.records.ids)
        assert np.array_equal(
            fast_ds.codec.values_grid(fast.records),
            per_run_ds.codec.values_grid(per_run.records),
        )
        assert stats_tuple(fast) == stats_tuple(per_run)


class TestWrappedStacksFallBack:
    """Each wrapper stack, queried *with coalescing requested*, must
    match the raw per-run path bit-for-bit in records and IOStats."""

    @pytest.fixture(scope="class")
    def per_run(self, store):
        ds = load_dataset(store)
        qr = run(ds, gap=0)
        return ds, qr

    def _check(self, ds, per_run, expect_read_calls=None):
        ref_ds, ref = per_run
        calls = count_reads(ds.device)
        qr = run(ds, gap=GAP)
        assert not hasattr(ds.device, "peek")
        assert not hasattr(ds.device, "charge_read")
        assert np.array_equal(qr.records.ids, ref.records.ids)
        assert np.array_equal(
            ds.codec.values_grid(qr.records),
            ref_ds.codec.values_grid(ref.records),
        )
        assert stats_tuple(qr) == stats_tuple(ref)
        if expect_read_calls is not None:
            assert calls["n"] == expect_read_calls

    def test_fault_injecting_stack(self, store, per_run):
        ds = load_dataset(store)
        # Benign plan: the wrapper is present but injects nothing, so
        # the only difference from raw is the missing escape hatch.
        ds.device = FaultInjectingDevice(ds.device, FaultPlan())
        self._check(ds, per_run)

    def test_hedged_stack(self, store, per_run):
        ds = load_dataset(store)
        replica = load_dataset(store)
        ds.device = HedgedDevice(
            ds.device, ds.base_offset, replica.device, replica.base_offset
        )
        self._check(ds, per_run)

    def test_cached_stack(self, store, per_run):
        ds = load_dataset(store)
        ds.device = CachedDevice(ds.device, capacity_blocks=4096)
        self._check(ds, per_run)

    def test_fault_over_hedged_over_cached(self, store, per_run):
        """Deep stack: fault injection over hedging over caching."""
        ds = load_dataset(store)
        replica = load_dataset(store)
        cached = CachedDevice(ds.device, capacity_blocks=4096)
        hedged = HedgedDevice(
            cached, ds.base_offset, replica.device, replica.base_offset
        )
        ds.device = FaultInjectingDevice(hedged, FaultPlan())
        self._check(ds, per_run)

    def test_wrapped_read_calls_match_per_run_path(self, store):
        """The wrapper sees exactly as many read calls as the per-run
        path issues on a raw device — no hidden merging."""
        raw = load_dataset(store)
        raw_calls = count_reads(raw.device)
        run(raw, gap=0)

        wrapped = load_dataset(store)
        wrapped.device = FaultInjectingDevice(wrapped.device, FaultPlan())
        wrapped_calls = count_reads(wrapped.device)
        run(wrapped, gap=GAP)
        assert wrapped_calls["n"] == raw_calls["n"]
