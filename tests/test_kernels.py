"""The pluggable extraction-kernel subsystem.

Four contracts under test:

* **Registry** (:mod:`repro.mc.backends`): names resolve, unknown names
  fail fast listing the alternatives, registration is append-only and
  test-scoped backends can be removed again.
* **mc-batch parity**: the vectorized batch kernel is *geometrically
  bit-identical* to a per-cell traversal — exhaustively over all 256
  sign configurations of a single cell, and over seeded random volumes
  at every chunk size (chunking may reorder triangles, never change
  them).
* **surface-nets topology**: the dual kernel produces the same surface
  topology as Marching Cubes (component count, Euler characteristic,
  closedness, crack-free metacell boundaries) while being exactly
  chunk- and permutation-invariant; plus the wraparound and
  absolute-placement regressions.
* **Selection plumbing**: both backends are reachable through
  ``QueryOptions`` / ``ExtractRequest`` across serial, coalesced,
  pipelined, fault-injected, and deadline-cut paths, and the
  modern-kwarg shim rejects mixed spellings.
"""

import dataclasses
import importlib
import warnings

import numpy as np
import pytest

# ``repro.mc`` re-exports the ``surface_nets`` *function* under the same
# name as the submodule, so a plain ``import repro.mc.surface_nets as m``
# binds the function; go through importlib for the module object.
snm = importlib.import_module("repro.mc.surface_nets")
from repro.core.builder import build_indexed_dataset
from repro.core.query import QueryOptions, execute_query
from repro.grid.datasets import sphere_field
from repro.io.faults import FaultPlan
from repro.mc.backends import (
    DEFAULT_BACKEND,
    KernelBackend,
    available_backends,
    get_backend,
    register_backend,
    unregister_backend,
    validate_backend,
)
from repro.mc.geometry import TriangleMesh
from repro.mc.marching_cubes import marching_cubes, marching_cubes_batch
from repro.mc.surface_nets import surface_nets, surface_nets_batch
from repro.mc.tables import CORNERS, EDGE_MASK, EDGE_VERTICES, N_TRI, TRI_TABLE
from repro.parallel.cluster import ExtractRequest, SimulatedCluster
from repro.parallel.pipeline import PipelineOptions
from repro.pipeline import IsosurfacePipeline


def tri_soup(mesh) -> np.ndarray:
    """Canonical order-independent triangle soup: per face the three
    vertex coordinate triples sorted within the face, faces sorted
    lexicographically.  Two meshes with equal soups carry the same
    geometry, regardless of vertex indexing, winding, or emit order."""
    if mesh.n_triangles == 0:
        return np.empty((0, 9))
    tris = np.ascontiguousarray(mesh.vertices[mesh.faces])  # (F, 3, 3)
    dt = np.dtype([("x", "f8"), ("y", "f8"), ("z", "f8")])
    corners = np.sort(tris.view(dt).reshape(-1, 3), axis=1)
    flat = corners.view("f8").reshape(-1, 9)
    return flat[np.lexsort(flat.T[::-1])]


def soup_of_triangles(tris: np.ndarray) -> np.ndarray:
    """``tri_soup`` for a raw ``(F, 3, 3)`` triangle array."""
    n = len(tris)
    return tri_soup(TriangleMesh(
        np.asarray(tris, dtype=float).reshape(-1, 3),
        np.arange(3 * n, dtype=np.int64).reshape(-1, 3),
    ))


def boundary_edge_count(mesh) -> int:
    return mesh.boundary_edge_count()


def components(mesh) -> int:
    """Connected components of the face graph (union-find)."""
    n = mesh.n_vertices
    parent = np.arange(n)

    def find(a):
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    for tri in mesh.faces:
        a, b, c = (int(v) for v in tri)
        ra = find(a)
        parent[find(b)] = ra
        parent[find(c)] = ra
    return len({find(i) for i in range(n)}) if n else 0


def sphere_sdf(n=24, r=8.0) -> np.ndarray:
    g = np.arange(n)
    x, y, z = np.meshgrid(g, g, g, indexing="ij")
    c = (n - 1) / 2
    return np.sqrt((x - c) ** 2 + (y - c) ** 2 + (z - c) ** 2) - r


def to_batch(vol: np.ndarray, m: int = 9):
    """Cut a full grid into (m,m,m) metacell payloads with the shared
    vertex layer the paper's layout uses (stride m-1); short payloads
    are padded with a huge constant so they add no crossings."""
    s = m - 1
    nx, ny, nz = vol.shape
    vals, orgs = [], []
    for i in range(0, nx - 1, s):
        for j in range(0, ny - 1, s):
            for k in range(0, nz - 1, s):
                p = vol[i:i + m, j:j + m, k:k + m]
                if p.shape != (m, m, m):
                    pp = np.full((m, m, m), 1e9)
                    pp[:p.shape[0], :p.shape[1], :p.shape[2]] = p
                    p = pp
                vals.append(p)
                orgs.append((i, j, k))
    return np.asarray(vals), np.asarray(orgs, dtype=float)


def smooth_random_volume(seed: int, n: int = 16) -> np.ndarray:
    rng = np.random.default_rng(seed)
    f = rng.standard_normal((n, n, n))
    F = np.fft.rfftn(f)
    k = np.fft.fftfreq(n)
    kx, ky = np.meshgrid(k, k, indexing="ij")
    kz = np.fft.rfftfreq(n)
    K2 = kx[:, :, None] ** 2 + ky[:, :, None] ** 2 + kz[None, None, :] ** 2
    return np.fft.irfftn(F / (1 + 400 * K2), s=(n, n, n), axes=(0, 1, 2))


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_builtins_registered(self):
        names = available_backends()
        assert "mc-batch" in names and "surface-nets" in names
        assert DEFAULT_BACKEND == "mc-batch"

    def test_get_default(self):
        assert get_backend().name == "mc-batch"
        assert get_backend(None).name == "mc-batch"

    def test_backend_properties(self):
        mc = get_backend("mc-batch")
        sn = get_backend("surface-nets")
        assert mc.exact and mc.supports_pipeline
        assert mc.extract_chunks is not None
        assert not sn.exact and not sn.supports_pipeline
        assert sn.extract_chunks is None

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(ValueError, match="mc-batch"):
            get_backend("no-such-kernel")
        with pytest.raises(ValueError, match="surface-nets"):
            validate_backend("no-such-kernel")

    def test_validate_returns_name(self):
        assert validate_backend("surface-nets") == "surface-nets"

    def test_register_and_unregister(self):
        bk = KernelBackend(
            name="test-kernel", batch=marching_cubes_batch,
            extract_chunks=None, exact=True, supports_pipeline=False,
        )
        try:
            register_backend(bk)
            assert get_backend("test-kernel") is bk
            assert "test-kernel" in available_backends()
            assert QueryOptions(backend="test-kernel").backend == "test-kernel"
        finally:
            unregister_backend("test-kernel")
        with pytest.raises(ValueError):
            get_backend("test-kernel")

    def test_bad_name_rejected(self):
        with pytest.raises(ValueError):
            register_backend(KernelBackend(
                name="", batch=None, extract_chunks=None,
                exact=True, supports_pipeline=False,
            ))


# ---------------------------------------------------------------------------
# mc-batch parity with a per-cell reference
# ---------------------------------------------------------------------------


def reference_cell_triangles(corner_values, iso: float) -> np.ndarray:
    """Straight per-cell Marching Cubes from the case tables: the
    slow-but-obvious reference the vectorized batch kernel must match.

    Same convention as the kernel: corner ``c`` sets bit ``c`` of the
    case index iff its value is ``> iso``; crossing positions come from
    linear interpolation along the edge."""
    index = 0
    for c in range(8):
        if corner_values[c] > iso:
            index |= 1 << c
    if EDGE_MASK[index] == 0:
        return np.empty((0, 3, 3))
    verts = {}
    for e in range(12):
        if EDGE_MASK[index] & (1 << e):
            a, b = EDGE_VERTICES[e]
            va, vb = float(corner_values[a]), float(corner_values[b])
            t = (iso - va) / (vb - va)
            verts[e] = CORNERS[a] + t * (CORNERS[b] - CORNERS[a])
    tris = [[verts[e0], verts[e1], verts[e2]]
            for (e0, e1, e2) in TRI_TABLE[index]]
    return np.asarray(tris, dtype=float).reshape(-1, 3, 3)


class TestMCBatchParity:
    def test_all_256_sign_configurations(self):
        """Exhaustive single-cell sweep: every case index produces the
        table's triangle count and the same geometry as the per-cell
        reference, to the last bit of the interpolation."""
        iso = 0.5
        for case in range(256):
            corner_values = np.array(
                [1.0 if case & (1 << c) else 0.0 for c in range(8)]
            )
            cell = np.empty((2, 2, 2))
            for c in range(8):
                x, y, z = (int(v) for v in CORNERS[c])
                cell[x, y, z] = corner_values[c]
            ref = reference_cell_triangles(corner_values, iso)
            mesh = marching_cubes_batch(cell[None], iso, np.zeros((1, 3)))
            assert mesh.n_triangles == N_TRI[case] == len(ref), f"case {case}"
            if len(ref):
                # iso sits exactly mid-edge here, so both emitters land
                # on the same representable coordinates: equality is exact
                assert np.array_equal(
                    tri_soup(mesh), soup_of_triangles(ref)
                ), f"case {case}"

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_volume_matches_reference_cells(self, seed):
        rng = np.random.default_rng(seed)
        vol = rng.random((5, 5, 5))
        iso = 0.5
        ref_tris = []
        for i in range(4):
            for j in range(4):
                for k in range(4):
                    cv = np.array([
                        vol[i, j, k], vol[i + 1, j, k],
                        vol[i + 1, j + 1, k], vol[i, j + 1, k],
                        vol[i, j, k + 1], vol[i + 1, j, k + 1],
                        vol[i + 1, j + 1, k + 1], vol[i, j + 1, k + 1],
                    ])
                    t = reference_cell_triangles(cv, iso)
                    if len(t):
                        ref_tris.append(t + np.array([i, j, k], dtype=float))
        ref = np.concatenate(ref_tris) if ref_tris else np.empty((0, 3, 3))
        mesh = marching_cubes_batch(vol[None], iso, np.zeros((1, 3)))
        assert mesh.n_triangles == len(ref)
        # The kernel may interpolate each edge from the opposite endpoint
        # (same point, last-ulp float noise): round away the noise before
        # canonicalizing so the sort order is stable, then compare exactly.
        got = soup_of_triangles(mesh.vertices[mesh.faces].round(9))
        want = soup_of_triangles(ref.round(9))
        assert np.array_equal(got, want)

    @pytest.mark.parametrize("chunk", [1, 3, 7, 512])
    def test_chunking_never_changes_geometry(self, chunk):
        vol = sphere_sdf(n=17, r=6.0)
        vals, orgs = to_batch(vol, m=9)
        base = marching_cubes_batch(vals, 0.0, orgs)
        got = marching_cubes_batch(vals, 0.0, orgs, chunk=chunk)
        assert np.array_equal(tri_soup(got), tri_soup(base))

    def test_default_chunk_is_bit_identical_to_explicit_512(self):
        vol = sphere_sdf()
        vals, orgs = to_batch(vol)
        a = marching_cubes_batch(vals, 0.0, orgs)
        b = marching_cubes_batch(vals, 0.0, orgs, chunk=512)
        assert np.array_equal(a.vertices, b.vertices)
        assert np.array_equal(a.faces, b.faces)

    def test_chunk_below_one_rejected(self):
        vals, orgs = to_batch(sphere_sdf())
        with pytest.raises(ValueError):
            marching_cubes_batch(vals, 0.0, orgs, chunk=0)


# ---------------------------------------------------------------------------
# SurfaceNets topology equivalence
# ---------------------------------------------------------------------------


class TestSurfaceNetsTopology:
    @pytest.fixture(scope="class")
    def sphere_batch(self):
        vol = sphere_sdf()
        vals, orgs = to_batch(vol)
        return vol, vals, orgs

    @pytest.mark.parametrize("relax_iters", [0, 1, 2])
    def test_sphere_closed_euler_one_component(self, sphere_batch, relax_iters):
        vol, vals, orgs = sphere_batch
        full = surface_nets(vol, 0.0, relax_iters=relax_iters)
        batch = surface_nets_batch(vals, 0.0, orgs, relax_iters=relax_iters)
        assert boundary_edge_count(full) == 0
        assert full.euler_characteristic() == 2
        assert components(full) == 1
        assert boundary_edge_count(batch) == 0
        assert batch.n_triangles == full.n_triangles
        assert abs(batch.enclosed_volume() - full.enclosed_volume()) < 1e-9

    def test_volume_matches_mc_convention(self, sphere_batch):
        vol, _, _ = sphere_batch
        sn = surface_nets(vol, 0.0)
        mc = marching_cubes(vol, 0.0)
        assert np.sign(sn.enclosed_volume()) == np.sign(mc.enclosed_volume())
        rel = abs(sn.enclosed_volume() - mc.enclosed_volume())
        assert rel / abs(mc.enclosed_volume()) < 0.08

    @pytest.mark.parametrize("chunk", [1, 3, 7, 512])
    def test_exact_chunk_invariance(self, sphere_batch, chunk):
        _, vals, orgs = sphere_batch
        base = surface_nets_batch(vals, 0.0, orgs)
        got = surface_nets_batch(vals, 0.0, orgs, chunk=chunk)
        assert np.array_equal(got.faces, base.faces)
        assert np.array_equal(got.vertices, base.vertices)

    def test_permutation_invariant_surface(self, sphere_batch):
        _, vals, orgs = sphere_batch
        base = surface_nets_batch(vals, 0.0, orgs)
        perm = np.random.default_rng(0).permutation(len(vals))
        got = surface_nets_batch(vals[perm], 0.0, orgs[perm])
        assert got.n_triangles == base.n_triangles
        assert abs(got.enclosed_volume() - base.enclosed_volume()) < 1e-9

    def test_crack_free_metacell_boundaries_on_clipped_sphere(self):
        """A sphere poking out of the box: the only boundary edges the
        batch extraction may have are the ones the full-grid extraction
        has (the domain clip), never metacell seams."""
        vol = sphere_sdf(n=17, r=10.0)
        full = surface_nets(vol, 0.0)
        vals, orgs = to_batch(vol, m=9)
        batch = surface_nets_batch(vals, 0.0, orgs)
        assert boundary_edge_count(batch) == boundary_edge_count(full)
        assert batch.n_triangles == full.n_triangles
        assert abs(batch.enclosed_volume() - full.enclosed_volume()) < 1e-9

    def test_wraparound_regression_tilted_plane(self):
        """Stencil probes of bounding-box low-face edges must not wrap
        into another slab: every face edge of a tilted plane through the
        whole box connects adjacent cells (length < 3), which the
        pre-ghost-layer indexing violated."""
        g = np.arange(17, dtype=float)
        x, y, z = np.meshgrid(g, g, g, indexing="ij")
        mesh = surface_nets(x + 0.3 * y + 0.1 * z - 8.0, 0.0)
        v = mesh.vertices
        lengths = np.concatenate([
            np.linalg.norm(v[mesh.faces[:, a]] - v[mesh.faces[:, b]], axis=1)
            for a, b in ((0, 1), (1, 2), (2, 0))
        ])
        assert lengths.max() < 3.0

    def test_shifted_origins_place_absolutely(self, sphere_batch):
        _, vals, orgs = sphere_batch
        base = surface_nets_batch(vals, 0.0, orgs)
        shift = np.array([40.0, 56.0, 72.0])
        got = surface_nets_batch(vals, 0.0, orgs + shift)
        assert np.allclose(got.vertices - shift, base.vertices)
        assert np.array_equal(got.faces, base.faces)

    def test_world_transform_and_unit_normals(self, sphere_batch):
        _, vals, orgs = sphere_batch
        mesh, normals = surface_nets_batch(
            vals, 0.0, orgs, spacing=(0.5, 2.0, 1.5),
            world_origin=(3.0, -1.0, 2.0), with_normals=True, relax_iters=1,
        )
        assert normals.shape == (mesh.n_vertices, 3)
        assert np.allclose(np.linalg.norm(normals, axis=1), 1.0)

    def test_relaxed_vertices_stay_in_their_cell(self, sphere_batch):
        _, vals, orgs = sphere_batch
        cell_floor = np.floor(
            surface_nets_batch(vals, 0.0, orgs, relax_iters=0).vertices
        )
        relaxed = surface_nets_batch(vals, 0.0, orgs, relax_iters=3).vertices
        assert (relaxed >= cell_floor - 1e-12).all()
        assert (relaxed <= cell_floor + 1 + 1e-12).all()

    def test_empty_uniform_and_bad_inputs(self):
        assert surface_nets_batch(
            np.empty((0, 9, 9, 9)), 0.0, np.empty((0, 3))
        ).n_triangles == 0
        uniform = np.ones((4, 9, 9, 9))
        orgs = np.array(
            [[0, 0, 0], [8, 0, 0], [0, 8, 0], [0, 0, 8]], dtype=float
        )
        assert surface_nets_batch(uniform, 0.0, orgs).n_triangles == 0
        with pytest.raises(ValueError):
            surface_nets_batch(np.zeros((9, 9, 9)), 0.0, np.zeros((1, 3)))
        with pytest.raises(ValueError):
            surface_nets_batch(uniform, 0.0, orgs, chunk=0)

    def test_integer_payloads_match_float(self, sphere_batch):
        vol = (sphere_sdf() * 8 + 128).clip(0, 255)
        vals, orgs = to_batch(vol)
        as_int = surface_nets_batch(vals.astype(np.uint8), 127.5, orgs)
        as_float = surface_nets_batch(
            vals.astype(np.uint8).astype(float), 127.5, orgs
        )
        assert np.array_equal(as_int.faces, as_float.faces)
        assert np.array_equal(as_int.vertices, as_float.vertices)

    def test_sparse_fallback_bit_identical_to_dense(self, sphere_batch,
                                                    monkeypatch):
        _, vals, orgs = sphere_batch
        dense = surface_nets_batch(vals, 0.0, orgs, relax_iters=2)
        monkeypatch.setattr(snm, "_DENSE_GRID_CAP", 0)
        sparse = surface_nets_batch(vals, 0.0, orgs, relax_iters=2)
        assert np.array_equal(sparse.faces, dense.faces)
        assert np.array_equal(sparse.vertices, dense.vertices)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_smoothed_volumes_batch_matches_full(self, seed):
        """On band-limited random fields (where non-manifold sign
        patterns do occur) the batched extraction still reproduces the
        full-grid surface: same triangles, volume, and open boundary."""
        # n=17 tiles into 9^3 patches exactly: the pad value would read
        # as a huge field sample and cut spurious walls into open surfaces
        vol = smooth_random_volume(seed, n=17)
        iso = float(np.median(vol))
        full = surface_nets(vol, iso, relax_iters=1)
        vals, orgs = to_batch(vol, m=9)
        batch = surface_nets_batch(vals, iso, orgs, relax_iters=1)
        assert full.n_triangles > 0
        assert batch.n_triangles == full.n_triangles
        assert boundary_edge_count(batch) == boundary_edge_count(full)
        assert abs(batch.enclosed_volume() - full.enclosed_volume()) < 1e-9


# ---------------------------------------------------------------------------
# Selection plumbing: QueryOptions / ExtractRequest / pipeline / faults
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def sphere_pipe():
    return IsosurfacePipeline.from_volume(
        sphere_field((24, 24, 24)), metacell_shape=(5, 5, 5)
    )


class TestBackendSelection:
    @pytest.mark.parametrize("backend", ["mc-batch", "surface-nets"])
    def test_serial_and_coalesced_paths(self, sphere_pipe, backend):
        serial = sphere_pipe.extract(
            0.5, options=QueryOptions(backend=backend)
        )
        coalesced = sphere_pipe.extract(
            0.5, options=QueryOptions(backend=backend, coalesce_gap_blocks=4)
        )
        assert serial.mesh.n_triangles > 0
        assert np.array_equal(serial.mesh.vertices, coalesced.mesh.vertices)
        assert np.array_equal(serial.mesh.faces, coalesced.mesh.faces)

    @pytest.mark.parametrize("backend", ["mc-batch", "surface-nets"])
    def test_pipelined_path_matches_serial(self, sphere_pipe, backend):
        """mc-batch runs through the shm pipeline bit-identically;
        surface-nets (supports_pipeline=False) silently falls back to
        one serial kernel call — either way the geometry matches."""
        serial = sphere_pipe.extract(0.5, options=QueryOptions(backend=backend))
        piped = sphere_pipe.extract(0.5, options=QueryOptions(
            backend=backend,
            pipeline=PipelineOptions(workers=2, batch_chunks=1),
        ))
        assert np.array_equal(serial.mesh.vertices, piped.mesh.vertices)
        assert np.array_equal(serial.mesh.faces, piped.mesh.faces)

    def test_batch_chunk_default_bit_identity(self, sphere_pipe):
        base = sphere_pipe.extract(0.5)
        explicit = sphere_pipe.extract(
            0.5, options=QueryOptions(batch_chunk=512)
        )
        assert np.array_equal(base.mesh.vertices, explicit.mesh.vertices)
        assert np.array_equal(base.mesh.faces, explicit.mesh.faces)

    def test_batch_chunk_tunable_preserves_geometry(self, sphere_pipe):
        base = sphere_pipe.extract(0.5)
        small = sphere_pipe.extract(0.5, options=QueryOptions(batch_chunk=3))
        assert np.array_equal(
            tri_soup(base.mesh), tri_soup(small.mesh)
        )

    def test_unknown_backend_rejected_at_options(self):
        with pytest.raises(ValueError, match="mc-batch"):
            QueryOptions(backend="bogus")
        with pytest.raises(ValueError, match="mc-batch"):
            ExtractRequest(backend="bogus")
        with pytest.raises(ValueError):
            QueryOptions(batch_chunk=0)
        with pytest.raises(ValueError):
            ExtractRequest(batch_chunk=0)


@pytest.fixture(scope="module")
def small_cluster_volume():
    from repro.grid.rm_instability import rm_timestep

    return rm_timestep(250, shape=(33, 33, 29), seed=7)


class TestClusterBackendMatrix:
    @pytest.fixture(scope="class")
    def cluster(self, small_cluster_volume):
        return SimulatedCluster(
            small_cluster_volume, p=2, metacell_shape=(9, 9, 9),
            replication=2,
        )

    @pytest.fixture(scope="class")
    def lam(self, cluster):
        eps = cluster.datasets[0].tree.endpoints
        return float(eps[len(eps) // 2])

    @pytest.mark.parametrize("backend", ["mc-batch", "surface-nets"])
    def test_healthy_extraction(self, cluster, lam, backend):
        res = cluster.extract(lam, ExtractRequest(backend=backend))
        assert res.n_triangles > 0
        assert res.backend == backend
        assert res.coverage == pytest.approx(1.0)

    @pytest.mark.parametrize("backend", ["mc-batch", "surface-nets"])
    def test_fault_plan_recovery(self, small_cluster_volume, backend, lam=None):
        cluster = SimulatedCluster(
            small_cluster_volume, p=2, metacell_shape=(9, 9, 9),
            replication=2,
            fault_plans={0: FaultPlan.from_spec("transient=0.2,seed=3")},
        )
        eps = cluster.datasets[0].tree.endpoints
        lam = float(eps[len(eps) // 2])
        res = cluster.extract(lam, ExtractRequest(backend=backend))
        healthy = SimulatedCluster(
            small_cluster_volume, p=2, metacell_shape=(9, 9, 9),
            replication=2,
        ).extract(lam, ExtractRequest(backend=backend))
        assert res.n_triangles == healthy.n_triangles
        assert not res.degraded

    @pytest.mark.parametrize("backend", ["mc-batch", "surface-nets"])
    def test_deadline_cut_flags_partial(self, cluster, lam, backend):
        res = cluster.extract(
            lam, ExtractRequest(backend=backend, deadline=1e-9)
        )
        assert res.deadline is not None
        assert res.coverage <= 1.0

    def test_mesh_cache_keys_keep_backends_apart(self, small_cluster_volume):
        from repro.io.cache import CacheOptions

        cluster = SimulatedCluster(
            small_cluster_volume, p=2, metacell_shape=(9, 9, 9),
            cache=CacheOptions(result_cache_bytes=8 << 20),
        )
        eps = cluster.datasets[0].tree.endpoints
        lam = float(eps[len(eps) // 2])
        mc1 = cluster.extract(lam)
        sn1 = cluster.extract(lam, ExtractRequest(backend="surface-nets"))
        # A warm mc-batch cache must not feed surface-nets results.
        assert sn1.n_triangles != mc1.n_triangles
        sn2 = cluster.extract(lam, ExtractRequest(backend="surface-nets"))
        assert sn2.n_triangles == sn1.n_triangles
        mc2 = cluster.extract(lam)
        assert mc2.n_triangles == mc1.n_triangles


# ---------------------------------------------------------------------------
# Modern-kwarg shim (the CacheOptions convention)
# ---------------------------------------------------------------------------


class TestModernKwargShim:
    def test_modern_kwarg_standalone_no_warning(self, sphere_pipe):
        ds = build_indexed_dataset(sphere_field((24, 24, 24)), (5, 5, 5))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            res = execute_query(ds, 0.5, backend="surface-nets")
        assert res.n_records_read > 0

    def test_modern_plus_legacy_raises_both_spellings(self):
        ds = build_indexed_dataset(sphere_field((24, 24, 24)), (5, 5, 5))
        with pytest.raises(TypeError, match="backend.*read_ahead_blocks"):
            execute_query(ds, 0.5, backend="surface-nets", read_ahead_blocks=2)

    def test_modern_plus_options_object_raises(self):
        ds = build_indexed_dataset(sphere_field((24, 24, 24)), (5, 5, 5))
        with pytest.raises(TypeError, match="QueryOptions"):
            execute_query(ds, 0.5, QueryOptions(), backend="surface-nets")

    def test_cluster_modern_kwarg_standalone(self, small_cluster_volume):
        cluster = SimulatedCluster(
            small_cluster_volume, p=2, metacell_shape=(9, 9, 9)
        )
        eps = cluster.datasets[0].tree.endpoints
        lam = float(eps[len(eps) // 2])
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            res = cluster.extract(lam, backend="surface-nets")
        assert res.backend == "surface-nets"

    def test_cluster_modern_plus_legacy_raises(self, small_cluster_volume):
        cluster = SimulatedCluster(
            small_cluster_volume, p=2, metacell_shape=(9, 9, 9)
        )
        eps = cluster.datasets[0].tree.endpoints
        lam = float(eps[len(eps) // 2])
        with pytest.raises(TypeError, match="backend.*smooth"):
            cluster.extract(lam, backend="surface-nets", smooth=True)
        with pytest.raises(TypeError, match="batch_chunk.*deadline"):
            cluster.extract(lam, batch_chunk=64, deadline=1.0)

    def test_request_field_roundtrip(self):
        req = ExtractRequest(backend="surface-nets", batch_chunk=64)
        assert req.backend == "surface-nets" and req.batch_chunk == 64
        req2 = dataclasses.replace(req, backend="mc-batch")
        assert req2.backend == "mc-batch"
