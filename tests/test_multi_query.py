"""Tests for multi-isovalue batch queries and ROI extraction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builder import build_indexed_dataset
from repro.core.multi_query import (
    _merge_ranges,
    execute_multi_query,
    extract_region_of_interest,
)
from repro.core.query import execute_query
from repro.grid.datasets import sphere_field
from repro.grid.rm_instability import rm_timestep


class TestMergeRanges:
    def test_basic(self):
        assert _merge_ranges([(5, 9), (0, 3)]) == [(0, 3), (5, 9)]

    def test_overlap_and_adjacency(self):
        assert _merge_ranges([(0, 4), (2, 6), (6, 8)]) == [(0, 8)]

    def test_empty(self):
        assert _merge_ranges([]) == []

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(1, 10)), max_size=12))
    def test_union_property(self, raw):
        ranges = [(a, a + w) for a, w in raw]
        merged = _merge_ranges(ranges)
        covered = set()
        for a, b in ranges:
            covered.update(range(a, b))
        covered2 = set()
        for a, b in merged:
            covered2.update(range(a, b))
        assert covered == covered2
        for (a1, b1), (a2, b2) in zip(merged, merged[1:]):
            assert b1 < a2  # disjoint and sorted


class TestMultiQuery:
    @pytest.fixture(scope="class")
    def ds(self):
        return build_indexed_dataset(rm_timestep(180, shape=(33, 33, 29)), (5, 5, 5))

    def test_matches_individual_queries(self, ds):
        lams = [80.0, 100.0, 120.0, 140.0]
        multi = execute_multi_query(ds, lams)
        for lam in lams:
            single = execute_query(ds, lam)
            assert np.array_equal(
                np.sort(multi.records_for(lam).ids),
                np.sort(single.records.ids),
            )

    def test_reads_less_than_sum_of_singles(self, ds):
        lams = [100.0, 105.0, 110.0]
        ds.device.reset_stats()
        multi = execute_multi_query(ds, lams)
        multi_bytes = multi.io_stats.bytes_read
        singles = 0
        for lam in lams:
            singles += execute_query(ds, lam).io_stats.bytes_read
        assert multi_bytes < singles
        # and no record is read more than once
        union_count = multi.n_records_read
        all_ranges = [r for lam in lams for r in ds.tree.active_record_ranges(lam)]
        distinct = set()
        for a, b in all_ranges:
            distinct.update(range(a, b))
        assert union_count >= len(distinct)

    def test_single_isovalue_degenerates(self, ds):
        multi = execute_multi_query(ds, [128.0])
        single = execute_query(ds, 128.0)
        assert np.array_equal(
            np.sort(multi.records_for(128.0).ids), np.sort(single.records.ids)
        )

    def test_empty_isovalues_rejected(self, ds):
        with pytest.raises(ValueError):
            execute_multi_query(ds, [])

    def test_disjoint_isovalues(self, ds):
        lams = [-10.0, 128.0]
        multi = execute_multi_query(ds, lams)
        assert len(multi.records_for(-10.0)) == 0
        assert len(multi.records_for(128.0)) > 0


class TestROI:
    @pytest.fixture(scope="class")
    def ds(self):
        return build_indexed_dataset(sphere_field((33, 33, 33)), (5, 5, 5))

    def test_full_box_equals_full_extraction(self, ds):
        from repro.pipeline import IsosurfacePipeline

        roi = extract_region_of_interest(ds, 0.7, [-2, -2, -2], [2, 2, 2])
        full = IsosurfacePipeline(ds).extract(0.7)
        assert roi.mesh.n_triangles == full.mesh.n_triangles
        assert roi.n_active_in_box == roi.n_active_total

    def test_half_space_roughly_halves(self, ds):
        roi = extract_region_of_interest(ds, 0.7, [0, -2, -2], [2, 2, 2])
        assert 0.3 < roi.n_active_in_box / roi.n_active_total < 0.7
        # All triangles within the box, give one metacell of slack.
        slack = 4 * ds.meta.spacing[0]
        assert roi.mesh.vertices[:, 0].min() >= -slack - 1e-9

    def test_tiny_box(self, ds):
        roi = extract_region_of_interest(ds, 0.7, [0.6, 0, 0], [0.8, 0.1, 0.1])
        assert 0 < roi.n_active_in_box < roi.n_active_total
        assert roi.mesh.n_triangles > 0

    def test_box_outside_surface(self, ds):
        roi = extract_region_of_interest(ds, 0.3, [1.5, 1.5, 1.5], [2, 2, 2])
        assert roi.mesh.n_triangles == 0
        assert roi.n_active_in_box == 0

    def test_empty_isovalue(self, ds):
        roi = extract_region_of_interest(ds, -5.0, [-1, -1, -1], [1, 1, 1])
        assert roi.n_active_total == 0
        assert roi.mesh.n_triangles == 0

    def test_invalid_box(self, ds):
        with pytest.raises(ValueError):
            extract_region_of_interest(ds, 0.7, [1, 0, 0], [0, 1, 1])
