"""Tests for the tiled wall display layout."""

import numpy as np
import pytest

from repro.render.rasterizer import Framebuffer
from repro.render.tiled_display import TileLayout, paper_wall


class TestGeometry:
    def test_even_split(self):
        lay = TileLayout(2, 2, 100, 80)
        assert lay.n_tiles == 4
        rows, cols = lay.tile_slices(0)
        assert (rows.start, rows.stop, cols.start, cols.stop) == (0, 40, 0, 50)
        rows, cols = lay.tile_slices(3)
        assert (rows.start, rows.stop, cols.start, cols.stop) == (40, 80, 50, 100)

    def test_uneven_split_remainder_to_last(self):
        lay = TileLayout(3, 3, 100, 100)
        rows, cols = lay.tile_slices(8)
        assert rows.stop == 100 and cols.stop == 100
        assert rows.start == 66 and cols.start == 66

    def test_tiles_cover_exactly(self):
        lay = TileLayout(3, 4, 97, 53)
        covered = np.zeros((53, 97), dtype=int)
        for t in range(lay.n_tiles):
            rows, cols = lay.tile_slices(t)
            covered[rows, cols] += 1
        assert np.all(covered == 1)

    def test_bad_index(self):
        lay = TileLayout(2, 2, 10, 10)
        with pytest.raises(IndexError):
            lay.tile_slices(4)

    def test_bad_construction(self):
        with pytest.raises(ValueError):
            TileLayout(0, 2, 10, 10)
        with pytest.raises(ValueError):
            TileLayout(20, 2, 10, 10)


class TestSplitMerge:
    def test_roundtrip(self):
        lay = TileLayout(2, 3, 60, 40)
        fb = Framebuffer(60, 40)
        rng = np.random.default_rng(0)
        fb.color[:] = rng.random((40, 60, 3)).astype(np.float32)
        fb.depth[:] = rng.random((40, 60)).astype(np.float32)
        tiles = lay.split(fb)
        assert len(tiles) == 6
        merged = lay.merge(tiles)
        assert np.array_equal(merged.color, fb.color)
        assert np.array_equal(merged.depth, fb.depth)

    def test_split_size_check(self):
        lay = TileLayout(2, 2, 60, 40)
        with pytest.raises(ValueError):
            lay.split(Framebuffer(61, 40))

    def test_merge_count_check(self):
        lay = TileLayout(2, 2, 60, 40)
        with pytest.raises(ValueError):
            lay.merge([Framebuffer(30, 20)] * 3)

    def test_merge_shape_check(self):
        lay = TileLayout(2, 2, 60, 40)
        tiles = lay.split(Framebuffer(60, 40))
        tiles[1] = Framebuffer(5, 5)
        with pytest.raises(ValueError):
            lay.merge(tiles)

    def test_paper_wall_is_2x2(self):
        lay = paper_wall(256, 256)
        assert (lay.rows, lay.cols) == (2, 2)
