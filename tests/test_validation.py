"""Tests for dataset integrity verification."""

import numpy as np
import pytest

from repro.cli import main
from repro.core.builder import build_indexed_dataset
from repro.core.persistence import build_persistent_dataset
from repro.core.validation import verify_dataset
from repro.grid.datasets import sphere_field
from repro.grid.rm_instability import rm_timestep


@pytest.fixture()
def good_dataset():
    return build_indexed_dataset(rm_timestep(150, shape=(25, 25, 21)), (5, 5, 5))


class TestCleanDataset:
    def test_passes_deep_verify(self, good_dataset):
        report = verify_dataset(good_dataset)
        assert report.ok, report.summary()
        assert report.n_records_checked == good_dataset.n_records
        assert report.n_bricks_checked == good_dataset.tree.n_bricks

    def test_quick_verify(self, good_dataset):
        report = verify_dataset(good_dataset, deep=False)
        assert report.ok
        assert report.n_records_checked == 0

    def test_empty_dataset(self):
        from repro.grid.volume import Volume

        ds = build_indexed_dataset(
            Volume(np.full((9, 9, 9), 3, dtype=np.uint8)), (5, 5, 5)
        )
        assert verify_dataset(ds).ok

    def test_summary_format(self, good_dataset):
        text = verify_dataset(good_dataset).summary()
        assert "OK" in text


class TestCorruption:
    def test_truncated_store(self, good_dataset):
        good_dataset.device._buf = good_dataset.device._buf[:-100]
        report = verify_dataset(good_dataset)
        assert not report.ok
        assert any("store holds" in p for p in report.problems)

    def test_clobbered_payload(self, good_dataset):
        """Wiping a record's payload to 0xFF must surface as a vmin
        mismatch (stored vmin < new payload min, since culling guarantees
        vmin < vmax <= 255)."""
        rec = good_dataset.codec.record_size
        off = good_dataset.base_offset + 5  # skip id (4) + vmin (1)
        good_dataset.device._buf[off : off + rec - 5] = b"\xff" * (rec - 5)
        report = verify_dataset(good_dataset)
        assert not report.ok

    def test_corrupted_stored_vmin(self, good_dataset):
        off = good_dataset.base_offset + 4  # the vmin byte of record 0
        good_dataset.device._buf[off] = (good_dataset.device._buf[off] + 1) % 256
        report = verify_dataset(good_dataset)
        assert not report.ok
        assert any("vmin" in p for p in report.problems)

    def test_duplicate_ids_detected(self, good_dataset):
        """Overwrite record 1's id with record 0's."""
        rec = good_dataset.codec.record_size
        base = good_dataset.base_offset
        id0 = bytes(good_dataset.device._buf[base : base + 4])
        good_dataset.device._buf[base + rec : base + rec + 4] = id0
        report = verify_dataset(good_dataset)
        assert not report.ok
        assert any("duplicate" in p for p in report.problems)


class TestCLI:
    def test_verify_ok(self, tmp_path, capsys):
        ds = build_persistent_dataset(
            sphere_field((17, 17, 17)), tmp_path / "ds", metacell_shape=(5, 5, 5)
        )
        ds.device.close()
        assert main(["verify", str(tmp_path / "ds")]) == 0
        assert "OK" in capsys.readouterr().out

    def test_verify_detects_corruption(self, tmp_path, capsys):
        ds = build_persistent_dataset(
            sphere_field((17, 17, 17)), tmp_path / "ds", metacell_shape=(5, 5, 5)
        )
        ds.device.close()
        bricks = tmp_path / "ds" / "bricks.bin"
        data = bytearray(bricks.read_bytes())
        data[10] = (data[10] + 111) % 256
        bricks.write_bytes(bytes(data))
        assert main(["verify", str(tmp_path / "ds")]) == 1
        assert "problem" in capsys.readouterr().out
