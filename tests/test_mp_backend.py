"""Tests for the real-process execution backend."""

import numpy as np
import pytest

from repro.core.builder import build_striped_datasets
from repro.parallel.cluster import SimulatedCluster
from repro.parallel.mp_backend import extract_parallel_mp, node_task
from repro.grid.datasets import sphere_field


@pytest.fixture(scope="module")
def striped():
    return build_striped_datasets(sphere_field((25, 25, 25)), 2, (5, 5, 5))


class TestNodeTask:
    def test_single_task_output(self, striped):
        out = node_task((striped[0], 0.6))
        assert out.node_rank == 0
        assert out.n_triangles == out.mesh().n_triangles
        assert out.n_active_metacells > 0
        assert out.blocks_read > 0

    def test_empty_isovalue(self, striped):
        out = node_task((striped[0], -5.0))
        assert out.n_triangles == 0
        assert out.mesh().n_triangles == 0


class TestInProcessFallback:
    def test_matches_simulated_cluster(self, striped):
        """processes=1 runs inline; results must match SimulatedCluster."""
        outs = extract_parallel_mp(striped, 0.6, processes=1)
        cluster = SimulatedCluster(sphere_field((25, 25, 25)), 2, metacell_shape=(5, 5, 5))
        ref = cluster.extract(0.6)
        assert sum(o.n_triangles for o in outs) == ref.n_triangles
        assert sum(o.n_active_metacells for o in outs) == ref.n_active_metacells

    def test_outputs_sorted_by_rank(self, striped):
        outs = extract_parallel_mp(striped, 0.6, processes=1)
        assert [o.node_rank for o in outs] == [0, 1]


class TestRealProcesses:
    def test_spawned_workers_agree_with_inline(self, striped):
        inline = extract_parallel_mp(striped, 0.6, processes=1)
        spawned = extract_parallel_mp(striped, 0.6, processes=2)
        for a, b in zip(inline, spawned):
            assert a.node_rank == b.node_rank
            assert a.n_triangles == b.n_triangles
            assert a.n_active_metacells == b.n_active_metacells
            assert np.allclose(np.sort(a.vertices, axis=0), np.sort(b.vertices, axis=0))
