"""Node health state machine: transition table and cluster integration.

The contract under test (see docs/robustness.md):

* scripted observation histories drive exact, assertable transition
  sequences through HEALTHY -> SUSPECT -> CIRCUIT_OPEN -> HALF_OPEN;
* incidents classify deterministically (failure > corruption > retries
  > latency > deadline);
* a cluster routes around an open circuit proactively (the primary
  disk sees zero reads), probes after the cooldown, and heals a
  recovered node — with results bit-identical throughout when a
  replica exists.
"""

import numpy as np
import pytest

from repro.grid.datasets import sphere_field
from repro.io.faults import FaultPlan
from repro.parallel.cluster import ExtractRequest, SimulatedCluster
from repro.parallel.health import (
    HealthMonitor,
    HealthPolicy,
    HealthState,
    NodeHealth,
    Observation,
)

ISO = 0.5
P = 4

CLEAN = Observation()
LATENCY = Observation(fault_delay=1.0)
RETRIES = Observation(retries=2)
CORRUPT = Observation(checksum_failures=1)
FAILED = Observation(failed=True)
EXPIRED = Observation(deadline_expired=True)


def run_script(observations, policy=None):
    """Feed a scripted observation sequence to one node; returns the
    visited state after each observation."""
    node = NodeHealth(rank=0, policy=policy or HealthPolicy())
    states = []
    for i, obs in enumerate(observations, start=1):
        if node.state is HealthState.CIRCUIT_OPEN and obs is None:
            node.tick_routed(i)
        else:
            node.observe(obs, i)
        states.append(node.state)
    return node, states


class TestIncidentClassification:
    @pytest.mark.parametrize(
        "obs,want",
        [
            (CLEAN, None),
            (FAILED, "device-failure"),
            (CORRUPT, "corruption"),
            (RETRIES, "retries"),
            (LATENCY, "latency"),
            (EXPIRED, "deadline"),
            (Observation(fault_delay=0.01), None),  # under the threshold
        ],
    )
    def test_classes(self, obs, want):
        assert obs.incident(HealthPolicy()) == want

    def test_severity_order(self):
        both = Observation(failed=True, checksum_failures=3, retries=5)
        assert both.incident(HealthPolicy()) == "device-failure"


class TestTransitionTable:
    """Exact state sequences under scripted fault histories.

    ``None`` in a script means "query passed while routed around"
    (a tick, not an observation)."""

    def test_healthy_stays_healthy_on_clean(self):
        _, states = run_script([CLEAN] * 4)
        assert states == [HealthState.HEALTHY] * 4

    def test_one_incident_suspects(self):
        _, states = run_script([LATENCY])
        assert states == [HealthState.SUSPECT]

    def test_suspect_heals_after_clean_streak(self):
        _, states = run_script([LATENCY, CLEAN, CLEAN])
        assert states == [
            HealthState.SUSPECT,
            HealthState.SUSPECT,
            HealthState.HEALTHY,
        ]

    def test_strikes_open_the_circuit(self):
        node, states = run_script([LATENCY, RETRIES, CORRUPT])
        assert states == [
            HealthState.SUSPECT,
            HealthState.SUSPECT,
            HealthState.CIRCUIT_OPEN,
        ]
        assert node.times_opened == 1
        assert node.last_incident == "corruption"

    def test_device_failure_opens_immediately(self):
        _, states = run_script([FAILED])
        assert states == [HealthState.CIRCUIT_OPEN]

    def test_cooldown_then_half_open_then_heal(self):
        node, states = run_script(
            [FAILED, None, None, CLEAN],
            policy=HealthPolicy(cooldown=2),
        )
        assert states == [
            HealthState.CIRCUIT_OPEN,
            HealthState.CIRCUIT_OPEN,   # cooldown 2 -> 1
            HealthState.HALF_OPEN,      # cooldown elapsed
            HealthState.HEALTHY,        # probe succeeded
        ]
        assert node.times_healed == 1
        assert node.strikes == 0

    def test_failed_probe_reopens(self):
        node, states = run_script(
            [FAILED, None, None, LATENCY],
            policy=HealthPolicy(cooldown=2),
        )
        assert states[-1] is HealthState.CIRCUIT_OPEN
        assert node.times_opened == 2
        assert node.transitions[-1].reason == "probe failed: latency"

    def test_full_lifecycle_transition_log(self):
        node, _ = run_script(
            [LATENCY, LATENCY, LATENCY, None, None, CLEAN],
            policy=HealthPolicy(cooldown=2),
        )
        got = [(t.src, t.dst) for t in node.transitions]
        assert got == [
            (HealthState.HEALTHY, HealthState.SUSPECT),
            (HealthState.SUSPECT, HealthState.CIRCUIT_OPEN),
            (HealthState.CIRCUIT_OPEN, HealthState.HALF_OPEN),
            (HealthState.HALF_OPEN, HealthState.HEALTHY),
        ]

    def test_forced_probes_heal_replica_less_node(self):
        # CIRCUIT_OPEN but observed directly (no replica to route to):
        # clean forced probes count toward the cooldown.
        node, states = run_script(
            [FAILED, CLEAN, CLEAN, CLEAN],
            policy=HealthPolicy(cooldown=2),
        )
        assert states == [
            HealthState.CIRCUIT_OPEN,
            HealthState.CIRCUIT_OPEN,
            HealthState.HALF_OPEN,
            HealthState.HEALTHY,
        ]

    def test_clean_query_resets_healthy_strikes(self):
        node, _ = run_script([CLEAN], policy=HealthPolicy(suspect_after=2))
        assert node.strikes == 0


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"suspect_after": 0},
            {"suspect_after": 3, "open_after": 2},
            {"cooldown": 0},
            {"heal_after": 0},
            {"slow_delay_threshold": -1.0},
        ],
    )
    def test_rejects_bad_thresholds(self, kwargs):
        with pytest.raises(ValueError):
            HealthPolicy(**kwargs)


class TestMonitor:
    def test_per_node_isolation(self):
        mon = HealthMonitor(3)
        mon.begin_query()
        mon.observe(1, FAILED)
        assert mon.states() == [
            HealthState.HEALTHY,
            HealthState.CIRCUIT_OPEN,
            HealthState.HEALTHY,
        ]
        assert mon.routed_around(1) and not mon.routed_around(0)

    def test_report_mentions_transitions(self):
        mon = HealthMonitor(2)
        mon.begin_query()
        mon.observe(0, FAILED)
        text = mon.report()
        assert "circuit-open" in text
        assert "device-failure" in text
        assert "healthy -> circuit-open" in text


class TestClusterIntegration:
    def make_spiky(self, volume, victim=2):
        return SimulatedCluster(
            volume, p=P, metacell_shape=(5, 5, 5), replication=2,
            fault_plans={
                victim: FaultPlan(
                    seed=3, latency_spike_rate=0.6, latency_spike_seconds=0.2
                )
            },
            health_policy=HealthPolicy(cooldown=2),
        )

    @pytest.fixture(scope="class")
    def volume(self):
        return sphere_field((24, 24, 24))

    def test_circuit_opens_then_routes_around(self, volume):
        healthy = SimulatedCluster(
            volume, p=P, metacell_shape=(5, 5, 5), replication=2
        ).extract(ISO, ExtractRequest(render=True))
        cluster = self.make_spiky(volume)
        # Queries 1..3: incidents accumulate (suspect, suspect, open).
        for _ in range(3):
            res = cluster.extract(ISO, ExtractRequest(render=True))
            assert not any(m.circuit_open for m in res.nodes)
        assert cluster.health.state(2) is HealthState.CIRCUIT_OPEN

        # Query 4: routed around proactively — primary disk untouched,
        # replica host serves, result bit-identical.
        primary_reads_before = cluster.datasets[2].device.stats.blocks_read
        res = cluster.extract(ISO, ExtractRequest(render=True))
        assert cluster.datasets[2].device.stats.blocks_read == \
            primary_reads_before
        m = res.nodes[2]
        assert m.circuit_open and m.served_by is not None
        assert 2 in res.nodes[m.served_by].recovered_ranks
        assert not res.degraded
        assert res.coverage == pytest.approx(1.0)
        assert np.array_equal(res.image.color, healthy.image.color)
        assert m.io_stats.fault_delay == 0.0  # no spikes paid

    def test_half_open_probe_heals_recovered_node(self, volume):
        cluster = self.make_spiky(volume)
        for _ in range(3):
            cluster.extract(ISO)
        assert cluster.health.state(2) is HealthState.CIRCUIT_OPEN
        cluster.extract(ISO)  # routed: cooldown 2 -> 1
        cluster.extract(ISO)  # routed: cooldown elapsed -> half-open
        assert cluster.health.state(2) is HealthState.HALF_OPEN
        # The disk recovers before the probe query (empty plan = clean).
        cluster.inject_faults(2, FaultPlan())
        res = cluster.extract(ISO)
        assert cluster.health.state(2) is HealthState.HEALTHY
        assert cluster.health.nodes[2].times_healed == 1
        assert not res.nodes[2].circuit_open

    def test_failed_probe_reopens_circuit(self, volume):
        cluster = self.make_spiky(volume)
        for _ in range(5):
            cluster.extract(ISO)
        assert cluster.health.state(2) is HealthState.HALF_OPEN
        cluster.extract(ISO)  # probe hits the still-spiky disk
        assert cluster.health.state(2) is HealthState.CIRCUIT_OPEN
        assert cluster.health.nodes[2].times_opened == 2

    def test_retired_is_terminal_and_never_probes(self):
        node = NodeHealth(rank=0, policy=HealthPolicy(cooldown=2))
        node.retire(1)
        assert node.state is HealthState.RETIRED
        assert node.routed_around and node.retired
        # Unlike an open circuit, routed queries never half-open it...
        for i in range(2, 50):
            node.tick_routed(i)
        assert node.state is HealthState.RETIRED
        # ...and no observation — however clean — resurrects it.
        node.observe(CLEAN, 50)
        assert node.state is HealthState.RETIRED
        # Idempotent: one transition in the log, not two.
        node.retire(51)
        assert [t.dst for t in node.transitions] == [HealthState.RETIRED]

    def test_retired_vs_open_circuit_distinction(self):
        """The operator-facing difference: open half-opens after the
        cooldown, retired never does."""
        opened = NodeHealth(rank=0, policy=HealthPolicy(cooldown=2))
        opened.observe(FAILED, 1)
        retired = NodeHealth(rank=1, policy=HealthPolicy(cooldown=2))
        retired.retire(1)
        for i in range(2, 5):
            opened.tick_routed(i)
            retired.tick_routed(i)
        assert opened.state is HealthState.HALF_OPEN
        assert retired.state is HealthState.RETIRED

    def test_retired_cluster_routes_around_forever(self, volume):
        cluster = SimulatedCluster(
            volume, p=P, metacell_shape=(5, 5, 5), replication=2,
            health_policy=HealthPolicy(cooldown=2),
        )
        healthy = cluster.extract(ISO, ExtractRequest(render=True))
        cluster.retire_node(2)
        primary_reads = cluster.datasets[2].device.stats.blocks_read
        for _ in range(6):  # well past any cooldown
            res = cluster.extract(ISO, ExtractRequest(render=True))
        assert cluster.health.state(2) is HealthState.RETIRED
        assert cluster.health.retired(2)
        # Primary disk untouched across all queries; replica serves,
        # results bit-identical.
        assert cluster.datasets[2].device.stats.blocks_read == primary_reads
        assert not res.degraded and res.coverage == pytest.approx(1.0)
        assert np.array_equal(res.image.color, healthy.image.color)

    def test_retired_publishes_terminal_state_code(self, volume):
        from repro.obs.metrics import MetricsRegistry

        cluster = SimulatedCluster(
            volume, p=P, metacell_shape=(5, 5, 5), replication=2
        )
        cluster.retire_node(1)
        registry = MetricsRegistry()
        cluster.health.publish(registry)
        assert registry.value("health.node.1.state_code") == 4
        assert registry.value("health.node.0.state_code") == 0

    def test_open_circuit_without_replica_still_serves(self, volume):
        cluster = SimulatedCluster(
            volume, p=P, metacell_shape=(5, 5, 5), replication=1,
            fault_plans={
                2: FaultPlan(
                    seed=3, latency_spike_rate=0.6, latency_spike_seconds=0.2
                )
            },
        )
        want = SimulatedCluster(
            volume, p=P, metacell_shape=(5, 5, 5)
        ).extract(ISO)
        for _ in range(4):
            res = cluster.extract(ISO)
        # No replica exists: the primary is used as a forced probe and
        # the result stays complete.
        assert res.n_triangles == want.n_triangles
        assert not res.degraded
