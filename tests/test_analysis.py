"""Tests for query-cost prediction and isovalue analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analysis import (
    active_count_profile,
    estimate_query_cost,
    record_vmaxs,
    suggest_isovalues,
)
from repro.core.builder import build_indexed_dataset
from repro.core.compact_tree import CompactIntervalTree
from repro.core.query import QueryOptions, execute_query
from repro.grid.rm_instability import rm_timestep
from repro.grid.volume import Volume
from tests.conftest import random_intervals


class TestRecordVmaxs:
    def test_reconstruction(self, sphere_intervals):
        tree = CompactIntervalTree.build(sphere_intervals)
        vmaxs = record_vmaxs(tree)
        expect = sphere_intervals.vmax[tree.record_order].astype(np.float64)
        assert np.array_equal(vmaxs, expect)


class TestCostPrediction:
    @pytest.mark.parametrize("lam", [30.0, 90.0, 128.0, 180.0, 230.0, -5.0])
    def test_block_exact_on_rm_volume(self, lam):
        vol = rm_timestep(150, shape=(33, 33, 29))
        ds = build_indexed_dataset(vol, (5, 5, 5))
        est = estimate_query_cost(
            ds.tree, lam, ds.codec.record_size, ds.device.cost_model, ds.base_offset
        )
        res = execute_query(ds, lam)
        assert est.blocks == res.io_stats.blocks_read, f"iso {lam}"
        assert est.n_active == res.n_active
        assert res.io_stats.seeks <= est.seeks_upper_bound
        assert est.bytes_payload == res.n_active * ds.codec.record_size

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**16), lam=st.integers(0, 255), ra=st.sampled_from([1, 4, 16]))
    def test_block_exact_property(self, seed, lam, ra):
        rng = np.random.default_rng(seed)
        vol = Volume(rng.integers(0, 255, size=(13, 13, 13)).astype(np.uint8))
        ds = build_indexed_dataset(vol, (5, 5, 5))
        est = estimate_query_cost(
            ds.tree, float(lam), ds.codec.record_size, ds.device.cost_model,
            ds.base_offset, read_ahead_blocks=ra,
        )
        res = execute_query(ds, float(lam), QueryOptions(read_ahead_blocks=ra))
        assert est.blocks == res.io_stats.blocks_read
        assert est.n_active == res.n_active

    def test_io_time_positive(self, sphere_dataset):
        est = estimate_query_cost(
            sphere_dataset.tree, 0.9, sphere_dataset.codec.record_size,
            sphere_dataset.device.cost_model, sphere_dataset.base_offset,
        )
        assert est.io_time(sphere_dataset.device.cost_model) > 0


class TestProfile:
    def test_profile_matches_bruteforce(self, sphere_intervals):
        tree = CompactIntervalTree.build(sphere_intervals)
        endpoints, counts = active_count_profile(tree)
        for e, c in zip(endpoints[::5], counts[::5]):
            assert c == sphere_intervals.stabbing_count(float(e))

    def test_profile_matches_tree_queries(self, sphere_intervals):
        tree = CompactIntervalTree.build(sphere_intervals)
        endpoints, counts = active_count_profile(tree)
        for e, c in zip(endpoints[::7], counts[::7]):
            assert c == tree.query_count(float(e))

    def test_empty_tree_profile(self):
        from repro.core.intervals import IntervalSet

        tree = CompactIntervalTree.build(
            IntervalSet(vmin=np.empty(0), vmax=np.empty(0), ids=np.empty(0, np.uint32))
        )
        endpoints, counts = active_count_profile(tree)
        assert len(endpoints) == 0

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(1, 100), seed=st.integers(0, 2**16))
    def test_profile_property(self, n, seed):
        rng = np.random.default_rng(seed)
        iv = random_intervals(rng, n, 16)
        tree = CompactIntervalTree.build(iv)
        endpoints, counts = active_count_profile(tree)
        for e, c in zip(endpoints, counts):
            assert c == iv.stabbing_count(float(e))


class TestSuggestions:
    def test_targets_hit_reasonably(self):
        vol = rm_timestep(200, shape=(33, 33, 29))
        ds = build_indexed_dataset(vol, (5, 5, 5))
        picks = suggest_isovalues(ds.tree, selectivities=(0.05, 0.3))
        for target, iso in picks.items():
            actual = ds.tree.query_count(iso) / ds.n_records
            # Best-achievable match: within the profile's granularity.
            assert abs(actual - target) < 0.25

    def test_empty_tree_raises(self):
        from repro.core.intervals import IntervalSet

        tree = CompactIntervalTree.build(
            IntervalSet(vmin=np.empty(0), vmax=np.empty(0), ids=np.empty(0, np.uint32))
        )
        with pytest.raises(ValueError):
            suggest_isovalues(tree)
