"""Hedged replica reads: correctness, accounting, and the property
that hedging NEVER changes query output.

The contract under test (see docs/robustness.md):

* the hedge threshold is a deterministic quantile of the query's own
  effective read times (modeled clock), floored at one block + seek;
* a hedged read returns byte-identical data regardless of which side
  wins, so triangles and the composited image match a no-hedging run
  bit for bit — asserted property-style across seeds x victim ranks;
* the effective modeled time never exceeds the un-hedged time, and
  hedge counters land on ``IOStats`` / ``NodeMetrics``.
"""

import numpy as np
import pytest

from repro.core.builder import build_indexed_dataset
from repro.core.query import execute_query
from repro.grid.datasets import sphere_field
from repro.io.cost_model import latency_quantile
from repro.io.faults import (
    FaultInjectingDevice,
    FaultPlan,
    HedgedDevice,
    HedgePolicy,
)
from repro.parallel.cluster import ExtractRequest, SimulatedCluster

ISO = 0.5
P = 4


@pytest.fixture(scope="module")
def volume():
    return sphere_field((24, 24, 24))


@pytest.fixture(scope="module")
def healthy(volume):
    cluster = SimulatedCluster(
        volume, p=P, metacell_shape=(5, 5, 5), replication=2
    )
    return cluster.extract(ISO, ExtractRequest(render=True, keep_meshes=True))


class TestLatencyQuantile:
    def test_nearest_rank(self):
        xs = [0.4, 0.1, 0.3, 0.2]
        assert latency_quantile(xs, 0.0) == pytest.approx(0.1)
        assert latency_quantile(xs, 0.5) == pytest.approx(0.3)
        assert latency_quantile(xs, 1.0) == pytest.approx(0.4)

    def test_rejects_empty_and_bad_q(self):
        with pytest.raises(ValueError):
            latency_quantile([], 0.5)
        with pytest.raises(ValueError):
            latency_quantile([1.0], 1.5)


class TestHedgePolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"quantile": -0.1},
            {"quantile": 1.1},
            {"multiplier": 0.5},
            {"min_samples": 0},
            {"floor": -1.0},
            {"history_cap": 2, "min_samples": 4},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            HedgePolicy(**kwargs)


class TestHedgedDevice:
    def _hedged_dataset(self, volume, plan=None, policy=None):
        """One dataset with a fault-injected primary and a clean replica
        holding the same bytes (both reads return identical payloads)."""
        primary = build_indexed_dataset(volume, (5, 5, 5))
        replica = build_indexed_dataset(volume, (5, 5, 5))
        dev = primary.device
        if plan is not None:
            dev = FaultInjectingDevice(dev, plan)
        primary.device = HedgedDevice(
            dev, primary.base_offset, replica.device, replica.base_offset,
            policy or HedgePolicy(),
        )
        return primary

    def test_no_threshold_until_min_samples(self, volume):
        ds = self._hedged_dataset(volume)
        dev = ds.device
        assert dev.hedge_threshold() is None
        execute_query(ds, ISO)
        assert len(dev._history) >= dev.policy.min_samples
        assert dev.hedge_threshold() >= dev.cost_model.single_block_time

    def test_clean_primary_never_hedges(self, volume):
        ds = self._hedged_dataset(volume)
        res = execute_query(ds, ISO)
        assert res.io_stats.hedged_reads == 0
        assert res.io_stats.hedge_wins == 0

    def test_spiky_primary_hedges_and_wins(self, volume):
        plan = FaultPlan(seed=1, latency_spike_rate=0.25,
                         latency_spike_seconds=0.5)
        ds = self._hedged_dataset(volume, plan)
        res = execute_query(ds, ISO)
        assert res.io_stats.hedged_reads > 0
        assert res.io_stats.hedge_wins > 0
        # Both backing meters stayed honest: the replica physically read
        # blocks for each hedge.
        assert ds.device.replica.stats.blocks_read > 0

    def test_effective_time_never_worse_than_unhedged(self, volume):
        plan = FaultPlan(seed=1, latency_spike_rate=0.25,
                         latency_spike_seconds=0.5)
        unhedged = build_indexed_dataset(volume, (5, 5, 5))
        unhedged.device = FaultInjectingDevice(unhedged.device, plan)
        slow = execute_query(unhedged, ISO)
        hedged = execute_query(self._hedged_dataset(volume, plan), ISO)
        t_hedged = hedged.io_stats.read_time(unhedged.device.cost_model)
        t_slow = slow.io_stats.read_time(unhedged.device.cost_model)
        assert t_hedged <= t_slow + 1e-12
        assert t_hedged < t_slow  # the seeded spikes actually got absorbed

    def test_identical_records_with_and_without_hedging(self, volume):
        plan = FaultPlan(seed=1, latency_spike_rate=0.25,
                         latency_spike_seconds=0.5)
        unhedged = build_indexed_dataset(volume, (5, 5, 5))
        unhedged.device = FaultInjectingDevice(unhedged.device, plan)
        want = execute_query(unhedged, ISO)
        got = execute_query(self._hedged_dataset(volume, plan), ISO)
        assert np.array_equal(got.records.ids, want.records.ids)
        assert np.array_equal(got.records.values, want.records.values)

    def test_failed_replica_leaves_primary_result(self, volume):
        plan = FaultPlan(seed=1, latency_spike_rate=0.25,
                         latency_spike_seconds=0.5)
        ds = self._hedged_dataset(volume, plan)
        dead = FaultInjectingDevice(ds.device.replica, FaultPlan(fail_all=True))
        dead.fail()
        ds.device.replica = dead
        clean = execute_query(build_indexed_dataset(volume, (5, 5, 5)), ISO)
        res = execute_query(ds, ISO)
        assert np.array_equal(res.records.ids, clean.records.ids)
        assert res.io_stats.hedge_wins == 0


class TestHedgeFailover:
    """``HedgePolicy(failover=True)``: a permanent primary failure
    mid-read falls back to the replica with a bit-identical payload —
    the behaviour the elastic cluster relies on when a hedged read
    races a drain or promotion."""

    def _dataset(self, volume, policy):
        primary = build_indexed_dataset(volume, (5, 5, 5))
        replica = build_indexed_dataset(volume, (5, 5, 5))
        dead = FaultInjectingDevice(primary.device, FaultPlan())
        dead.fail()
        primary.device = HedgedDevice(
            dead, primary.base_offset, replica.device, replica.base_offset,
            policy,
        )
        return primary

    def test_failover_returns_bit_identical_payload(self, volume):
        ds = self._dataset(volume, HedgePolicy(failover=True))
        clean = execute_query(build_indexed_dataset(volume, (5, 5, 5)), ISO)
        res = execute_query(ds, ISO)
        assert np.array_equal(res.records.ids, clean.records.ids)
        assert np.array_equal(res.records.values, clean.records.values)
        # Every read failed over; each one counts as a hedge win.
        assert res.io_stats.hedged_reads > 0
        assert res.io_stats.hedge_wins == res.io_stats.hedged_reads

    def test_default_policy_still_propagates(self, volume):
        from repro.io.faults import DeviceFailedError

        ds = self._dataset(volume, HedgePolicy())
        with pytest.raises(DeviceFailedError):
            execute_query(ds, ISO)

    def test_failover_with_dead_replica_raises_primary_error(self, volume):
        from repro.io.faults import DeviceFailedError

        ds = self._dataset(volume, HedgePolicy(failover=True))
        dead = FaultInjectingDevice(ds.device.replica, FaultPlan())
        dead.fail()
        ds.device.replica = dead
        with pytest.raises(DeviceFailedError):
            execute_query(ds, ISO)


class TestHedgingProperty:
    """Hedging is invisible in the output, visible only in the clock."""

    @pytest.mark.parametrize("victim", range(P))
    @pytest.mark.parametrize("seed", [1, 7, 11])
    def test_bit_identical_across_seeds_and_victims(
        self, volume, healthy, seed, victim
    ):
        plan = FaultPlan(seed=seed, latency_spike_rate=0.3,
                         latency_spike_seconds=0.2)
        cluster = SimulatedCluster(
            volume, p=P, metacell_shape=(5, 5, 5), replication=2,
            fault_plans={victim: plan},
        )
        res = cluster.extract(
            ISO, ExtractRequest(render=True, keep_meshes=True, hedge=True)
        )
        assert res.n_triangles == healthy.n_triangles
        assert res.n_active_metacells == healthy.n_active_metacells
        for i in range(P):
            assert np.array_equal(
                res.meshes[i].vertices, healthy.meshes[i].vertices
            )
        assert np.array_equal(res.image.color, healthy.image.color)
        assert np.array_equal(res.image.depth, healthy.image.depth)

    def test_hedge_counters_surface_on_cluster_result(self, volume):
        plan = FaultPlan(seed=1, latency_spike_rate=0.25,
                         latency_spike_seconds=0.5)
        cluster = SimulatedCluster(
            volume, p=P, metacell_shape=(5, 5, 5), replication=2,
            fault_plans={2: plan},
        )
        res = cluster.extract(ISO, ExtractRequest(hedge=True))
        assert res.n_hedged_reads > 0
        assert res.n_hedge_wins > 0
        assert res.nodes[2].n_hedged_reads == res.n_hedged_reads
        assert all(
            m.n_hedged_reads == 0 for m in res.nodes if m.node_rank != 2
        )

    def test_hedging_without_replicas_is_inert(self, volume, healthy):
        cluster = SimulatedCluster(volume, p=P, metacell_shape=(5, 5, 5))
        res = cluster.extract(ISO, ExtractRequest(render=True, hedge=True))
        assert res.n_hedged_reads == 0
        assert np.array_equal(res.image.color, healthy.image.color)
