"""Coverage for small public surfaces not exercised elsewhere."""

import numpy as np
import pytest

from repro.bench.paper_data import PAPER_FACTS, PAPER_TABLE1_DATASETS
from repro.grid.datasets import sphere_field
from repro.grid.metacell import metacell_grid_shape
from repro.io.layout import MetacellCodec
from repro.mc import MarchingCubes, extract_isosurface
from repro.mc.marching_cubes import marching_cubes
from repro.parallel.metrics import LoadBalance, NodeMetrics
from repro.render.camera import Camera
from repro.render.rasterizer import Framebuffer, Light, render_depth_colored


class TestPaperDataConsistency:
    def test_record_size_matches_codec(self):
        codec = MetacellCodec(PAPER_FACTS["metacell_shape"], np.uint8)
        assert codec.record_size == PAPER_FACTS["metacell_record_bytes"]

    def test_metacell_grid_matches_paper(self):
        grid = metacell_grid_shape(PAPER_FACTS["rm_grid"], PAPER_FACTS["metacell_shape"])
        assert grid == PAPER_FACTS["metacell_grid"]

    def test_stored_fraction_plausible(self):
        total = int(np.prod(PAPER_FACTS["metacell_grid"]))
        stored = PAPER_FACTS["metacells_stored_step250"]
        assert 0.3 < stored / total < 0.4  # 5.59M of 15.7M

    def test_stored_bytes_consistent(self):
        expect = (
            PAPER_FACTS["metacells_stored_step250"]
            * PAPER_FACTS["metacell_record_bytes"]
        )
        assert expect == pytest.approx(PAPER_FACTS["stored_bytes_step250"], rel=0.01)

    def test_table1_datasets_are_2byte(self):
        for dims, nbytes in PAPER_TABLE1_DATASETS.values():
            assert nbytes == 2
            assert len(dims) == 3


class TestFacades:
    def test_marching_cubes_facade(self):
        vol = sphere_field((16, 16, 16))
        mc = MarchingCubes(vol)
        mesh = mc.extract(0.5)
        assert mesh.is_closed()
        assert mc.count_active_cells(0.5) > 0

    def test_extract_isosurface(self):
        vol = sphere_field((16, 16, 16))
        a = extract_isosurface(vol, 0.5)
        b = marching_cubes(vol.data, 0.5, origin=vol.origin, spacing=vol.spacing)
        assert a.n_triangles == b.n_triangles


class TestMetrics:
    def test_load_balance_statistics(self):
        bal = LoadBalance(np.array([10, 12, 8, 10]))
        assert bal.total == 40
        assert bal.max == 12
        assert bal.min == 8
        assert bal.spread == 4
        assert bal.max_over_mean == pytest.approx(1.2)
        assert bal.cv > 0

    def test_load_balance_empty(self):
        bal = LoadBalance(np.array([0, 0]))
        assert bal.max_over_mean == 1.0
        assert bal.cv == 0.0

    def test_node_metrics_total(self):
        m = NodeMetrics(node_rank=0)
        m.io_time, m.triangulation_time, m.render_time = 1.0, 2.0, 0.5
        assert m.total_time == pytest.approx(3.5)


class TestRenderExtras:
    def test_depth_colored_render(self):
        vol = sphere_field((20, 20, 20))
        mesh = marching_cubes(vol.data, 0.6, origin=vol.origin, spacing=vol.spacing)
        fb = Framebuffer(64, 64)
        n = render_depth_colored(fb, mesh, Camera.fit_mesh(mesh))
        assert n > 0
        assert fb.coverage() > 0.05
        # Depth-mapped tint: near pixels differ from far pixels.
        finite = np.isfinite(fb.depth)
        colors = fb.color[finite]
        assert colors.std(axis=0).max() > 0.01

    def test_light_unit_vector(self):
        assert np.linalg.norm(Light((3, 0, 4)).unit()) == pytest.approx(1.0)


class TestQueryPlanProperties:
    def test_counts(self, sphere_intervals):
        from repro.core.compact_tree import CompactIntervalTree

        tree = CompactIntervalTree.build(sphere_intervals)
        plan = tree.plan_query(0.9)
        assert plan.n_sequential_runs + plan.n_prefix_scans == len(plan.runs)
        assert plan.nodes_visited >= plan.case1_nodes + plan.case2_nodes
