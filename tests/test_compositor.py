"""Tests for sort-last compositing: correctness and byte accounting."""

import numpy as np
import pytest

from repro.grid.datasets import sphere_field
from repro.mc.marching_cubes import marching_cubes
from repro.render.camera import Camera
from repro.render.compositor import (
    PIXEL_PAYLOAD_BYTES,
    binary_swap,
    composite,
    direct_send,
)
from repro.render.rasterizer import Framebuffer, render_mesh
from repro.render.tiled_display import TileLayout


@pytest.fixture(scope="module")
def partitioned_render():
    """Render a sphere split across 4 'nodes' + the reference render."""
    vol = sphere_field((28, 28, 28))
    mesh = marching_cubes(vol.data, 0.6, origin=vol.origin, spacing=vol.spacing)
    cam = Camera.fit_mesh(mesh)
    # Partition triangles round-robin across 4 nodes (like striping).
    fbs = []
    for q in range(4):
        fb = Framebuffer(96, 96)
        part = mesh.faces[q::4]
        sub = type(mesh)(mesh.vertices, part)
        render_mesh(fb, sub, cam)
        fbs.append(fb)
    ref = Framebuffer(96, 96)
    render_mesh(ref, mesh, cam)
    return fbs, ref


class TestReferenceComposite:
    def test_equals_single_node_render(self, partitioned_render):
        fbs, ref = partitioned_render
        out = composite(fbs)
        assert np.array_equal(out.depth, ref.depth)
        assert np.array_equal(out.color, ref.color)

    def test_composite_is_order_invariant(self, partitioned_render):
        fbs, _ = partitioned_render
        a = composite(fbs)
        b = composite(fbs[::-1])
        assert np.array_equal(a.color, b.color)
        assert np.array_equal(a.depth, b.depth)

    def test_single_buffer(self, partitioned_render):
        fbs, _ = partitioned_render
        out = composite(fbs[:1])
        assert np.array_equal(out.color, fbs[0].color)

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            composite([Framebuffer(8, 8), Framebuffer(9, 8)])

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            composite([])


class TestDirectSend:
    def test_image_matches_reference(self, partitioned_render):
        fbs, ref = partitioned_render
        layout = TileLayout(2, 2, 96, 96)
        out, stats = direct_send(fbs, layout)
        assert np.array_equal(out.depth, ref.depth)
        assert np.array_equal(out.color, ref.color)
        assert stats.schedule == "direct-send"

    def test_byte_accounting(self, partitioned_render):
        fbs, _ = partitioned_render
        layout = TileLayout(2, 2, 96, 96)
        _, stats = direct_send(fbs, layout)
        # Every node ships its full buffer once (in tile pieces).
        expect = 96 * 96 * PIXEL_PAYLOAD_BYTES
        assert stats.bytes_sent_per_node == [expect] * 4
        assert stats.total_bytes == 4 * expect

    def test_uneven_tiles(self, partitioned_render):
        fbs, ref = partitioned_render
        layout = TileLayout(3, 3, 96, 96)
        out, stats = direct_send(fbs, layout)
        assert np.array_equal(out.depth, ref.depth)
        assert stats.total_bytes == 4 * 96 * 96 * PIXEL_PAYLOAD_BYTES


class TestBinarySwap:
    def test_image_matches_reference(self, partitioned_render):
        fbs, ref = partitioned_render
        out, stats = binary_swap(fbs)
        assert np.array_equal(out.depth, ref.depth)
        assert np.array_equal(out.color, ref.color)
        assert stats.rounds == 2

    def test_total_bytes_one_screen_per_node(self, partitioned_render):
        """Each node sends 1/2 + 1/4 + ... + 1/p of a screen in the swap
        rounds plus its final 1/p strip: exactly one screen total, the
        same aggregate as direct send — the win is the distributed merge
        work and receiver load, not raw bytes."""
        fbs, _ = partitioned_render
        _, ds = direct_send(fbs, TileLayout(2, 2, 96, 96))
        _, bs = binary_swap(fbs)
        screen = 96 * 96 * PIXEL_PAYLOAD_BYTES
        assert bs.total_bytes == ds.total_bytes == 4 * screen
        assert all(b == screen for b in bs.bytes_sent_per_node)

    def test_per_node_bytes_balanced(self, partitioned_render):
        fbs, _ = partitioned_render
        _, stats = binary_swap(fbs)
        assert max(stats.bytes_sent_per_node) - min(stats.bytes_sent_per_node) <= (
            96 * 96 * PIXEL_PAYLOAD_BYTES // 2
        )

    def test_requires_power_of_two(self, partitioned_render):
        fbs, _ = partitioned_render
        with pytest.raises(ValueError):
            binary_swap(fbs[:3])
        with pytest.raises(ValueError):
            binary_swap([])

    def test_two_nodes(self, partitioned_render):
        fbs, _ = partitioned_render
        merged2 = composite(fbs[:2])
        out, stats = binary_swap(fbs[:2])
        assert np.array_equal(out.depth, merged2.depth)
        assert stats.rounds == 1

    def test_inputs_not_mutated(self, partitioned_render):
        fbs, _ = partitioned_render
        before = [fb.depth.copy() for fb in fbs]
        binary_swap(fbs)
        for fb, d in zip(fbs, before):
            assert np.array_equal(fb.depth, d)
