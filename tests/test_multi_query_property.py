"""Hypothesis property: multi-isovalue batch == per-isovalue queries,
for random volumes and random isovalue sets."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builder import build_indexed_dataset
from repro.core.multi_query import execute_multi_query
from repro.core.query import execute_query
from repro.grid.volume import Volume


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    lams=st.lists(st.integers(-5, 260), min_size=1, max_size=6, unique=True),
)
def test_multi_query_equals_singles(seed, lams):
    rng = np.random.default_rng(seed)
    vol = Volume(rng.integers(0, 255, size=(13, 13, 13)).astype(np.uint8))
    ds = build_indexed_dataset(vol, (5, 5, 5))
    multi = execute_multi_query(ds, [float(l) for l in lams])
    for lam in lams:
        single = execute_query(ds, float(lam))
        got = multi.records_for(float(lam))
        assert np.array_equal(np.sort(got.ids), np.sort(single.records.ids))
        # Payloads identical too (sorted by id for comparison).
        if len(got):
            a = got.values[np.argsort(got.ids)]
            b = single.records.values[np.argsort(single.records.ids)]
            assert np.array_equal(a, b)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_multi_query_never_reads_more_than_union(seed):
    rng = np.random.default_rng(seed)
    vol = Volume(rng.integers(0, 255, size=(13, 13, 13)).astype(np.uint8))
    ds = build_indexed_dataset(vol, (5, 5, 5))
    lams = [60.0, 65.0, 70.0]
    multi = execute_multi_query(ds, lams)
    distinct = set()
    for lam in lams:
        for a, b in ds.tree.active_record_ranges(lam):
            distinct.update(range(a, b))
    assert multi.n_records_read == len(distinct)
