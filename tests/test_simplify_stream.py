"""Tests for mesh decimation and streaming mesh output."""

import numpy as np
import pytest

from repro.core.builder import build_indexed_dataset
from repro.grid.datasets import sphere_field
from repro.mc.geometry import TriangleMesh
from repro.mc.marching_cubes import marching_cubes
from repro.mc.mesh_io import read_obj, read_ply
from repro.mc.mesh_stream import StreamingMeshWriter, stream_isosurface_to_file
from repro.mc.simplify import simplify_to_budget, simplify_vertex_clustering


@pytest.fixture(scope="module")
def sphere_mesh():
    vol = sphere_field((40, 40, 40))
    return marching_cubes(vol.data, 0.7, origin=vol.origin, spacing=vol.spacing)


class TestVertexClustering:
    def test_reduces_triangles(self, sphere_mesh):
        out = simplify_vertex_clustering(sphere_mesh, cell_size=0.15)
        assert 0 < out.n_triangles < 0.5 * sphere_mesh.n_triangles

    def test_preserves_measures_roughly(self, sphere_mesh):
        out = simplify_vertex_clustering(sphere_mesh, cell_size=0.1)
        assert out.area() == pytest.approx(sphere_mesh.area(), rel=0.15)
        assert abs(out.enclosed_volume()) == pytest.approx(
            abs(sphere_mesh.enclosed_volume()), rel=0.15
        )

    def test_finer_grid_keeps_more(self, sphere_mesh):
        fine = simplify_vertex_clustering(sphere_mesh, 0.05)
        coarse = simplify_vertex_clustering(sphere_mesh, 0.3)
        assert fine.n_triangles > coarse.n_triangles

    def test_center_representative(self, sphere_mesh):
        out = simplify_vertex_clustering(sphere_mesh, 0.15, representative="center")
        assert out.n_triangles > 0
        # Vertices land on the cell-center lattice.
        origin = sphere_mesh.vertices.min(axis=0)
        offsets = (out.vertices - origin) / 0.15 - 0.5
        assert np.allclose(offsets, np.round(offsets), atol=1e-9)

    def test_no_degenerate_or_duplicate_faces(self, sphere_mesh):
        out = simplify_vertex_clustering(sphere_mesh, 0.2)
        f = out.faces
        assert np.all(f[:, 0] != f[:, 1])
        assert np.all(f[:, 1] != f[:, 2])
        key = np.sort(f, axis=1)
        assert len(np.unique(key, axis=0)) == len(f)

    def test_validation(self, sphere_mesh):
        with pytest.raises(ValueError):
            simplify_vertex_clustering(sphere_mesh, 0.0)
        with pytest.raises(ValueError):
            simplify_vertex_clustering(sphere_mesh, 0.1, representative="magic")

    def test_empty_mesh(self):
        assert simplify_vertex_clustering(TriangleMesh(), 0.1).n_triangles == 0


class TestBudget:
    def test_hits_budget(self, sphere_mesh):
        out = simplify_to_budget(sphere_mesh, 400)
        assert out.n_triangles <= 400
        assert out.n_triangles > 20  # still a sphere, not a tetrahedron

    def test_within_budget_is_identity(self, sphere_mesh):
        out = simplify_to_budget(sphere_mesh, sphere_mesh.n_triangles + 1)
        assert out is sphere_mesh

    def test_validation(self, sphere_mesh):
        with pytest.raises(ValueError):
            simplify_to_budget(sphere_mesh, 0)


class TestStreamingWriter:
    def _chunks(self, mesh, n=5):
        """Split a mesh into n face-chunks (soup style, private vertices)."""
        out = []
        for part in np.array_split(np.arange(mesh.n_triangles), n):
            pts = mesh.vertices[mesh.faces[part]].reshape(-1, 3)
            faces = np.arange(len(pts)).reshape(-1, 3)
            out.append(TriangleMesh(pts, faces))
        return out

    @pytest.mark.parametrize("ext", ["ply", "obj"])
    def test_chunked_equals_monolithic(self, tmp_path, sphere_mesh, ext):
        path = tmp_path / f"streamed.{ext}"
        with StreamingMeshWriter(path) as w:
            for chunk in self._chunks(sphere_mesh):
                w.add_mesh(chunk)
        assert w.n_triangles == sphere_mesh.n_triangles
        back = read_ply(path) if ext == "ply" else read_obj(path)
        assert back.n_triangles == sphere_mesh.n_triangles
        assert back.area() == pytest.approx(sphere_mesh.area(), rel=1e-5)

    def test_spools_cleaned_up(self, tmp_path, sphere_mesh):
        path = tmp_path / "s.ply"
        with StreamingMeshWriter(path) as w:
            w.add_mesh(sphere_mesh)
        assert sorted(p.name for p in tmp_path.iterdir()) == ["s.ply"]

    def test_spools_cleaned_on_error(self, tmp_path, sphere_mesh):
        path = tmp_path / "s.ply"
        with pytest.raises(RuntimeError):
            with StreamingMeshWriter(path) as w:
                w.add_mesh(sphere_mesh)
                raise RuntimeError("boom")
        leftovers = [p.name for p in tmp_path.iterdir() if p.suffix in (".vtmp", ".ftmp")]
        assert leftovers == []

    def test_add_after_close_rejected(self, tmp_path, sphere_mesh):
        w = StreamingMeshWriter(tmp_path / "x.ply")
        w.close()
        with pytest.raises(ValueError):
            w.add_mesh(sphere_mesh)

    def test_bad_extension(self, tmp_path):
        with pytest.raises(ValueError):
            StreamingMeshWriter(tmp_path / "x.stl")

    def test_empty_output(self, tmp_path):
        with StreamingMeshWriter(tmp_path / "e.ply") as w:
            pass
        back = read_ply(tmp_path / "e.ply")
        assert back.n_triangles == 0


class TestEndToEndStreaming:
    def test_stream_isosurface_matches_in_memory(self, tmp_path):
        vol = sphere_field((33, 33, 33))
        ds = build_indexed_dataset(vol, (5, 5, 5))
        path, n = stream_isosurface_to_file(ds, 0.7, tmp_path / "iso.ply",
                                            chunk_metacells=16)
        from repro.pipeline import IsosurfacePipeline

        ref = IsosurfacePipeline(ds).extract(0.7)
        assert n == ref.mesh.n_triangles
        back = read_ply(path)
        assert back.n_triangles == n
        assert back.area() == pytest.approx(ref.mesh.area(), rel=1e-5)
