"""Adversarial interval distributions for the striping guarantee.

The provable bound (max - min <= # active bricks) is weakest when
bricks are tiny; these tests construct the extreme span-space shapes —
one giant brick, all-singleton bricks, heavy duplication — and check
both correctness and balance at the extremes.
"""

import numpy as np
import pytest

from repro.core.compact_tree import CompactIntervalTree
from repro.core.intervals import IntervalSet
from repro.core.striping import (
    stripe_brick_records,
    striped_active_counts,
    striping_balance_bound,
)


def make(vmin, vmax):
    vmin = np.asarray(vmin, dtype=np.float64)
    vmax = np.asarray(vmax, dtype=np.float64)
    return IntervalSet(vmin=vmin, vmax=vmax, ids=np.arange(len(vmin), dtype=np.uint32))


class TestSingleVmax:
    """Every metacell shares one vmax.  The tree still splits on vmin
    medians (intervals whose vmin exceeds a node's split route right), so
    this yields one *fat brick per tree node* — O(log n) bricks total —
    and the balance bound stays tiny."""

    def test_logarithmic_bricks_and_tight_balance(self):
        n, p = 1000, 8
        iv = make(np.linspace(0, 50, n), np.full(n, 100.0))
        tree = CompactIntervalTree.build(iv)
        assert tree.n_bricks <= 2 * int(np.ceil(np.log2(n))) + 1
        layouts = stripe_brick_records(tree, p)
        for lam in (0.0, 10.0, 49.0, 75.0, 100.0):
            counts = striped_active_counts(layouts, lam)
            assert counts.sum() == iv.stabbing_count(lam)
            bound = striping_balance_bound(tree, lam)
            assert counts.max() - counts.min() <= bound
            assert bound <= tree.n_bricks

    def test_identical_intervals_single_brick(self):
        """Truly one brick: all intervals identical."""
        n, p = 500, 8
        iv = make(np.full(n, 2.0), np.full(n, 9.0))
        tree = CompactIntervalTree.build(iv)
        assert tree.n_bricks == 1
        layouts = stripe_brick_records(tree, p)
        counts = striped_active_counts(layouts, 5.0)
        assert counts.sum() == n
        assert counts.max() - counts.min() <= 1  # bound = 1 brick

    def test_case2_prefix_shared_fairly(self):
        n, p = 97, 4
        iv = make(np.arange(n, dtype=float), np.full(n, 1000.0))
        tree = CompactIntervalTree.build(iv)
        layouts = stripe_brick_records(tree, p)
        lam = 40.0  # active prefix of 41 records
        counts = striped_active_counts(layouts, lam)
        assert counts.sum() == 41
        assert counts.max() - counts.min() <= striping_balance_bound(tree, lam)


class TestAllSingletonBricks:
    """All-distinct float vmax values: every brick holds one record —
    the bound degenerates to the active count, and only staggering
    keeps the realized distribution fair."""

    def _intervals(self, n=400, seed=3):
        rng = np.random.default_rng(seed)
        vmin = rng.random(n) * 0.4
        vmax = 0.6 + rng.random(n) * 0.4  # distinct with prob 1
        return make(vmin, vmax)

    def test_staggered_balance(self):
        iv = self._intervals()
        tree = CompactIntervalTree.build(iv)
        assert tree.n_bricks == len(iv)  # singleton bricks
        layouts = stripe_brick_records(tree, 4, stagger=True)
        counts = striped_active_counts(layouts, 0.5)
        assert counts.sum() == len(iv)
        assert counts.max() / counts.mean() < 1.2

    def test_paper_literal_skews_to_node_zero(self):
        iv = self._intervals()
        tree = CompactIntervalTree.build(iv)
        layouts = stripe_brick_records(tree, 4, stagger=False)
        counts = striped_active_counts(layouts, 0.5)
        # Singleton bricks all start at node 0 without staggering.
        assert counts[0] == counts.sum()

    def test_bound_still_holds_either_way(self):
        iv = self._intervals()
        tree = CompactIntervalTree.build(iv)
        bound = striping_balance_bound(tree, 0.5)
        for stagger in (True, False):
            counts = striped_active_counts(
                stripe_brick_records(tree, 4, stagger=stagger), 0.5
            )
            assert counts.max() - counts.min() <= bound


class TestHeavyDuplication:
    """The paper's actual regime: millions of intervals, few distinct
    pairs — bricks are huge and even the literal layout balances."""

    def test_literal_layout_fine_with_fat_bricks(self):
        rng = np.random.default_rng(9)
        n = 20_000
        vmin = rng.integers(0, 8, n).astype(np.float64)
        vmax = (8 + rng.integers(0, 8, n)).astype(np.float64)
        iv = make(vmin, vmax)
        tree = CompactIntervalTree.build(iv)
        assert tree.n_bricks < 200
        layouts = stripe_brick_records(tree, 8, stagger=False)
        counts = striped_active_counts(layouts, 8.0)
        assert counts.sum() == iv.stabbing_count(8.0)
        assert counts.max() / counts.mean() < 1.01  # fat bricks: near-perfect

    def test_query_correct_at_every_endpoint(self):
        rng = np.random.default_rng(10)
        n = 5000
        vmin = rng.integers(0, 6, n).astype(np.float64)
        vmax = (vmin + 1 + rng.integers(0, 6, n)).astype(np.float64)
        iv = make(vmin, vmax)
        tree = CompactIntervalTree.build(iv)
        layouts = stripe_brick_records(tree, 5)
        for lam in np.unique(np.concatenate([iv.vmin, iv.vmax])):
            got = sum(int(l.tree.query_count(float(lam))) for l in layouts)
            assert got == iv.stabbing_count(float(lam))
