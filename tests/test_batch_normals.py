"""Tests for payload-local gradient normals from the batch extractor."""

import numpy as np
import pytest

from repro.grid.datasets import sphere_field
from repro.grid.metacell import partition_metacells
from repro.mc.marching_cubes import marching_cubes, marching_cubes_batch
from repro.mc.normals import isosurface_normals


@pytest.fixture(scope="module")
def batch_inputs():
    vol = sphere_field((33, 33, 33))
    part = partition_metacells(vol, (5, 5, 5))
    ids = part.ids[~part.constant_mask()]
    values = part.extract_values(ids).reshape(-1, 5, 5, 5)
    origins = part.vertex_origins(ids)
    return vol, values, origins


class TestBatchNormals:
    def test_shapes_and_unit_length(self, batch_inputs):
        vol, values, origins = batch_inputs
        mesh, normals = marching_cubes_batch(
            values, 0.6, origins, spacing=vol.spacing, world_origin=vol.origin,
            with_normals=True,
        )
        assert normals.shape == (mesh.n_vertices, 3)
        assert np.allclose(np.linalg.norm(normals, axis=1), 1.0)

    def test_point_inward_on_sphere(self, batch_inputs):
        """Distance field: normals (toward < iso) must point at the center."""
        vol, values, origins = batch_inputs
        mesh, normals = marching_cubes_batch(
            values, 0.6, origins, spacing=vol.spacing, world_origin=vol.origin,
            with_normals=True,
        )
        toward_center = -mesh.vertices / np.linalg.norm(
            mesh.vertices, axis=1, keepdims=True
        )
        cos = np.einsum("ij,ij->i", normals, toward_center)
        assert np.median(cos) > 0.97
        assert np.mean(cos > 0.8) > 0.98

    def test_agrees_with_global_gradient_normals(self, batch_inputs):
        """Payload-local gradients must match global-volume gradients on
        vertices away from metacell boundaries (interior central
        differences are identical; boundaries fall back to one-sided)."""
        vol, values, origins = batch_inputs
        mesh, normals = marching_cubes_batch(
            values, 0.6, origins, spacing=vol.spacing, world_origin=vol.origin,
            with_normals=True,
        )
        global_n = isosurface_normals(vol, mesh.vertices)
        # Identify interior vertices: lattice position (in vertex units)
        # at least 1 away from any metacell boundary plane (multiple of 4).
        lattice = (mesh.vertices - np.asarray(vol.origin)) / np.asarray(vol.spacing)
        frac = np.abs(lattice / 4.0 - np.round(lattice / 4.0))
        interior = np.all(frac > 0.25, axis=1)
        if interior.sum() > 10:
            cos = np.einsum("ij,ij->i", normals[interior], global_n[interior])
            assert np.min(cos) > 0.95

    def test_chunking_invariant(self, batch_inputs):
        """Chunking permutes vertex order (family-major per chunk) but the
        position->normal mapping must be identical."""
        vol, values, origins = batch_inputs
        m1, n1 = marching_cubes_batch(values, 0.6, origins, chunk=7, with_normals=True)
        m2, n2 = marching_cubes_batch(values, 0.6, origins, chunk=999, with_normals=True)
        assert m1.n_triangles == m2.n_triangles

        def sorted_pairs(mesh, normals):
            key = np.lexsort(mesh.vertices.T)
            return mesh.vertices[key], normals[key]

        v1, s1 = sorted_pairs(m1, n1)
        v2, s2 = sorted_pairs(m2, n2)
        assert np.allclose(v1, v2)
        assert np.allclose(s1, s2)

    def test_mesh_identical_with_and_without(self, batch_inputs):
        vol, values, origins = batch_inputs
        plain = marching_cubes_batch(values, 0.6, origins)
        mesh, _ = marching_cubes_batch(values, 0.6, origins, with_normals=True)
        assert np.array_equal(plain.faces, mesh.faces)
        assert np.allclose(plain.vertices, mesh.vertices)

    def test_empty_batch(self):
        mesh, normals = marching_cubes_batch(
            np.zeros((0, 5, 5, 5)), 0.5, np.zeros((0, 3)), with_normals=True
        )
        assert mesh.n_triangles == 0
        assert normals.shape == (0, 3)

    def test_anisotropic_spacing_normals_perpendicular(self):
        """With anisotropic spacing the normals must still be perpendicular
        to the (world-space) surface: check against a flat isosurface."""
        # Field = z in world units; isosurface z = const, normal = ±z.
        data = np.tile(np.arange(9, dtype=np.float64), (9, 9, 1))
        batch = data[None]
        mesh, normals = marching_cubes_batch(
            batch, 3.5, np.zeros((1, 3)), spacing=(1.0, 1.0, 0.25),
            with_normals=True,
        )
        assert mesh.n_triangles > 0
        assert np.allclose(np.abs(normals[:, 2]), 1.0, atol=1e-9)
