"""Tests for round-robin brick striping and its balance guarantee."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compact_tree import CompactIntervalTree
from repro.core.striping import (
    imbalance_ratio,
    stripe_brick_records,
    striped_active_counts,
    striping_balance_bound,
)
from tests.conftest import random_intervals


class TestPartitionProperties:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 7, 8])
    def test_positions_partition_globals(self, sphere_intervals, p):
        tree = CompactIntervalTree.build(sphere_intervals)
        layouts = stripe_brick_records(tree, p)
        allpos = np.concatenate([l.local_positions for l in layouts])
        assert np.array_equal(np.sort(allpos), np.arange(tree.n_records))

    def test_local_order_preserved(self, sphere_intervals):
        tree = CompactIntervalTree.build(sphere_intervals)
        for lay in stripe_brick_records(tree, 3):
            assert np.all(np.diff(lay.local_positions) > 0)

    def test_per_brick_round_robin_staggered(self, sphere_intervals):
        tree = CompactIntervalTree.build(sphere_intervals)
        p = 4
        layouts = stripe_brick_records(tree, p)
        # Record at global brick offset o of brick b lives on node (o+b) % p.
        owner = np.empty(tree.n_records, dtype=np.int64)
        for q, lay in enumerate(layouts):
            owner[lay.local_positions] = q
        for b in range(tree.n_bricks):
            s, c = int(tree.brick_start[b]), int(tree.brick_count[b])
            assert np.array_equal(owner[s : s + c], (np.arange(c) + b) % p)

    def test_per_brick_round_robin_paper_literal(self, sphere_intervals):
        """stagger=False: the paper's layout, first metacell to node 0."""
        tree = CompactIntervalTree.build(sphere_intervals)
        p = 4
        layouts = stripe_brick_records(tree, p, stagger=False)
        owner = np.empty(tree.n_records, dtype=np.int64)
        for q, lay in enumerate(layouts):
            owner[lay.local_positions] = q
        for b in range(tree.n_bricks):
            s, c = int(tree.brick_start[b]), int(tree.brick_count[b])
            assert np.array_equal(owner[s : s + c], np.arange(c) % p)

    def test_stagger_queries_still_match_oracle(self, sphere_intervals):
        tree = CompactIntervalTree.build(sphere_intervals)
        for stagger in (True, False):
            layouts = stripe_brick_records(tree, 5, stagger=stagger)
            for lam in (0.3, 0.9, 1.4):
                got = np.sort(np.concatenate([l.tree.query_ids(lam) for l in layouts]))
                assert np.array_equal(got, sphere_intervals.stabbing_ids(lam))

    def test_local_brick_counts(self, sphere_intervals):
        tree = CompactIntervalTree.build(sphere_intervals)
        p = 3
        layouts = stripe_brick_records(tree, p)
        for q, lay in enumerate(layouts):
            for local_b, global_b in enumerate(lay.brick_global_ids):
                c = int(tree.brick_count[global_b])
                expect = len(range((q - int(global_b)) % p, c, p))
                assert int(lay.tree.brick_count[local_b]) == expect

    def test_invalid_p(self, sphere_intervals):
        tree = CompactIntervalTree.build(sphere_intervals)
        with pytest.raises(ValueError):
            stripe_brick_records(tree, 0)

    def test_more_nodes_than_records(self):
        rng = np.random.default_rng(0)
        iv = random_intervals(rng, 3, 8)
        tree = CompactIntervalTree.build(iv)
        layouts = stripe_brick_records(tree, 8)
        total = sum(l.tree.n_records for l in layouts)
        assert total == 3
        for lam in (0.0, 4.0, 8.0):
            got = np.sort(np.concatenate([l.tree.query_ids(lam) for l in layouts]))
            assert np.array_equal(got, iv.stabbing_ids(lam))


class TestQueryEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(1, 150),
        n_values=st.integers(1, 20),
        p=st.integers(1, 6),
        seed=st.integers(0, 2**16),
        lam_num=st.integers(-1, 21),
    )
    def test_union_of_local_queries_is_global(self, n, n_values, p, seed, lam_num):
        rng = np.random.default_rng(seed)
        iv = random_intervals(rng, n, n_values)
        tree = CompactIntervalTree.build(iv)
        layouts = stripe_brick_records(tree, p)
        lam = float(lam_num)
        got = np.sort(np.concatenate([l.tree.query_ids(lam) for l in layouts]))
        assert np.array_equal(got, iv.stabbing_ids(lam))


class TestBalanceGuarantee:
    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(1, 200),
        n_values=st.integers(1, 16),
        p=st.integers(2, 8),
        seed=st.integers(0, 2**16),
        lam_num=st.integers(0, 16),
    )
    def test_spread_bounded_by_active_bricks(self, n, n_values, p, seed, lam_num):
        """The paper's provable balance: max - min <= # active bricks,
        for ANY isovalue."""
        rng = np.random.default_rng(seed)
        iv = random_intervals(rng, n, n_values)
        tree = CompactIntervalTree.build(iv)
        layouts = stripe_brick_records(tree, p)
        lam = float(lam_num)
        counts = striped_active_counts(layouts, lam)
        assert int(counts.sum()) == iv.stabbing_count(lam)
        assert counts.max() - counts.min() <= striping_balance_bound(tree, lam)

    def test_per_node_within_one_of_fair_share_per_brick(self, sphere_intervals):
        """Each node's share of each *active brick prefix* is floor or ceil
        of fair share; aggregate check via the bound."""
        tree = CompactIntervalTree.build(sphere_intervals)
        p = 4
        layouts = stripe_brick_records(tree, p)
        for lam in (0.2, 0.6, 0.9, 1.3):
            counts = striped_active_counts(layouts, lam)
            total = counts.sum()
            fair = total / p
            bound = striping_balance_bound(tree, lam)
            assert np.all(np.abs(counts - fair) <= bound)


class TestImbalanceRatio:
    def test_perfect_balance(self):
        assert imbalance_ratio(np.array([5, 5, 5, 5])) == 1.0

    def test_empty(self):
        assert imbalance_ratio(np.array([])) == 1.0
        assert imbalance_ratio(np.array([0, 0])) == 1.0

    def test_skew(self):
        assert imbalance_ratio(np.array([10, 0])) == pytest.approx(2.0)
