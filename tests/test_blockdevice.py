"""Unit tests for the simulated and file-backed block devices."""

import numpy as np
import pytest

from repro.io.blockdevice import IOStats, SimulatedBlockDevice
from repro.io.cost_model import IOCostModel
from repro.io.diskfile import FileBackedDevice


@pytest.fixture(params=["memory", "file"])
def device(request, tmp_path, small_cost_model):
    if request.param == "memory":
        return SimulatedBlockDevice(small_cost_model)
    return FileBackedDevice(tmp_path / "store.bin", small_cost_model)


class TestReadWrite:
    def test_roundtrip(self, device):
        off = device.allocate(16)
        device.write(off, b"0123456789abcdef")
        assert device.read(off, 16) == b"0123456789abcdef"
        assert device.read(off + 4, 4) == b"4567"

    def test_allocation_is_appending(self, device):
        a = device.allocate(10)
        b = device.allocate(20)
        assert b == a + 10
        assert device.size == 30

    def test_write_outside_allocation_raises(self, device):
        device.allocate(8)
        with pytest.raises(ValueError):
            device.write(4, b"too long!")

    def test_read_outside_allocation_raises(self, device):
        device.allocate(8)
        with pytest.raises(ValueError):
            device.read(4, 8)

    def test_negative_sizes_rejected(self, device):
        with pytest.raises(ValueError):
            device.allocate(-1)
        device.allocate(8)
        with pytest.raises(ValueError):
            device.read(0, -2)


class TestAccounting:
    def test_blocks_charged_per_extent(self, small_cost_model):
        dev = SimulatedBlockDevice(small_cost_model)  # 512-byte blocks
        dev.allocate(4096)
        dev.write(0, b"x" * 4096)
        dev.reset_stats()
        dev.read(0, 100)
        assert dev.stats.blocks_read == 1
        dev.read(500, 24)  # spans blocks 0 and 1
        assert dev.stats.blocks_read == 1 + 2

    def test_sequential_reads_are_one_seek(self, small_cost_model):
        dev = SimulatedBlockDevice(small_cost_model)
        dev.allocate(4096)
        dev.reset_stats()
        dev.read(0, 512)
        dev.read(512, 512)
        dev.read(1024, 512)
        assert dev.stats.seeks == 1
        assert dev.stats.read_ops == 3

    def test_backward_jump_is_a_seek(self, small_cost_model):
        dev = SimulatedBlockDevice(small_cost_model)
        dev.allocate(4096)
        dev.reset_stats()
        dev.read(2048, 512)
        dev.read(0, 512)
        assert dev.stats.seeks == 2

    def test_zero_length_read_free(self, small_cost_model):
        dev = SimulatedBlockDevice(small_cost_model)
        dev.allocate(64)
        dev.reset_stats()
        dev.read(0, 0)
        assert dev.stats.read_ops == 0
        assert dev.stats.blocks_read == 0

    def test_write_accounting(self, small_cost_model):
        dev = SimulatedBlockDevice(small_cost_model)
        dev.allocate(1024)
        dev.write(0, b"y" * 1024)
        assert dev.stats.write_ops == 1
        assert dev.stats.blocks_written == 2
        assert dev.stats.bytes_written == 1024

    def test_reset_stats_forgets_position(self, small_cost_model):
        dev = SimulatedBlockDevice(small_cost_model)
        dev.allocate(2048)
        dev.read(0, 512)
        dev.reset_stats()
        dev.read(512, 512)  # would be sequential, but position was forgotten
        assert dev.stats.seeks == 1


class TestIOStats:
    def test_add_and_sub(self):
        a = IOStats(read_ops=2, blocks_read=5, bytes_read=100, seeks=1)
        b = IOStats(read_ops=1, blocks_read=2, bytes_read=40, seeks=1)
        s = a + b
        assert (s.read_ops, s.blocks_read, s.bytes_read, s.seeks) == (3, 7, 140, 2)
        d = s - b
        assert (d.read_ops, d.blocks_read, d.bytes_read, d.seeks) == (2, 5, 100, 1)

    def test_read_time_uses_model(self):
        stats = IOStats(blocks_read=10, seeks=2)
        m = IOCostModel(block_size=1000, bandwidth=1e6, seek_latency=0.005)
        assert stats.read_time(m) == pytest.approx(0.01 + 0.01)

    def test_copy_is_independent(self):
        a = IOStats(read_ops=1)
        b = a.copy()
        b.read_ops = 99
        assert a.read_ops == 1


class TestFileBacked:
    def test_persistence_across_reopen(self, tmp_path, small_cost_model):
        path = tmp_path / "persist.bin"
        dev = FileBackedDevice(path, small_cost_model)
        off = dev.allocate(8)
        dev.write(off, b"persists")
        dev.close()
        dev2 = FileBackedDevice(path, small_cost_model, create=False)
        assert dev2.size == 8
        assert dev2.read(0, 8) == b"persists"
        dev2.close()

    def test_create_truncates(self, tmp_path, small_cost_model):
        path = tmp_path / "trunc.bin"
        dev = FileBackedDevice(path, small_cost_model)
        dev.allocate(100)
        dev.close()
        dev2 = FileBackedDevice(path, small_cost_model, create=True)
        assert dev2.size == 0
        dev2.close()

    def test_context_manager(self, tmp_path, small_cost_model):
        with FileBackedDevice(tmp_path / "cm.bin", small_cost_model) as dev:
            off = dev.allocate(4)
            dev.write(off, b"abcd")
            assert dev.read(off, 4) == b"abcd"

    def test_short_read_detected(self, tmp_path, small_cost_model):
        path = tmp_path / "short.bin"
        dev = FileBackedDevice(path, small_cost_model)
        dev.allocate(100)
        dev.flush()
        # Truncate the file behind the device's back.
        with open(path, "r+b") as fh:
            fh.truncate(10)
        with pytest.raises(IOError):
            dev.read(0, 100)
        dev.close()


class TestFileBackedPickle:
    def test_pickle_travels_by_path(self, tmp_path, small_cost_model):
        import pickle

        dev = FileBackedDevice(tmp_path / "p.bin", small_cost_model)
        off = dev.allocate(16)
        dev.write(off, b"0123456789abcdef")
        dev.flush()
        blob = pickle.dumps(dev)
        # Pickle must be small: the 16-byte store should not be embedded.
        assert len(blob) < 4096
        clone = pickle.loads(blob)
        assert clone.read(0, 16) == b"0123456789abcdef"
        assert clone.stats.read_ops == 1  # fresh meter
        clone.close()
        dev.close()

    def test_unpickle_detects_truncation(self, tmp_path, small_cost_model):
        import pickle

        path = tmp_path / "t.bin"
        dev = FileBackedDevice(path, small_cost_model)
        dev.allocate(100)
        dev.flush()
        blob = pickle.dumps(dev)
        dev.close()
        with open(path, "r+b") as fh:
            fh.truncate(10)
        with pytest.raises(IOError):
            pickle.loads(blob)
