"""Tests for out-of-core query execution against block devices."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builder import build_indexed_dataset
from repro.core.intervals import IntervalSet
from repro.core.query import QueryOptions, execute_query
from repro.grid.datasets import gyroid_field, sphere_field
from repro.grid.rm_instability import rm_timestep
from repro.grid.volume import Volume
from repro.io.cost_model import IOCostModel


class TestCorrectness:
    @pytest.mark.parametrize("lam", [-0.5, 0.0, 0.3, 0.6, 0.9, 1.2, 1.7, 3.0])
    def test_matches_bruteforce_oracle(self, sphere_dataset, sphere_intervals, lam):
        res = execute_query(sphere_dataset, lam)
        assert np.array_equal(np.sort(res.records.ids), sphere_intervals.stabbing_ids(lam))

    def test_matches_in_memory_tree(self, sphere_dataset):
        for lam in (0.2, 0.7, 1.1):
            res = execute_query(sphere_dataset, lam)
            assert np.array_equal(
                np.sort(res.records.ids), sphere_dataset.tree.query_ids(lam)
            )

    def test_record_payloads_are_correct(self, sphere_dataset, sphere_partition):
        """Payload read back from disk equals the original metacell data."""
        res = execute_query(sphere_dataset, 0.6)
        expect = sphere_partition.extract_values(res.records.ids)
        assert np.array_equal(res.records.values, expect)

    def test_vmin_consistency(self, sphere_dataset):
        res = execute_query(sphere_dataset, 0.6)
        assert np.all(res.records.vmins.astype(np.float64) <= 0.6)
        assert np.array_equal(
            res.records.vmins.astype(np.float64),
            res.records.values.astype(np.float64).min(axis=1),
        )

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**16), lam=st.integers(0, 255))
    def test_random_uint8_volumes(self, seed, lam):
        rng = np.random.default_rng(seed)
        vol = Volume(rng.integers(0, 255, size=(9, 9, 9)).astype(np.uint8))
        ds = build_indexed_dataset(vol, (5, 5, 5))
        iv = IntervalSet(
            vmin=np.empty(0, np.uint8), vmax=np.empty(0, np.uint8),
            ids=np.empty(0, np.uint32),
        )
        # Oracle straight from the partition:
        from repro.grid.metacell import partition_metacells

        part = partition_metacells(vol, (5, 5, 5))
        iv = IntervalSet.from_partition(part)
        res = execute_query(ds, float(lam))
        assert np.array_equal(np.sort(res.records.ids), iv.stabbing_ids(float(lam)))


class TestIOAccounting:
    def test_empty_query_reads_nothing(self, sphere_dataset):
        res = execute_query(sphere_dataset, -10.0)
        assert res.n_active == 0
        assert res.io_stats.blocks_read == 0
        assert res.io_stats.read_ops == 0

    def test_selective_query_reads_less_than_store(self, sphere_dataset):
        full = sphere_dataset.n_records * sphere_dataset.codec.record_size
        res = execute_query(sphere_dataset, 0.3)
        assert 0 < res.io_stats.bytes_read < full

    def test_overshoot_is_bounded(self, sphere_dataset):
        """Case 2 reads at most one terminator record per scanned brick
        plus block-granularity tails."""
        res = execute_query(sphere_dataset, 0.6)
        n_scans = res.plan.n_prefix_scans
        assert res.n_records_read - res.n_active <= n_scans + res.plan.n_sequential_runs

    def test_blocks_near_optimal(self, sphere_dataset):
        """Blocks read <= (active bytes / B) + O(runs) extra blocks."""
        model = sphere_dataset.device.cost_model
        res = execute_query(sphere_dataset, 0.9)
        optimal_blocks = -(-res.n_active * sphere_dataset.codec.record_size // model.block_size)
        n_runs = len(res.plan.runs)
        assert res.io_stats.blocks_read <= optimal_blocks + 2 * n_runs + 1

    def test_seeks_bounded_by_runs(self, sphere_dataset):
        res = execute_query(sphere_dataset, 0.9)
        assert res.io_stats.seeks <= len(res.plan.runs)

    def test_io_time_uses_cost_model(self, sphere_dataset):
        res = execute_query(sphere_dataset, 0.9)
        model = sphere_dataset.device.cost_model
        expected = model.time_for(res.io_stats.blocks_read, res.io_stats.seeks)
        assert res.io_time(model) == pytest.approx(expected)

    def test_small_block_device(self):
        """Tiny blocks exercise the incremental brick reader heavily."""
        vol = sphere_field((17, 17, 17))
        cm = IOCostModel(block_size=64, bandwidth=1e6, seek_latency=1e-4)
        ds = build_indexed_dataset(vol, (5, 5, 5), cost_model=cm)
        from repro.core.intervals import IntervalSet
        from repro.grid.metacell import partition_metacells

        iv = IntervalSet.from_partition(partition_metacells(vol, (5, 5, 5)))
        for lam in (0.2, 0.5, 1.0):
            res = execute_query(ds, lam)
            assert np.array_equal(np.sort(res.records.ids), iv.stabbing_ids(lam))

    def test_read_ahead_variants_agree(self, sphere_volume):
        ds = build_indexed_dataset(sphere_volume, (5, 5, 5))
        a = execute_query(ds, 0.7, QueryOptions(read_ahead_blocks=1))
        b = execute_query(ds, 0.7, QueryOptions(read_ahead_blocks=32))
        assert np.array_equal(np.sort(a.records.ids), np.sort(b.records.ids))
        with pytest.raises(ValueError):
            execute_query(ds, 0.7, QueryOptions(read_ahead_blocks=0))


class TestSelectivitySweep:
    def test_monotone_io_in_active_count(self):
        """More active metacells => more bytes read (the paper's linear
        relationship between I/O time and output size)."""
        vol = rm_timestep(200, shape=(33, 33, 29))
        ds = build_indexed_dataset(vol, (5, 5, 5))
        actives, bytes_read = [], []
        for lam in range(20, 240, 20):
            res = execute_query(ds, float(lam))
            actives.append(res.n_active)
            bytes_read.append(res.io_stats.bytes_read)
        actives = np.asarray(actives)
        bytes_read = np.asarray(bytes_read)
        order = np.argsort(actives)
        # bytes_read ~ active * record_size within block-granularity slack
        rec = ds.codec.record_size
        assert np.all(bytes_read >= actives * rec)
        assert np.all(bytes_read <= actives * rec + 4096 * (1 + actives))
        # and is monotone in the active count up to small slack
        b_sorted = bytes_read[order]
        assert np.all(np.diff(b_sorted) >= -8192)

    def test_gyroid_near_full_selectivity(self):
        """At iso 0 of a gyroid nearly everything is active: bytes read
        approach the full store size."""
        vol = gyroid_field((25, 25, 25))
        ds = build_indexed_dataset(vol, (5, 5, 5))
        res = execute_query(ds, 0.0)
        store = ds.n_records * ds.codec.record_size
        assert res.io_stats.bytes_read > 0.9 * store
