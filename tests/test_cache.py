"""Tests for the LRU block cache device."""

import numpy as np
import pytest

from repro.core.builder import build_indexed_dataset
from repro.core.query import execute_query
from repro.grid.datasets import sphere_field
from repro.io.blockdevice import SimulatedBlockDevice
from repro.io.cache import CachedDevice
from repro.io.cost_model import IOCostModel


@pytest.fixture()
def pair(small_cost_model):
    backing = SimulatedBlockDevice(small_cost_model)  # 512-byte blocks
    cached = CachedDevice(backing, capacity_blocks=4)
    off = cached.allocate(512 * 16)
    rng = np.random.default_rng(0)
    cached.write(off, rng.integers(0, 255, 512 * 16).astype(np.uint8).tobytes())
    backing.reset_stats()
    cached.reset_stats()
    return backing, cached


class TestCorrectness:
    def test_reads_match_backing(self, pair):
        backing, cached = pair
        for off, n in [(0, 100), (500, 600), (512 * 3, 512), (512 * 15, 512)]:
            assert cached.read(off, n) == bytes(backing._buf[off : off + n])

    def test_repeat_read_is_a_hit(self, pair):
        backing, cached = pair
        cached.read(0, 512)
        misses0 = cached.cache_stats.misses
        cached.read(0, 512)
        assert cached.cache_stats.misses == misses0
        assert cached.cache_stats.hits >= 1

    def test_backing_traffic_reduced(self, pair):
        backing, cached = pair
        for _ in range(5):
            cached.read(0, 1024)
        assert cached.stats.read_ops == 5
        assert backing.stats.read_ops == 2  # two blocks fetched once each

    def test_eviction_at_capacity(self, pair):
        backing, cached = pair
        for b in range(6):  # capacity is 4
            cached.read(b * 512, 512)
        assert cached.cache_stats.evictions == 2
        # Block 0 was evicted: reading it again misses.
        misses0 = cached.cache_stats.misses
        cached.read(0, 512)
        assert cached.cache_stats.misses == misses0 + 1

    def test_lru_order(self, pair):
        backing, cached = pair
        for b in range(4):
            cached.read(b * 512, 512)
        cached.read(0, 512)  # touch block 0 -> most recent
        cached.read(4 * 512, 512)  # evicts block 1, not 0
        misses0 = cached.cache_stats.misses
        cached.read(0, 512)
        assert cached.cache_stats.misses == misses0  # still cached

    def test_write_invalidates(self, pair):
        backing, cached = pair
        cached.read(0, 512)
        cached.write(10, b"\xff" * 8)
        assert cached.cache_stats.invalidations == 1
        assert cached.read(10, 8) == b"\xff" * 8

    def test_bounds_checked(self, pair):
        _, cached = pair
        with pytest.raises(ValueError):
            cached.read(512 * 16 - 4, 8)

    def test_bad_capacity(self, pair):
        backing, _ = pair
        with pytest.raises(ValueError):
            CachedDevice(backing, capacity_blocks=0)

    def test_hit_rate_and_clear(self, pair):
        _, cached = pair
        cached.read(0, 512)
        cached.read(0, 512)
        assert cached.cache_stats.hit_rate == pytest.approx(0.5)
        cached.clear_cache()
        cached.read(0, 512)
        assert cached.cache_stats.misses == 2


class TestWithQueries:
    def test_repeated_isovalue_hits_cache(self):
        backing = SimulatedBlockDevice(IOCostModel(block_size=1024))
        cached = CachedDevice(backing, capacity_blocks=512)
        ds = build_indexed_dataset(sphere_field((25, 25, 25)), (5, 5, 5), device=cached)
        backing.reset_stats()

        r1 = execute_query(ds, 0.7)
        disk_first = backing.stats.blocks_read
        r2 = execute_query(ds, 0.7)
        disk_second = backing.stats.blocks_read - disk_first
        assert np.array_equal(r1.records.ids, r2.records.ids)
        assert disk_second == 0  # fully cached replay
        assert r2.io_stats.blocks_read == r1.io_stats.blocks_read  # logical equal

    def test_nearby_isovalues_share_blocks(self):
        backing = SimulatedBlockDevice(IOCostModel(block_size=1024))
        cached = CachedDevice(backing, capacity_blocks=512)
        ds = build_indexed_dataset(sphere_field((25, 25, 25)), (5, 5, 5), device=cached)
        backing.reset_stats()
        execute_query(ds, 0.70)
        first = backing.stats.blocks_read
        execute_query(ds, 0.72)
        second = backing.stats.blocks_read - first
        assert second < first  # most of the working set was shared


class TestCacheMetricsExport:
    """Satellite: CacheStats surfaced through MetricsRegistry as
    ``cache.*`` gauges (the ``repro metrics`` view)."""

    def test_absorb_cache_stats_publishes_gauges(self):
        from repro.io.cache import CacheStats
        from repro.obs.metrics import MetricsRegistry

        m = MetricsRegistry()
        m.absorb_cache_stats(CacheStats(hits=8, misses=4, evictions=2,
                                        invalidations=1))
        assert m.value("cache.hits") == 8
        assert m.value("cache.misses") == 4
        assert m.value("cache.evictions") == 2
        assert m.value("cache.invalidations") == 1
        assert m.value("cache.hit_rate") == pytest.approx(8 / 12)
        # Gauges carry cumulative snapshots: re-absorbing the same stats
        # must not double-count.
        m.absorb_cache_stats(CacheStats(hits=8, misses=4, evictions=2,
                                        invalidations=1))
        assert m.value("cache.hits") == 8

    def test_cluster_cache_stats_aggregates_and_publishes(self):
        from repro.io.cache import CacheOptions
        from repro.obs.metrics import MetricsRegistry
        from repro.parallel.cluster import ExtractRequest, SimulatedCluster
        from repro.parallel.perfmodel import PAPER_CLUSTER

        block_size = PAPER_CLUSTER.disk.block_size
        cluster = SimulatedCluster(
            sphere_field((25, 25, 25)), 4, metacell_shape=(5, 5, 5),
            cache=CacheOptions(block_cache_bytes=64 * block_size),
        )
        m = MetricsRegistry()
        cluster.extract(0.8, ExtractRequest(metrics=m))
        cluster.extract(0.8, ExtractRequest(metrics=m))
        stats = cluster.cache_stats()
        assert stats is not None
        assert stats.hits > 0  # the replay hit the per-node caches
        assert m.value("cache.hits") == stats.hits
        assert m.value("cache.misses") == stats.misses

    def test_cluster_without_cache_reports_none(self):
        from repro.parallel.cluster import SimulatedCluster

        cluster = SimulatedCluster(
            sphere_field((25, 25, 25)), 2, metacell_shape=(5, 5, 5)
        )
        assert cluster.cache_stats() is None


class TestCacheOptions:
    """The unified cache-configuration value (API redesign satellite)."""

    def test_defaults_disable_everything(self):
        from repro.io.cache import DEFAULT_CACHE_OPTIONS

        assert DEFAULT_CACHE_OPTIONS.block_cache_bytes == 0
        assert DEFAULT_CACHE_OPTIONS.result_cache_bytes == 0
        assert DEFAULT_CACHE_OPTIONS.lambda_bucket == 0.0
        assert DEFAULT_CACHE_OPTIONS.coalesce

    def test_validation(self):
        from repro.io.cache import CacheOptions

        with pytest.raises(ValueError):
            CacheOptions(block_cache_bytes=-1)
        with pytest.raises(ValueError):
            CacheOptions(result_cache_bytes=-1)
        with pytest.raises(ValueError):
            CacheOptions(lambda_bucket=-0.5)

    def test_block_conversion_and_buckets(self):
        from repro.io.cache import CacheOptions

        co = CacheOptions(block_cache_bytes=10_000, lambda_bucket=0.1)
        assert co.block_cache_blocks(1024) == 9
        with pytest.raises(ValueError):
            co.block_cache_blocks(0)
        assert co.bucket_of(0.42) == co.bucket_of(0.49)
        assert co.bucket_of(0.42) != co.bucket_of(0.51)
        # Zero width: the bucket is the isovalue itself (exact matching).
        exact = CacheOptions()
        assert exact.bucket_of(0.42) == 0.42

    def test_cache_blocks_ctor_shim_warns_once(self):
        from repro.core.query import reset_legacy_warnings
        from repro.io.cache import CacheOptions
        from repro.parallel.cluster import SimulatedCluster

        vol = sphere_field((20, 20, 20))
        reset_legacy_warnings()
        with pytest.warns(DeprecationWarning, match="cache_blocks"):
            cluster = SimulatedCluster(
                vol, 2, metacell_shape=(5, 5, 5), cache_blocks=8
            )
        assert isinstance(cluster.datasets[0].device, CachedDevice)
        # Both spellings together are a hard error, not a silent merge.
        with pytest.raises(TypeError):
            SimulatedCluster(
                vol, 2, metacell_shape=(5, 5, 5), cache_blocks=8,
                cache=CacheOptions(),
            )
        reset_legacy_warnings()
