"""Unit tests for the fault-injection layer (repro.io.faults) and the
CRC32 checksum tables (repro.io.layout.BrickChecksums)."""

import numpy as np
import pytest

from repro.io.blockdevice import IOStats, SimulatedBlockDevice
from repro.io.faults import (
    DEFAULT_RETRY_POLICY,
    DeviceFailedError,
    FaultInjectingDevice,
    FaultPlan,
    RetryExhaustedError,
    RetryPolicy,
    TransientReadError,
    read_with_retry,
)
from repro.io.layout import BrickChecksums, compute_record_crcs


def _loaded_device(payload: bytes = b"x" * 4096):
    dev = SimulatedBlockDevice()
    off = dev.allocate(len(payload))
    dev.write(off, payload)
    return dev, off, len(payload)


class TestFaultPlan:
    def test_rejects_bad_probabilities(self):
        for kwargs in (
            {"transient_error_rate": 1.5},
            {"corruption_rate": -0.1},
            {"latency_spike_rate": 2.0},
            {"transient_burst": 0},
            {"latency_spike_seconds": -1.0},
        ):
            with pytest.raises(ValueError):
                FaultPlan(**kwargs)

    def test_from_spec_full(self):
        plan = FaultPlan.from_spec(
            "transient=0.05,corrupt=0.01,latency=0.02:0.3,seed=7,burst=2"
        )
        assert plan.transient_error_rate == 0.05
        assert plan.corruption_rate == 0.01
        assert plan.latency_spike_rate == 0.02
        assert plan.latency_spike_seconds == 0.3
        assert plan.seed == 7
        assert plan.transient_burst == 2

    def test_from_spec_fail_variants(self):
        assert FaultPlan.from_spec("fail").fail_all
        assert FaultPlan.from_spec("fail=5").fail_after_reads == 5

    def test_from_spec_unknown_key(self):
        with pytest.raises(ValueError, match="unknown fault spec key"):
            FaultPlan.from_spec("bogus=1")


class TestFaultInjectingDevice:
    def test_passthrough_without_faults(self):
        dev, off, n = _loaded_device()
        wrapped = FaultInjectingDevice(dev, FaultPlan())
        assert wrapped.read(off, n) == dev.read(off, n)
        # Accounting stays on the backing meter.
        assert wrapped.stats is dev.stats

    def test_deterministic_fault_sequence(self):
        """Equal plans on equal read sequences fault identically."""

        def run():
            dev, off, n = _loaded_device()
            wrapped = FaultInjectingDevice(
                dev, FaultPlan(seed=42, transient_error_rate=0.3)
            )
            outcomes = []
            for _ in range(30):
                try:
                    wrapped.read(off, 512)
                    outcomes.append("ok")
                except TransientReadError:
                    outcomes.append("fault")
            return outcomes

        assert run() == run()
        assert "fault" in run() and "ok" in run()

    def test_burst_length(self):
        dev, off, n = _loaded_device()
        wrapped = FaultInjectingDevice(
            dev, FaultPlan(transient_error_rate=1.0, transient_burst=3)
        )
        for _ in range(3):
            with pytest.raises(TransientReadError):
                wrapped.read(off, 64)
        # Burst drained; next roll triggers a fresh fault (rate 1.0),
        # so verify via a rate-0 plan instead: swap plans mid-flight.
        wrapped.plan = FaultPlan()
        wrapped._pending_burst = 0
        assert wrapped.read(off, 64) == dev.read(off, 64)

    def test_latency_spike_charges_fault_delay(self):
        dev, off, n = _loaded_device()
        wrapped = FaultInjectingDevice(
            dev,
            FaultPlan(latency_spike_rate=1.0, latency_spike_seconds=0.25),
        )
        wrapped.read(off, 64)
        assert wrapped.stats.fault_delay == pytest.approx(0.25)
        assert wrapped.fault_stats.latency_spikes == 1
        # fault_delay flows into modeled read time.
        base = IOStats(
            read_ops=1, blocks_read=1, seeks=1, bytes_read=64
        ).read_time(dev.cost_model)
        assert wrapped.stats.read_time(dev.cost_model) == pytest.approx(
            base + 0.25
        )

    def test_corrupt_extent_persists_across_rereads(self):
        dev, off, n = _loaded_device(b"\x00" * 256)
        wrapped = FaultInjectingDevice(
            dev, FaultPlan(corrupt_extents=((off + 10, 4),))
        )
        first = wrapped.read(off, 256)
        second = wrapped.read(off, 256)
        assert first == second  # persistent damage: re-reads don't help
        assert first[10:14] == b"\xff" * 4
        assert first[:10] == b"\x00" * 10 and first[14:] == b"\x00" * 242

    def test_corrupt_extent_outside_read_untouched(self):
        dev, off, n = _loaded_device(b"\x00" * 256)
        wrapped = FaultInjectingDevice(
            dev, FaultPlan(corrupt_extents=((off + 200, 4),))
        )
        assert wrapped.read(off, 100) == b"\x00" * 100

    def test_fail_after_reads(self):
        dev, off, n = _loaded_device()
        wrapped = FaultInjectingDevice(dev, FaultPlan(fail_after_reads=2))
        wrapped.read(off, 64)
        wrapped.read(off, 64)
        with pytest.raises(DeviceFailedError):
            wrapped.read(off, 64)
        assert wrapped.failed

    def test_fail_and_heal(self):
        dev, off, n = _loaded_device()
        wrapped = FaultInjectingDevice(dev, FaultPlan(fail_all=True))
        with pytest.raises(DeviceFailedError):
            wrapped.read(off, 64)
        wrapped.heal()
        assert wrapped.read(off, 64) == dev.read(off, 64)
        wrapped.fail()
        with pytest.raises(DeviceFailedError):
            wrapped.read(off, 64)

    def test_writes_pass_through(self):
        dev = SimulatedBlockDevice()
        wrapped = FaultInjectingDevice(dev, FaultPlan(transient_error_rate=1.0))
        off = wrapped.allocate(8)
        wrapped.write(off, b"12345678")
        assert dev.read(off, 8) == b"12345678"


class TestRetryPolicy:
    def test_validation(self):
        for kwargs in (
            {"max_retries": -1},
            {"backoff": -1.0},
            {"backoff_multiplier": 0.5},
            {"max_read_repairs": -1},
        ):
            with pytest.raises(ValueError):
                RetryPolicy(**kwargs)

    def test_backoff_schedule(self):
        pol = RetryPolicy(backoff=1e-3, backoff_multiplier=2.0)
        assert [pol.backoff_for(a) for a in range(3)] == [1e-3, 2e-3, 4e-3]

    def test_read_with_retry_recovers_short_burst(self):
        dev, off, n = _loaded_device()
        wrapped = FaultInjectingDevice(
            dev, FaultPlan(transient_error_rate=1.0, transient_burst=2)
        )
        # First roll faults with burst 2: attempts 1-2 fail, attempt 3
        # rolls again... rate 1.0 would fault forever, so bound the test
        # with a burst-limited plan by healing the rate after the roll.
        data = None
        with pytest.raises(RetryExhaustedError):
            read_with_retry(wrapped, off, 64, RetryPolicy(max_retries=1))
        wrapped.plan = FaultPlan()  # healthy again
        wrapped._pending_burst = 0
        data = read_with_retry(wrapped, off, 64, DEFAULT_RETRY_POLICY)
        assert data == dev.read(off, 64)

    def test_retry_accounting(self):
        dev, off, n = _loaded_device()
        wrapped = FaultInjectingDevice(
            dev, FaultPlan(transient_error_rate=1.0, transient_burst=100)
        )
        pol = RetryPolicy(max_retries=3, backoff=1e-3, backoff_multiplier=2.0)
        with pytest.raises(RetryExhaustedError):
            read_with_retry(wrapped, off, 64, pol)
        assert wrapped.stats.retries == 3
        assert wrapped.stats.fault_delay == pytest.approx(1e-3 + 2e-3 + 4e-3)

    def test_device_failure_propagates_immediately(self):
        dev, off, n = _loaded_device()
        wrapped = FaultInjectingDevice(dev, FaultPlan(fail_all=True))
        with pytest.raises(DeviceFailedError):
            read_with_retry(wrapped, off, 64)
        assert wrapped.stats.retries == 0


class TestBrickChecksums:
    def test_roundtrip_clean(self):
        rng = np.random.default_rng(5)
        blob = rng.integers(0, 256, size=40 * 16, dtype=np.uint8).tobytes()
        crcs = compute_record_crcs(blob, 16)
        checks = BrickChecksums.from_record_crcs(
            crcs, np.array([0, 10, 25]), np.array([10, 15, 15])
        )
        assert checks.n_records == 40
        assert len(checks.find_corrupt(0, blob, 16)) == 0
        for b, (s, c) in enumerate([(0, 10), (10, 15), (25, 15)]):
            assert checks.verify_brick(b, s, c)

    def test_single_bit_flip_detected(self):
        blob = bytes(range(256)) * 4  # 64 records of 16 bytes
        crcs = compute_record_crcs(blob, 16)
        checks = BrickChecksums.from_record_crcs(
            crcs, np.array([0]), np.array([64])
        )
        damaged = bytearray(blob)
        damaged[37 * 16 + 3] ^= 0x01
        bad = checks.find_corrupt(0, bytes(damaged), 16)
        assert list(bad) == [37]

    def test_find_corrupt_respects_start_position(self):
        blob = bytes(range(256)) * 4
        crcs = compute_record_crcs(blob, 16)
        checks = BrickChecksums.from_record_crcs(
            crcs, np.array([0]), np.array([64])
        )
        # Verify records 32.. against the right CRC slice.
        tail = blob[32 * 16 :]
        assert len(checks.find_corrupt(32, tail, 16)) == 0
        damaged = bytearray(tail)
        damaged[0] ^= 0xFF
        assert list(checks.find_corrupt(32, bytes(damaged), 16)) == [0]


class TestIOStatsFaultFields:
    def test_add_sub_cover_new_counters(self):
        a = IOStats(retries=2, checksum_failures=1, fault_delay=0.5)
        b = IOStats(retries=1, checksum_failures=1, fault_delay=0.25)
        s = a + b
        assert (s.retries, s.checksum_failures, s.fault_delay) == (3, 2, 0.75)
        d = s - b
        assert (d.retries, d.checksum_failures, d.fault_delay) == (2, 1, 0.5)

    def test_reset_clears_fault_delay(self):
        st = IOStats(retries=2, fault_delay=1.0)
        st.reset()
        assert st.retries == 0 and st.fault_delay == 0.0
