"""Tests for the benchmark harness helpers."""

import numpy as np
import pytest

from repro.bench.figures import (
    ascii_chart,
    draw_box,
    heatmap_to_rgb,
    upscale_nearest,
    write_csv,
)
from repro.bench.harness import BenchConfig, scaled_perf_model
from repro.bench.tables import format_kv, format_table, human_bytes
from repro.core.builder import build_indexed_dataset
from repro.grid.rm_instability import rm_timestep
from repro.parallel.perfmodel import PAPER_CLUSTER


class TestTables:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 22], [333, 4]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        widths = {len(l) for l in lines[1:]}
        assert len(widths) == 1  # all box lines equal width

    def test_format_table_floats(self):
        out = format_table(["x"], [[1.23456]])
        assert "1.235" in out

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_format_kv(self):
        out = format_kv("Title", [("key", 1), ("longer key", 2.5)])
        assert "Title" in out and "longer key" in out

    @pytest.mark.parametrize(
        "n,expect",
        [(10, "10 B"), (1536, "1.5 KiB"), (3 * 2**20, "3.0 MiB"), (2**40, "1.0 TiB")],
    )
    def test_human_bytes(self, n, expect):
        assert human_bytes(n) == expect


class TestFigures:
    def test_ascii_chart_contains_markers(self):
        out = ascii_chart({"s1": ([0, 1, 2], [1, 2, 3]), "s2": ([0, 1, 2], [3, 2, 1])})
        assert "o = s1" in out and "x = s2" in out

    def test_ascii_chart_empty(self):
        assert "empty" in ascii_chart({"s": ([], [])})

    def test_write_csv(self, tmp_path):
        path = write_csv(tmp_path / "d" / "x.csv", ["a", "b"], [[1, 2], [3, 4]])
        text = path.read_text()
        assert text.splitlines()[0] == "a,b"
        assert "3,4" in text

    def test_heatmap_shape_and_orientation(self):
        hist = np.zeros((4, 4))
        hist[3, 0] = 100  # vmin bin 3, vmax bin 0 -> bottom-right pixel
        img = heatmap_to_rgb(hist)
        assert img.shape == (4, 4, 3)
        bright = np.unravel_index(img.sum(axis=2).argmax(), (4, 4))
        assert bright == (3, 3)  # last row (vmax low), last col (vmin high)

    def test_draw_box_clips(self):
        img = np.zeros((8, 8, 3), dtype=np.uint8)
        draw_box(img, -5, 100, -5, 100, color=(9, 9, 9))
        assert img[0, 0, 0] == 9 and img[7, 7, 0] == 9

    def test_upscale(self):
        img = np.arange(12, dtype=np.uint8).reshape(2, 2, 3)
        big = upscale_nearest(img, 3)
        assert big.shape == (6, 6, 3)
        assert np.all(big[:3, :3] == img[0, 0])
        with pytest.raises(ValueError):
            upscale_nearest(img, 0)


class TestHarness:
    def test_config_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "2")
        cfg = BenchConfig.from_env()
        assert cfg.scale == 2
        assert cfg.rm_shape == (193, 193, 177)
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0")
        with pytest.raises(ValueError):
            BenchConfig.from_env()

    def test_rm_shape_tiles_metacells(self):
        cfg = BenchConfig()
        for dim in cfg.rm_shape:
            assert (dim - 1) % 8 == 0

    def test_scaled_perf_model_shrinks_granularity(self):
        ds = build_indexed_dataset(rm_timestep(150, shape=(33, 33, 29)), (5, 5, 5))
        perf = scaled_perf_model(ds)
        assert perf.disk.seek_latency < PAPER_CLUSTER.disk.seek_latency
        assert perf.disk.block_size <= PAPER_CLUSTER.disk.block_size
        assert perf.disk.bandwidth == PAPER_CLUSTER.disk.bandwidth
        assert perf.cpu == PAPER_CLUSTER.cpu  # compute rates untouched

    def test_scaled_perf_model_empty_dataset(self):
        from repro.grid.volume import Volume

        ds = build_indexed_dataset(
            Volume(np.full((9, 9, 9), 3, dtype=np.uint8)), (5, 5, 5)
        )
        assert scaled_perf_model(ds) is PAPER_CLUSTER


class TestAsciiTree:
    def test_tree_rendering(self, sphere_intervals):
        from repro.core.compact_tree import CompactIntervalTree
        from repro.core.span_space import ascii_tree

        tree = CompactIntervalTree.build(sphere_intervals)
        out = ascii_tree(tree)
        assert out.startswith("root split=")
        assert "@0" in out  # first brick pointer
        assert out.count("\n") + 1 >= tree.n_nodes

    def test_empty_tree(self):
        from repro.core.compact_tree import CompactIntervalTree
        from repro.core.intervals import IntervalSet
        from repro.core.span_space import ascii_tree

        tree = CompactIntervalTree.build(
            IntervalSet(vmin=np.empty(0), vmax=np.empty(0), ids=np.empty(0, np.uint32))
        )
        assert "empty" in ascii_tree(tree)

    def test_depth_truncation(self, sphere_intervals):
        from repro.core.compact_tree import CompactIntervalTree
        from repro.core.span_space import ascii_tree

        tree = CompactIntervalTree.build(sphere_intervals)
        shallow = ascii_tree(tree, max_depth=0)
        assert "..." in shallow or tree.height() == 0


class TestBenchSchemaChecker:
    """The CI checker's value gate: NaN / negative metrics are rejected."""

    def _checker(self):
        import importlib.util
        from pathlib import Path

        path = Path(__file__).resolve().parents[1] / "tools" / "check_bench_schema.py"
        spec = importlib.util.spec_from_file_location("check_bench_schema", path)
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        return mod

    def _payload(self, **metrics):
        return {"schema": "repro-bench/1", "name": "t", "scale": 1,
                "metrics": metrics or {"x": 1.0}}

    def test_accepts_clean_metrics(self):
        self._checker().check_metric_values(self._payload(a=0.0, b=3, c=1.5))

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="negative"):
            self._checker().check_metric_values(self._payload(bad=-0.1))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            self._checker().check_metric_values(self._payload(bad=float("nan")))

    def test_main_fails_on_bad_file(self, tmp_path):
        import json

        mod = self._checker()
        good = tmp_path / "BENCH_good.json"
        good.write_text(json.dumps(self._payload()))
        assert mod.main([str(good)]) == 0
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text(json.dumps(self._payload(x=-1.0)))
        assert mod.main([str(bad)]) == 1
