"""Unit tests for the external-memory cost model."""

import pytest

from repro.io.cost_model import IOCostModel, PAPER_DISK


class TestBlocksForExtent:
    def test_zero_length(self):
        m = IOCostModel(block_size=100)
        assert m.blocks_for_extent(0, 0) == 0
        assert m.blocks_for_extent(50, 0) == 0

    def test_within_one_block(self):
        m = IOCostModel(block_size=100)
        assert m.blocks_for_extent(0, 1) == 1
        assert m.blocks_for_extent(10, 80) == 1
        assert m.blocks_for_extent(0, 100) == 1

    def test_spanning_boundary(self):
        m = IOCostModel(block_size=100)
        assert m.blocks_for_extent(99, 2) == 2
        assert m.blocks_for_extent(0, 101) == 2
        assert m.blocks_for_extent(50, 100) == 2

    def test_aligned_multi_block(self):
        m = IOCostModel(block_size=100)
        assert m.blocks_for_extent(100, 300) == 3

    def test_unaligned_multi_block(self):
        m = IOCostModel(block_size=100)
        # [150, 450): blocks 1, 2, 3, 4
        assert m.blocks_for_extent(150, 300) == 4


class TestTime:
    def test_time_for_blocks(self):
        m = IOCostModel(block_size=1000, bandwidth=1e6, seek_latency=0.01)
        # 10 blocks = 10_000 bytes at 1 MB/s = 10 ms, plus 1 seek = 10 ms.
        assert m.time_for(10, 1) == pytest.approx(0.02)

    def test_scan_time_rounds_up(self):
        m = IOCostModel(block_size=1000, bandwidth=1e6, seek_latency=0.0)
        assert m.scan_time(1) == pytest.approx(0.001)
        assert m.scan_time(1001) == pytest.approx(0.002)

    def test_scan_time_empty(self):
        assert IOCostModel().scan_time(0) == 0.0


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"block_size": 0},
        {"block_size": -1},
        {"bandwidth": 0},
        {"bandwidth": -5.0},
        {"seek_latency": -0.1},
    ])
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            IOCostModel(**kwargs)

    def test_paper_disk_calibration(self):
        # Section 6: 50 MB/s local disks.
        assert PAPER_DISK.bandwidth == pytest.approx(50e6)
        assert PAPER_DISK.block_size == 8192

    def test_paper_disk_full_scan_figure(self):
        # Reading the preprocessed 3.828 GB time-step-250 store at 50 MB/s
        # should take ~77 s; the model must reproduce that order.
        t = PAPER_DISK.scan_time(int(3.828 * 2**30))
        assert 70 < t < 90
