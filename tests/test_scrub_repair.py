"""Background scrubber + self-healing repair tests.

Detection: the paced scrubber must flag any pre-existing corruption
within **one full sweep** of the brick table, with ``scrub.*`` metrics
and modeled-clock pacing.  Repair: CRC-failing records are rebuilt
bit-identically from the source volume or from a chained-declustering
replica, verified before and after the write-back — and a repair can
never make the store worse.
"""

import numpy as np
import pytest

from repro.core.builder import build_indexed_dataset, build_striped_datasets
from repro.core.persistence import build_persistent_dataset, load_dataset
from repro.core.repair import (
    find_corrupt_records,
    repair_dataset,
)
from repro.core.validation import verify_dataset
from repro.grid.datasets import sphere_field
from repro.io.scrub import ScrubConfig, Scrubber
from repro.obs.metrics import MetricsRegistry


@pytest.fixture(scope="module")
def volume():
    return sphere_field((33, 33, 33))


@pytest.fixture()
def persistent(volume, tmp_path):
    d = tmp_path / "ds"
    ds = build_persistent_dataset(volume, d, metacell_shape=(5, 5, 5))
    yield ds, d
    ds.device.close()


def corrupt_record(ds, position, flip=3):
    """Flip ``flip`` bytes of the record at layout ``position``."""
    rec = ds.codec.record_size
    off = ds.record_offset(position)
    blob = bytearray(ds.device.read(off, rec))
    for i in range(flip):
        blob[7 * i] ^= 0xFF
    ds.device.write(off, bytes(blob))


class TestScrubber:
    def test_requires_checksums(self, volume):
        ds = build_indexed_dataset(volume, (5, 5, 5), checksum=False)
        with pytest.raises(ValueError, match="checksum"):
            Scrubber(ds)

    def test_clean_sweep(self, persistent):
        ds, _ = persistent
        scrubber = Scrubber(ds, ScrubConfig(bricks_per_tick=4))
        report = scrubber.sweep()
        assert report.clean
        assert report.sweeps_completed == 1
        assert report.n_bricks_scanned == ds.tree.n_bricks
        assert report.n_records_scanned == ds.n_records
        assert report.modeled_seconds > 0.0

    def test_detects_all_corruption_within_one_sweep(self, persistent):
        ds, _ = persistent
        positions = [1, ds.n_records // 2, ds.n_records - 1]
        for p in positions:
            corrupt_record(ds, p)
        metrics = MetricsRegistry()
        scrubber = Scrubber(
            ds, ScrubConfig(bricks_per_tick=3), metrics=metrics
        )
        report = scrubber.sweep()
        assert not report.clean
        assert sorted(report.corrupt_records) == sorted(positions)
        snap = metrics.to_dict()
        assert snap["scrub.corrupt_records"] == len(positions)
        assert scrubber.corrupt_bricks  # sticky across the scrubber
        assert report.sweeps_completed == 1

    def test_pacing_tick_count_and_idle(self, persistent):
        ds, _ = persistent
        nb = ds.tree.n_bricks
        scrubber = Scrubber(ds, ScrubConfig(bricks_per_tick=5, idle_seconds=0.5))
        report = scrubber.sweep()
        expected_ticks = -(-nb // 5)  # ceil
        assert report.n_ticks == expected_ticks
        assert report.modeled_seconds >= 0.5 * expected_ticks

    def test_metrics_exported(self, persistent):
        ds, _ = persistent
        corrupt_record(ds, 0)
        metrics = MetricsRegistry()
        Scrubber(ds, ScrubConfig(bricks_per_tick=8), metrics=metrics).sweep()
        names = set(metrics.to_dict())
        for key in ("scrub.ticks", "scrub.bricks_scanned",
                    "scrub.corrupt_bricks", "scrub.corrupt_records",
                    "scrub.sweeps_completed"):
            assert key in names, key

    def test_cursor_resumes_across_ticks(self, persistent):
        ds, _ = persistent
        scrubber = Scrubber(ds, ScrubConfig(bricks_per_tick=2))
        scrubber.tick()
        assert scrubber.position == 2
        scrubber.tick()
        assert scrubber.position == 4


class TestRepairFromSource:
    def test_find_corrupt_records(self, persistent):
        ds, _ = persistent
        assert find_corrupt_records(ds) == []
        corrupt_record(ds, 5)
        corrupt_record(ds, 17)
        assert find_corrupt_records(ds) == [5, 17]

    def test_repair_bit_identical(self, volume, persistent):
        ds, d = persistent
        rec = ds.codec.record_size
        positions = [2, 9, ds.n_records - 1]
        originals = {
            p: ds.device.read(ds.record_offset(p), rec) for p in positions
        }
        for p in positions:
            corrupt_record(ds, p)
        report = repair_dataset(ds, source_volume=volume)
        assert report.ok
        assert sorted(report.repaired_from_source) == sorted(positions)
        assert not report.repaired_from_replica
        for p in positions:
            assert ds.device.read(ds.record_offset(p), rec) == originals[p]
        assert verify_dataset(ds, deep=True).ok

    def test_repair_persists_to_disk(self, volume, persistent):
        ds, d = persistent
        corrupt_record(ds, 4)
        repair_dataset(ds, source_volume=volume)
        # A second, independent reader of the same store sees the heal
        # (repair_dataset flushed the device).
        reloaded = load_dataset(d)
        try:
            assert verify_dataset(reloaded, deep=True).ok
        finally:
            reloaded.device.close()

    def test_explicit_positions(self, volume, persistent):
        ds, _ = persistent
        corrupt_record(ds, 3)
        report = repair_dataset(ds, source_volume=volume, positions=[3])
        assert report.corrupt == [3]
        assert report.ok


class TestRepairFromReplica:
    def test_replica_restores_bit_identically(self, volume):
        nodes = build_striped_datasets(
            volume, p=2, metacell_shape=(5, 5, 5), replication=2
        )
        d0, d1 = nodes
        rec = d0.codec.record_size
        original = d0.device.read(d0.record_offset(3), rec)
        corrupt_record(d0, 3)
        report = repair_dataset(d0, replica_hosts=[d1])
        assert report.ok
        assert report.repaired_from_replica == [(3, 1)]
        assert d0.device.read(d0.record_offset(3), rec) == original
        assert verify_dataset(d0, deep=True).ok

    def test_source_preferred_over_replica(self, volume):
        nodes = build_striped_datasets(
            volume, p=2, metacell_shape=(5, 5, 5), replication=2
        )
        d0, d1 = nodes
        corrupt_record(d0, 2)
        report = repair_dataset(d0, source_volume=volume, replica_hosts=[d1])
        assert report.ok
        assert report.repaired_from_source == [2]
        assert not report.repaired_from_replica

    def test_unreplicated_peer_ignored(self, volume):
        nodes = build_striped_datasets(
            volume, p=2, metacell_shape=(5, 5, 5), replication=1
        )
        d0, d1 = nodes
        corrupt_record(d0, 1)
        report = repair_dataset(d0, replica_hosts=[d1])
        assert not report.ok
        assert report.unrepaired == [1]


class TestRepairNeverMakesWorse:
    def test_unrepairable_without_any_source(self, persistent):
        ds, _ = persistent
        rec = ds.codec.record_size
        corrupt_record(ds, 6)
        after_corruption = ds.device.read(ds.record_offset(6), rec)
        report = repair_dataset(ds)
        assert report.unrepaired == [6]
        # No write happened: the (corrupt) bytes are untouched.
        assert ds.device.read(ds.record_offset(6), rec) == after_corruption

    def test_corrupt_replica_rejected(self, volume):
        """Both copies corrupt: the bad replica bytes must NOT be
        written back (they fail CRC pre-verification)."""
        nodes = build_striped_datasets(
            volume, p=2, metacell_shape=(5, 5, 5), replication=2
        )
        d0, d1 = nodes
        rec = d0.codec.record_size
        corrupt_record(d0, 3)
        # Corrupt the replica copy of the same record on node 1.
        base = d1.replica_stores[0]
        blob = bytearray(d1.device.read(base + 3 * rec, rec))
        blob[0] ^= 0xFF
        d1.device.write(base + 3 * rec, bytes(blob))
        before = d0.device.read(d0.record_offset(3), rec)
        report = repair_dataset(d0, replica_hosts=[d1])
        assert report.unrepaired == [3]
        assert d0.device.read(d0.record_offset(3), rec) == before


class TestScrubThenRepair:
    def test_scrub_feeds_repair(self, volume, persistent):
        """End-to-end: scrubber finds it, repair heals it, re-scrub is
        clean."""
        ds, _ = persistent
        corrupt_record(ds, 11)
        corrupt_record(ds, 23)
        report = Scrubber(ds, ScrubConfig(bricks_per_tick=6)).sweep()
        assert sorted(report.corrupt_records) == [11, 23]
        heal = repair_dataset(
            ds, source_volume=volume, positions=report.corrupt_records
        )
        assert heal.ok
        assert Scrubber(ds, ScrubConfig(bricks_per_tick=6)).sweep().clean
