"""Symmetry-equivariance property tests for the derived MC tables.

The table construction is purely geometric (face segments from corner
signs), so it must commute with the cube's rotation group: rotating a
sign configuration rotates the patch — same triangle count, and the
crossing-edge set maps through the rotation's edge permutation.  A
hand-transcribed table has no reason to satisfy this exhaustively; a
derived one must.
"""

import numpy as np
import pytest

from repro.mc import tables as T


def rotation_matrices():
    """The 24 proper rotations of the cube as integer matrices."""
    mats = []
    for perm in ([0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]):
        for sx in (1, -1):
            for sy in (1, -1):
                for sz in (1, -1):
                    m = np.zeros((3, 3), dtype=np.int64)
                    for row, (axis, sign) in enumerate(zip(perm, (sx, sy, sz))):
                        m[row, axis] = sign
                    if round(float(np.linalg.det(m))) == 1:
                        mats.append(m)
    uniq = {m.tobytes(): m for m in mats}
    return list(uniq.values())


ROTATIONS = rotation_matrices()


def vertex_permutation(m: np.ndarray) -> np.ndarray:
    """How rotation ``m`` permutes the 8 cube vertices."""
    center = np.array([0.5, 0.5, 0.5])
    rotated = (T.CORNERS - center) @ m.T + center
    perm = np.empty(8, dtype=np.int64)
    for v in range(8):
        match = np.flatnonzero(np.all(np.abs(T.CORNERS - rotated[v]) < 1e-9, axis=1))
        assert len(match) == 1
        perm[v] = match[0]
    return perm


def edge_permutation(vperm: np.ndarray) -> np.ndarray:
    """How a vertex permutation permutes the 12 cube edges."""
    pair_to_edge = {frozenset(p.tolist()): e for e, p in enumerate(T.EDGE_VERTICES)}
    eperm = np.empty(12, dtype=np.int64)
    for e, (a, b) in enumerate(T.EDGE_VERTICES):
        eperm[e] = pair_to_edge[frozenset((int(vperm[a]), int(vperm[b])))]
    return eperm


class TestRotationGroup:
    def test_24_rotations(self):
        assert len(ROTATIONS) == 24

    def test_permutations_are_bijections(self):
        for m in ROTATIONS:
            vp = vertex_permutation(m)
            assert sorted(vp.tolist()) == list(range(8))
            ep = edge_permutation(vp)
            assert sorted(ep.tolist()) == list(range(12))


class TestTableEquivariance:
    def _rotate_case(self, case: int, vperm: np.ndarray) -> int:
        out = 0
        for v in range(8):
            if (case >> v) & 1:
                out |= 1 << int(vperm[v])
        return out

    def test_triangle_counts_rotation_invariant(self):
        for m in ROTATIONS:
            vp = vertex_permutation(m)
            for case in range(256):
                rotated = self._rotate_case(case, vp)
                assert T.N_TRI[case] == T.N_TRI[rotated], (case, rotated)

    def test_edge_masks_map_through_rotation(self):
        for m in ROTATIONS:
            vp = vertex_permutation(m)
            ep = edge_permutation(vp)
            for case in range(256):
                rotated = self._rotate_case(case, vp)
                mask = int(T.EDGE_MASK[case])
                mapped = 0
                for e in range(12):
                    if mask & (1 << e):
                        mapped |= 1 << int(ep[e])
                assert mapped == int(T.EDGE_MASK[rotated]), (case, rotated)

    def test_patch_perimeters_rotation_invariant(self):
        """Geometric check: the patch *boundary* polylines are fully
        determined by the face rule, so their total length (with
        midpoint-interpolated crossings) must be rotation-invariant.
        (Patch *area* is not: fan triangulations of skew polygons depend
        on the fan origin, which `_pick_fan_origin` selects per cycle.)"""
        mids = T._EDGE_MIDPOINTS

        def perimeter(case):
            from collections import Counter

            cnt = Counter()
            for tri in T.TRI_TABLE[case]:
                for i in range(3):
                    cnt[(tri[i], tri[(i + 1) % 3])] += 1
            total = 0.0
            for (a, b), c in cnt.items():
                if cnt.get((b, a), 0) == 0:  # boundary edge
                    total += float(np.linalg.norm(mids[a] - mids[b]))
            return total

        perims = np.array([perimeter(c) for c in range(256)])
        for m in ROTATIONS[:8]:  # subset is plenty at this cost
            vp = vertex_permutation(m)
            for case in range(256):
                rotated = self._rotate_case(case, vp)
                assert perims[case] == pytest.approx(perims[rotated], abs=1e-12)
