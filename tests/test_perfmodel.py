"""Tests for the calibrated performance model."""

import pytest

from repro.io.blockdevice import IOStats
from repro.parallel.perfmodel import (
    PAPER_CLUSTER,
    CPUModel,
    GPUModel,
    InterconnectModel,
    PerformanceModel,
)


class TestCPUModel:
    def test_paper_triangle_rate_regime(self):
        """The calibration must reproduce the paper's 3.5-4.0 M
        triangles/s single-node end-to-end rate.

        Per active metacell (the paper's 9^3 layout): ~512 cells examined
        and ~115 triangles out; add the 734-byte read at 50 MB/s.
        """
        cpu = PAPER_CLUSTER.cpu
        n_mc = 1_000_000
        tris = 260 * n_mc
        tri_t = cpu.triangulation_time(512 * n_mc, tris)
        io_t = n_mc * 734 / PAPER_CLUSTER.disk.bandwidth
        render_t = PAPER_CLUSTER.gpu.render_time(tris)
        rate = tris / (tri_t + io_t + render_t)
        assert 2.5e6 < rate < 5.5e6

    def test_triangulation_dominates_io(self):
        """Paper Section 7.1: 'the triangle generation stage is the
        bottleneck for the whole isosurface extraction'."""
        cpu = PAPER_CLUSTER.cpu
        tri_t = cpu.triangulation_time(512, 260)
        io_t = 734 / PAPER_CLUSTER.disk.bandwidth
        assert tri_t > 2 * io_t

    def test_linear_in_cells(self):
        cpu = CPUModel(cell_rate=1e6, per_triangle=0.0)
        assert cpu.triangulation_time(2_000_000, 0) == pytest.approx(2.0)


class TestGPUModel:
    def test_render_time_components(self):
        gpu = GPUModel(triangle_rate=1e6, readback_bandwidth=1e6)
        assert gpu.render_time(1_000_000, 1_000_000) == pytest.approx(2.0)

    def test_rendering_fast_relative_to_triangulation(self):
        """'Once the triangles are generated, they are rendered on the GPU
        very quickly.'"""
        tris = 10_000_000
        render = PAPER_CLUSTER.gpu.render_time(tris)
        tri = PAPER_CLUSTER.cpu.triangulation_time(512 * tris // 115, tris)
        assert render < 0.2 * tri


class TestInterconnect:
    def test_transfer_time(self):
        net = InterconnectModel(bandwidth=1e9, latency=1e-5)
        assert net.transfer_time(1e9, n_messages=1) == pytest.approx(1.0 + 1e-5)

    def test_compositing_negligible_at_paper_scale(self):
        """Section 6: shuffling frame buffers over 10 Gb/s InfiniBand is
        not noticeable next to extraction.  8 nodes x 1280x1024 RGBA+Z."""
        fb_bytes = 1280 * 1024 * 16
        t = PAPER_CLUSTER.network.transfer_time(8 * fb_bytes, n_messages=8)
        # Extraction of 100M triangles takes tens of seconds.
        extraction = PAPER_CLUSTER.cpu.triangulation_time(512 * 870_000, 100_000_000)
        assert t < 0.01 * extraction


class TestComposition:
    def test_io_time_delegates_to_disk_model(self):
        stats = IOStats(blocks_read=100, seeks=3)
        assert PAPER_CLUSTER.io_time(stats) == pytest.approx(
            stats.read_time(PAPER_CLUSTER.disk)
        )

    def test_custom_model_construction(self):
        pm = PerformanceModel(cpu=CPUModel(cell_rate=1.0))
        assert pm.cpu.cell_rate == 1.0
        assert pm.disk.bandwidth == pytest.approx(50e6)
