"""The unified request/options API and its legacy-kwarg shims.

The contract under test (see docs/API.md):

* :class:`QueryOptions` / :class:`ExtractRequest` carry every knob the
  old kwarg-sprawl forms accepted, and calls through either form are
  result-identical;
* legacy keyword calls emit exactly one :class:`DeprecationWarning` per
  (function, kwarg set) per process, attributed to the caller;
* mixing both forms, unknown keywords, and invalid field values fail
  fast with typed errors.
"""

import dataclasses
import warnings

import numpy as np
import pytest

from repro.core.builder import build_indexed_dataset
from repro.core.query import (
    QueryOptions,
    execute_plan,
    execute_query,
    reset_legacy_warnings,
)
from repro.grid.datasets import sphere_field
from repro.parallel.cluster import ExtractRequest, SimulatedCluster

ISO = 0.7


@pytest.fixture(scope="module")
def volume():
    return sphere_field((24, 24, 24))


@pytest.fixture()
def dataset(volume):
    return build_indexed_dataset(volume, (5, 5, 5))


class TestQueryOptions:
    def test_defaults_are_valid(self):
        opts = QueryOptions()
        assert opts.read_ahead_blocks >= 1
        assert opts.retry_policy is None and opts.time_budget is None

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            QueryOptions().read_ahead_blocks = 2

    def test_invalid_read_ahead_rejected(self):
        with pytest.raises(ValueError):
            QueryOptions(read_ahead_blocks=0)

    def test_legacy_kwargs_equal_options(self, volume):
        reset_legacy_warnings()
        a_ds = build_indexed_dataset(volume, (5, 5, 5))
        b_ds = build_indexed_dataset(volume, (5, 5, 5))
        with pytest.warns(DeprecationWarning, match="read_ahead_blocks"):
            a = execute_query(a_ds, ISO, read_ahead_blocks=2)
        b = execute_query(b_ds, ISO, QueryOptions(read_ahead_blocks=2))
        assert np.array_equal(a.records.ids, b.records.ids)
        assert a.io_stats.blocks_read == b.io_stats.blocks_read
        assert a.io_stats.seeks == b.io_stats.seeks

    def test_warning_fires_once_per_kwarg_set(self, dataset):
        reset_legacy_warnings()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            execute_query(dataset, ISO, read_ahead_blocks=2)
            execute_query(dataset, ISO, read_ahead_blocks=4)
            execute_query(dataset, ISO, time_budget=None)  # different set
        dep = [w for w in caught if w.category is DeprecationWarning]
        assert len(dep) == 2
        assert "options=QueryOptions(...)" in str(dep[0].message)

    def test_reset_rearms_the_warning(self, dataset):
        reset_legacy_warnings()
        with pytest.warns(DeprecationWarning):
            execute_query(dataset, ISO, read_ahead_blocks=2)
        reset_legacy_warnings()
        with pytest.warns(DeprecationWarning):
            execute_query(dataset, ISO, read_ahead_blocks=2)

    def test_both_forms_rejected(self, dataset):
        with pytest.raises(TypeError, match="both"):
            execute_query(
                dataset, ISO, QueryOptions(read_ahead_blocks=2), time_budget=1.0
            )

    def test_unknown_kwarg_rejected(self, dataset):
        with pytest.raises(TypeError, match="no_such_knob"):
            execute_query(dataset, ISO, no_such_knob=1)

    def test_non_options_positional_rejected(self, dataset):
        with pytest.raises(TypeError, match="QueryOptions"):
            execute_query(dataset, ISO, {"read_ahead_blocks": 2})

    def test_execute_plan_shares_the_shim(self, volume, dataset):
        reset_legacy_warnings()
        plan = dataset.tree.plan_query(ISO)
        with pytest.warns(DeprecationWarning, match="execute_plan"):
            legacy = execute_plan(dataset, plan, read_ahead_blocks=2)
        ds2 = build_indexed_dataset(volume, (5, 5, 5))
        new = execute_plan(
            ds2, ds2.tree.plan_query(ISO), QueryOptions(read_ahead_blocks=2)
        )
        assert np.array_equal(legacy.records.ids, new.records.ids)


class TestExtractRequest:
    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            ExtractRequest().render = True

    def test_legacy_kwargs_equal_request(self, volume):
        reset_legacy_warnings()
        a_cluster = SimulatedCluster(volume, p=2, metacell_shape=(5, 5, 5))
        b_cluster = SimulatedCluster(volume, p=2, metacell_shape=(5, 5, 5))
        with pytest.warns(DeprecationWarning, match="SimulatedCluster.extract"):
            a = a_cluster.extract(ISO, render=True, keep_meshes=True)
        b = b_cluster.extract(ISO, ExtractRequest(render=True, keep_meshes=True))
        assert a.n_triangles == b.n_triangles
        assert np.array_equal(a.image.color, b.image.color)
        assert np.array_equal(a.image.depth, b.image.depth)

    def test_both_forms_rejected(self, volume):
        cluster = SimulatedCluster(volume, p=2, metacell_shape=(5, 5, 5))
        with pytest.raises(TypeError, match="both"):
            cluster.extract(ISO, ExtractRequest(render=True), keep_meshes=True)

    def test_unknown_kwarg_rejected(self, volume):
        cluster = SimulatedCluster(volume, p=2, metacell_shape=(5, 5, 5))
        with pytest.raises(TypeError, match="no_such_knob"):
            cluster.extract(ISO, no_such_knob=True)

    def test_non_request_positional_rejected(self, volume):
        cluster = SimulatedCluster(volume, p=2, metacell_shape=(5, 5, 5))
        with pytest.raises(TypeError, match="ExtractRequest"):
            cluster.extract(ISO, {"render": True})

    def test_sweep_shares_the_shim(self, volume):
        reset_legacy_warnings()
        a_cluster = SimulatedCluster(volume, p=2, metacell_shape=(5, 5, 5))
        b_cluster = SimulatedCluster(volume, p=2, metacell_shape=(5, 5, 5))
        with pytest.warns(DeprecationWarning, match="SimulatedCluster.sweep"):
            a = a_cluster.sweep([ISO], keep_meshes=True)
        b = b_cluster.sweep([ISO], ExtractRequest(keep_meshes=True))
        assert a[0].n_triangles == b[0].n_triangles

    def test_replace_derives_variants(self):
        base = ExtractRequest(render=True)
        derived = dataclasses.replace(base, hedge=True)
        assert derived.render and derived.hedge
        assert base.hedge is None
