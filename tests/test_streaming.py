"""Tests for streaming (slab-based) preprocessing."""

import numpy as np
import pytest

from repro.core.builder import build_indexed_dataset
from repro.core.query import execute_query
from repro.core.streaming import (
    FunctionSlabSource,
    VolumeSlabSource,
    build_indexed_dataset_streaming,
)
from repro.grid.datasets import sphere_field
from repro.grid.rm_instability import RMInstabilityModel
from repro.grid.volume import Volume


class TestSlabSources:
    def test_volume_source_covers_all_layers(self):
        vol = sphere_field((17, 17, 21))
        slabs = list(VolumeSlabSource(vol).slabs(thickness=5, overlap=1))
        starts = [z for z, _ in slabs]
        assert starts == [0, 4, 8, 12, 16]
        # Adjacent slabs share exactly one plane.
        for (z1, s1), (z2, s2) in zip(slabs, slabs[1:]):
            assert np.array_equal(s1[:, :, -1], s2[:, :, 0])

    def test_function_source_lazy(self):
        vol = sphere_field((17, 17, 21))
        calls = []

        def fn(z0, z1):
            calls.append((z0, z1))
            return vol.data[:, :, z0:z1]

        src = FunctionSlabSource(fn, shape=vol.shape, dtype=vol.dtype)
        list(src.slabs(thickness=5, overlap=1))
        assert calls[0] == (0, 5)
        assert calls[-1] == (16, 21)

    def test_function_source_shape_check(self):
        src = FunctionSlabSource(
            lambda a, b: np.zeros((3, 3, 1)), shape=(9, 9, 9), dtype=np.uint8
        )
        with pytest.raises(ValueError, match="slab fn returned"):
            list(src.slabs(thickness=5, overlap=1))


class TestEquivalence:
    @pytest.mark.parametrize(
        "shape,m", [((17, 17, 17), 5), ((13, 17, 21), 5), ((19, 11, 15), 3)]
    )
    def test_streaming_equals_in_memory(self, shape, m):
        """Streamed preprocessing must produce the identical index and
        identical on-disk records as the in-memory builder."""
        rng = np.random.default_rng(42)
        vol = Volume(rng.integers(0, 200, size=shape).astype(np.uint8))
        mem = build_indexed_dataset(vol, (m, m, m))
        stream = build_indexed_dataset_streaming(VolumeSlabSource(vol), (m, m, m))

        assert stream.report == mem.report
        assert np.array_equal(stream.tree.record_ids, mem.tree.record_ids)
        assert np.array_equal(stream.tree.record_vmins, mem.tree.record_vmins)
        # Byte-identical stores.
        a = mem.device.read(mem.base_offset, mem.n_records * mem.codec.record_size)
        b = stream.device.read(
            stream.base_offset, stream.n_records * stream.codec.record_size
        )
        assert a == b

    def test_queries_match(self):
        vol = sphere_field((25, 25, 25))
        mem = build_indexed_dataset(vol, (5, 5, 5))
        stream = build_indexed_dataset_streaming(VolumeSlabSource(vol), (5, 5, 5))
        for lam in (0.3, 0.7, 1.2):
            ra = execute_query(mem, lam)
            rb = execute_query(stream, lam)
            assert np.array_equal(np.sort(ra.records.ids), np.sort(rb.records.ids))
            assert np.array_equal(
                ra.records.values[np.argsort(ra.records.ids)],
                rb.records.values[np.argsort(rb.records.ids)],
            )


class TestTrueStreaming:
    def test_rm_generator_without_full_volume(self):
        """Stream the RM field slab by slab — the fn only ever sees a
        slab-sized z range, proving the full volume is never needed."""
        shape = (33, 33, 41)
        model = RMInstabilityModel(shape=shape, n_steps=100)
        full = model.evaluate(60)  # reference only

        max_dz = []

        def fn(z0, z1):
            max_dz.append(z1 - z0)
            return full.data[:, :, z0:z1]  # stands in for slabwise evaluation

        src = FunctionSlabSource(
            fn, shape=shape, dtype=np.dtype(np.uint8), name="rm_streamed"
        )
        ds = build_indexed_dataset_streaming(src, (5, 5, 5))
        assert max(max_dz) <= 5
        ref = build_indexed_dataset(full, (5, 5, 5))
        assert ds.report.n_metacells_stored == ref.report.n_metacells_stored
        res = execute_query(ds, 128.0)
        ref_res = execute_query(ref, 128.0)
        assert np.array_equal(
            np.sort(res.records.ids), np.sort(ref_res.records.ids)
        )

    def test_thin_final_slab(self):
        """nz not congruent: the last slab is thinner and gets padded."""
        rng = np.random.default_rng(7)
        vol = Volume(rng.integers(0, 99, size=(9, 9, 11)).astype(np.uint8))
        mem = build_indexed_dataset(vol, (5, 5, 5))
        stream = build_indexed_dataset_streaming(VolumeSlabSource(vol), (5, 5, 5))
        assert stream.report == mem.report
        for lam in (20.0, 50.0):
            assert np.array_equal(
                np.sort(execute_query(stream, lam).records.ids),
                np.sort(execute_query(mem, lam).records.ids),
            )
