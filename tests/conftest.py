"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.builder import build_indexed_dataset
from repro.core.intervals import IntervalSet
from repro.grid.datasets import sphere_field
from repro.grid.metacell import partition_metacells
from repro.io.cost_model import IOCostModel


@pytest.fixture(scope="session")
def sphere_volume():
    """A 33^3 analytic sphere field shared across read-only tests."""
    return sphere_field((33, 33, 33))


@pytest.fixture(scope="session")
def sphere_partition(sphere_volume):
    return partition_metacells(sphere_volume, (5, 5, 5))


@pytest.fixture(scope="session")
def sphere_intervals(sphere_partition):
    return IntervalSet.from_partition(sphere_partition)


@pytest.fixture()
def sphere_dataset(sphere_volume):
    """A freshly built indexed dataset (mutable device stats per test)."""
    return build_indexed_dataset(sphere_volume, (5, 5, 5))


@pytest.fixture()
def small_cost_model():
    return IOCostModel(block_size=512, bandwidth=1e6, seek_latency=1e-3)


def random_intervals(rng: np.random.Generator, n: int, n_values: int = 32) -> IntervalSet:
    """Random integer-valued interval set helper used by several tests."""
    a = rng.integers(0, n_values, size=n)
    b = rng.integers(0, n_values, size=n)
    vmin = np.minimum(a, b).astype(np.int64)
    vmax = np.maximum(a, b).astype(np.int64)
    return IntervalSet(vmin=vmin, vmax=vmax, ids=np.arange(n, dtype=np.uint32))
