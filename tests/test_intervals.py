"""Unit tests for IntervalSet."""

import numpy as np
import pytest

from repro.core.intervals import IntervalSet
from repro.grid.metacell import partition_metacells
from repro.grid.volume import Volume


def make(vmin, vmax):
    vmin = np.asarray(vmin)
    vmax = np.asarray(vmax)
    return IntervalSet(vmin=vmin, vmax=vmax, ids=np.arange(len(vmin), dtype=np.uint32))


class TestValidation:
    def test_rejects_inverted_interval(self):
        with pytest.raises(ValueError):
            make([3], [1])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            IntervalSet(
                vmin=np.array([1, 2]),
                vmax=np.array([3]),
                ids=np.array([0], dtype=np.uint32),
            )

    def test_rejects_dtype_mismatch(self):
        with pytest.raises(ValueError):
            IntervalSet(
                vmin=np.array([1], dtype=np.uint8),
                vmax=np.array([3], dtype=np.uint16),
                ids=np.array([0], dtype=np.uint32),
            )

    def test_empty_is_fine(self):
        iv = make([], [])
        assert len(iv) == 0
        assert iv.stabbing_count(0.5) == 0


class TestStabbing:
    def test_inclusive_endpoints(self):
        iv = make([1, 5], [3, 9])
        assert iv.stabbing_count(1) == 1
        assert iv.stabbing_count(3) == 1
        assert iv.stabbing_count(4) == 0
        assert iv.stabbing_count(5) == 1
        assert iv.stabbing_count(9) == 1
        assert iv.stabbing_count(10) == 0

    def test_ids_sorted(self):
        iv = IntervalSet(
            vmin=np.array([0, 0, 0]),
            vmax=np.array([9, 9, 9]),
            ids=np.array([30, 10, 20], dtype=np.uint32),
        )
        assert np.array_equal(iv.stabbing_ids(5), [10, 20, 30])


class TestStatistics:
    def test_distinct_endpoints(self):
        iv = make([1, 1, 2], [3, 3, 3])
        assert np.array_equal(iv.distinct_endpoints(), [1, 2, 3])
        assert iv.n_distinct_endpoints == 3

    def test_distinct_pairs(self):
        iv = make([1, 1, 2], [3, 3, 3])
        assert iv.n_distinct_pairs() == 2

    def test_empty_statistics(self):
        iv = make([], [])
        assert iv.n_distinct_endpoints == 0
        assert iv.n_distinct_pairs() == 0


class TestFromPartition:
    def test_drop_constant(self):
        data = np.zeros((9, 9, 9), dtype=np.uint8)
        data[:4, :4, :4] = np.random.default_rng(0).integers(1, 99, (4, 4, 4))
        part = partition_metacells(Volume(data), (5, 5, 5))
        with_cull = IntervalSet.from_partition(part, drop_constant=True)
        without = IntervalSet.from_partition(part, drop_constant=False)
        assert len(without) == part.n_metacells
        assert len(with_cull) < len(without)
        # Culled intervals are exactly the degenerate ones.
        assert len(without) - len(with_cull) == int(part.constant_mask().sum())

    def test_ids_are_metacell_ids(self):
        rng = np.random.default_rng(1)
        part = partition_metacells(
            Volume(rng.integers(0, 255, (9, 9, 9)).astype(np.uint8)), (5, 5, 5)
        )
        iv = IntervalSet.from_partition(part, drop_constant=False)
        assert np.array_equal(np.sort(iv.ids), part.ids)
