"""Tests for the unstructured (tetrahedral) pipeline."""

import numpy as np
import pytest

from repro.core.unstructured_builder import (
    build_striped_unstructured,
    build_unstructured_dataset,
    extract_unstructured,
    triangulate_unstructured_records,
)
from repro.grid.datasets import sphere_field
from repro.grid.unstructured import (
    TetMesh,
    cluster_cells,
    delaunay_ball,
    structured_to_tets,
)
from repro.mc.marching_tets import marching_tetrahedra, marching_tets_generic


@pytest.fixture(scope="module")
def sphere_tets():
    return structured_to_tets(sphere_field((17, 17, 17)))


class TestTetMesh:
    def test_validation(self):
        with pytest.raises(ValueError):
            TetMesh(np.zeros((3, 3)), np.array([[0, 1, 2, 3]]), np.zeros(3))
        with pytest.raises(ValueError):
            TetMesh(np.zeros((4, 3)), np.array([[0, 1, 2, 4]]), np.zeros(4))
        with pytest.raises(ValueError):
            TetMesh(np.zeros((4, 3)), np.array([[0, 1, 2, 3]]), np.zeros(5))

    def test_structured_to_tets_counts(self, sphere_tets):
        assert sphere_tets.n_cells == 16**3 * 6
        assert len(sphere_tets.points) == 17**3

    def test_cell_ranges_bound_values(self, sphere_tets):
        vmin, vmax = sphere_tets.cell_ranges()
        assert np.all(vmin <= vmax)
        assert vmin.min() == sphere_tets.values.min()
        assert vmax.max() == sphere_tets.values.max()

    def test_delaunay_ball(self):
        mesh = delaunay_ball(n_points=120, seed=1)
        assert mesh.n_cells > 100
        assert np.all(np.linalg.norm(mesh.points, axis=1) <= 1.0 + 1e-9)


class TestGenericMarchingTets:
    def test_matches_structured_marching_tets(self):
        """Extracting from the 6-tet decomposition must equal marching
        tetrahedra on the original grid (same decomposition)."""
        vol = sphere_field((13, 13, 13))
        mesh = structured_to_tets(vol)
        generic = marching_tets_generic(mesh.cell_points(), mesh.cell_values(), 0.6)
        reference = marching_tetrahedra(
            vol.data, 0.6, origin=vol.origin, spacing=vol.spacing
        )
        assert generic.n_triangles == reference.n_triangles
        assert generic.area() == pytest.approx(reference.area(), rel=1e-9)
        assert generic.weld().enclosed_volume() == pytest.approx(
            reference.weld().enclosed_volume(), rel=1e-9
        )

    def test_closed_sphere(self):
        vol = sphere_field((15, 15, 15))
        mesh = structured_to_tets(vol)
        out = marching_tets_generic(mesh.cell_points(), mesh.cell_values(), 0.55).weld()
        out.validate_watertight()
        assert out.euler_characteristic() == 2
        assert out.enclosed_volume() < 0  # normals toward negative side

    def test_degenerate_cells_ignored(self):
        pts = np.zeros((1, 4, 3))
        vals = np.zeros((1, 4))
        assert marching_tets_generic(pts, vals, 0.0).n_triangles == 0

    def test_input_validation(self):
        with pytest.raises(ValueError):
            marching_tets_generic(np.zeros((2, 4, 3)), np.zeros((3, 4)), 0.5)


class TestClustering:
    def test_partition_covers_all_cells(self, sphere_tets):
        clusters = cluster_cells(sphere_tets, 64)
        flat = clusters.members.reshape(-1)
        real = np.sort(flat[flat >= 0])
        assert np.array_equal(real, np.arange(sphere_tets.n_cells))

    def test_cluster_ranges_cover_members(self, sphere_tets):
        clusters = cluster_cells(sphere_tets, 64)
        cvmin, cvmax = sphere_tets.cell_ranges()
        for c in (0, clusters.n_clusters // 2, clusters.n_clusters - 1):
            m = clusters.members[c][clusters.members[c] >= 0]
            assert clusters.vmin[c] == cvmin[m].min()
            assert clusters.vmax[c] == cvmax[m].max()

    def test_spatial_coherence(self, sphere_tets):
        """Morton clustering: intra-cluster centroid spread must be much
        smaller than the domain."""
        clusters = cluster_cells(sphere_tets, 64)
        centroids = sphere_tets.cell_centroids()
        spreads = []
        for c in range(0, clusters.n_clusters, max(1, clusters.n_clusters // 20)):
            m = clusters.members[c][clusters.members[c] >= 0]
            spreads.append(np.ptp(centroids[m], axis=0).max())
        domain = np.ptp(sphere_tets.points, axis=0).max()
        assert np.median(spreads) < 0.35 * domain

    def test_validation(self, sphere_tets):
        with pytest.raises(ValueError):
            cluster_cells(sphere_tets, 0)


class TestUnstructuredPipeline:
    @pytest.fixture(scope="class")
    def dataset(self, sphere_tets):
        return build_unstructured_dataset(sphere_tets, cells_per_cluster=48)

    def test_query_matches_bruteforce(self, dataset, sphere_tets):
        clusters = cluster_cells(sphere_tets, 48)
        for iso in (0.3, 0.6, 0.9):
            _, qr = extract_unstructured(dataset, iso)
            oracle = np.flatnonzero(
                (clusters.vmin.astype(np.float32) <= iso)
                & (iso <= clusters.vmax.astype(np.float32))
                & (clusters.vmin != clusters.vmax)
            )
            assert np.array_equal(np.sort(qr.records.ids), oracle)

    def test_surface_matches_in_core_extraction(self, dataset, sphere_tets):
        """Out-of-core extraction == extracting every cell in memory."""
        iso = 0.6
        mesh, _ = extract_unstructured(dataset, iso)
        full = marching_tets_generic(
            sphere_tets.cell_points(), sphere_tets.cell_values(), iso
        )
        assert mesh.n_triangles == full.n_triangles
        assert mesh.area() == pytest.approx(full.area(), rel=1e-5)

    def test_surface_topology(self, dataset):
        mesh, _ = extract_unstructured(dataset, 0.55)
        welded = mesh.weld(decimals=5)
        assert welded.is_closed()
        assert welded.euler_characteristic() == 2

    def test_striped_equals_serial(self, sphere_tets):
        serial = build_unstructured_dataset(sphere_tets, cells_per_cluster=48)
        striped = build_striped_unstructured(sphere_tets, 4, cells_per_cluster=48)
        iso = 0.7
        mesh_serial, _ = extract_unstructured(serial, iso)
        parts = [extract_unstructured(ds, iso)[0] for ds in striped]
        total = sum(m.n_triangles for m in parts)
        assert total == mesh_serial.n_triangles
        counts = [extract_unstructured(ds, iso)[1].n_active for ds in striped]
        assert max(counts) - min(counts) <= max(2, len(counts))

    def test_report(self, dataset, sphere_tets):
        rep = dataset.report
        assert rep.n_cells == sphere_tets.n_cells
        assert rep.n_clusters_stored + rep.n_clusters_culled == rep.n_clusters_total
        assert rep.index_bytes < rep.stored_bytes

    def test_empty_isovalue(self, dataset):
        mesh, qr = extract_unstructured(dataset, -10.0)
        assert mesh.n_triangles == 0
        assert qr.io_stats.blocks_read == 0

    def test_delaunay_end_to_end(self):
        mesh = delaunay_ball(n_points=200, seed=3)
        ds = build_unstructured_dataset(mesh, cells_per_cluster=32)
        surf, qr = extract_unstructured(ds, 0.5)
        assert surf.n_triangles > 0
        # All triangle vertices near the iso sphere (Delaunay is coarse:
        # generous tolerance).
        r = np.linalg.norm(surf.vertices, axis=1)
        assert np.all(np.abs(r - 0.5) < 0.35)
