"""Additional edge coverage: span-square nesting, external-tree depth,
mp backend with file devices, cache + multi-query composition."""

import numpy as np
import pytest

from repro.core.builder import build_indexed_dataset, build_striped_datasets
from repro.core.compact_tree import CompactIntervalTree
from repro.core.multi_query import execute_multi_query
from repro.core.span_space import tree_span_squares
from repro.grid.datasets import sphere_field
from repro.io.blockdevice import SimulatedBlockDevice
from repro.io.cache import CachedDevice
from repro.io.cost_model import IOCostModel
from repro.io.diskfile import FileBackedDevice
from repro.parallel.mp_backend import extract_parallel_mp
from tests.conftest import random_intervals


class TestSpanSquareNesting:
    def test_child_squares_nest_beside_parent(self, sphere_intervals):
        """Left child's square lies strictly left of (and below) the
        parent's split; right child's strictly right/above — the Figure 1
        recursive structure."""
        tree = CompactIntervalTree.build(sphere_intervals)
        squares = {sq.node_id: sq for sq in tree_span_squares(tree)}
        for node in tree.nodes:
            sq = squares[node.node_id]
            if node.left >= 0:
                left = squares[node.left]
                assert left.hi <= sq.split
            if node.right >= 0:
                right = squares[node.right]
                assert right.lo >= sq.split

    def test_square_counts_by_level(self, sphere_intervals):
        tree = CompactIntervalTree.build(sphere_intervals)
        squares = tree_span_squares(tree)
        assert len(squares) == tree.n_nodes


class TestExternalTreeDepth:
    def test_deep_tree_logb_traversal(self):
        """A tall tree (many endpoints, sparse duplication) must traverse
        far fewer blocks than its height when blocked."""
        from repro.core.external_tree import ExternalCompactIndex

        from repro.core.intervals import IntervalSet

        rng = np.random.default_rng(11)
        # Short intervals over many distinct values: few contain any given
        # split, so the tree stays tall (near log2 n).
        vmin = rng.integers(0, 4000, size=4000).astype(np.float64)
        vmax = vmin + rng.integers(1, 4, size=4000)
        iv = IntervalSet(vmin=vmin, vmax=vmax, ids=np.arange(4000, dtype=np.uint32))
        tree = CompactIntervalTree.build(iv)
        height = tree.height()
        assert height >= 8
        ext = ExternalCompactIndex(
            SimulatedBlockDevice(IOCostModel(block_size=65536)), tree
        )
        _, io = ext.plan_query(2000.0)
        assert io.blocks_read <= max(2, height // 3)


class TestMPWithFileDevices:
    def test_workers_reopen_file_stores(self, tmp_path):
        vol = sphere_field((25, 25, 25))
        devices = [FileBackedDevice(tmp_path / f"n{q}.bin") for q in range(2)]
        dss = build_striped_datasets(vol, 2, (5, 5, 5), devices=devices)
        for d in devices:
            d.flush()
        outs = extract_parallel_mp(dss, 0.6, processes=2)
        ref = extract_parallel_mp(dss, 0.6, processes=1)
        assert [o.n_triangles for o in outs] == [o.n_triangles for o in ref]
        for d in devices:
            d.close()


class TestCachePlusMultiQuery:
    def test_batch_through_cache(self):
        backing = SimulatedBlockDevice(IOCostModel(block_size=1024))
        cached = CachedDevice(backing, capacity_blocks=1024)
        ds = build_indexed_dataset(sphere_field((25, 25, 25)), (5, 5, 5), device=cached)
        backing.reset_stats()
        multi = execute_multi_query(ds, [0.5, 0.55, 0.6])
        first_disk = backing.stats.blocks_read
        # Replaying the same batch is served from cache entirely.
        multi2 = execute_multi_query(ds, [0.5, 0.55, 0.6])
        assert backing.stats.blocks_read == first_disk
        for lam in (0.5, 0.55, 0.6):
            assert np.array_equal(
                multi.records_for(lam).ids, multi2.records_for(lam).ids
            )


class TestClusterWithCachedDevices:
    def test_striped_build_on_cached_devices(self):
        cm = IOCostModel(block_size=1024)
        backings = [SimulatedBlockDevice(cm) for _ in range(3)]
        cacheds = [CachedDevice(b, capacity_blocks=512) for b in backings]
        dss = build_striped_datasets(
            sphere_field((25, 25, 25)), 3, (5, 5, 5), devices=cacheds
        )
        from repro.core.query import execute_query

        total = sum(execute_query(d, 0.6).n_active for d in dss)
        serial = build_indexed_dataset(sphere_field((25, 25, 25)), (5, 5, 5))
        assert total == execute_query(serial, 0.6).n_active
