"""Unit tests for the perspective camera."""

import numpy as np
import pytest

from repro.mc.geometry import TriangleMesh
from repro.render.camera import Camera


class TestBasics:
    def test_rejects_coincident_eye_target(self):
        with pytest.raises(ValueError):
            Camera(eye=[1, 1, 1], target=[1, 1, 1])

    def test_rejects_bad_fov(self):
        with pytest.raises(ValueError):
            Camera(eye=[0, 0, 5], target=[0, 0, 0], fov_y=0)
        with pytest.raises(ValueError):
            Camera(eye=[0, 0, 5], target=[0, 0, 0], fov_y=200)

    def test_view_basis_orthonormal(self):
        cam = Camera(eye=[3, 2, 5], target=[0, 0, 0], up=[0, 0, 1])
        r, u, f = cam.view_basis()
        for v in (r, u, f):
            assert np.linalg.norm(v) == pytest.approx(1.0)
        assert np.dot(r, u) == pytest.approx(0.0, abs=1e-12)
        assert np.dot(r, f) == pytest.approx(0.0, abs=1e-12)
        assert np.dot(u, f) == pytest.approx(0.0, abs=1e-12)

    def test_up_parallel_to_view_handled(self):
        cam = Camera(eye=[0, 0, 5], target=[0, 0, 0], up=[0, 0, 1])
        r, u, f = cam.view_basis()
        assert np.isfinite(r).all()


class TestProjection:
    def test_target_projects_to_center(self):
        cam = Camera(eye=[0, -5, 0], target=[0, 0, 0], up=[0, 0, 1])
        xy, depth = cam.project(np.array([[0.0, 0.0, 0.0]]), 101, 101)
        assert xy[0, 0] == pytest.approx(50.0)
        assert xy[0, 1] == pytest.approx(50.0)
        assert depth[0] == pytest.approx(5.0)

    def test_depth_is_view_distance(self):
        cam = Camera(eye=[0, -5, 0], target=[0, 0, 0], up=[0, 0, 1])
        _, depth = cam.project(np.array([[0.0, -2.0, 0.0], [0.0, 2.0, 0.0]]), 64, 64)
        assert depth[0] == pytest.approx(3.0)
        assert depth[1] == pytest.approx(7.0)

    def test_up_is_up_on_screen(self):
        cam = Camera(eye=[0, -5, 0], target=[0, 0, 0], up=[0, 0, 1])
        xy, _ = cam.project(np.array([[0.0, 0.0, 1.0]]), 101, 101)
        assert xy[0, 1] < 50.0  # +z appears above center (smaller row)

    def test_right_is_right_on_screen(self):
        cam = Camera(eye=[0, -5, 0], target=[0, 0, 0], up=[0, 0, 1])
        r, _, _ = cam.view_basis()
        p = np.asarray(r) * 0.5
        xy, _ = cam.project(p[None, :], 101, 101)
        assert xy[0, 0] > 50.0

    def test_behind_camera_flagged_by_depth(self):
        cam = Camera(eye=[0, -5, 0], target=[0, 0, 0], up=[0, 0, 1])
        _, depth = cam.project(np.array([[0.0, -10.0, 0.0]]), 64, 64)
        assert depth[0] < 0


class TestFitMesh:
    def test_whole_mesh_visible(self):
        rng = np.random.default_rng(0)
        verts = rng.random((50, 3)) * 4 - 2
        mesh = TriangleMesh(verts, np.arange(48).reshape(-1, 3) % 50)
        cam = Camera.fit_mesh(mesh)
        xy, depth = cam.project(mesh.vertices, 200, 200)
        assert np.all(depth > cam.near)
        assert np.all(xy >= -1.0)
        assert np.all(xy <= 200.0)

    def test_degenerate_mesh(self):
        mesh = TriangleMesh(np.zeros((3, 3)), np.array([[0, 1, 2]]))
        cam = Camera.fit_mesh(mesh)
        assert np.isfinite(cam.eye).all()
