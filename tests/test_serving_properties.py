"""Property tests for the serving layer (seeded, not hypothesis-based).

Two properties the ISSUE's acceptance hangs on:

* **starvation-freedom** — under saturating mixed traffic, weighted
  deficit-round-robin serves every continuously-backlogged tenant
  within its provable round bound ``ceil(max_cost / (quantum * w)) + 1``,
  for multiple seeds and weight mixes (bulk, weight 1, is the tenant
  the bound protects);
* **shed determinism** — the set of shed decisions (which request, for
  which typed reason, at what time) is a pure function of the trace
  seed and the serving config: two fresh server+cluster pairs replay
  identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import pytest

from repro.grid.datasets import sphere_field
from repro.parallel.cluster import SimulatedCluster
from repro.serve import (
    BrownoutConfig,
    BurstWindow,
    ClusterEvent,
    DeficitRoundRobin,
    QueryServer,
    ServeConfig,
    TenantSpec,
    TrafficConfig,
    generate_trace,
)


@dataclass(frozen=True)
class _Req:
    request_id: int
    tenant: str


@dataclass
class _FakeJob:
    """Minimal job shape the scheduler needs: .request + .est_cost."""

    request: _Req
    est_cost: float


def _drain(drr: DeficitRoundRobin, rng: random.Random, tenants, costs,
           n_dispatches: int):
    """Keep every tenant continuously backlogged while dispatching
    ``n_dispatches`` jobs; returns the dispatch order."""
    rid = 0
    order = []
    for t in tenants:
        for _ in range(3):
            drr.enqueue(_FakeJob(_Req(rid, t.name), rng.choice(costs)))
            rid += 1
    for _ in range(n_dispatches):
        job = drr.next_job()
        assert job is not None
        order.append(job.request.tenant)
        # Refill the served tenant so no queue ever drains: the
        # starvation bound applies to *continuously backlogged* tenants.
        drr.enqueue(_FakeJob(_Req(rid, job.request.tenant), rng.choice(costs)))
        rid += 1
    return order


class TestDRRNeverStarves:
    @pytest.mark.parametrize("seed", [0, 1, 7, 42, 1337])
    def test_backlogged_tenants_served_within_bound(self, seed):
        rng = random.Random(seed)
        tenants = (
            TenantSpec("gold-a", tier="gold", arrival_share=1.0),
            TenantSpec("gold-b", tier="gold", arrival_share=1.0),
            TenantSpec("silver-a", tier="silver", arrival_share=1.0),
            TenantSpec("bulk-a", tier="bulk", arrival_share=1.0),
            TenantSpec("bulk-b", tier="bulk", arrival_share=1.0),
        )
        quantum = 0.02
        costs = [0.01, 0.05, 0.1, 0.25]
        drr = DeficitRoundRobin(tenants, quantum)
        order = _drain(drr, rng, tenants, costs, n_dispatches=400)
        for t in tenants:
            assert t.name in order, f"{t.name} never served"
            bound = drr.gap_bound(t.name, max(costs))
            gap = drr.max_service_gap_rounds[t.name]
            assert gap <= bound, (
                f"{t.name} (w={t.share_weight}): starved for {gap} "
                f"backlogged rounds, bound is {bound}"
            )

    @pytest.mark.parametrize("seed", [3, 11])
    def test_extreme_weight_skew_still_serves_bulk(self, seed):
        """A 100:1 weight skew slows bulk down but cannot stop it."""
        rng = random.Random(seed)
        tenants = (
            TenantSpec("whale", tier="gold", weight=100.0),
            TenantSpec("minnow", tier="bulk", weight=1.0),
        )
        quantum = 0.01
        costs = [0.05, 0.2]
        drr = DeficitRoundRobin(tenants, quantum)
        order = _drain(drr, rng, tenants, costs, n_dispatches=300)
        assert order.count("minnow") > 0
        bound = drr.gap_bound("minnow", max(costs))
        assert drr.max_service_gap_rounds["minnow"] <= bound

    def test_gap_bound_scales_with_weight(self):
        tenants = (
            TenantSpec("heavy", tier="gold", weight=8.0),
            TenantSpec("light", tier="bulk", weight=1.0),
        )
        drr = DeficitRoundRobin(tenants, quantum=0.1)
        assert drr.gap_bound("heavy", 0.8) == 2   # ceil(0.8/0.8) + 1
        assert drr.gap_bound("light", 0.8) == 9   # ceil(0.8/0.1) + 1


def _soak_pair(seed: int):
    """A fresh (cluster, trace, config) triple for determinism replay."""
    cluster = SimulatedCluster(
        sphere_field((24, 24, 24)), 4, metacell_shape=(5, 5, 5), replication=2
    )
    isovalues = (0.5, 0.8, 1.1)
    unit = max(cluster.estimate_extract_time(lam) for lam in isovalues)
    tenants = (
        TenantSpec("gold-a", tier="gold", arrival_share=0.3, rate=2.0 / unit,
                   burst=6, deadline_budget=4.0 * unit),
        TenantSpec("bulk-c", tier="bulk", arrival_share=0.7, rate=2.0 / unit,
                   burst=6, deadline_budget=10.0 * unit),
    )
    traffic = TrafficConfig(
        duration=40.0 * unit,
        base_rate=2.5 / unit,
        isovalues=isovalues,
        seed=seed,
        bursts=(BurstWindow(10.0 * unit, 15.0 * unit, 4.0),),
        overlays=(ClusterEvent(18.0 * unit, "kill", 1),),
    )
    config = ServeConfig(
        tenants=tenants,
        n_executors=2,
        max_queue_depth=8,
        quantum=unit / 5.0,
        brownout=BrownoutConfig(eval_interval=2.0 * unit),
    )
    return cluster, generate_trace(traffic, tenants), config


class TestShedDeterminism:
    @pytest.mark.parametrize("seed", [5, 77])
    def test_shed_decisions_pure_function_of_seed_and_config(self, seed):
        sheds = []
        for _ in range(2):
            cluster, trace, config = _soak_pair(seed)
            report = QueryServer(cluster, config).serve(trace)
            sheds.append([
                (r.request_id, r.reason, r.finish)
                for r in report.records if r.state == "shed"
            ])
        assert sheds[0], "overloaded trace shed nothing - scenario too mild"
        assert sheds[0] == sheds[1]

    def test_different_seeds_differ(self):
        """Sanity: the seed actually steers the workload."""
        _, trace_a, _ = _soak_pair(5)
        _, trace_b, _ = _soak_pair(6)
        assert [r.arrival for r in trace_a.requests] != [
            r.arrival for r in trace_b.requests
        ]

    def test_full_reports_identical(self):
        runs = []
        for _ in range(2):
            cluster, trace, config = _soak_pair(5)
            report = QueryServer(cluster, config).serve(trace)
            runs.append([r.as_dict() for r in report.records])
        assert runs[0] == runs[1]
