"""Tracer, metrics registry, and exporter unit contracts.

The contract under test (see docs/PERFMODEL.md):

* spans live on per-track modeled clocks: children nest inside their
  parent and their charged durations sum to at most the parent's;
* the no-op :data:`NULL_TRACER` matches the full surface and records
  nothing (the zero-overhead disabled default);
* a :class:`MetricsRegistry` unifies device meters and derived counts
  under one flat namespace, with kind collisions rejected;
* serialized traces/metrics are deterministic: identical work produces
  byte-identical JSON.
"""

import json

import pytest

from repro.core.builder import build_indexed_dataset
from repro.core.query import QueryOptions, execute_query
from repro.grid.datasets import sphere_field
from repro.io.blockdevice import IOStats
from repro.io.faults import FaultInjectingDevice, FaultPlan
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    Tracer,
    chrome_trace_events,
    coerce_tracer,
    dumps_chrome_trace,
    dumps_metrics,
)

ISO = 0.7


class TestSpans:
    def test_children_nest_and_sum_within_parent(self):
        tr = Tracer()
        with tr.span("extract", track="node0") as parent:
            with tr.span("read") as rd:
                rd.charge(0.25)
            with tr.span("triangulate") as mc:
                mc.charge(0.5)
        [p] = tr.find("extract")
        kids = tr.find("read") + tr.find("triangulate")
        assert all(k.track == "node0" for k in kids)  # track inherited
        assert all(k.start >= p.start for k in kids)
        assert all(k.start + k.duration <= p.start + p.duration + 1e-12
                   for k in kids)
        assert sum(k.duration for k in kids) <= p.duration + 1e-12
        assert p.duration == pytest.approx(0.75)

    def test_tracks_have_independent_cursors(self):
        tr = Tracer()
        tr.charge(1.0, track="node0")
        tr.charge(0.25, track="node1")
        assert tr.cursor("node0") == 1.0
        assert tr.cursor("node1") == 0.25
        assert tr.cursor("never-touched") == 0.0

    def test_record_emits_explicit_span_and_seeks_forward(self):
        tr = Tracer()
        tr.record("stage.io", track="node0", start=0.0, duration=2.0)
        assert tr.cursor("node0") == 2.0
        tr.record("stage.render", track="node0", start=1.0, duration=0.5)
        # Monotone: an earlier summary span never rewinds the cursor.
        assert tr.cursor("node0") == 2.0
        assert tr.total("stage.io") == pytest.approx(2.0)

    def test_negative_charge_and_duration_rejected(self):
        tr = Tracer()
        with pytest.raises(ValueError):
            tr.charge(-0.1, track="node0")
        with pytest.raises(ValueError):
            tr.record("bad", track="node0", start=0.0, duration=-1.0)

    def test_instants_timestamped_at_cursor(self):
        tr = Tracer()
        with tr.span("read", track="node2") as sp:
            sp.charge(0.125)
            sp.annotate("hedge.fired", args={"extent": [0, 64]})
        [ev] = tr.events
        assert ev.track == "node2" and ev.time == pytest.approx(0.125)
        assert ev.args == {"extent": [0, 64]}

    def test_find_filters_and_total(self):
        tr = Tracer()
        tr.record("stage.io", track="node0", start=0.0, duration=1.0,
                  category="stage")
        tr.record("stage.io", track="node1", start=0.0, duration=2.0,
                  category="stage")
        assert tr.total("stage.io") == pytest.approx(3.0)
        assert tr.total("stage.io", track="node1") == pytest.approx(2.0)
        assert tr.find(category="stage", track="node0")[0].duration == 1.0
        assert tr.tracks() == ["node0", "node1"]


class TestNullTracer:
    def test_records_nothing(self):
        with NULL_TRACER.span("x", track="node0") as sp:
            sp.charge(1.0)
            sp.annotate("y")
        NULL_TRACER.record("z", track="a", start=0.0, duration=1.0)
        NULL_TRACER.instant("w")
        assert not NULL_TRACER.enabled
        assert NULL_TRACER.spans == () and NULL_TRACER.events == ()
        assert NULL_TRACER.tracks() == [] and NULL_TRACER.cursor("a") == 0.0

    def test_span_handle_is_shared(self):
        # Zero allocation on the disabled path: every span call returns
        # the same inert handle.
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")

    def test_coerce(self):
        assert coerce_tracer(None) is NULL_TRACER
        tr = Tracer()
        assert coerce_tracer(tr) is tr


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.inc("io.blocks_read", 42)
        reg.inc("io.blocks_read", 8)
        reg.set_gauge("cluster.coverage", 0.5)
        reg.set_gauge("cluster.coverage", 1.0)
        reg.observe("io.seconds", 0.5)
        reg.observe("io.seconds", 1.5)
        flat = reg.to_dict()
        assert flat["io.blocks_read"] == 50
        assert flat["cluster.coverage"] == 1.0
        assert flat["io.seconds.count"] == 2
        assert flat["io.seconds.mean"] == pytest.approx(1.0)
        assert flat["io.seconds.min"] == 0.5 and flat["io.seconds.max"] == 1.5

    def test_kind_collision_rejected(self):
        reg = MetricsRegistry()
        reg.inc("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.set_gauge("x", 1)
        with pytest.raises(ValueError, match="already registered"):
            reg.observe("x", 1)

    def test_counter_decrement_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().inc("x", -1)

    def test_value_and_query(self):
        reg = MetricsRegistry()
        reg.inc("io.blocks_read", 7)
        reg.inc("io.seeks", 2)
        reg.set_gauge("node.0.coverage", 1.0)
        assert reg.value("io.blocks_read") == 7
        with pytest.raises(KeyError):
            reg.value("nope")
        assert set(reg.query("io")) == {"io.blocks_read", "io.seeks"}

    def test_absorb_io_stats_is_field_complete(self):
        stats = IOStats()
        stats.blocks_read = 5
        stats.seeks = 2
        stats.retries = 1
        reg = MetricsRegistry()
        reg.absorb_io_stats(stats)
        for name, value in stats.as_dict().items():
            assert reg.value(f"io.{name}") == value

    def test_query_metrics_match_io_stats_on_faulty_device(self):
        """The unification contract: a query against a fault-injecting
        device publishes exactly the device's per-query IOStats."""
        ds = build_indexed_dataset(sphere_field((24, 24, 24)), (5, 5, 5))
        ds.device = FaultInjectingDevice(
            ds.device, FaultPlan(seed=5, transient_error_rate=0.2)
        )
        reg = MetricsRegistry()
        res = execute_query(ds, ISO, QueryOptions(metrics=reg))
        assert res.io_stats.retries > 0  # the faults actually fired
        for name, value in res.io_stats.as_dict().items():
            assert reg.value(f"io.{name}") == value
        assert reg.value("query.active_metacells") == res.n_active
        assert reg.value("query.count") == 1
        assert reg.to_dict()["query.io_seconds.sum"] == pytest.approx(
            res.io_stats.read_time(ds.device.cost_model)
        )


class TestExport:
    @staticmethod
    def _sample_tracer():
        tr = Tracer()
        with tr.span("extract", track="node0", category="query") as sp:
            sp.charge(0.5)
            sp.annotate("io.retry", args={"attempt": 1})
        tr.record("composite", track="cluster", start=0.5, duration=0.25,
                  args={"bytes": 1024})
        return tr

    def test_chrome_events_structure(self):
        tr = self._sample_tracer()
        events = chrome_trace_events(tr)
        by_ph = {}
        for ev in events:
            by_ph.setdefault(ev["ph"], []).append(ev)
        names = {ev["args"]["name"] for ev in by_ph["M"]}
        assert names == {"cluster", "node0"}  # one metadata row per track
        [span] = [ev for ev in by_ph["X"] if ev["name"] == "extract"]
        assert span["ts"] == 0.0 and span["dur"] == pytest.approx(0.5e6)
        [inst] = by_ph["i"]
        assert inst["name"] == "io.retry" and inst["args"] == {"attempt": 1}

    def test_trace_json_is_chrome_loadable_and_deterministic(self):
        a = dumps_chrome_trace(self._sample_tracer())
        b = dumps_chrome_trace(self._sample_tracer())
        assert a == b  # byte-identical for identical work
        doc = json.loads(a)
        assert isinstance(doc["traceEvents"], list)
        assert doc["otherData"]["clock"] == "modeled-seconds"

    def test_metrics_json_schema_and_determinism(self):
        reg = MetricsRegistry()
        reg.inc("io.blocks_read", 3)
        reg.observe("io.seconds", 0.5)
        text = dumps_metrics(reg, extra={"isovalue": ISO})
        doc = json.loads(text)
        assert doc["schema"] == "repro-metrics/1"
        assert doc["metrics"]["io.blocks_read"] == 3
        assert doc["isovalue"] == ISO
        reg2 = MetricsRegistry()
        reg2.inc("io.blocks_read", 3)
        reg2.observe("io.seconds", 0.5)
        assert dumps_metrics(reg2, extra={"isovalue": ISO}) == text
