"""End-to-end tests for Marching Cubes extraction."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.datasets import (
    gyroid_field,
    smooth_noise,
    sphere_field,
    torus_field,
)
from repro.grid.metacell import partition_metacells
from repro.grid.volume import Volume
from repro.mc.marching_cubes import (
    count_active_cells,
    marching_cubes,
    marching_cubes_batch,
)
from repro.mc.marching_tets import marching_tetrahedra


class TestSphere:
    @pytest.fixture(scope="class")
    def sphere_mesh(self):
        vol = sphere_field((40, 40, 40))
        return marching_cubes(vol.data, 0.6, origin=vol.origin, spacing=vol.spacing)

    def test_closed_and_oriented(self, sphere_mesh):
        sphere_mesh.validate_watertight()

    def test_euler_characteristic(self, sphere_mesh):
        assert sphere_mesh.euler_characteristic() == 2

    def test_volume_accuracy(self, sphere_mesh):
        expected = 4 / 3 * math.pi * 0.6**3
        assert abs(sphere_mesh.enclosed_volume()) == pytest.approx(expected, rel=0.02)

    def test_area_accuracy(self, sphere_mesh):
        expected = 4 * math.pi * 0.6**2
        assert sphere_mesh.area() == pytest.approx(expected, rel=0.02)

    def test_normals_point_toward_negative_side(self, sphere_mesh):
        """Field = distance from center; negative side (< iso) is the
        inside, so normals point inward: signed volume is negative."""
        assert sphere_mesh.enclosed_volume() < 0

    def test_vertices_near_iso_radius(self, sphere_mesh):
        r = np.linalg.norm(sphere_mesh.vertices, axis=1)
        assert np.all(np.abs(r - 0.6) < 0.05)


class TestTopologyZoo:
    def test_torus_euler_zero(self):
        vol = torus_field((60, 60, 40))
        mesh = marching_cubes(vol.data, 0.18, origin=vol.origin, spacing=vol.spacing)
        mesh.validate_watertight()
        assert mesh.euler_characteristic() == 0

    def test_two_spheres_euler_four(self):
        def fn(x, y, z):
            d1 = np.sqrt((x + 0.5) ** 2 + y**2 + z**2)
            d2 = np.sqrt((x - 0.5) ** 2 + y**2 + z**2)
            return np.minimum(d1, d2)

        vol = Volume.from_function(fn, (48, 32, 32))
        mesh = marching_cubes(vol.data, 0.3, origin=vol.origin, spacing=vol.spacing)
        mesh.validate_watertight()
        assert mesh.euler_characteristic() == 4

    def test_gyroid_boundary_only_at_domain_edge(self):
        vol = gyroid_field((28, 28, 28))
        mesh = marching_cubes(vol.data, 0.0)
        uniq, counts = mesh.edge_counts()
        boundary_vertices = np.unique(uniq[counts == 1])
        pts = mesh.vertices[boundary_vertices]
        nx, ny, nz = vol.shape
        on_border = (
            (pts[:, 0] < 1e-9) | (pts[:, 0] > nx - 1 - 1e-9)
            | (pts[:, 1] < 1e-9) | (pts[:, 1] > ny - 1 - 1e-9)
            | (pts[:, 2] < 1e-9) | (pts[:, 2] > nz - 1 - 1e-9)
        )
        assert on_border.all()


class TestAgainstMarchingTets:
    @pytest.mark.parametrize("iso", [0.35, 0.6, 0.9])
    def test_sphere_measures_agree(self, iso):
        vol = sphere_field((32, 32, 32))
        mc = marching_cubes(vol.data, iso, origin=vol.origin, spacing=vol.spacing)
        mt = marching_tetrahedra(vol.data, iso, origin=vol.origin, spacing=vol.spacing)
        assert abs(mc.enclosed_volume() - mt.enclosed_volume()) < 0.02 * abs(
            mt.enclosed_volume()
        )
        assert abs(mc.area() - mt.area()) < 0.05 * mt.area()

    def test_mt_closed_on_sphere(self):
        vol = sphere_field((24, 24, 24))
        mt = marching_tetrahedra(vol.data, 0.55).weld()
        mt.validate_watertight()
        assert mt.euler_characteristic() == 2

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_random_smooth_fields_both_closed(self, seed):
        rng = np.random.default_rng(seed)
        data = smooth_noise((14, 14, 14), feature_size=5.0, rng=rng)
        # Interior isovalue strictly between two data values: an isovalue
        # exactly equal to a vertex value legitimately pinches the surface
        # (crossing points collapse onto the vertex), which is out of scope
        # for this manifoldness check.
        uniq = np.unique(data)
        q = int(0.45 * (len(uniq) - 1))
        iso = float(0.5 * (uniq[q] + uniq[q + 1]))
        mc = marching_cubes(data, iso).weld()
        mt = marching_tetrahedra(data, iso).weld()
        if mc.n_triangles == 0:
            return
        # Interior edges all doubled; boundary only on the domain border.
        for mesh in (mc, mt):
            uniq, counts = mesh.edge_counts()
            assert np.all(counts <= 2)
            b = np.unique(uniq[counts == 1])
            pts = mesh.vertices[b]
            on_border = (
                (pts[:, 0] < 1e-9) | (pts[:, 0] > 12.999999)
                | (pts[:, 1] < 1e-9) | (pts[:, 1] > 12.999999)
                | (pts[:, 2] < 1e-9) | (pts[:, 2] > 12.999999)
            )
            assert on_border.all()
        # Enclosed-ish volume comparison via divergence sums (open surfaces
        # clipped identically at the border, so sums still comparable).
        assert mc.area() == pytest.approx(mt.area(), rel=0.12)


class TestBatchExtraction:
    def test_batch_equals_fullgrid_after_weld(self):
        """Extracting metacell-by-metacell and welding must give the same
        surface as full-grid extraction (same area/volume/topology)."""
        vol = sphere_field((33, 33, 33))
        part = partition_metacells(vol, (5, 5, 5))
        keep = ~part.constant_mask()
        ids = part.ids[keep]
        values = part.extract_values(ids).reshape(-1, 5, 5, 5)
        origins = part.vertex_origins(ids)
        batch = marching_cubes_batch(
            values, 0.6, origins, spacing=vol.spacing, world_origin=vol.origin
        )
        full = marching_cubes(vol.data, 0.6, origin=vol.origin, spacing=vol.spacing)
        assert batch.n_triangles == full.n_triangles
        welded = batch.weld()
        welded.validate_watertight()
        assert welded.enclosed_volume() == pytest.approx(full.enclosed_volume(), rel=1e-9)
        assert welded.area() == pytest.approx(full.area(), rel=1e-9)

    def test_batch_chunking_invariant(self):
        vol = sphere_field((33, 33, 33))
        part = partition_metacells(vol, (5, 5, 5))
        ids = part.ids[~part.constant_mask()]
        values = part.extract_values(ids).reshape(-1, 5, 5, 5)
        origins = part.vertex_origins(ids)
        a = marching_cubes_batch(values, 0.6, origins, chunk=3)
        b = marching_cubes_batch(values, 0.6, origins, chunk=1000)
        assert a.n_triangles == b.n_triangles
        assert a.area() == pytest.approx(b.area())

    def test_empty_batch(self):
        out = marching_cubes_batch(
            np.zeros((0, 5, 5, 5)), 0.5, np.zeros((0, 3))
        )
        assert out.n_triangles == 0

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            marching_cubes_batch(np.zeros((5, 5, 5)), 0.5, np.zeros((1, 3)))
        with pytest.raises(ValueError):
            marching_cubes_batch(np.zeros((1, 5, 5, 5)), 0.5, np.zeros((1, 3)), chunk=0)
        with pytest.raises(ValueError):
            marching_cubes(np.zeros((5, 5)), 0.5)


class TestEdgeCases:
    def test_constant_field_no_triangles(self):
        mesh = marching_cubes(np.full((8, 8, 8), 3.0), 3.0)
        assert mesh.n_triangles == 0

    def test_iso_below_min(self):
        vol = sphere_field((16, 16, 16))
        assert marching_cubes(vol.data, -1.0).n_triangles == 0

    def test_iso_above_max(self):
        vol = sphere_field((16, 16, 16))
        assert marching_cubes(vol.data, 99.0).n_triangles == 0

    def test_iso_exactly_at_vertex_values(self):
        """Integer field with integer isovalue: v > iso convention means no
        degenerate geometry and still a closed surface."""
        data = np.zeros((10, 10, 10), dtype=np.float64)
        data[3:7, 3:7, 3:7] = 2.0
        mesh = marching_cubes(data, 1.0)
        mesh.validate_watertight()
        # The surface wraps the 4^3 block: a topological sphere.
        assert mesh.euler_characteristic() == 2

    def test_minimal_grid(self):
        data = np.zeros((2, 2, 2))
        data[1, 1, 1] = 1.0
        mesh = marching_cubes(data, 0.5)
        assert mesh.n_triangles == 1

    def test_count_active_cells_matches_extraction(self):
        vol = sphere_field((24, 24, 24))
        n = count_active_cells(vol.data, 0.6)
        # Each active cell yields 1..5 triangles.
        mesh = marching_cubes(vol.data, 0.6)
        assert n <= mesh.n_triangles <= 5 * n
        assert count_active_cells(vol.data, -5.0) == 0
