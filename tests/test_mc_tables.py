"""Exhaustive structural tests for the derived Marching Cubes tables."""

import numpy as np
import pytest

from repro.mc import tables as T


class TestEdgeGeometry:
    def test_twelve_edges_cover_cube(self):
        assert T.EDGE_VERTICES.shape == (12, 2)
        # Every edge joins vertices differing in exactly one coordinate.
        for a, b in T.EDGE_VERTICES:
            diff = np.abs(T.CORNERS[a] - T.CORNERS[b])
            assert diff.sum() == 1.0

    def test_edge_axis_consistent_with_vertices(self):
        for e, (a, b) in enumerate(T.EDGE_VERTICES):
            diff = np.abs(T.CORNERS[a] - T.CORNERS[b])
            assert diff[T.EDGE_AXIS[e]] == 1.0

    def test_edge_cell_offsets_locate_lower_vertex(self):
        for e, (a, b) in enumerate(T.EDGE_VERTICES):
            lower = np.minimum(T.CORNERS[a], T.CORNERS[b])
            assert np.array_equal(T.EDGE_CELL_OFFSET[e], lower.astype(np.int64))


class TestTableStructure:
    def test_empty_cases(self):
        assert T.N_TRI[0] == 0
        assert T.N_TRI[255] == 0

    def test_single_vertex_cases_one_triangle(self):
        for v in range(8):
            assert T.N_TRI[1 << v] == 1
            assert T.N_TRI[255 ^ (1 << v)] == 1

    def test_max_five_triangles(self):
        assert T.N_TRI.max() == 5
        assert T.MAX_TRI == 5

    def test_triangle_edges_are_crossing_edges(self):
        """Every edge referenced by a case's triangles must actually have
        endpoints of opposite sign in that case."""
        for case in range(256):
            for tri in T.TRI_TABLE[case]:
                for e in tri:
                    a, b = T.EDGE_VERTICES[e]
                    sa = (case >> a) & 1
                    sb = (case >> b) & 1
                    assert sa != sb, f"case {case} uses non-crossing edge {e}"

    def test_every_crossing_edge_is_used(self):
        """Conversely, every crossing edge appears in the triangulation
        (the isosurface touches every sign-changing lattice edge)."""
        for case in range(256):
            crossing = set()
            for e, (a, b) in enumerate(T.EDGE_VERTICES):
                if ((case >> a) & 1) != ((case >> b) & 1):
                    crossing.add(e)
            used = set()
            for tri in T.TRI_TABLE[case]:
                used.update(tri)
            assert used == crossing, f"case {case}: used {used} != crossing {crossing}"

    def test_no_degenerate_triangles(self):
        for case in range(256):
            for tri in T.TRI_TABLE[case]:
                assert len(set(tri)) == 3

    def test_padded_table_matches_list(self):
        for case in range(256):
            n = T.N_TRI[case]
            assert np.all(T.TRI_TABLE_PADDED[case, n:] == -1)
            for t, tri in enumerate(T.TRI_TABLE[case]):
                assert tuple(T.TRI_TABLE_PADDED[case, t]) == tri


class TestPatchTopology:
    def _patch_boundary_edges(self, case):
        """Directed edges of the triangle patch that are not shared by two
        triangles — must form the boundary cycles on the cube surface."""
        from collections import Counter

        cnt = Counter()
        for tri in T.TRI_TABLE[case]:
            for i in range(3):
                cnt[(tri[i], tri[(i + 1) % 3])] += 1
        boundary = []
        for (a, b), c in cnt.items():
            assert c == 1, f"case {case}: directed edge repeated"
            if cnt.get((b, a), 0) == 0:
                boundary.append((a, b))
        return boundary

    def test_patch_is_consistently_oriented(self):
        for case in range(256):
            self._patch_boundary_edges(case)  # asserts internally

    def test_boundary_is_union_of_cycles(self):
        for case in range(256):
            boundary = self._patch_boundary_edges(case)
            out_deg = {}
            in_deg = {}
            for a, b in boundary:
                out_deg[a] = out_deg.get(a, 0) + 1
                in_deg[b] = in_deg.get(b, 0) + 1
            assert all(v == 1 for v in out_deg.values()), f"case {case}"
            assert all(v == 1 for v in in_deg.values()), f"case {case}"
            assert set(in_deg) == set(out_deg)


class TestFaceConsistency:
    """The crack-freedom argument: two adjacent cubes must induce the same
    segment set on their shared face.  Since the construction only looks
    at the face's corner signs, it suffices to check that each face's
    segments depend only on those signs — verified by comparing the two
    x-faces of a case against each other under sign transfer."""

    def test_face_rule_depends_only_on_corner_signs(self):
        from repro.mc.tables import _FACES, _face_segments

        rng = np.random.default_rng(0)
        for _ in range(200):
            case = int(rng.integers(0, 256))
            for normal, cyc, edges in _FACES:
                segs1 = _face_segments(case, normal, cyc, edges)
                # Rebuild a second case with identical signs on this face
                # but random signs elsewhere; segments must be identical.
                case2 = int(rng.integers(0, 256))
                for c in cyc:
                    case2 = (case2 & ~(1 << c)) | (case & (1 << c))
                segs2 = _face_segments(case2, normal, cyc, edges)
                assert sorted(segs1) == sorted(segs2)

    def test_orientation_points_away_from_positive(self):
        """For single-positive-vertex cases the triangle normal must point
        away from the positive corner (normals toward negative side)."""
        mids = T._EDGE_MIDPOINTS
        for v in range(8):
            tri = T.TRI_TABLE[1 << v][0]
            pts = mids[list(tri)]
            n = np.cross(pts[1] - pts[0], pts[2] - pts[0])
            to_positive = T.CORNERS[v] - pts.mean(axis=0)
            assert np.dot(n, to_positive) < 0


class TestComplementBehaviour:
    def test_complement_cases_same_crossing_edges(self):
        for case in range(256):
            assert T.EDGE_MASK[case] == T.EDGE_MASK[255 ^ case]

    def test_complement_triangle_counts_close(self):
        """Complement cases triangulate the same crossing set; counts can
        differ only via the ambiguous-face resolution (at most a couple
        of triangles)."""
        for case in range(256):
            assert abs(int(T.N_TRI[case]) - int(T.N_TRI[255 ^ case])) <= 2
