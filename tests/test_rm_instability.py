"""Tests for the Richtmyer–Meshkov-like time-varying generator.

These assert the *statistical contract* the substitution relies on (see
DESIGN.md): large constant gas regions, an active mixing band whose
extent grows with time, determinism, and one-byte output.
"""

import numpy as np
import pytest

from repro.grid.metacell import partition_metacells
from repro.grid.rm_instability import RMInstabilityModel, rm_time_series, rm_timestep


class TestModelBasics:
    def test_output_is_one_byte(self):
        vol = rm_timestep(100, shape=(24, 24, 20))
        assert vol.dtype == np.uint8
        assert vol.shape == (24, 24, 20)

    def test_deterministic(self):
        a = rm_timestep(50, shape=(16, 16, 12), seed=3)
        b = rm_timestep(50, shape=(16, 16, 12), seed=3)
        assert np.array_equal(a.data, b.data)

    def test_seed_changes_field(self):
        a = rm_timestep(50, shape=(16, 16, 12), seed=3)
        b = rm_timestep(50, shape=(16, 16, 12), seed=4)
        assert not np.array_equal(a.data, b.data)

    def test_two_gas_plateaus(self):
        """Early in the run, most voxels sit near the two gas values."""
        model = RMInstabilityModel(shape=(32, 32, 30))
        vol = model.evaluate(5)
        light = np.abs(vol.data.astype(float) - model.light_value) < 12
        heavy = np.abs(vol.data.astype(float) - model.heavy_value) < 12
        assert (light | heavy).mean() > 0.75

    def test_time_step_bounds(self):
        model = RMInstabilityModel(shape=(8, 8, 8), n_steps=10)
        with pytest.raises(ValueError):
            model.evaluate(10)
        with pytest.raises(ValueError):
            model.evaluate(-1)
        model.evaluate(9)  # last valid step

    def test_rejects_bad_step_count(self):
        with pytest.raises(ValueError):
            RMInstabilityModel(n_steps=0)


class TestPhysicalTrends:
    def test_mixing_layer_grows(self):
        model = RMInstabilityModel(shape=(8, 8, 8), n_steps=270)
        assert model.mixing_width(250) > model.mixing_width(20)
        assert model.amplitude(250) > model.amplitude(20)
        assert model.turbulence_strength(250) > model.turbulence_strength(20)

    def test_interface_drifts_with_shock(self):
        model = RMInstabilityModel(shape=(8, 8, 8), n_steps=270)
        assert model.interface_z(260) > model.interface_z(10)

    def test_active_band_widens_with_time(self):
        """More non-constant metacells late in the run (mixing spreads)."""
        model = RMInstabilityModel(shape=(33, 33, 33), n_steps=270)
        early = partition_metacells(model.evaluate(20), (5, 5, 5))
        late = partition_metacells(model.evaluate(250), (5, 5, 5))
        n_early = (~early.constant_mask()).sum()
        n_late = (~late.constant_mask()).sum()
        assert n_late > n_early


class TestConstantFraction:
    def test_substantial_constant_metacell_fraction(self):
        """The paper culls ~50% of the RM data as constant metacells; the
        stand-in must have a substantial constant fraction too (exact
        value depends on resolution)."""
        vol = rm_timestep(120, shape=(65, 65, 57))
        part = partition_metacells(vol, (9, 9, 9))
        frac = part.constant_mask().mean()
        assert 0.2 < frac < 0.9


class TestTimeSeries:
    def test_series_yields_requested_steps(self):
        steps = [0, 5, 9]
        out = list(rm_time_series(steps, shape=(12, 12, 10), n_steps=10))
        assert [t for t, _ in out] == steps
        for _, vol in out:
            assert vol.shape == (12, 12, 10)

    def test_series_is_lazy(self):
        gen = rm_time_series(range(1000), shape=(12, 12, 10), n_steps=1000)
        t, vol = next(gen)
        assert t == 0

    def test_interface_height_shape(self):
        model = RMInstabilityModel(shape=(20, 24, 16))
        h = model.interface_height(100, 20, 24)
        assert h.shape == (20, 24)
        assert np.all((h > 0) & (h < 1))
