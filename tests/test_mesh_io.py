"""Tests for OBJ/PLY mesh export and import."""

import numpy as np
import pytest

from repro.grid.datasets import sphere_field
from repro.mc.geometry import TriangleMesh
from repro.mc.marching_cubes import marching_cubes
from repro.mc.mesh_io import read_obj, read_ply, write_obj, write_ply


@pytest.fixture(scope="module")
def sphere_mesh():
    vol = sphere_field((20, 20, 20))
    return marching_cubes(vol.data, 0.6, origin=vol.origin, spacing=vol.spacing)


class TestOBJ:
    def test_roundtrip(self, tmp_path, sphere_mesh):
        path = write_obj(tmp_path / "m.obj", sphere_mesh, comment="test mesh")
        back = read_obj(path)
        assert back.n_vertices == sphere_mesh.n_vertices
        assert back.n_triangles == sphere_mesh.n_triangles
        assert np.allclose(back.vertices, sphere_mesh.vertices, atol=1e-6)
        assert np.array_equal(back.faces, sphere_mesh.faces)

    def test_roundtrip_preserves_topology(self, tmp_path, sphere_mesh):
        back = read_obj(write_obj(tmp_path / "t.obj", sphere_mesh))
        back.validate_watertight()
        assert back.euler_characteristic() == sphere_mesh.euler_characteristic()

    def test_polygon_fanning(self, tmp_path):
        p = tmp_path / "quad.obj"
        p.write_text("v 0 0 0\nv 1 0 0\nv 1 1 0\nv 0 1 0\nf 1 2 3 4\n")
        mesh = read_obj(p)
        assert mesh.n_triangles == 2

    def test_face_with_texture_refs(self, tmp_path):
        p = tmp_path / "tex.obj"
        p.write_text("v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1/1 2/2 3/3\n")
        assert read_obj(p).n_triangles == 1

    def test_malformed_rejected(self, tmp_path):
        p = tmp_path / "bad.obj"
        p.write_text("v 0 0\n")
        with pytest.raises(ValueError):
            read_obj(p)

    def test_empty_mesh(self, tmp_path):
        back = read_obj(write_obj(tmp_path / "e.obj", TriangleMesh()))
        assert back.n_triangles == 0


class TestPLY:
    def test_roundtrip(self, tmp_path, sphere_mesh):
        path = write_ply(tmp_path / "m.ply", sphere_mesh)
        back = read_ply(path)
        assert back.n_triangles == sphere_mesh.n_triangles
        assert np.allclose(back.vertices, sphere_mesh.vertices, atol=1e-6)
        assert np.array_equal(back.faces, sphere_mesh.faces)

    def test_roundtrip_with_normals(self, tmp_path, sphere_mesh):
        normals = sphere_mesh.vertex_normals()
        path = write_ply(tmp_path / "n.ply", sphere_mesh, normals=normals)
        back = read_ply(path)  # normals parsed and dropped
        assert back.n_vertices == sphere_mesh.n_vertices
        header = path.read_bytes()[:400].decode(errors="ignore")
        assert "property float nx" in header

    def test_header_counts(self, tmp_path, sphere_mesh):
        path = write_ply(tmp_path / "h.ply", sphere_mesh)
        header = path.read_bytes()[:200].decode(errors="ignore")
        assert f"element vertex {sphere_mesh.n_vertices}" in header
        assert f"element face {sphere_mesh.n_triangles}" in header

    def test_area_preserved_modulo_float32(self, tmp_path, sphere_mesh):
        back = read_ply(write_ply(tmp_path / "a.ply", sphere_mesh))
        assert back.area() == pytest.approx(sphere_mesh.area(), rel=1e-5)
