"""Cross-query result reuse: the λ-keyed result cache end to end.

The contract under test (ISSUE acceptance):

* **bit-identity** — cached, coalesced, and sweep-delta answers are
  byte-for-byte the triangles of a cold run, across seeds, fault plans,
  and an elastic scale event;
* **epoch fencing** — an ownership-epoch bump invalidates every key of
  the previous assignment: zero stale hits, post-event answers match a
  cold cluster;
* **accounting** — coalesced requests refund their fair-share charge
  and charge only their own queue wait, so reuse never distorts DRR or
  deadline bookkeeping.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.grid.datasets import sphere_field
from repro.io.cache import CacheOptions
from repro.parallel.cluster import ExtractRequest, SimulatedCluster
from repro.serve.rcache import CachedNodeResult, ResultCache, cluster_fingerprint

MB = 1 << 20


def _meshes_equal(a, b) -> bool:
    """Byte-identical triangle soups, node by node."""
    if len(a) != len(b):
        return False
    return all(
        am.n_triangles == bm.n_triangles
        and np.array_equal(am.vertices, bm.vertices)
        and np.array_equal(am.faces, bm.faces)
        for am, bm in zip(a, b)
    )


def _build(seed: int = 0, cache: "CacheOptions | None" = None,
           fault_plans=None) -> SimulatedCluster:
    rng = np.random.default_rng(seed)
    vol = sphere_field((24, 24, 24))
    vol.data[:] += rng.normal(0.0, 0.01, vol.data.shape)
    return SimulatedCluster(
        vol, 4, metacell_shape=(5, 5, 5), replication=2,
        cache=cache, fault_plans=fault_plans or {},
    )


class TestResultCacheUnit:
    def _mesh(self, n: int) -> CachedNodeResult:
        from repro.mc.geometry import TriangleMesh

        verts = np.zeros((3 * n, 3), dtype=np.float64)
        faces = np.arange(3 * n, dtype=np.int64).reshape(n, 3)
        return CachedNodeResult(
            mesh=TriangleMesh(verts, faces), normals=None, n_active=n,
            n_cells_examined=n, n_triangles=n, n_records_read=n,
        )

    def test_lru_eviction_under_byte_budget(self):
        rc = ResultCache(capacity_bytes=8_000)
        view = rc.view(("fp",), epoch=0)
        for lam in (0.1, 0.2, 0.3, 0.4):
            view.mesh_put(0, lam, False, self._mesh(50))  # ~1.8 KB each
        assert rc.stats.evictions > 0
        assert rc.nbytes <= 8_000
        # Most recent keys survived; the oldest was evicted.
        assert view.mesh_get(0, 0.4, False) is not None
        assert view.mesh_get(0, 0.1, False) is None

    def test_oversize_entry_is_rejected(self):
        rc = ResultCache(capacity_bytes=100)
        view = rc.view(("fp",), epoch=0)
        view.mesh_put(0, 0.5, False, self._mesh(1000))
        assert len(rc) == 0

    def test_epoch_fences_all_tiers(self):
        rc = ResultCache(capacity_bytes=1 * MB)
        old = rc.view(("fp",), epoch=0)
        old.mesh_put(0, 0.5, False, self._mesh(10))
        old.mesh_put(1, 0.5, False, self._mesh(10))
        n = rc.invalidate_epoch(epoch=1)
        assert n == 2 and len(rc) == 0
        assert rc.stats.invalidations == 2
        # The stale view cannot resurrect entries for the new epoch.
        assert rc.view(("fp",), epoch=1).mesh_get(0, 0.5, False) is None

    def test_populate_gate_makes_stores_noops(self):
        rc = ResultCache(capacity_bytes=1 * MB)
        shed = rc.view(("fp",), epoch=0, populate=False)
        shed.mesh_put(0, 0.5, False, self._mesh(10))
        assert len(rc) == 0
        # Lookups still work through a non-populating view.
        rc.view(("fp",), epoch=0).mesh_put(0, 0.5, False, self._mesh(10))
        assert shed.mesh_get(0, 0.5, False) is not None

    def test_fingerprint_separates_builds(self):
        a = _build(seed=0, cache=CacheOptions(result_cache_bytes=MB))
        b = _build(seed=1)
        assert cluster_fingerprint(a.datasets) == cluster_fingerprint(a.datasets)
        # Same topology, same shapes -> the fingerprint intentionally
        # matches only when the stored record layout matches.
        fa, fb = cluster_fingerprint(a.datasets), cluster_fingerprint(b.datasets)
        assert (fa == fb) == (fa[4] == fb[4])


class TestBitIdentityAcrossReuse:
    SWEEP = (0.42, 0.44, 0.46, 0.44, 0.42, 0.46, 0.60, 0.44)

    @pytest.mark.parametrize("seed,faults", [
        (0, None),
        (1, "transient=0.05,seed=3"),
        (7, "transient=0.03,latency=0.001:0.0005,seed=11"),
    ])
    def test_cached_sweep_matches_cold(self, seed, faults):
        from repro.io.faults import FaultPlan

        plans = (
            {r: FaultPlan.from_spec(faults) for r in range(4)} if faults else {}
        )
        cold = _build(seed=seed, fault_plans=plans)
        hot = _build(
            seed=seed, fault_plans=plans,
            cache=CacheOptions(result_cache_bytes=8 * MB, lambda_bucket=0.05),
        )
        req = ExtractRequest(keep_meshes=True)
        for lam in self.SWEEP:
            want = cold.extract(lam, req)
            got = hot.extract(lam, req)
            assert _meshes_equal(want.meshes, got.meshes), lam
            assert got.n_triangles == want.n_triangles
        assert hot.result_cache.stats.hits > 0

    def test_cached_replay_does_no_read_io(self):
        hot = _build(cache=CacheOptions(result_cache_bytes=8 * MB))
        hot.extract(0.5, ExtractRequest())
        before = sum(d.device.stats.bytes_read for d in hot.datasets)
        hot.extract(0.5, ExtractRequest())
        after = sum(d.device.stats.bytes_read for d in hot.datasets)
        assert after == before  # the whole answer came from the mesh tier

    def test_sweep_delta_planner_matches_execute_query(self):
        from repro.core.builder import build_indexed_dataset
        from repro.core.multi_query import execute_sweep_query
        from repro.core.query import execute_query

        ds = build_indexed_dataset(sphere_field((25, 25, 25)), (5, 5, 5))
        res = execute_sweep_query(ds, self.SWEEP)
        for step in res.steps:
            want = execute_query(ds, step.lam)
            assert np.array_equal(want.records.ids, step.records.ids)
            assert np.array_equal(want.records.vmins, step.records.vmins)
            assert np.array_equal(want.records.values, step.records.values)
        # Revisited isovalues are free; the sweep read each record once.
        assert res.steps[3].n_delta_records == 0
        assert res.steps[4].n_delta_records == 0
        assert res.n_records_read < res.n_records_served

    def test_sweep_delta_io_strictly_less_than_cold(self):
        from repro.core.builder import build_indexed_dataset
        from repro.core.multi_query import execute_sweep_query
        from repro.core.query import execute_query

        ds = build_indexed_dataset(sphere_field((25, 25, 25)), (5, 5, 5))
        res = execute_sweep_query(ds, self.SWEEP)
        cold = 0
        for lam in self.SWEEP:
            before = ds.device.stats.copy()
            execute_query(ds, lam)
            cold += (ds.device.stats.copy() - before).bytes_read
        assert res.io_stats.bytes_read * 3 <= cold


class TestEpochInvalidation:
    def test_elastic_scale_event_fences_the_cache(self):
        from repro.elastic.cluster import ElasticCluster

        vol = sphere_field((24, 24, 24))
        hot = ElasticCluster(
            vol, nodes=3, n_stripes=6, metacell_shape=(5, 5, 5),
            cache=CacheOptions(result_cache_bytes=8 * MB),
        )
        cold = ElasticCluster(vol, nodes=3, n_stripes=6,
                              metacell_shape=(5, 5, 5))
        req = ExtractRequest(keep_meshes=True)
        for lam in (0.45, 0.5, 0.45):
            hot.extract(lam, req)
        assert len(hot.result_cache) > 0
        epoch_before = hot.ownership.epoch

        # Scale event: join a node and migrate a stripe onto it.
        from repro.elastic.membership import MemberState

        for c in (hot, cold):
            nid = c.join(now=0.0)
            c.membership.transition(nid, MemberState.SYNCING, now=0.0)
            c.membership.transition(nid, MemberState.ACTIVE, now=0.0)
            c.migrate_primary(0, nid)
        assert hot.ownership.epoch > epoch_before
        # Every pre-event key was fenced out: zero stale entries remain.
        assert len(hot.result_cache) == 0
        assert hot.result_cache.stats.invalidations > 0

        for lam in (0.45, 0.5):
            want = cold.extract(lam, req)
            got = hot.extract(lam, req)
            assert got.n_triangles == want.n_triangles
            assert _meshes_equal(want.meshes, got.meshes)

    def test_failover_promotion_fences_the_cache(self):
        hot = _build(cache=CacheOptions(result_cache_bytes=8 * MB))
        hot.extract(0.5, ExtractRequest())
        assert len(hot.result_cache) > 0
        hot.ownership.assign(0, 1, reason="failover")
        assert len(hot.result_cache) == 0


class TestServingCoalescing:
    def _serve(self, coalesce: bool, result_cache_mb: int = 4):
        from repro.serve import (
            BrownoutConfig,
            QueryServer,
            ServeConfig,
            TenantSpec,
            TrafficConfig,
            generate_trace,
        )

        cluster = _build(cache=CacheOptions(
            result_cache_bytes=result_cache_mb * MB,
            lambda_bucket=0.02, coalesce=coalesce,
        ) if result_cache_mb else None)
        unit = cluster.estimate_extract_time(0.5)
        tenants = (
            TenantSpec(name="gold", tier="gold", arrival_share=0.5,
                       rate=4.0 / unit, burst=16,
                       deadline_budget=8 * unit),
            TenantSpec(name="bulk", tier="bulk", arrival_share=0.5,
                       rate=4.0 / unit, burst=16,
                       deadline_budget=24 * unit),
        )
        trace = generate_trace(
            TrafficConfig(duration=40 * unit, base_rate=4.0 / unit,
                          isovalues=(0.45, 0.46, 0.5), seed=5),
            tenants,
        )
        cache = (
            CacheOptions(result_cache_bytes=result_cache_mb * MB,
                         lambda_bucket=0.02, coalesce=coalesce)
            if result_cache_mb else None
        )
        server = QueryServer(cluster, ServeConfig(
            tenants=tenants, n_executors=2, max_queue_depth=32,
            quantum=unit / 5, brownout=BrownoutConfig(eval_interval=unit),
            cache=cache,
        ))
        return server, server.serve(trace)

    def test_coalesced_run_answers_match_uncached(self):
        _, plain = self._serve(coalesce=False, result_cache_mb=0)
        _, hot = self._serve(coalesce=True)
        want = {r.request_id: r for r in plain.records}
        n_coalesced = 0
        for r in hot.records:
            n_coalesced += r.coalesced
            if r.state == "ok" and want[r.request_id].state == "ok":
                assert r.triangles == want[r.request_id].triangles, (
                    r.request_id
                )
        assert n_coalesced > 0
        assert not hot.by_state("failed")

    def test_waiters_consume_no_service_and_refund_their_charge(self):
        server, report = self._serve(coalesce=True)
        waiters = [r for r in report.records if r.coalesced]
        assert waiters, "trace produced no coalesced requests"
        for r in waiters:
            assert r.service_time == 0.0
            assert r.latency >= 0.0
        # The deficit invariant survived: the run dispatched to the end
        # without tripping the scheduler's provable-bound guard, and no
        # tenant holds positive credit with an empty queue.
        for name in ("bulk", "gold"):
            if not server.scheduler._queues[name]:
                assert server.scheduler.deficit(name) <= 1e-9

    def test_payload_reports_cache_and_coalescing(self):
        _, report = self._serve(coalesce=True)
        m = report.to_payload()["metrics"]
        assert m["coalesced"] > 0
        assert m["rcache_hits"] > 0
        assert 0.0 <= m["rcache_hit_rate"] <= 1.0
        _, off = self._serve(coalesce=False, result_cache_mb=0)
        m_off = off.to_payload()["metrics"]
        assert m_off["coalesced"] == 0
        assert m_off["rcache_hits"] == 0  # keys always present


class TestAdmissionAndSchedulerHooks:
    def test_cached_fraction_validation(self):
        from repro.serve import TenantSpec
        from repro.serve.admission import AdmissionController
        from repro.serve.traffic import QueryRequest

        tenants = (TenantSpec(name="t", tier="gold", arrival_share=1.0,
                              rate=10.0, burst=8, deadline_budget=1.0),)
        ctrl = AdmissionController(tenants, max_queue_depth=4)
        req = QueryRequest(request_id=0, tenant="t", tier="gold", lam=0.5,
                           arrival=0.0, budget=1.0)
        with pytest.raises(ValueError):
            ctrl.admit(req, 0.0, 0, 0.0, 1.0, cached_fraction=1.5)
        with pytest.raises(ValueError):
            ctrl.admit(req, 0.0, 0, 0.0, 1.0, cached_fraction=-0.1)

    def test_cached_fraction_discounts_feasibility(self):
        from repro.serve import TenantSpec
        from repro.serve.admission import AdmissionController
        from repro.serve.traffic import QueryRequest

        tenants = (TenantSpec(name="t", tier="gold", arrival_share=1.0,
                              rate=10.0, burst=8, deadline_budget=1.0),)
        ctrl = AdmissionController(tenants, max_queue_depth=4)
        req = QueryRequest(request_id=0, tenant="t", tier="gold", lam=0.5,
                           arrival=0.0, budget=1.0)
        # Infeasible cold (cost 2 > budget 1) ...
        rej = ctrl.admit(req, 0.0, 0, 0.0, est_cost=2.0)
        assert rej is not None and rej.reason == "deadline_infeasible"
        # ... admitted when the cache serves 80% of its stripes.
        assert ctrl.admit(req, 0.0, 0, 0.0, est_cost=2.0,
                          cached_fraction=0.8) is None

    def test_scheduler_refund(self):
        from repro.serve import DeficitRoundRobin, TenantSpec

        tenants = (TenantSpec(name="a", tier="gold", arrival_share=1.0),)
        drr = DeficitRoundRobin(tenants, quantum=1.0)
        with pytest.raises(ValueError):
            drr.refund("a", -0.5)
        # Empty queue: a refund cannot bank positive credit ...
        drr.refund("a", 5.0)
        assert drr.deficit("a") == 0.0
        # ... but it does repay preemption debt.
        drr._deficit["a"] = -2.0
        drr.refund("a", 1.5)
        assert drr.deficit("a") == pytest.approx(-0.5)
