"""Smoke tests: every example script must run to completion.

Examples are executed in a temporary working directory (they write
output artifacts) with reduced arguments where supported.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"
SRC = Path(__file__).resolve().parents[1] / "src"


def _example_env() -> "dict[str, str]":
    """Subprocess env with the in-repo package importable (PYTHONPATH=src)."""
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        f"{SRC}{os.pathsep}{existing}" if existing else str(SRC)
    )
    return env

#: (script, argv) — arguments keep runtimes modest.
CASES = [
    ("quickstart.py", []),
    ("render_isosurface.py", ["200", "150"]),
    ("cluster_scaling.py", []),
    ("timevarying_exploration.py", []),
    ("out_of_core_files.py", []),
    ("multiprocessing_cluster.py", []),
    ("unstructured_mesh.py", []),
    ("fault_tolerance.py", []),
    ("deadline_query.py", []),
    ("isovalue_explorer.py", []),
    ("mixing_animation.py", ["2"]),
]


@pytest.mark.parametrize("script,argv", CASES, ids=[c[0] for c in CASES])
def test_example_runs(tmp_path, script, argv):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *argv],
        cwd=tmp_path,
        env=_example_env(),
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, (
        f"{script} failed:\nstdout:\n{proc.stdout[-2000:]}\n"
        f"stderr:\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{script} produced no output"


def test_every_example_is_covered():
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    covered = {c[0] for c in CASES}
    assert on_disk == covered, (
        f"examples drifted: uncovered {on_disk - covered}, stale {covered - on_disk}"
    )
