"""Unit and property tests for the metacell record codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io.layout import MetacellCodec, MetacellRecords


class TestRecordSize:
    def test_paper_record_size(self):
        # Section 7: 4-byte id + 1-byte vmin + 9*9*9 one-byte scalars = 734.
        codec = MetacellCodec((9, 9, 9), np.uint8)
        assert codec.record_size == 734

    def test_two_byte_scalars(self):
        codec = MetacellCodec((5, 5, 5), np.uint16)
        assert codec.record_size == 4 + 2 + 125 * 2

    def test_float_scalars(self):
        codec = MetacellCodec((3, 3, 3), np.float32)
        assert codec.record_size == 4 + 4 + 27 * 4

    def test_rejects_degenerate_shape(self):
        with pytest.raises(ValueError):
            MetacellCodec((1, 5, 5), np.uint8)
        with pytest.raises(ValueError):
            MetacellCodec((5, 5), np.uint8)  # type: ignore[arg-type]


class TestRoundTrip:
    def _sample(self, codec, n, rng):
        info_max = 255 if codec.scalar_dtype == np.uint8 else 1000
        ids = rng.integers(0, 2**31, size=n).astype(np.uint32)
        values = rng.integers(0, info_max, size=(n, codec.values_per_record)).astype(
            codec.scalar_dtype
        )
        vmins = values.min(axis=1)
        return ids, vmins, values

    def test_encode_decode_roundtrip(self):
        codec = MetacellCodec((3, 3, 3), np.uint8)
        rng = np.random.default_rng(0)
        ids, vmins, values = self._sample(codec, 10, rng)
        blob = codec.encode(ids, vmins, values)
        assert len(blob) == 10 * codec.record_size
        rec = codec.decode(blob)
        assert np.array_equal(rec.ids, ids)
        assert np.array_equal(rec.vmins, vmins)
        assert np.array_equal(rec.values, values)

    def test_decode_ignores_partial_trailing_record(self):
        codec = MetacellCodec((3, 3, 3), np.uint8)
        rng = np.random.default_rng(1)
        ids, vmins, values = self._sample(codec, 3, rng)
        blob = codec.encode(ids, vmins, values)
        rec = codec.decode(blob[: 2 * codec.record_size + 7])
        assert len(rec) == 2
        assert codec.decode_count(blob[:5]) == 0

    def test_encode_accepts_grid_shaped_values(self):
        codec = MetacellCodec((3, 3, 3), np.uint8)
        values = np.arange(27, dtype=np.uint8).reshape(1, 3, 3, 3)
        blob = codec.encode(
            np.array([7], dtype=np.uint32), np.array([0], dtype=np.uint8), values
        )
        rec = codec.decode(blob)
        assert np.array_equal(codec.values_grid(rec)[0], values[0])

    def test_length_mismatch_raises(self):
        codec = MetacellCodec((3, 3, 3), np.uint8)
        with pytest.raises(ValueError):
            codec.encode(
                np.array([1, 2], dtype=np.uint32),
                np.array([0], dtype=np.uint8),
                np.zeros((2, 27), dtype=np.uint8),
            )

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(0, 40),
        seed=st.integers(0, 2**16),
        dtype=st.sampled_from([np.uint8, np.uint16, np.float32]),
    )
    def test_roundtrip_property(self, n, seed, dtype):
        codec = MetacellCodec((3, 3, 3), dtype)
        rng = np.random.default_rng(seed)
        if np.dtype(dtype).kind == "f":
            values = rng.random((n, 27)).astype(dtype)
        else:
            values = rng.integers(0, np.iinfo(dtype).max, size=(n, 27)).astype(dtype)
        ids = rng.integers(0, 2**32 - 1, size=n).astype(np.uint32)
        vmins = values.min(axis=1) if n else np.empty(0, dtype=dtype)
        rec = codec.decode(codec.encode(ids, vmins, values))
        assert np.array_equal(rec.ids, ids)
        assert np.array_equal(rec.values, values)


class TestMetacellRecords:
    def test_empty(self):
        codec = MetacellCodec((3, 3, 3), np.uint8)
        rec = MetacellRecords.empty(codec)
        assert len(rec) == 0
        assert rec.values.shape == (0, 27)

    def test_concat(self):
        codec = MetacellCodec((3, 3, 3), np.uint8)
        rng = np.random.default_rng(2)
        parts = []
        for n in (3, 0, 5):
            values = rng.integers(0, 255, size=(n, 27)).astype(np.uint8)
            parts.append(
                MetacellRecords(
                    ids=np.arange(n, dtype=np.uint32),
                    vmins=(values.min(axis=1) if n else np.empty(0, np.uint8)),
                    values=values,
                )
            )
        whole = MetacellRecords.concat(parts)
        assert len(whole) == 8

    def test_concat_empty_list_raises(self):
        with pytest.raises(ValueError):
            MetacellRecords.concat([])
