#!/usr/bin/env python3
"""Quickstart: preprocess a volume once, extract isosurfaces out-of-core.

This walks the whole serial pipeline of the paper on an analytic field
whose isosurfaces are spheres, so every number printed can be checked
against geometry you know:

    volume -> metacells -> compact interval tree + brick layout
           -> query(iso) -> Marching Cubes -> mesh -> image

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import math

from repro import IsosurfacePipeline, sphere_field
from repro.render.image import ascii_preview, write_ppm


def main() -> None:
    # A 65^3 field whose value at each vertex is the distance from the
    # domain center: the isosurface at value r is the radius-r sphere.
    volume = sphere_field((65, 65, 65))
    print(f"volume: {volume.shape}, {volume.nbytes / 1024:.0f} KiB raw")

    # Preprocess once: metacell decomposition, constant culling, compact
    # interval tree, span-space brick layout on a simulated disk.
    pipe = IsosurfacePipeline.from_volume(volume, metacell_shape=(5, 5, 5))
    rep = pipe.report
    print(
        f"preprocessed: {rep.n_metacells_stored}/{rep.n_metacells_total} metacells "
        f"stored, index {rep.index_bytes} bytes, tree height {rep.tree_height}"
    )
    lo, hi = pipe.isovalue_range()
    print(f"isovalue range with geometry: [{lo:.3f}, {hi:.3f}]")

    # Query several isovalues against the same on-disk layout.
    for iso in (0.3, 0.5, 0.7, 0.9):
        res = pipe.extract(iso)
        mesh = res.mesh.weld()
        vol_err = abs(abs(mesh.enclosed_volume()) - 4 / 3 * math.pi * iso**3)
        print(
            f"iso {iso:.1f}: {res.n_active_metacells:4d} active metacells, "
            f"{res.n_triangles:6d} triangles, closed={mesh.is_closed()}, "
            f"|volume error|={vol_err:.4f}, "
            f"blocks read={res.query.io_stats.blocks_read}, "
            f"modeled I/O {res.metrics.io_time * 1e3:.2f} ms, "
            f"triangulation {res.metrics.triangulation_time * 1e3:.2f} ms"
        )

    # Render the last surface and save a PPM anyone can open.
    res = pipe.extract(0.8, render=True, image_size=(320, 320))
    out = write_ppm("quickstart_sphere.ppm", res.image.to_uint8())
    print(f"\nrendered iso 0.8 to {out}")
    print(ascii_preview(res.image.to_uint8(), width=56))


if __name__ == "__main__":
    main()
