#!/usr/bin/env python3
"""Deadline-bounded extraction: hedged reads, speculation, and health.

One node of a replicated (r=2) cluster gets a disk that stalls: a
seeded fault plan injects half-second latency spikes on a quarter of
its reads.  The same deadline-bounded query then runs three ways:

1. **no hedging** — the spiky node blows its stage budget, its query is
   cut off at the deadline, and the result comes back *partial*:
   coverage < 100%, the skipped span-space bricks listed, the deadline
   report marked missed;
2. **hedged reads** — each read whose primary attempt exceeds the
   latency-quantile threshold is re-issued against the chained-
   declustering replica and the first completion wins.  Spikes are
   absorbed, the deadline holds, and the image is **bit-identical** to
   a healthy run;
3. **straggler speculation** — with hedging disabled but speculation
   on, the straggler's whole query is re-executed on the replica host
   at the stage-budget mark, again bit-identical and inside budget.

Finally the health state machine watches repeated queries against the
spiky node: it goes suspect, the circuit opens, queries route around it
proactively, and a half-open probe checks for recovery.

Run:  python examples/deadline_query.py
"""

from __future__ import annotations

import numpy as np

from repro import sphere_field
from repro.io.faults import FaultPlan, HedgePolicy
from repro.parallel.cluster import SimulatedCluster

ISO = 0.5
SHAPE = (24, 24, 24)
METACELL = (5, 5, 5)
VICTIM = 2
SPIKES = FaultPlan(seed=1, latency_spike_rate=0.25, latency_spike_seconds=0.5)


def build(plan=None) -> SimulatedCluster:
    plans = {VICTIM: plan} if plan else None
    return SimulatedCluster(
        sphere_field(SHAPE), p=4, metacell_shape=METACELL,
        replication=2, fault_plans=plans,
    )


def main() -> None:
    healthy = build().extract(ISO, render=True)
    budget = healthy.total_time * 3
    print(f"healthy run: {healthy.n_triangles} triangles in "
          f"{healthy.total_time * 1e3:.1f} ms modeled; "
          f"deadline budget {budget * 1e3:.1f} ms")

    print(f"\n=== 1. spiky node {VICTIM}, no hedging: deadline-partial ===")
    partial = build(SPIKES).extract(
        ISO, render=True, deadline=budget, hedge=None, speculate=False
    )
    dl = partial.deadline
    assert not dl.met and partial.degraded
    print(f"  coverage {partial.coverage:.1%}, deadline "
          f"{'met' if dl.met else 'MISSED'}, expired nodes {dl.expired_nodes}")
    print(f"  skipped span-space bricks: {partial.skipped_bricks}")

    print(f"\n=== 2. same faults, hedged reads: deadline met ===")
    hedged = build(SPIKES).extract(
        ISO, render=True, deadline=budget, hedge=HedgePolicy(), speculate=False
    )
    assert hedged.deadline.met and not hedged.degraded
    assert np.array_equal(hedged.image.color, healthy.image.color)
    assert np.array_equal(hedged.image.depth, healthy.image.depth)
    print(f"  {hedged.n_hedged_reads} hedged reads, "
          f"{hedged.n_hedge_wins} replica wins")
    print(f"  coverage {hedged.coverage:.1%} in {hedged.total_time * 1e3:.1f} "
          f"of {budget * 1e3:.1f} ms — image bit-identical to healthy run")

    print(f"\n=== 3. same faults, speculation instead of hedging ===")
    spiky = FaultPlan(seed=7, latency_spike_rate=0.25, latency_spike_seconds=0.5)
    spec = build(spiky).extract(
        ISO, render=True, deadline=budget, hedge=None, speculate=True
    )
    assert spec.deadline.met and not spec.degraded
    assert np.array_equal(spec.image.color, healthy.image.color)
    print(f"  straggler {spec.deadline.expired_nodes} re-executed on replica "
          f"host {spec.nodes[VICTIM].speculated_to} at the "
          f"{spec.deadline.node_budget * 1e3:.1f} ms mark")
    print(f"  coverage {spec.coverage:.1%} in {spec.total_time * 1e3:.1f} ms "
          f"— image bit-identical again")

    print(f"\n=== 4. the health circuit breaker learns ===")
    cluster = build(FaultPlan(seed=3, latency_spike_rate=0.6,
                              latency_spike_seconds=0.2))
    for i in range(5):
        r = cluster.extract(ISO)
        routed = [m.node_rank for m in r.nodes if m.circuit_open]
        state = cluster.health.state(VICTIM)
        note = f" (routed around {routed})" if routed else ""
        print(f"  query {i + 1}: node {VICTIM} is {state}{note}")
    print()
    print(cluster.health.report())


if __name__ == "__main__":
    main()
