#!/usr/bin/env python3
"""Animate the mixing front: one frame per time step.

Renders the RM-instability stand-in's isosurface over a window of time
steps with a fixed camera, writing numbered PPM frames — the bubbles
and spikes grow and merge exactly as the paper's dataset description
promises.  Convert with e.g. ffmpeg -i frame_%03d.ppm mixing.gif

Run:  python examples/mixing_animation.py [n_frames] [outdir]
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

from repro import IsosurfacePipeline, rm_time_series
from repro.render.camera import Camera
from repro.render.image import write_ppm


def main() -> None:
    n_frames = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    outdir = Path(sys.argv[2]) if len(sys.argv) > 2 else Path("animation_frames")
    outdir.mkdir(parents=True, exist_ok=True)

    steps = np.linspace(40, 260, n_frames).astype(int).tolist()
    iso = 128.0
    camera = None

    print(f"rendering steps {steps} at isovalue {iso:g} ...")
    for frame, (t, volume) in enumerate(
        rm_time_series(steps, shape=(65, 65, 57), n_steps=270)
    ):
        pipe = IsosurfacePipeline.from_volume(volume)
        res = pipe.extract(iso)
        if res.n_triangles == 0:
            print(f"  step {t}: empty, skipped")
            continue
        if camera is None:
            # Fix the camera on the first populated frame so growth is
            # visible rather than compensated by reframing.
            camera = Camera.fit_mesh(res.mesh, direction=(1.0, -1.3, 0.9), margin=1.6)
        res = pipe.extract(iso, render=True, camera=camera, image_size=(320, 320))
        path = write_ppm(outdir / f"frame_{frame:03d}.ppm", res.image.to_uint8())
        print(
            f"  step {t:3d}: {res.n_active_metacells:4d} active metacells, "
            f"{res.n_triangles:6d} triangles -> {path.name}"
        )
    print(f"\nframes in {outdir}/ — the mixing layer thickens and the "
          "front roughens step over step.")


if __name__ == "__main__":
    main()
