#!/usr/bin/env python3
"""Genuinely out-of-core: preprocess to real files, query them back.

The in-memory simulated devices are convenient for experiments; this
example uses :class:`repro.io.FileBackedDevice` instead, so the brick
layout lives in actual files and queries read them back block by block
— the paper's real operating mode.  It also demonstrates persistence:
the second phase reopens the store without re-preprocessing.

Run:  python examples/out_of_core_files.py [workdir]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import FileBackedDevice, build_striped_datasets, execute_query, rm_timestep


def main() -> None:
    workdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp())
    workdir.mkdir(parents=True, exist_ok=True)
    p = 4

    print("=== phase 1: preprocess to disk ===")
    volume = rm_timestep(200, shape=(65, 65, 57))
    devices = [FileBackedDevice(workdir / f"node{q}.bricks") for q in range(p)]
    datasets = build_striped_datasets(volume, p, (9, 9, 9), devices=devices)
    for ds, dev in zip(datasets, devices):
        dev.flush()
        print(
            f"  node {ds.node_rank}: {ds.n_records:5d} records -> "
            f"{dev.path.name} ({dev.path.stat().st_size / 1024:.0f} KiB)"
        )
    print(f"  raw volume was {volume.nbytes / 1024:.0f} KiB; "
          f"index per node ~{datasets[0].tree.index_size_bytes()} bytes\n")

    print("=== phase 2: out-of-core queries against the files ===")
    for iso in (60.0, 120.0, 180.0):
        total_active = 0
        total_blocks = 0
        for ds in datasets:
            res = execute_query(ds, iso)
            total_active += res.n_active
            total_blocks += res.io_stats.blocks_read
        print(f"  iso {iso:5.0f}: {total_active:5d} active metacells, "
              f"{total_blocks:4d} blocks read across {p} disks")

    for dev in devices:
        dev.close()
    print(f"\nbrick files kept under {workdir} — rerun queries any time "
          "without re-preprocessing (FileBackedDevice(..., create=False)).")


if __name__ == "__main__":
    main()
