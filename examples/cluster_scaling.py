#!/usr/bin/env python3
"""Cluster scaling: the paper's Figures 5/6 in miniature.

Builds striped layouts of one RM-like time step for 1, 2, 4 and 8
simulated nodes, runs the same isovalue sweep on each, and prints
per-isovalue times, speedups, and the per-node load balance that makes
the speedups possible.

Run:  python examples/cluster_scaling.py
"""

from __future__ import annotations

from repro import rm_timestep
from repro.bench.harness import scaled_perf_model
from repro.core.builder import build_indexed_dataset
from repro.parallel.cluster import SimulatedCluster


def main() -> None:
    volume = rm_timestep(250, shape=(97, 97, 89))
    isovalues = list(range(30, 231, 40))

    # Granularity-scaled calibration (see repro.bench.harness docstring).
    probe = build_indexed_dataset(volume, (9, 9, 9))
    perf = scaled_perf_model(probe)

    clusters = {
        p: SimulatedCluster(volume, p, (9, 9, 9), perf=perf, image_size=(32, 32))
        for p in (1, 2, 4, 8)
    }
    print(f"{clusters[1].report.n_metacells_stored} metacells striped across disks\n")

    header = f"{'iso':>5} {'tris':>8} {'t1 (ms)':>9} {'S2':>6} {'S4':>6} {'S8':>6}   balance p=4 (active metacells/node)"
    print(header)
    print("-" * len(header))
    for iso in isovalues:
        results = {p: clusters[p].extract(float(iso)) for p in clusters}
        t1 = results[1].total_time
        if results[1].n_triangles == 0:
            print(f"{iso:>5} (no geometry)")
            continue
        s = {p: t1 / results[p].total_time for p in (2, 4, 8)}
        balance = results[4].metacell_balance().counts.tolist()
        print(
            f"{iso:>5} {results[1].n_triangles:>8} {t1 * 1e3:>9.2f} "
            f"{s[2]:>6.2f} {s[4]:>6.2f} {s[8]:>6.2f}   {balance}"
        )

    print(
        "\npaper reference: 4-node speedups 3.54-3.97, 8-node 6.91-7.83, "
        "balance 'very good ... irrespective of the isovalue'"
    )


if __name__ == "__main__":
    main()
