#!/usr/bin/env python3
"""Figure-4-style render: an isosurface of the RM-instability stand-in.

Reproduces the pipeline behind the paper's Figure 4 (isovalue 190 at
time step 250 of a downsampled Richtmyer–Meshkov field): generate the
time step, preprocess, query out-of-core, triangulate, rasterize, and
write PPM images of the bubble-and-spike mixing front.

Run:  python examples/render_isosurface.py [time_step] [isovalue]
"""

from __future__ import annotations

import sys

from repro import IsosurfacePipeline, rm_timestep
from repro.render.camera import Camera
from repro.render.image import ascii_preview, depth_to_gray, write_pgm, write_ppm


def main() -> None:
    time_step = int(sys.argv[1]) if len(sys.argv) > 1 else 250
    isovalue = float(sys.argv[2]) if len(sys.argv) > 2 else 190.0

    # The paper's Figure 4 uses a 256x256x240 downsample; a ~97^3 field
    # keeps this example fast while exercising the same path.
    volume = rm_timestep(time_step, shape=(97, 97, 89))
    print(f"generated RM-like step {time_step}: {volume.shape}, "
          f"values [{volume.data.min()}, {volume.data.max()}]")

    pipe = IsosurfacePipeline.from_volume(volume)  # paper 9x9x9 metacells
    print(
        f"preprocess: {pipe.report.n_metacells_stored} metacells stored "
        f"({pipe.report.space_saving:.0%} space saving), "
        f"index {pipe.report.index_bytes} bytes"
    )

    res = pipe.extract(isovalue)
    print(f"iso {isovalue}: {res.n_active_metacells} active metacells, "
          f"{res.n_triangles} triangles")
    if res.n_triangles == 0:
        print("no geometry at this isovalue — try one inside the value range")
        return

    # Look along the mixing direction so bubbles and spikes read clearly.
    cam = Camera.fit_mesh(res.mesh, direction=(0.8, -1.0, 1.4))
    res = pipe.extract(isovalue, render=True, camera=cam, image_size=(512, 512), smooth=True)

    color = write_ppm("rm_isosurface.ppm", res.image.to_uint8())
    depth = write_pgm("rm_isosurface_depth.pgm", depth_to_gray(res.image.depth))
    print(f"wrote {color} and {depth} (coverage {res.image.coverage():.0%})")
    print(ascii_preview(res.image.to_uint8(), width=64))


if __name__ == "__main__":
    main()
