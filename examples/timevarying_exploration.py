#!/usr/bin/env python3
"""Time-varying exploration (paper Section 5.2, Table 8).

Indexes a window of time steps of the RM-like run — streaming them one
at a time, as the paper's preprocessing scans each step once — then
interactively hops between (step, isovalue) pairs against the in-memory
per-step indexes.

Run:  python examples/timevarying_exploration.py
"""

from __future__ import annotations

from repro import TimeVaryingIndex, rm_time_series
from repro.mc.marching_cubes import marching_cubes_batch


def main() -> None:
    steps = list(range(180, 196))  # the window of the paper's Table 8
    print(f"indexing time steps {steps[0]}..{steps[-1]} on 4 simulated nodes ...")
    tvi = TimeVaryingIndex.from_series(
        rm_time_series(steps, shape=(65, 65, 57), n_steps=270),
        p=4,
    )
    print(
        f"combined in-memory index: {tvi.total_index_size_bytes()} bytes for "
        f"{len(tvi)} steps (paper: 1.6 MiB for 270 full-size steps)\n"
    )

    iso = 70.0
    print(f"{'step':>5} {'active MC':>10} {'triangles':>10}  per-node active metacells")
    for t in steps:
        results = tvi.query(t, iso)
        tris = 0
        for q, res in enumerate(results):
            ds = tvi.datasets(t)[q]
            if res.n_active:
                mesh = marching_cubes_batch(
                    ds.codec.values_grid(res.records), iso,
                    ds.meta.vertex_origins(res.records.ids),
                )
                tris += mesh.n_triangles
        amc = [r.n_active for r in results]
        print(f"{t:>5} {sum(amc):>10} {tris:>10}  {amc}")

    print(
        "\nper-step work grows as the mixing layer thickens; each row is "
        "answered by 4 independent node-local queries with zero "
        "inter-node communication."
    )


if __name__ == "__main__":
    main()
