#!/usr/bin/env python3
"""Unstructured grids through the same index (paper Section 4, opening).

"Our algorithm can handle both structured and unstructured grids" — the
compact interval tree only ever sees (vmin, vmax) intervals and opaque
records.  This example indexes a Delaunay tetrahedralization, runs
out-of-core queries, and cross-checks a structured volume's 6-tet
decomposition against in-core extraction.

Run:  python examples/unstructured_mesh.py
"""

from __future__ import annotations

import numpy as np

from repro.core.unstructured_builder import (
    build_striped_unstructured,
    build_unstructured_dataset,
    extract_unstructured,
)
from repro.grid.datasets import sphere_field
from repro.grid.unstructured import delaunay_ball, structured_to_tets
from repro.mc.mesh_io import write_obj


def main() -> None:
    print("=== Delaunay tetrahedralization of a random ball ===")
    mesh = delaunay_ball(n_points=600, seed=11)
    print(f"{mesh.n_cells} tetrahedra over {len(mesh.points)} points")

    ds = build_unstructured_dataset(mesh, cells_per_cluster=64)
    rep = ds.report
    print(f"clusters: {rep.n_clusters_stored} stored "
          f"({rep.n_clusters_culled} constant culled), "
          f"index {rep.index_bytes} bytes, "
          f"record {ds.codec.record_size} bytes")

    for iso in (0.3, 0.5, 0.8):
        surface, qr = extract_unstructured(ds, iso)
        r = np.linalg.norm(surface.vertices, axis=1) if surface.n_vertices else np.array([])
        print(f"  iso {iso:.1f}: {qr.n_active:3d} active clusters -> "
              f"{surface.n_triangles:5d} triangles "
              f"(vertex radius {r.mean():.2f} ± {r.std():.2f})" if len(r) else
              f"  iso {iso:.1f}: empty")
    out = write_obj("delaunay_isosurface.obj", extract_unstructured(ds, 0.5)[0])
    print(f"wrote {out}")

    print("\n=== striped across 4 simulated nodes ===")
    striped = build_striped_unstructured(mesh, 4, cells_per_cluster=64)
    counts = [extract_unstructured(d, 0.5)[1].n_active for d in striped]
    print(f"active clusters per node at iso 0.5: {counts}")

    print("\n=== structured volume as a tet mesh (ground-truth bridge) ===")
    vol = sphere_field((17, 17, 17))
    tets = structured_to_tets(vol)
    ds2 = build_unstructured_dataset(tets, cells_per_cluster=48)
    surface, _ = extract_unstructured(ds2, 0.6)
    welded = surface.weld(decimals=5)
    print(f"{tets.n_cells} tets -> {surface.n_triangles} triangles, "
          f"closed={welded.is_closed()}, "
          f"Euler characteristic {welded.euler_characteristic()} (sphere: 2)")


if __name__ == "__main__":
    main()
