#!/usr/bin/env python3
"""Isovalue exploration aids: selectivity profile + cost prediction.

Before rendering anything, an analyst wants to know *which isovalues
matter* and *what each query will cost*.  Both come straight from the
in-memory index, without touching the brick store:

* the selectivity profile (active metacells per isovalue — the
  'contour spectrum' view of the dataset);
* block-exact I/O predictions for candidate isovalues;
* suggested isovalues at requested selectivity levels.

Run:  python examples/isovalue_explorer.py
"""

from __future__ import annotations

import numpy as np

from repro import IsosurfacePipeline, rm_timestep
from repro.core.analysis import active_count_profile


def spark(counts: np.ndarray, width: int = 64) -> str:
    """One-line sparkline of a sequence."""
    blocks = " .:-=+*#%@"
    xs = np.linspace(0, len(counts) - 1, width).astype(int)
    v = counts[xs].astype(float)
    v = v / v.max() if v.max() > 0 else v
    return "".join(blocks[int(t * (len(blocks) - 1))] for t in v)


def main() -> None:
    volume = rm_timestep(250, shape=(97, 97, 89))
    pipe = IsosurfacePipeline.from_volume(volume)
    tree = pipe.dataset.tree
    print(f"indexed {pipe.report.n_metacells_stored} metacells; "
          f"index {pipe.report.index_bytes} bytes\n")

    endpoints, counts = active_count_profile(tree)
    lo, hi = endpoints[0], endpoints[-1]
    print("selectivity profile (active metacells vs isovalue):")
    print(f"  {spark(counts)}")
    print(f"  {lo:<8g}{'':{48}}{hi:>8g}\n")

    print("suggested isovalues by target selectivity:")
    for target, iso in sorted(pipe.suggest_isovalues((0.02, 0.1, 0.3)).items()):
        print(f"  {target:>5.0%} -> isovalue {iso:g} "
              f"({tree.query_count(iso)} active metacells)")

    print("\npredicted query costs (no disk touched):")
    print(f"  {'isovalue':>9} {'active':>7} {'runs':>5} {'blocks':>7} {'I/O ms':>7}")
    for iso in np.linspace(lo + 1, hi - 1, 6):
        est = pipe.estimate_cost(float(iso))
        print(f"  {iso:>9.0f} {est.n_active:>7} {est.n_runs:>5} "
              f"{est.blocks:>7} "
              f"{est.io_time(pipe.dataset.device.cost_model) * 1e3:>7.2f}")

    # Verify one prediction against reality.
    iso = float(endpoints[len(endpoints) // 2])
    est = pipe.estimate_cost(iso)
    res = pipe.extract(iso)
    print(f"\nverification at isovalue {iso:g}: predicted {est.blocks} blocks, "
          f"executor read {res.query.io_stats.blocks_read} "
          f"({'exact match' if est.blocks == res.query.io_stats.blocks_read else 'MISMATCH'})")


if __name__ == "__main__":
    main()
