#!/usr/bin/env python3
"""Real OS processes as cluster nodes.

The algorithm needs no communication between nodes until the final
composite, so each node's query+triangulation can run in a separate
``multiprocessing`` worker with nothing shared.  The parent receives
only each node's mesh and counters — the analogue of shipping frame
buffers — and verifies the union against the in-process serial result.

Run:  python examples/multiprocessing_cluster.py
"""

from __future__ import annotations

import time

from repro import build_indexed_dataset, build_striped_datasets, rm_timestep
from repro.mc.geometry import TriangleMesh
from repro.parallel.mp_backend import extract_parallel_mp
from repro.pipeline import IsosurfacePipeline


def main() -> None:
    p = 4
    iso = 128.0
    volume = rm_timestep(220, shape=(65, 65, 57))

    print(f"striping across {p} node datasets ...")
    datasets = build_striped_datasets(volume, p, (9, 9, 9))

    print(f"running {p} node extractions in separate OS processes ...")
    t0 = time.perf_counter()
    outputs = extract_parallel_mp(datasets, iso, processes=p)
    elapsed = time.perf_counter() - t0

    for out in outputs:
        print(
            f"  node {out.node_rank}: {out.n_active_metacells:4d} active metacells, "
            f"{out.n_triangles:6d} triangles, {out.blocks_read} blocks read"
        )
    union = TriangleMesh.concat([o.mesh() for o in outputs])
    print(f"  union: {union.n_triangles} triangles in {elapsed:.2f}s wall")

    print("verifying against the serial in-process pipeline ...")
    serial = IsosurfacePipeline(build_indexed_dataset(volume, (9, 9, 9))).extract(iso)
    assert union.n_triangles == serial.n_triangles, "parallel != serial!"
    assert abs(union.area() - serial.mesh.area()) < 1e-6 * max(serial.mesh.area(), 1)
    print(f"OK: {serial.n_triangles} triangles either way; "
          "surfaces identical (area matches to machine precision)")


if __name__ == "__main__":
    main()
