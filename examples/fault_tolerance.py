#!/usr/bin/env python3
"""Fault tolerance walkthrough: checksums, retries, and degraded mode.

Four escalating scenarios on the same synthetic volume:

1. a flaky disk (transient errors + latency spikes) absorbed by the
   bounded retry policy, with the cost visible on the I/O meter;
2. silent bit rot caught by the per-record CRC32 tables and healed by
   extent re-reads when the damage is transient;
3. a node lost mid-query on a replicated (r=2) cluster — the surviving
   replica serves its bricks and the result is bit-identical;
4. the same loss without replication — a graceful partial result
   flagged ``degraded`` instead of a crash.

Run:  python examples/fault_tolerance.py
"""

from __future__ import annotations

import numpy as np

from repro import sphere_field
from repro.core.builder import build_indexed_dataset
from repro.core.query import execute_query
from repro.io.faults import (
    BrickCorruptionError,
    FaultInjectingDevice,
    FaultPlan,
    RetryPolicy,
)
from repro.parallel.cluster import SimulatedCluster

ISO = 0.7
SHAPE = (33, 33, 33)


def flaky_disk(volume) -> None:
    print("=== 1. flaky disk: transient errors + latency spikes ===")
    ds = build_indexed_dataset(volume, (5, 5, 5))
    clean = execute_query(ds, ISO)
    ds2 = build_indexed_dataset(volume, (5, 5, 5))
    ds2.device = FaultInjectingDevice(
        ds2.device,
        FaultPlan(seed=11, transient_error_rate=0.5,
                  latency_spike_rate=0.5, latency_spike_seconds=0.005),
    )
    faulty = execute_query(ds2, ISO)
    assert np.array_equal(faulty.records.ids, clean.records.ids)
    cm = ds.device.cost_model
    print(f"  identical {faulty.n_active} active metacells recovered")
    print(f"  cost of resilience: {faulty.io_stats.retries} retries, "
          f"{faulty.io_stats.fault_delay * 1e3:.1f} ms backoff/spike delay")
    print(f"  modeled read time {clean.io_stats.read_time(cm) * 1e3:.2f} ms "
          f"clean -> {faulty.io_stats.read_time(cm) * 1e3:.2f} ms faulty\n")


def bit_rot(volume) -> None:
    print("=== 2. silent corruption vs the CRC32 tables ===")
    ds = build_indexed_dataset(volume, (5, 5, 5))
    # Probabilistic corruption: each faulty read flips one byte; the
    # re-read repair path heals it because the damage is per-read.
    ds.device = FaultInjectingDevice(
        ds.device, FaultPlan(seed=3, corruption_rate=0.5)
    )
    res = execute_query(ds, ISO)
    print(f"  {res.io_stats.checksum_failures} corrupted records detected, "
          f"all healed by re-reads -> {res.n_active} verified metacells")

    # Persistent media damage inside a record the plan covers: re-reads
    # return the same garbage, so verification escalates to a typed error.
    ds2 = build_indexed_dataset(volume, (5, 5, 5))
    start = ds2.tree.plan_query(ISO).runs[0].start
    ds2.device = FaultInjectingDevice(
        ds2.device,
        FaultPlan(corrupt_extents=((ds2.record_offset(start) + 17, 4),)),
    )
    try:
        execute_query(ds2, ISO, retry_policy=RetryPolicy(max_read_repairs=1))
    except BrickCorruptionError as exc:
        print(f"  persistent damage escalates: {exc}\n")


def replicated_recovery(volume) -> None:
    print("=== 3. node loss with replication (r=2): bit-identical ===")
    healthy = SimulatedCluster(volume, p=4, metacell_shape=(5, 5, 5))
    want = healthy.extract(ISO, render=True)
    cluster = SimulatedCluster(
        volume, p=4, metacell_shape=(5, 5, 5), replication=2
    )
    cluster.fail_node(1)
    got = cluster.extract(ISO, render=True)
    host = got.nodes[1].served_by
    print(f"  node 1 lost; node {host} served its bricks from the replica")
    print(f"  triangles {got.n_triangles} == healthy {want.n_triangles}: "
          f"{got.n_triangles == want.n_triangles}")
    print(f"  image bit-identical: "
          f"{np.array_equal(got.image.color, want.image.color)}")
    print(f"  degraded={got.degraded}, failed_nodes={got.failed_nodes}\n")


def graceful_degradation(volume) -> None:
    print("=== 4. node loss without replication: graceful partial ===")
    cluster = SimulatedCluster(volume, p=4, metacell_shape=(5, 5, 5))
    cluster.fail_node(2)
    res = cluster.extract(ISO, render=True)
    survivors = [m.n_triangles for m in res.nodes]
    print(f"  degraded={res.degraded}, failed_nodes={res.failed_nodes}, "
          f"unrecovered={res.unrecovered_nodes}")
    print(f"  partial surface: {res.n_triangles} triangles from "
          f"per-node counts {survivors}")
    print(f"  partial image still composited: "
          f"{res.image.coverage():.0%} pixel coverage")


def main() -> None:
    volume = sphere_field(SHAPE)
    flaky_disk(volume)
    bit_rot(volume)
    replicated_recovery(volume)
    graceful_degradation(volume)


if __name__ == "__main__":
    main()
