"""BBIO-style external interval tree baseline ([9, 10, 17] in the paper).

The Binary-Blocked I/O interval tree stores the interval tree on disk
(nodes blocked B-at-a-time) and the metacells separately, laid out by
metacell id.  A query (i) traverses O(log_B n) index blocks, (ii)
obtains the active metacell *ids*, and (iii) fetches those metacells
from the id-ordered store.

Step (iii) is the structural difference this baseline exposes: because
the data layout is id-ordered rather than span-space-ordered, the active
metacells of an isovalue are scattered across the store, and retrieval
pays a seek per contiguous id-run instead of the compact layout's one
seek per node run.  The index itself is also Omega(N): both sorted
secondary lists live on disk.

Simplifications versus a production BBIO tree (documented, benign for
the comparison): the tree topology is kept in memory and only *charged*
as block reads (ceil(path_nodes / B-per-block)); secondary lists are
charged by the bytes a prefix scan would touch.  Both choices
underestimate the baseline's true cost, making the comparison
conservative.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.interval_tree import StandardIntervalTree
from repro.core.intervals import IntervalSet
from repro.grid.metacell import MetacellPartition
from repro.io.blockdevice import IOStats, SimulatedBlockDevice
from repro.io.cost_model import IOCostModel
from repro.io.layout import MetacellCodec, MetacellRecords


@dataclass
class BBIOQueryResult:
    """Active records plus I/O accounting for one BBIO query."""

    lam: float
    records: MetacellRecords
    io_stats: IOStats
    index_blocks_read: int
    n_runs: int

    @property
    def n_active(self) -> int:
        return len(self.records)


class BBIODataset:
    """Id-ordered metacell store + external standard interval tree."""

    def __init__(
        self,
        partition: MetacellPartition,
        cost_model: IOCostModel | None = None,
        drop_constant: bool = True,
    ) -> None:
        self.cost_model = cost_model or IOCostModel()
        self.intervals = IntervalSet.from_partition(partition, drop_constant=drop_constant)
        self.tree = StandardIntervalTree.build(self.intervals)
        self.codec = MetacellCodec(partition.metacell_shape, partition.volume.dtype)
        self.device = SimulatedBlockDevice(self.cost_model)

        # Store records ordered by metacell id (the BBIO layout).
        order = np.argsort(self.intervals.ids, kind="stable")
        self._store_ids = self.intervals.ids[order]
        vmins = self.intervals.vmin[order]
        values = partition.extract_values(self._store_ids)
        self.base = self.device.allocate(len(order) * self.codec.record_size)
        self.device.write(self.base, self.codec.encode(self._store_ids, vmins, values))
        self.device.reset_stats()

        # External index accounting: both secondary lists on disk.
        self._index_bytes = self.tree.size_bytes()

    @property
    def index_size_bytes(self) -> int:
        return self._index_bytes

    def _index_traversal_blocks(self) -> int:
        """Charge for walking the blocked tree: nodes on one root-leaf
        path, packed B-nodes-per-block."""
        bs = self.cost_model.block_size
        node_bytes = 16  # split + child pointers
        nodes_per_block = max(1, bs // node_bytes)
        path = self.tree.height() + 1
        return max(1, -(-path // nodes_per_block))

    def query(self, lam: float) -> BBIOQueryResult:
        """Stab the external tree, then fetch active metacells by id."""
        self.device.reset_stats()
        idx = self.tree.stabbing_indices(lam)
        active_ids = np.sort(self.intervals.ids[idx])

        # Charge index I/O: traversal blocks + the secondary-list bytes a
        # prefix scan touches (one (vmin, vmax, pointer) entry per match).
        value_bytes = int(self.intervals.dtype.itemsize)
        entry_bytes = 2 * value_bytes + 4
        list_bytes = int(len(idx)) * entry_bytes
        bs = self.cost_model.block_size
        index_blocks = self._index_traversal_blocks() + -(-list_bytes // bs) if len(idx) else self._index_traversal_blocks()

        # Fetch the active metacells from the id-ordered store: coalesce
        # consecutive ids into runs; one read (seek) per run.
        rec = self.codec.record_size
        batches = []
        n_runs = 0
        if len(active_ids):
            pos = np.searchsorted(self._store_ids, active_ids)
            breaks = np.flatnonzero(np.diff(pos) != 1) + 1
            starts = np.concatenate([[0], breaks])
            stops = np.concatenate([breaks, [len(pos)]])
            n_runs = len(starts)
            for s, e in zip(starts, stops):
                first, count = int(pos[s]), int(e - s)
                buf = self.device.read(self.base + first * rec, count * rec)
                batches.append(self.codec.decode(buf))
        io = self.device.stats.copy()
        io.blocks_read += index_blocks
        io.seeks += 1  # index traversal repositioning
        records = (
            MetacellRecords.concat(batches) if batches else MetacellRecords.empty(self.codec)
        )
        return BBIOQueryResult(
            lam=float(lam),
            records=records,
            io_stats=io,
            index_blocks_read=index_blocks,
            n_runs=n_runs,
        )
