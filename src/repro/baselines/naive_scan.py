"""Naive full-scan baseline: read everything, test every metacell.

The floor every indexed scheme must beat: one sequential pass over the
whole store per query, O(N/B) block reads independent of the isovalue.
For small isovalue selectivity the compact tree reads orders of
magnitude fewer blocks; near 100% selectivity the two converge — the
crossover the query-I/O ablation bench charts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.builder import IndexedDataset
from repro.io.blockdevice import IOStats
from repro.io.layout import MetacellRecords

#: Bytes fetched per streaming step of the scan.
SCAN_CHUNK_BYTES = 1 << 20


@dataclass
class ScanResult:
    """Active records plus the (full-scan) I/O bill."""

    lam: float
    records: MetacellRecords
    io_stats: IOStats
    n_records_scanned: int

    @property
    def n_active(self) -> int:
        return len(self.records)


def full_scan_query(dataset: IndexedDataset, lam: float) -> ScanResult:
    """Answer an isosurface query by scanning the entire record store.

    Activity is decided from the record payload (min <= lam <= max over
    the stored vertex scalars) — the scan does not get to use any index
    metadata beyond the record format.
    """
    device = dataset.device
    codec = dataset.codec
    rec = codec.record_size
    total_bytes = dataset.n_records * rec
    before = device.stats.copy()

    batches = []
    scanned = 0
    pending = b""
    pos = dataset.base_offset
    end = dataset.base_offset + total_bytes
    while pos < end:
        take = min(SCAN_CHUNK_BYTES, end - pos)
        pending += device.read(pos, take)
        pos += take
        n_complete = codec.decode_count(pending)
        if not n_complete:
            continue
        batch = codec.decode(pending[: n_complete * rec])
        pending = pending[n_complete * rec :]
        scanned += n_complete
        vals = batch.values.astype(np.float64)
        active = (vals.min(axis=1) <= lam) & (lam <= vals.max(axis=1))
        if active.any():
            batches.append(
                MetacellRecords(
                    ids=batch.ids[active],
                    vmins=batch.vmins[active],
                    values=batch.values[active],
                )
            )
    io = device.stats.copy() - before
    records = (
        MetacellRecords.concat(batches) if batches else MetacellRecords.empty(codec)
    )
    return ScanResult(lam=float(lam), records=records, io_stats=io, n_records_scanned=scanned)
