"""Range-space partition distribution — the scheme of Zhang, Bajaj &
Blanke [21], the paper's load-balance counterexample.

The scalar range is cut into ``k`` sub-ranges.  Each metacell maps to
the triangular-matrix entry ``(i, j)`` where ``i`` is the sub-range of
its ``vmin`` and ``j`` of its ``vmax``; matrix entries are then assigned
whole to processors.  For an isovalue in sub-range ``t``, the active
entries are ``{(i, j): i <= t <= j}``.

The paper's criticism ("one can have a case in which the distribution of
active cells among the processors for a given isovalue could be
extremely unbalanced"): whole entries are atomic, so whichever
processors own the heavily-populated active entries do most of the work.
The distribution ablation bench quantifies this against round-robin
striping on identical inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.intervals import IntervalSet


@dataclass
class RangePartitionDistribution:
    """Static triangular-matrix assignment of metacells to processors.

    Parameters
    ----------
    intervals:
        The metacell intervals.
    p:
        Processor count.
    k:
        Number of scalar sub-ranges (the paper's comparator uses a
        fixed small k; more entries smooth balance but multiply the
        per-processor index count).
    assignment:
        ``"round-robin"`` assigns entries to processors in row-major
        entry order (the scheme's natural static choice);
        ``"work-balanced"`` greedily assigns entries in decreasing
        population to the least-loaded processor (the refinement of
        [22]) — still atomic per entry.
    """

    intervals: IntervalSet
    p: int
    k: int = 8
    assignment: str = "round-robin"

    def __post_init__(self) -> None:
        if self.p < 1:
            raise ValueError(f"processor count must be >= 1, got {self.p}")
        if self.k < 1:
            raise ValueError(f"sub-range count must be >= 1, got {self.k}")
        if self.assignment not in ("round-robin", "work-balanced"):
            raise ValueError(f"unknown assignment {self.assignment!r}")
        iv = self.intervals
        if len(iv) == 0:
            self._edges = np.linspace(0.0, 1.0, self.k + 1)
            self._entry_of_metacell = np.empty(0, dtype=np.int64)
            self._proc_of_entry = np.empty(0, dtype=np.int64)
            return
        lo = float(min(iv.vmin.min(), iv.vmax.min()))
        hi = float(max(iv.vmax.max(), iv.vmin.max()))
        if hi == lo:
            hi = lo + 1.0
        self._edges = np.linspace(lo, hi, self.k + 1)
        i = np.clip(np.searchsorted(self._edges, iv.vmin, side="right") - 1, 0, self.k - 1)
        j = np.clip(np.searchsorted(self._edges, iv.vmax, side="right") - 1, 0, self.k - 1)
        self._entry_of_metacell = i * self.k + j

        n_entries = self.k * self.k
        pop = np.bincount(self._entry_of_metacell, minlength=n_entries)
        proc = np.empty(n_entries, dtype=np.int64)
        if self.assignment == "round-robin":
            used = np.flatnonzero(pop > 0)
            proc[:] = -1
            proc[used] = np.arange(len(used)) % self.p
        else:
            loads = np.zeros(self.p, dtype=np.int64)
            proc[:] = -1
            for e in np.argsort(-pop):
                if pop[e] == 0:
                    continue
                q = int(np.argmin(loads))
                proc[e] = q
                loads[q] += pop[e]
        self._proc_of_entry = proc

    def sub_range_of(self, lam: float) -> int:
        """Index of the scalar sub-range containing ``lam``."""
        return int(np.clip(np.searchsorted(self._edges, lam, side="right") - 1, 0, self.k - 1))

    def processor_of_metacells(self) -> np.ndarray:
        """Processor assignment per interval (order of ``intervals``)."""
        if len(self.intervals) == 0:
            return np.empty(0, dtype=np.int64)
        return self._proc_of_entry[self._entry_of_metacell]

    def active_counts(self, lam: float) -> np.ndarray:
        """Per-processor count of active metacells for isovalue ``lam``."""
        counts = np.zeros(self.p, dtype=np.int64)
        if len(self.intervals) == 0:
            return counts
        mask = self.intervals.stabbing_mask(lam)
        procs = self.processor_of_metacells()[mask]
        if len(procs):
            counts += np.bincount(procs, minlength=self.p)
        return counts
