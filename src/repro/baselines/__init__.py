"""Comparators the paper measures or argues against.

``interval_tree``
    The standard binary interval tree (Table 1's size comparison).
``bbio_tree``
    BBIO-style external interval tree with an id-ordered store
    ([10, 17]: index traversal + scattered retrieval + host dispatch).
``range_partition``
    Range-space partition distribution of [21] (the load-imbalance
    counterexample).
``naive_scan``
    Full-scan floor, O(N/B) per query.
"""

from repro.baselines.bbio_tree import BBIODataset, BBIOQueryResult
from repro.baselines.interval_tree import StandardIntervalTree
from repro.baselines.naive_scan import ScanResult, full_scan_query
from repro.baselines.range_partition import RangePartitionDistribution

__all__ = [
    "StandardIntervalTree",
    "BBIODataset",
    "BBIOQueryResult",
    "RangePartitionDistribution",
    "full_scan_query",
    "ScanResult",
]
