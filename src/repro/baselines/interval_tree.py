"""The standard binary interval tree — the paper's Table 1 comparator.

Classic structure (Edelsbrunner/McCreight, as described in the paper's
Section 4): each node holds a split value and **two sorted copies of all
its intervals** — one by ascending ``vmin``, one by descending ``vmax``.
A stabbing query walks one root-to-leaf path and scans prefixes of those
lists.

The size comparison in Table 1 is the point: this tree stores every
interval twice (Omega(N) entries), while the compact interval tree
stores one 3-field entry per *brick* (O(n log n) total).  The
``size_bytes`` accounting mirrors the paper's: an interval entry needs
its two endpoint values plus a pointer to its metacell.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.intervals import IntervalSet


@dataclass
class _ITNode:
    split: float
    by_vmin: np.ndarray  # interval indices sorted by ascending vmin
    by_vmax: np.ndarray  # interval indices sorted by descending vmax
    left: int = -1
    right: int = -1


class StandardIntervalTree:
    """In-memory standard interval tree over an :class:`IntervalSet`."""

    def __init__(self) -> None:
        self.intervals: IntervalSet | None = None
        self.nodes: list[_ITNode] = []

    @classmethod
    def build(cls, intervals: IntervalSet) -> "StandardIntervalTree":
        tree = cls()
        tree.intervals = intervals
        n = len(intervals)
        if n == 0:
            return tree
        vmin = intervals.vmin
        vmax = intervals.vmax
        endpoints = np.unique(np.concatenate([vmin, vmax]))
        min_code = np.searchsorted(endpoints, vmin).astype(np.int64)
        max_code = np.searchsorted(endpoints, vmax).astype(np.int64)

        stack: list[tuple[np.ndarray, int, str]] = [
            (np.arange(n, dtype=np.int64), -1, "root")
        ]
        while stack:
            idx, parent, side = stack.pop()
            codes = np.unique(np.concatenate([min_code[idx], max_code[idx]]))
            vm_code = int(codes[(len(codes) - 1) // 2])
            mn, mx = min_code[idx], max_code[idx]
            own = idx[(mn <= vm_code) & (mx >= vm_code)]
            node = _ITNode(
                split=float(endpoints[vm_code]),
                by_vmin=own[np.argsort(vmin[own], kind="stable")],
                by_vmax=own[np.argsort(-vmax[own].astype(np.float64), kind="stable")],
            )
            node_id = len(tree.nodes)
            tree.nodes.append(node)
            if parent >= 0:
                if side == "left":
                    tree.nodes[parent].left = node_id
                else:
                    tree.nodes[parent].right = node_id
            left_idx = idx[mx < vm_code]
            right_idx = idx[mn > vm_code]
            if len(right_idx):
                stack.append((right_idx, node_id, "right"))
            if len(left_idx):
                stack.append((left_idx, node_id, "left"))
        return tree

    # -- query ---------------------------------------------------------------

    def stabbing_indices(self, lam: float) -> np.ndarray:
        """Interval indices containing ``lam`` (sorted)."""
        if not self.nodes:
            return np.empty(0, dtype=np.int64)
        assert self.intervals is not None
        vmin, vmax = self.intervals.vmin, self.intervals.vmax
        out = []
        node_id = 0
        while node_id >= 0:
            node = self.nodes[node_id]
            if lam >= node.split:
                # scan descending-vmax list while vmax >= lam
                vs = vmax[node.by_vmax].astype(np.float64)
                k = int(np.searchsorted(-vs, -lam, side="right"))
                out.append(node.by_vmax[:k])
                node_id = node.right
            else:
                vs = vmin[node.by_vmin].astype(np.float64)
                k = int(np.searchsorted(vs, lam, side="right"))
                out.append(node.by_vmin[:k])
                node_id = node.left
        if not out:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(out))

    def stabbing_ids(self, lam: float) -> np.ndarray:
        """Sorted payload ids of intervals containing ``lam``."""
        assert self.intervals is not None
        return np.sort(self.intervals.ids[self.stabbing_indices(lam)])

    # -- accounting -----------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def n_entries(self) -> int:
        """Stored interval entries: two per interval (both sorted lists)."""
        return int(sum(len(n.by_vmin) + len(n.by_vmax) for n in self.nodes))

    def size_bytes(
        self, value_bytes: int | None = None, pointer_bytes: int = 4, count_bytes: int = 4
    ) -> int:
        """Index size under the same field accounting as the compact tree:
        each stored interval entry carries (vmin, vmax, pointer); each
        node its split value and list length."""
        if value_bytes is None:
            value_bytes = (
                int(self.intervals.dtype.itemsize) if self.intervals is not None else 1
            )
        per_entry = 2 * value_bytes + pointer_bytes
        per_node = value_bytes + count_bytes
        return self.n_entries * per_entry + self.n_nodes * per_node

    def height(self) -> int:
        """Longest root-to-leaf path (edges)."""
        if not self.nodes:
            return 0
        depth = {0: 0}
        best = 0
        for node_id, node in enumerate(self.nodes):
            d = depth[node_id]
            best = max(best, d)
            for child in (node.left, node.right):
                if child >= 0:
                    depth[child] = d + 1
        return best
