"""Cluster execution layer.

``cluster``
    :class:`SimulatedCluster` — p nodes with striped local disks,
    communication-free extraction, sort-last compositing.
``perfmodel``
    Calibrated stage-time models (disk, CPU, GPU, interconnect).
``metrics``
    :class:`NodeMetrics`, load-balance statistics, speedup helpers.
``scheduler``
    Host-dispatch and static scheduling models for baseline ablations.
``mp_backend``
    Real ``multiprocessing`` execution of per-node work.
``pipeline``
    Stage-overlapped shared-memory triangulation pipeline.
"""

from repro.parallel.cluster import ClusterResult, ExtractRequest, SimulatedCluster
from repro.parallel.metrics import LoadBalance, NodeMetrics, efficiency, speedup
from repro.parallel.mp_backend import WorkerOutput, extract_parallel_mp
from repro.parallel.pipeline import (
    PipelineOptions,
    default_mp_context,
    pipelined_marching_cubes,
)
from repro.parallel.perfmodel import (
    PAPER_CLUSTER,
    CPUModel,
    GPUModel,
    InterconnectModel,
    PerformanceModel,
)
from repro.parallel.scheduler import (
    HostDispatchModel,
    ScheduleResult,
    host_dispatch,
    round_robin,
    static_blocks,
)

__all__ = [
    "SimulatedCluster",
    "ClusterResult",
    "ExtractRequest",
    "NodeMetrics",
    "LoadBalance",
    "speedup",
    "efficiency",
    "PerformanceModel",
    "PAPER_CLUSTER",
    "CPUModel",
    "GPUModel",
    "InterconnectModel",
    "HostDispatchModel",
    "ScheduleResult",
    "host_dispatch",
    "round_robin",
    "static_blocks",
    "extract_parallel_mp",
    "WorkerOutput",
    "PipelineOptions",
    "default_mp_context",
    "pipelined_marching_cubes",
]
