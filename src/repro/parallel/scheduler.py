"""Work scheduling models used by the baseline comparisons.

The paper contrasts its communication-free striped execution with the
host-dispatch scheme of the BBIO-based systems [10, 17], where a master
traverses the index and hands active-metacell jobs to workers on demand.
This module models that scheme's two costs:

* **dispatch overhead** at the host, serializing job handout;
* **unpredictable disk access**: jobs land on whichever worker is free,
  so consecutive reads on a worker's disk are rarely sequential.

These models feed the distribution/query ablation benches; they are not
used by the main pipeline, which needs no scheduler at all.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs.tracer import NULL_TRACER


@dataclass(frozen=True)
class HostDispatchModel:
    """Cost parameters of a centralized on-demand job dispatcher."""

    dispatch_overhead: float = 50e-6  # host time to hand out one job
    job_message_latency: float = 10e-6


@dataclass
class ScheduleResult:
    """Outcome of scheduling a bag of jobs."""

    worker_times: np.ndarray
    host_time: float

    @property
    def makespan(self) -> float:
        return float(max(self.worker_times.max(initial=0.0), self.host_time))

    @property
    def balance_spread(self) -> float:
        if len(self.worker_times) == 0:
            return 0.0
        return float(self.worker_times.max() - self.worker_times.min())


def host_dispatch(
    job_costs: np.ndarray,
    p: int,
    model: HostDispatchModel | None = None,
) -> ScheduleResult:
    """Simulate on-demand dispatch of jobs to ``p`` workers.

    Jobs are handed to the earliest-available worker in arrival order;
    the host pays ``dispatch_overhead`` per job *serially*, which becomes
    the bottleneck when jobs are small and plentiful — the effect the
    paper identifies as "a significant bottleneck with this scheme".
    """
    model = model or HostDispatchModel()
    job_costs = np.asarray(job_costs, dtype=np.float64)
    if p < 1:
        raise ValueError(f"worker count must be >= 1, got {p}")
    worker_free = np.zeros(p, dtype=np.float64)
    host_clock = 0.0
    for cost in job_costs:
        host_clock += model.dispatch_overhead
        q = int(np.argmin(worker_free))
        start = max(worker_free[q], host_clock + model.job_message_latency)
        worker_free[q] = start + cost
    return ScheduleResult(worker_times=worker_free, host_time=host_clock)


def static_blocks(job_costs: np.ndarray, p: int) -> ScheduleResult:
    """Static contiguous-block assignment (the naive pre-partitioning):
    worker q gets jobs [q*n/p, (q+1)*n/p).  No host involvement, but the
    balance depends entirely on how costs are distributed."""
    job_costs = np.asarray(job_costs, dtype=np.float64)
    if p < 1:
        raise ValueError(f"worker count must be >= 1, got {p}")
    n = len(job_costs)
    bounds = np.linspace(0, n, p + 1).astype(int)
    times = np.array(
        [job_costs[bounds[q] : bounds[q + 1]].sum() for q in range(p)]
    )
    return ScheduleResult(worker_times=times, host_time=0.0)


def round_robin(job_costs: np.ndarray, p: int) -> ScheduleResult:
    """Round-robin assignment — the paper's striping, as a scheduler."""
    job_costs = np.asarray(job_costs, dtype=np.float64)
    if p < 1:
        raise ValueError(f"worker count must be >= 1, got {p}")
    times = np.array([job_costs[q::p].sum() for q in range(p)])
    return ScheduleResult(worker_times=times, host_time=0.0)


# ---------------------------------------------------------------------------
# Speculative re-execution planning (straggler mitigation)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SpeculationDecision:
    """One straggler's re-execution assignment.

    ``launch_time`` is the modeled instant (the stage-budget mark) at
    which the replica host starts re-running the victim's work; the
    speculative completion time is ``launch_time`` plus the re-run's own
    modeled cost.
    """

    victim: int
    host: int
    launch_time: float


def plan_speculation(
    stragglers: "list[int]",
    replica_hosts: "dict[int, list[int]]",
    launch_time: float,
    tracer=NULL_TRACER,
    track: "str | None" = None,
) -> "list[SpeculationDecision]":
    """Assign each straggler's re-execution to a replica host.

    Hosts are load-balanced by assignment count (a host already serving
    one speculation is deprioritized against an idle candidate), ties
    broken by the chained-declustering preference order the caller
    encodes in ``replica_hosts[victim]``.  Stragglers with no candidate
    host are simply absent from the result — the caller reports them as
    deadline-partial; each decision (and each straggler left without a
    host) drops an instant on ``tracer``.  Deterministic: same inputs,
    same plan.
    """
    decisions: list[SpeculationDecision] = []
    load: dict[int, int] = {}
    for victim in stragglers:
        candidates = replica_hosts.get(victim) or []
        if not candidates:
            tracer.instant(
                "speculation.no_host", track=track, category="schedule",
                args={"victim": victim},
            )
            continue
        host = min(
            candidates,
            key=lambda h: (load.get(h, 0), candidates.index(h)),
        )
        load[host] = load.get(host, 0) + 1
        tracer.instant(
            "speculation.planned", track=track, category="schedule",
            args={"victim": victim, "host": host, "launch_time": launch_time},
        )
        decisions.append(
            SpeculationDecision(victim=victim, host=host, launch_time=launch_time)
        )
    return decisions
