"""Stage-overlapped shared-memory triangulation pipeline.

The serial hot path runs query → decode → triangulate strictly in
sequence, in one process.  This module overlaps the stages across OS
processes without giving up determinism:

* the **parent** (reader stage) cuts the decoded metacell stream into
  jobs on :data:`~repro.mc.marching_cubes.DEFAULT_BATCH_CHUNK`-aligned
  boundaries and stages each job's float64 payload into a
  ``multiprocessing.shared_memory`` segment — no pickling of payload
  bytes;
* **kernel workers** attach the segment, triangulate with the exact
  chunked kernel the serial path uses (the request's backend resolved
  through :mod:`repro.mc.backends`), and return only the resulting
  vertex/face arrays;
* the parent reassembles meshes **in job order** and applies the world
  transform once at the end — the same place the serial path applies it.

Because job boundaries are multiples of the serial chunk size, every
chunk a worker triangulates is byte-for-byte the chunk the serial path
would have formed, and concatenation in job order is associative — so a
pipelined extraction is *bit-identical* to ``marching_cubes_batch``
(asserted property-style by ``tests/test_zero_copy_pipeline.py``).

The overlap is between payload staging (cast + copy into shared memory,
done by the parent) and triangulation (workers): while workers chew on
job *k*, the parent is already staging job *k+1*.  Stages emit
``pipeline.*`` tracer spans so the overlap is visible in ``repro trace``.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import os
import re
import sys
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.mc.geometry import TriangleMesh
from repro.mc.marching_cubes import (
    DEFAULT_BATCH_CHUNK,
    _apply_world_transform,
)
from repro.obs.tracer import NULL_TRACER


def default_mp_context():
    """The multiprocessing context every backend in this repo should use.

    ``fork`` on Linux — workers inherit the parent's address space, so
    pool start-up is milliseconds and module state (tables, codecs)
    needs no re-import.  Everywhere else (macOS, Windows) ``fork`` is
    unavailable or unsafe, so ``spawn`` is used.  Centralizing the
    choice keeps :mod:`repro.parallel.mp_backend` and this pipeline
    consistent instead of each picking its own default.
    """
    method = "fork" if sys.platform.startswith("linux") else "spawn"
    if method not in multiprocessing.get_all_start_methods():  # pragma: no cover
        method = "spawn"
    return multiprocessing.get_context(method)


@dataclass(frozen=True)
class PipelineOptions:
    """Configuration of the shared-memory triangulation pipeline.

    Parameters
    ----------
    workers:
        MC worker processes.  ``1`` still stages through shared memory
        (useful for testing the transport); ``0`` is invalid.
    batch_chunks:
        Serial-chunk multiples per job: each job carries
        ``batch_chunks * DEFAULT_BATCH_CHUNK`` metacells.  Larger jobs
        amortize per-job overhead; smaller jobs overlap more finely.
    mp_context:
        Start-method override (``"fork"`` / ``"spawn"`` /
        ``"forkserver"``); ``None`` uses :func:`default_mp_context`.
    job_timeout:
        Seconds to wait for one job's result before declaring its worker
        dead (killed or hung — a ``Pool`` never completes such a job) and
        re-running the job inline from the parent's staged copy.  The
        result stays bit-identical either way.  ``None`` waits forever.
    """

    workers: int = 2
    batch_chunks: int = 8
    mp_context: "str | None" = None
    job_timeout: "float | None" = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.batch_chunks < 1:
            raise ValueError(
                f"batch_chunks must be >= 1, got {self.batch_chunks}"
            )
        if self.job_timeout is not None and self.job_timeout <= 0:
            raise ValueError(
                f"job_timeout must be > 0 seconds, got {self.job_timeout}"
            )

    @property
    def job_metacells(self) -> int:
        return self.batch_chunks * DEFAULT_BATCH_CHUNK


#: Options used when a caller asks for "the pipeline" without tuning it.
DEFAULT_PIPELINE_OPTIONS = PipelineOptions()


# ---------------------------------------------------------------------------
# Shared-memory segment lifecycle
#
# Segments are created under a recognizable name, tracked in a
# module-level registry, and released through one idempotent helper, so
# that *every* exit path — success, worker exception, parent exception,
# interpreter shutdown (atexit), even a parent killed outright (the next
# pipeline run purges segments whose owner pid is gone) — leaves zero
# orphans in /dev/shm.
# ---------------------------------------------------------------------------

#: Name prefix of every segment this module creates; the owner pid is
#: embedded so an orphan's liveness can be checked after the fact.
SHM_PREFIX = "repro_pl"

_segment_seq = itertools.count()
#: Names of segments this process created and has not yet unlinked.
_live_segments: "set[str]" = set()
_atexit_installed = False


def _atexit_release() -> None:  # pragma: no cover - runs at shutdown
    from multiprocessing import shared_memory

    for name in list(_live_segments):
        try:
            seg = shared_memory.SharedMemory(name=name)
            seg.close()
            seg.unlink()
        except FileNotFoundError:
            pass
        _live_segments.discard(name)


def _create_segment(size: int):
    """Create a tracked, atexit-protected shared-memory segment."""
    from multiprocessing import shared_memory

    global _atexit_installed
    if not _atexit_installed:
        atexit.register(_atexit_release)
        _atexit_installed = True
    while True:
        name = f"{SHM_PREFIX}_{os.getpid()}_{next(_segment_seq)}"
        try:
            shm = shared_memory.SharedMemory(create=True, size=size, name=name)
        except FileExistsError:  # pragma: no cover - stale name collision
            continue
        _live_segments.add(name)
        return shm


def _release_segment(shm) -> None:
    """Close + unlink a segment; safe to call more than once."""
    try:
        shm.close()
        shm.unlink()
    except FileNotFoundError:
        pass
    _live_segments.discard(shm.name)


def purge_orphan_segments() -> "list[str]":
    """Unlink segments whose owning process no longer exists.

    A parent killed with SIGKILL gets no atexit; its segments linger in
    ``/dev/shm`` under ``repro_pl_<pid>_*``.  Any later pipeline run (or
    an explicit caller) sweeps them by checking whether ``<pid>`` is
    still alive.  Returns the names removed.
    """
    removed: "list[str]" = []
    shm_dir = Path("/dev/shm")
    if not shm_dir.is_dir():  # pragma: no cover - non-Linux
        return removed
    pattern = re.compile(rf"^{SHM_PREFIX}_(\d+)_\d+$")
    for entry in shm_dir.iterdir():
        m = pattern.match(entry.name)
        if not m:
            continue
        pid = int(m.group(1))
        if pid == os.getpid():
            continue
        try:
            os.kill(pid, 0)
            continue  # owner alive: not an orphan
        except ProcessLookupError:
            pass
        except PermissionError:  # pragma: no cover - other user's pid
            continue
        try:
            entry.unlink()
            removed.append(entry.name)
        except FileNotFoundError:  # pragma: no cover - raced another purge
            pass
    return removed


def _pipeline_worker(args):
    """Triangulate one staged job (module-level so it pickles).

    Returns untransformed ``(vertices, faces, normals-or-None)`` — the
    parent owns world placement so the final float ops happen exactly
    once, in the same order as the serial path.
    """
    from multiprocessing import resource_tracker, shared_memory

    from repro.mc.backends import get_backend

    shm_name, shape, lam, origins, with_normals, backend, chunk = args
    # The parent owns this segment's lifecycle; attaching must not
    # (re-)register it with a resource tracker — under fork the tracker
    # process is *shared* with the parent, so an attach-register followed
    # by a worker-side unregister would cancel the parent's registration
    # and make the parent's eventual unlink double-unregister.  Python
    # 3.13 has ``track=False`` for this; suppress registration manually
    # on older versions.
    _register = resource_tracker.register
    resource_tracker.register = lambda *a, **k: None
    try:
        shm = shared_memory.SharedMemory(name=shm_name)
    finally:
        resource_tracker.register = _register
    try:
        values = np.ndarray(shape, dtype=np.float64, buffer=shm.buf)
        mesh, normals = get_backend(backend).extract_chunks(
            values, lam, origins, chunk, with_normals
        )
        # Copies detach the result from the shared segment before close.
        return (mesh.vertices.copy(), mesh.faces.copy(),
                normals.copy() if normals is not None else None)
    finally:
        shm.close()


def pipelined_marching_cubes(
    values: np.ndarray,
    lam: float,
    origins: np.ndarray,
    spacing=(1.0, 1.0, 1.0),
    world_origin=(0.0, 0.0, 0.0),
    with_normals: bool = False,
    options: "PipelineOptions | None" = None,
    tracer=NULL_TRACER,
    track: "str | None" = None,
    backend: str = "mc-batch",
    batch_chunk: "int | None" = None,
) -> "TriangleMesh | tuple[TriangleMesh, np.ndarray]":
    """Drop-in, bit-identical replacement for
    :func:`repro.mc.marching_cubes.marching_cubes_batch` that overlaps
    payload staging with triangulation across worker processes.

    Falls back to the serial kernel inline when the batch is smaller
    than one job (process startup would dominate), when running in a
    daemonic worker process (which may not spawn children), or when the
    selected backend cannot triangulate independent jobs
    (``supports_pipeline=False``, e.g. ``surface-nets``).
    """
    from repro.mc.backends import get_backend

    opts = options or DEFAULT_PIPELINE_OPTIONS
    bk = get_backend(backend)
    chunk = DEFAULT_BATCH_CHUNK if batch_chunk is None else int(batch_chunk)
    values = np.asarray(values)
    if values.ndim != 4:
        raise ValueError(f"expected (n, mx, my, mz) batch, got shape {values.shape}")
    origins = np.asarray(origins, dtype=np.float64).reshape(len(values), 3)
    n = len(values)
    job = opts.batch_chunks * chunk
    if (
        n <= job
        or not bk.supports_pipeline
        or multiprocessing.current_process().daemon
    ):
        return bk.batch(
            values, lam, origins, spacing=spacing, world_origin=world_origin,
            chunk=chunk, with_normals=with_normals,
        )

    ctx = (
        multiprocessing.get_context(opts.mp_context)
        if opts.mp_context
        else default_mp_context()
    )
    # Opportunistic sweep: a previous pipeline parent killed outright
    # left segments no atexit could release; reclaim them now.
    purge_orphan_segments()
    starts = list(range(0, n, job))
    span = tracer.span(
        "pipeline.run", track=track, category="pipeline",
        args={"metacells": n, "jobs": len(starts), "workers": opts.workers},
    )
    segments: list = []
    shapes: "list[tuple]" = []
    try:
        with ctx.Pool(opts.workers) as pool:
            pending = []
            for ji, s in enumerate(starts):
                e = min(s + job, n)
                block = values[s:e]
                with tracer.span(
                    "pipeline.stage_in", track=track, category="pipeline",
                    args={"job": ji, "metacells": e - s},
                ):
                    shm = _create_segment(block.size * 8)
                    segments.append(shm)
                    shapes.append(block.shape)
                    staged = np.ndarray(
                        block.shape, dtype=np.float64, buffer=shm.buf
                    )
                    # The float64 cast the MC kernel would do anyway,
                    # fused with the copy into the shared segment.
                    staged[:] = block
                pending.append(
                    pool.apply_async(
                        _pipeline_worker,
                        ((shm.name, block.shape, float(lam),
                          origins[s:e].copy(), with_normals,
                          bk.name, chunk),),
                    )
                )
            meshes = []
            normal_parts = []
            for ji, fut in enumerate(pending):
                try:
                    if opts.job_timeout is not None:
                        verts, faces, normals = fut.get(opts.job_timeout)
                    else:
                        verts, faces, normals = fut.get()
                except multiprocessing.TimeoutError:
                    # The worker died (a Pool never completes a job whose
                    # worker was killed) or hung.  The staged payload is
                    # still in the parent's segment — re-run the job
                    # inline on the exact bytes the worker would have
                    # read, so the result stays bit-identical.
                    s = starts[ji]
                    e = min(s + job, n)
                    staged = np.ndarray(
                        shapes[ji], dtype=np.float64, buffer=segments[ji].buf
                    )
                    mesh_j, normals = bk.extract_chunks(
                        staged, float(lam), origins[s:e], chunk, with_normals,
                    )
                    verts = mesh_j.vertices.copy()
                    faces = mesh_j.faces.copy()
                    normals = normals.copy() if normals is not None else None
                    tracer.instant(
                        "pipeline.job_recovered", category="pipeline",
                        args={"job": ji, "reason": "worker-timeout"},
                    )
                tracer.instant(
                    "pipeline.job_done", category="pipeline",
                    args={"job": ji, "triangles": len(faces)},
                )
                meshes.append(TriangleMesh(verts, faces))
                if with_normals:
                    normal_parts.append(normals)
                _release_segment(segments[ji])
    finally:
        # Idempotent: releases whatever the success path did not.
        for shm in segments:
            _release_segment(shm)
        span.close()

    mesh = TriangleMesh.concat(meshes)
    normals = (
        np.concatenate(normal_parts)
        if (with_normals and normal_parts)
        else (np.empty((0, 3)) if with_normals else None)
    )
    return _apply_world_transform(
        mesh, normals, spacing, world_origin, with_normals
    )
