"""Performance model calibrated to the paper's cluster (Section 6).

The reproduction runs on a simulator, so wall-clock seconds here would
say more about Python than about the algorithm.  Instead, every stage
reports *counted work* (blocks read, seeks, cells examined, triangles
generated, bytes composited), and this model converts counts into
modeled seconds using rates matching the paper's hardware:

* local disk: 50 MB/s sequential, 8 ms seek (Section 6);
* triangulation: a 3 GHz Xeon examining ~20M unit cells/s and paying
  ~80 ns per emitted triangle — which reproduces the paper's observed
  3.5–4.0 M triangles/s end-to-end rate on one node;
* GPU: 50 M triangles/s raster throughput plus frame buffer readback
  over PCIe x16 at 4 Gb/s bidirectional;
* interconnect: 10 Gb/s InfiniBand with 10 us per message.

Changing the calibration changes absolute numbers only; the comparisons
the benches make (who wins, balance, speedups) are ratios of counted
work and are insensitive to it.  The actually-measured Python wall time
is reported alongside in every bench for honesty.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.io.blockdevice import IOStats
from repro.io.cost_model import IOCostModel, PAPER_DISK


@dataclass(frozen=True)
class InterconnectModel:
    """Affine network model: latency per message + bytes/bandwidth."""

    bandwidth: float = 10e9 / 8.0  # 10 Gb/s InfiniBand, in bytes/s
    latency: float = 10e-6

    def transfer_time(self, nbytes: int, n_messages: int = 1) -> float:
        return n_messages * self.latency + nbytes / self.bandwidth


@dataclass(frozen=True)
class GPUModel:
    """GPU raster throughput + framebuffer readback (PCIe)."""

    triangle_rate: float = 50e6
    readback_bandwidth: float = 4e9 / 8.0  # 4 Gb/s PCIe x16 (paper Fig. 3)

    def render_time(self, n_triangles: int, framebuffer_bytes: int = 0) -> float:
        return n_triangles / self.triangle_rate + framebuffer_bytes / self.readback_bandwidth


@dataclass(frozen=True)
class CPUModel:
    """Triangulation cost: per examined cell + per emitted triangle."""

    cell_rate: float = 20e6
    per_triangle: float = 80e-9

    def triangulation_time(self, n_cells_examined: int, n_triangles: int) -> float:
        return n_cells_examined / self.cell_rate + n_triangles * self.per_triangle


@dataclass(frozen=True)
class PerformanceModel:
    """Bundle of the per-stage calibrations."""

    disk: IOCostModel = PAPER_DISK
    cpu: CPUModel = field(default_factory=CPUModel)
    gpu: GPUModel = field(default_factory=GPUModel)
    network: InterconnectModel = field(default_factory=InterconnectModel)

    def io_time(self, stats: IOStats) -> float:
        return stats.read_time(self.disk)


#: Default calibration matching the paper's hardware.
PAPER_CLUSTER = PerformanceModel()
