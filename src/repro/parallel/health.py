"""Per-node health state machine and cluster health monitor.

Degraded-mode extraction (PR 1) *rediscovers* a bad node on every query:
each extraction pays the failed reads, retries, and replica fallback
again.  This module adds memory.  Every node carries a small circuit
breaker driven by its observed retry / corruption / latency / failure
history:

.. code-block:: text

    HEALTHY --incident--> SUSPECT --more incidents--> CIRCUIT_OPEN
       ^                     |                            |
       |<---clean streak-----+                       cooldown ticks
       |                                                  v
       +<------probe ok------ HALF_OPEN <-----------------+
                                 |
                                 +--probe fails--> CIRCUIT_OPEN

While a node's circuit is **open**, the cluster routes its bricks to the
chained-declustering replica host proactively — no primary I/O, no
rediscovery cost.  After ``cooldown`` routed queries the breaker goes
**half-open**: the next query is a probe against the primary; a clean
probe heals the node, a bad one re-opens the circuit.

A fifth, terminal state exists outside the loop above: **RETIRED**
(``NodeHealth.retire``), entered when a node is drained or removed from
the cluster (see :mod:`repro.elastic`).  A retired node is routed
around like an open circuit but never cools down and never probes —
"open" means *temporarily quarantined, will retry*; "retired" means
*gone, stop asking*.

All transitions are driven by per-query observations on the modeled
clock, so scripted fault histories produce exact, assertable state
sequences (see ``tests/test_health.py``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class HealthState(enum.Enum):
    HEALTHY = "healthy"
    SUSPECT = "suspect"
    CIRCUIT_OPEN = "circuit-open"
    HALF_OPEN = "half-open"
    #: Terminal: the node was drained or removed from the cluster.  A
    #: retired node is routed around forever and **never probed** — the
    #: breaker's cooldown/half-open machinery stops, distinguishing
    #: "temporarily open, will probe" from "gone, don't bother".
    RETIRED = "retired"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class HealthPolicy:
    """Thresholds driving the per-node state machine.

    Parameters
    ----------
    suspect_after:
        Incident strikes that demote HEALTHY to SUSPECT.
    open_after:
        Total strikes that open the circuit (a permanent device failure
        opens it immediately regardless).
    cooldown:
        Routed-around queries an open circuit waits before probing
        (half-open).
    heal_after:
        Consecutive clean queries a SUSPECT node needs to return to
        HEALTHY.
    slow_delay_threshold:
        Modeled ``fault_delay`` seconds in one query above which the
        node counts as latency-incident (straggler) even if every read
        succeeded.
    """

    suspect_after: int = 1
    open_after: int = 3
    cooldown: int = 2
    heal_after: int = 2
    slow_delay_threshold: float = 0.05

    def __post_init__(self) -> None:
        if self.suspect_after < 1 or self.open_after < self.suspect_after:
            raise ValueError(
                f"need 1 <= suspect_after <= open_after, got "
                f"{self.suspect_after}/{self.open_after}"
            )
        if self.cooldown < 1:
            raise ValueError(f"cooldown must be >= 1, got {self.cooldown}")
        if self.heal_after < 1:
            raise ValueError(f"heal_after must be >= 1, got {self.heal_after}")
        if self.slow_delay_threshold < 0:
            raise ValueError(
                f"slow_delay_threshold must be >= 0, got {self.slow_delay_threshold}"
            )


@dataclass(frozen=True)
class Observation:
    """What one query saw of one node, in state-machine terms."""

    failed: bool = False
    retries: int = 0
    checksum_failures: int = 0
    fault_delay: float = 0.0
    deadline_expired: bool = False

    def incident(self, policy: HealthPolicy) -> "str | None":
        """The incident class this observation represents, or None."""
        if self.failed:
            return "device-failure"
        if self.checksum_failures:
            return "corruption"
        if self.retries:
            return "retries"
        if self.fault_delay > policy.slow_delay_threshold:
            return "latency"
        if self.deadline_expired:
            return "deadline"
        return None


@dataclass
class Transition:
    """One recorded state change (for the health report / tests)."""

    query_index: int
    src: HealthState
    dst: HealthState
    reason: str


@dataclass
class NodeHealth:
    """Circuit-breaker state of one node."""

    rank: int
    policy: HealthPolicy = field(default_factory=HealthPolicy)
    state: HealthState = HealthState.HEALTHY
    strikes: int = 0
    clean_streak: int = 0
    cooldown_left: int = 0
    times_opened: int = 0
    times_healed: int = 0
    last_incident: str = ""
    transitions: "list[Transition]" = field(default_factory=list)

    def _move(self, dst: HealthState, query_index: int, reason: str) -> None:
        self.transitions.append(
            Transition(query_index, self.state, dst, reason)
        )
        self.state = dst

    @property
    def routed_around(self) -> bool:
        """True while the cluster should avoid this node's primary disk."""
        return self.state in (HealthState.CIRCUIT_OPEN, HealthState.RETIRED)

    @property
    def retired(self) -> bool:
        return self.state is HealthState.RETIRED

    def retire(self, query_index: int) -> None:
        """Enter the terminal RETIRED state (drained / removed node).

        Idempotent.  Unlike an open circuit there is no cooldown and no
        half-open probe: the node is out of the cluster, so spending
        probe queries on it would only waste replica-host budget.
        """
        if self.state is HealthState.RETIRED:
            return
        self.cooldown_left = 0
        self._move(HealthState.RETIRED, query_index, "node retired")

    def tick_routed(self, query_index: int) -> None:
        """One query passed with this node routed around (circuit open)."""
        if self.state is not HealthState.CIRCUIT_OPEN:
            return  # retired nodes never probe; other states never tick
        self.cooldown_left -= 1
        if self.cooldown_left <= 0:
            self._move(HealthState.HALF_OPEN, query_index, "cooldown elapsed")

    def observe(self, obs: Observation, query_index: int) -> None:
        """Fold one query's observation of the *primary* path in."""
        if self.state is HealthState.RETIRED:
            return  # terminal: no observation can resurrect the node
        pol = self.policy
        incident = obs.incident(pol)
        if incident:
            self.last_incident = incident
            self.clean_streak = 0
            self.strikes += 1
        else:
            self.clean_streak += 1

        if self.state is HealthState.HEALTHY:
            if obs.failed or self.strikes >= pol.open_after:
                self._open(query_index, incident or "strikes")
            elif self.strikes >= pol.suspect_after:
                self._move(HealthState.SUSPECT, query_index, incident or "strikes")
            elif not incident:
                self.strikes = 0
        elif self.state is HealthState.SUSPECT:
            if obs.failed or self.strikes >= pol.open_after:
                self._open(query_index, incident or "strikes")
            elif self.clean_streak >= pol.heal_after:
                self.strikes = 0
                self._move(HealthState.HEALTHY, query_index, "clean streak")
        elif self.state is HealthState.HALF_OPEN:
            if incident:
                self._open(query_index, f"probe failed: {incident}")
            else:
                self.strikes = 0
                self.times_healed += 1
                self._move(HealthState.HEALTHY, query_index, "probe succeeded")
        elif self.state is HealthState.CIRCUIT_OPEN:
            # Normally an open circuit is only ticked while routed
            # around; being observed here means no replica existed and
            # the primary was used anyway — a forced probe.  Clean runs
            # count toward the cooldown so a healed, replica-less node
            # is not quarantined forever; incidents reset it.
            if incident:
                self.cooldown_left = pol.cooldown
            else:
                self.cooldown_left -= 1
                if self.cooldown_left <= 0:
                    self._move(
                        HealthState.HALF_OPEN, query_index, "forced probes clean"
                    )

    def _open(self, query_index: int, reason: str) -> None:
        self.times_opened += 1
        self.cooldown_left = self.policy.cooldown
        self._move(HealthState.CIRCUIT_OPEN, query_index, reason)


class HealthMonitor:
    """Health state of every node in a cluster, fed by each extraction.

    The monitor is deliberately query-indexed, not wall-clock-indexed:
    cooldowns count *queries*, which keeps the machine deterministic in
    the simulator and maps naturally onto "probe every Nth request" in a
    real serving system.
    """

    def __init__(self, p: int, policy: HealthPolicy | None = None) -> None:
        self.policy = policy or HealthPolicy()
        self.nodes = [NodeHealth(rank=k, policy=self.policy) for k in range(p)]
        self.query_index = 0

    def begin_query(self) -> int:
        """Advance the query counter; returns the new index."""
        self.query_index += 1
        return self.query_index

    def state(self, rank: int) -> HealthState:
        return self.nodes[rank].state

    def routed_around(self, rank: int) -> bool:
        return self.nodes[rank].routed_around

    def tick_routed(self, rank: int) -> None:
        self.nodes[rank].tick_routed(self.query_index)

    def observe(self, rank: int, obs: Observation) -> None:
        self.nodes[rank].observe(obs, self.query_index)

    def retire(self, rank: int) -> None:
        """Mark node ``rank`` permanently gone (terminal; idempotent)."""
        self.nodes[rank].retire(self.query_index)

    def retired(self, rank: int) -> bool:
        return self.nodes[rank].retired

    def observe_metrics(self, metrics) -> None:
        """Fold a :class:`~repro.parallel.metrics.NodeMetrics` in."""
        self.observe(
            metrics.node_rank,
            Observation(
                failed=metrics.failed,
                retries=metrics.io_stats.retries,
                checksum_failures=metrics.io_stats.checksum_failures,
                fault_delay=metrics.io_stats.fault_delay,
                deadline_expired=metrics.deadline_expired,
            ),
        )

    # -- reporting -----------------------------------------------------

    def states(self) -> "list[HealthState]":
        return [n.state for n in self.nodes]

    def publish(self, registry, prefix: str = "health") -> None:
        """Write the monitor's current state into a
        :class:`~repro.obs.metrics.MetricsRegistry`.

        Everything is published as gauges set to *current totals* (state
        code, strikes, cumulative transition counts), so repeated
        publishes after successive queries never double-count.  State
        codes follow the machine's escalation order: 0 healthy,
        1 suspect, 2 half-open, 3 circuit-open, 4 retired (terminal).
        """
        codes = {
            HealthState.HEALTHY: 0,
            HealthState.SUSPECT: 1,
            HealthState.HALF_OPEN: 2,
            HealthState.CIRCUIT_OPEN: 3,
            HealthState.RETIRED: 4,
        }
        transitions = 0
        by_dst: "dict[str, int]" = {}
        for n in self.nodes:
            registry.set_gauge(f"{prefix}.node.{n.rank}.state_code",
                               codes[n.state])
            registry.set_gauge(f"{prefix}.node.{n.rank}.strikes", n.strikes)
            registry.set_gauge(f"{prefix}.node.{n.rank}.times_opened",
                               n.times_opened)
            registry.set_gauge(f"{prefix}.node.{n.rank}.times_healed",
                               n.times_healed)
            transitions += len(n.transitions)
            for t in n.transitions:
                key = str(t.dst)
                by_dst[key] = by_dst.get(key, 0) + 1
        registry.set_gauge(f"{prefix}.transitions", transitions)
        for dst, count in by_dst.items():
            registry.set_gauge(f"{prefix}.transitions.to.{dst}", count)

    def report(self) -> str:
        """Human-readable health table plus the transition log."""
        lines = [
            f"{'node':>4} {'state':>14} {'strikes':>8} {'opened':>7} "
            f"{'healed':>7}  last incident"
        ]
        for n in self.nodes:
            lines.append(
                f"{n.rank:>4} {str(n.state):>14} {n.strikes:>8} "
                f"{n.times_opened:>7} {n.times_healed:>7}  "
                f"{n.last_incident or '-'}"
            )
        log = [
            (t.query_index, n.rank, t)
            for n in self.nodes
            for t in n.transitions
        ]
        if log:
            lines.append("transitions:")
            for qi, rank, t in sorted(log, key=lambda e: (e[0], e[1])):
                lines.append(
                    f"  query {qi:>3}: node {rank} {t.src} -> {t.dst} ({t.reason})"
                )
        return "\n".join(lines)
