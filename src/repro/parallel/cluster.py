"""Simulated visualization cluster (paper Sections 5.1, 6, 7).

:class:`SimulatedCluster` reproduces the paper's execution structure
exactly:

1. preprocessing stripes the bricks across ``p`` local (simulated)
   disks;
2. an isosurface query runs *independently* on every node against its
   local index and disk — zero communication;
3. each node triangulates its active metacells and (optionally) renders
   them into a local framebuffer;
4. the only communication is the final sort-last composite of the p
   framebuffers, which is byte-accounted through the interconnect model.

Per-node stage times are modeled from counted work via
:class:`~repro.parallel.perfmodel.PerformanceModel` (see that module for
the honesty contract); actual Python wall time is recorded alongside.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.builder import IndexedDataset, build_indexed_dataset, build_striped_datasets
from repro.core.query import execute_query
from repro.grid.volume import Volume
from repro.mc.geometry import TriangleMesh
from repro.mc.marching_cubes import marching_cubes_batch
from repro.parallel.metrics import LoadBalance, NodeMetrics
from repro.parallel.perfmodel import PAPER_CLUSTER, PerformanceModel
from repro.render.camera import Camera
from repro.render.compositor import composite, direct_send
from repro.render.rasterizer import Framebuffer, render_mesh, render_mesh_smooth
from repro.render.tiled_display import TileLayout


@dataclass
class ClusterResult:
    """Outcome of one isosurface extraction on the (simulated) cluster."""

    lam: float
    p: int
    nodes: "list[NodeMetrics]"
    composite_time: float = 0.0
    composite_bytes: int = 0
    meshes: "list[TriangleMesh] | None" = None
    image: "Framebuffer | None" = None

    @property
    def n_active_metacells(self) -> int:
        return sum(n.n_active_metacells for n in self.nodes)

    @property
    def n_triangles(self) -> int:
        return sum(n.n_triangles for n in self.nodes)

    @property
    def total_time(self) -> float:
        """Modeled wall time: slowest node plus the composite step."""
        return max((n.total_time for n in self.nodes), default=0.0) + self.composite_time

    @property
    def triangle_rate(self) -> float:
        """Modeled million-triangles-per-second figure of the run."""
        t = self.total_time
        return self.n_triangles / t if t > 0 else 0.0

    def metacell_balance(self) -> LoadBalance:
        return LoadBalance(np.asarray([n.n_active_metacells for n in self.nodes]))

    def triangle_balance(self) -> LoadBalance:
        return LoadBalance(np.asarray([n.n_triangles for n in self.nodes]))


class SimulatedCluster:
    """A p-node cluster with striped local disks.

    Parameters
    ----------
    volume:
        Input scalar field; preprocessed at construction.
    p:
        Node count.
    metacell_shape:
        Metacell vertex dimensions (the paper's 9x9x9 by default).
    perf:
        Stage-time calibration (defaults to the paper's hardware).
    image_size:
        Framebuffer dimensions used when rendering is requested.

    Examples
    --------
    >>> from repro.grid.datasets import sphere_field
    >>> cluster = SimulatedCluster(sphere_field((24, 24, 24)), p=4,
    ...                            metacell_shape=(5, 5, 5))
    >>> result = cluster.extract(0.5)
    >>> result.n_triangles > 0 and len(result.nodes) == 4
    True
    """

    def __init__(
        self,
        volume: Volume,
        p: int,
        metacell_shape: tuple[int, int, int] = (9, 9, 9),
        perf: PerformanceModel = PAPER_CLUSTER,
        image_size: tuple[int, int] = (256, 256),
    ) -> None:
        if p < 1:
            raise ValueError(f"node count must be >= 1, got {p}")
        self.volume = volume
        self.p = p
        self.perf = perf
        self.image_size = image_size
        self.metacell_shape = metacell_shape
        if p == 1:
            self.datasets: list[IndexedDataset] = [
                build_indexed_dataset(volume, metacell_shape, cost_model=perf.disk)
            ]
        else:
            self.datasets = build_striped_datasets(
                volume, p, metacell_shape, cost_model=perf.disk
            )

    @property
    def report(self):
        """The shared preprocessing report."""
        return self.datasets[0].report

    # ------------------------------------------------------------------

    def _node_extract(
        self, dataset: IndexedDataset, lam: float, with_normals: bool = False
    ) -> "tuple[NodeMetrics, TriangleMesh, np.ndarray | None]":
        """Query + triangulate on one node; returns metrics, mesh, and
        (optionally) payload-local gradient normals — everything a node
        can compute without the global volume."""
        t0 = time.perf_counter()
        qr = execute_query(dataset, lam)
        codec = dataset.codec
        meta = dataset.meta
        cells_per_metacell = int(np.prod([m - 1 for m in codec.metacell_shape]))
        normals = None
        if qr.n_active:
            values = codec.values_grid(qr.records)
            origins = meta.vertex_origins(qr.records.ids)
            out = marching_cubes_batch(
                values,
                lam,
                origins,
                spacing=meta.spacing,
                world_origin=meta.origin,
                with_normals=with_normals,
            )
            mesh, normals = out if with_normals else (out, None)
        else:
            mesh = TriangleMesh()
            if with_normals:
                normals = np.empty((0, 3))
        measured = time.perf_counter() - t0

        metrics = NodeMetrics(node_rank=dataset.node_rank)
        metrics.n_active_metacells = qr.n_active
        metrics.n_cells_examined = qr.n_active * cells_per_metacell
        metrics.n_triangles = mesh.n_triangles
        metrics.io_stats = qr.io_stats
        metrics.io_time = self.perf.io_time(qr.io_stats)
        metrics.triangulation_time = self.perf.cpu.triangulation_time(
            metrics.n_cells_examined, metrics.n_triangles
        )
        metrics.measured_seconds = measured
        return metrics, mesh, normals

    def extract(
        self,
        lam: float,
        render: bool = False,
        camera: Camera | None = None,
        keep_meshes: bool = False,
        tile_layout: TileLayout | None = None,
        smooth: bool = False,
    ) -> ClusterResult:
        """Extract (and optionally render + composite) isosurface ``lam``.

        With ``render=True``, each node rasterizes its local mesh into
        its own framebuffer and the buffers are composited sort-last;
        the returned result carries the final image.  ``smooth=True``
        renders with Gouraud shading from payload-local gradient normals
        (each node computes them from its own records — no global volume
        exists anywhere, exactly as on the paper's cluster).  Without
        rendering, the GPU time is still modeled from the triangle
        counts, and the composite is byte-accounted analytically.
        """
        per_node: list[NodeMetrics] = []
        meshes: list[TriangleMesh] = []
        node_normals: list = []
        want_normals = render and smooth
        for dataset in self.datasets:
            m, mesh, normals = self._node_extract(
                dataset, lam, with_normals=want_normals
            )
            per_node.append(m)
            meshes.append(mesh)
            node_normals.append(normals)

        w, h = self.image_size
        fb_bytes = w * h * 16  # RGB f32 + depth f32 readback
        for m in per_node:
            m.render_time = self.perf.gpu.render_time(m.n_triangles, fb_bytes)

        result = ClusterResult(lam=float(lam), p=self.p, nodes=per_node)

        image = None
        if render:
            cam = camera
            if cam is None:
                combined = TriangleMesh.concat([m for m in meshes if m.n_triangles])
                if combined.n_triangles == 0:
                    raise ValueError(
                        f"no geometry at isovalue {lam}; cannot auto-frame a camera"
                    )
                cam = Camera.fit_mesh(combined)
            if tile_layout is not None:
                w, h = tile_layout.width, tile_layout.height
            fbs = []
            for mesh, normals in zip(meshes, node_normals):
                fb = Framebuffer(w, h)
                if smooth and normals is not None:
                    render_mesh_smooth(fb, mesh, cam, normals)
                else:
                    render_mesh(fb, mesh, cam)
                fbs.append(fb)
            if tile_layout is not None:
                image, stats = direct_send(fbs, tile_layout)
                result.composite_bytes = stats.total_bytes
                n_msgs = stats.n_nodes * tile_layout.n_tiles
            else:
                image = composite(fbs)
                result.composite_bytes = sum(fb.payload_bytes for fb in fbs)
                n_msgs = self.p
        else:
            # Analytic accounting: every node ships its buffer once.
            result.composite_bytes = self.p * fb_bytes
            n_msgs = self.p

        result.composite_time = self.perf.network.transfer_time(
            result.composite_bytes, n_messages=n_msgs
        )
        result.image = image
        if keep_meshes or render:
            result.meshes = meshes
        return result

    def sweep(self, isovalues, **kwargs) -> "list[ClusterResult]":
        """Run :meth:`extract` over a sequence of isovalues."""
        return [self.extract(lam, **kwargs) for lam in isovalues]
