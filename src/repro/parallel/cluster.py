"""Simulated visualization cluster (paper Sections 5.1, 6, 7).

:class:`SimulatedCluster` reproduces the paper's execution structure
exactly:

1. preprocessing stripes the bricks across ``p`` local (simulated)
   disks;
2. an isosurface query runs *independently* on every node against its
   local index and disk — zero communication;
3. each node triangulates its active metacells and (optionally) renders
   them into a local framebuffer;
4. the only communication is the final sort-last composite of the p
   framebuffers, which is byte-accounted through the interconnect model.

Per-node stage times are modeled from counted work via
:class:`~repro.parallel.perfmodel.PerformanceModel` (see that module for
the honesty contract); actual Python wall time is recorded alongside.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.builder import IndexedDataset, build_indexed_dataset, build_striped_datasets
from repro.core.query import execute_query
from repro.grid.volume import Volume
from repro.io.faults import FaultInjectingDevice, FaultPlan, RetryPolicy, StorageFault
from repro.mc.geometry import TriangleMesh
from repro.mc.marching_cubes import marching_cubes_batch
from repro.parallel.metrics import LoadBalance, NodeMetrics
from repro.parallel.perfmodel import PAPER_CLUSTER, PerformanceModel
from repro.render.camera import Camera
from repro.render.compositor import composite, direct_send
from repro.render.rasterizer import Framebuffer, render_mesh, render_mesh_smooth
from repro.render.tiled_display import TileLayout


@dataclass
class ClusterResult:
    """Outcome of one isosurface extraction on the (simulated) cluster.

    ``failed_nodes`` lists every node whose device failed during the
    run, recovered or not.  ``degraded`` is True only when at least one
    failed node had no readable replica, i.e. the result is *partial*:
    triangle counts and the image cover the surviving bricks only.  With
    replication covering every failure the result is complete and
    bit-identical to a healthy run — ``degraded`` stays False.
    """

    lam: float
    p: int
    nodes: "list[NodeMetrics]"
    composite_time: float = 0.0
    composite_bytes: int = 0
    meshes: "list[TriangleMesh] | None" = None
    image: "Framebuffer | None" = None
    degraded: bool = False
    failed_nodes: "list[int]" = field(default_factory=list)

    @property
    def unrecovered_nodes(self) -> "list[int]":
        """Failed nodes whose bricks no surviving replica could serve."""
        return [k for k in self.failed_nodes if self.nodes[k].served_by is None]

    @property
    def n_active_metacells(self) -> int:
        return sum(n.n_active_metacells for n in self.nodes)

    @property
    def n_triangles(self) -> int:
        return sum(n.n_triangles for n in self.nodes)

    @property
    def total_time(self) -> float:
        """Modeled wall time: slowest node plus the composite step."""
        return max((n.total_time for n in self.nodes), default=0.0) + self.composite_time

    @property
    def triangle_rate(self) -> float:
        """Modeled million-triangles-per-second figure of the run."""
        t = self.total_time
        return self.n_triangles / t if t > 0 else 0.0

    def metacell_balance(self) -> LoadBalance:
        return LoadBalance(np.asarray([n.n_active_metacells for n in self.nodes]))

    def triangle_balance(self) -> LoadBalance:
        return LoadBalance(np.asarray([n.n_triangles for n in self.nodes]))


class SimulatedCluster:
    """A p-node cluster with striped local disks.

    Parameters
    ----------
    volume:
        Input scalar field; preprocessed at construction.
    p:
        Node count.
    metacell_shape:
        Metacell vertex dimensions (the paper's 9x9x9 by default).
    perf:
        Stage-time calibration (defaults to the paper's hardware).
    image_size:
        Framebuffer dimensions used when rendering is requested.
    replication:
        Brick replication factor ``r``: each node's layout is copied to
        the ``r - 1`` following nodes (chained declustering), letting
        :meth:`extract` survive up to ``r - 1`` node failures with a
        bit-identical result.  ``1`` (default) reproduces the paper's
        unreplicated cluster.
    fault_plans:
        Optional ``rank -> FaultPlan`` wiring fault injection onto
        individual node disks at construction.
    retry_policy:
        Retry/backoff policy handed to every node query.

    Examples
    --------
    >>> from repro.grid.datasets import sphere_field
    >>> cluster = SimulatedCluster(sphere_field((24, 24, 24)), p=4,
    ...                            metacell_shape=(5, 5, 5))
    >>> result = cluster.extract(0.5)
    >>> result.n_triangles > 0 and len(result.nodes) == 4
    True
    """

    def __init__(
        self,
        volume: Volume,
        p: int,
        metacell_shape: tuple[int, int, int] = (9, 9, 9),
        perf: PerformanceModel = PAPER_CLUSTER,
        image_size: tuple[int, int] = (256, 256),
        replication: int = 1,
        fault_plans: "dict[int, FaultPlan] | None" = None,
        retry_policy: "RetryPolicy | None" = None,
    ) -> None:
        if p < 1:
            raise ValueError(f"node count must be >= 1, got {p}")
        self.volume = volume
        self.p = p
        self.perf = perf
        self.image_size = image_size
        self.metacell_shape = metacell_shape
        self.replication = replication
        self.retry_policy = retry_policy
        if p == 1:
            if replication != 1:
                raise ValueError("replication needs p >= 2 nodes")
            self.datasets: list[IndexedDataset] = [
                build_indexed_dataset(volume, metacell_shape, cost_model=perf.disk)
            ]
        else:
            self.datasets = build_striped_datasets(
                volume, p, metacell_shape, cost_model=perf.disk,
                replication=replication,
            )
        for rank, plan in (fault_plans or {}).items():
            self.inject_faults(rank, plan)

    @property
    def report(self):
        """The shared preprocessing report."""
        return self.datasets[0].report

    # -- fault control -------------------------------------------------

    def inject_faults(self, rank: int, plan: FaultPlan) -> FaultInjectingDevice:
        """Wrap node ``rank``'s disk in a fault injector (idempotent:
        re-injecting replaces the plan on the existing wrapper)."""
        ds = self.datasets[rank]
        dev = ds.device
        if isinstance(dev, FaultInjectingDevice):
            dev.plan = plan
        else:
            dev = FaultInjectingDevice(dev, plan)
            ds.device = dev
        return dev

    def fail_node(self, rank: int) -> None:
        """Kill node ``rank``'s disk permanently (simulated node loss)."""
        dev = self.datasets[rank].device
        if not isinstance(dev, FaultInjectingDevice):
            dev = self.inject_faults(rank, FaultPlan())
        dev.fail()

    def heal_node(self, rank: int) -> None:
        """Bring a failed node back online."""
        dev = self.datasets[rank].device
        if isinstance(dev, FaultInjectingDevice):
            dev.heal()

    def _replica_hosts(self, rank: int) -> "list[int]":
        """Surviving-candidate ranks holding a replica of ``rank``'s
        layout, nearest successor first."""
        hosts = [
            q for q in range(self.p) if rank in self.datasets[q].replica_stores
        ]
        return sorted(hosts, key=lambda q: (q - rank) % self.p)

    def _replica_dataset(self, rank: int, host: int) -> IndexedDataset:
        """A view of node ``rank``'s layout served from ``host``'s disk.

        Shares the failed node's tree, codec, and checksum tables (the
        replica bytes are identical, so the CRCs are too) but points at
        the replica region of the host device — the query plan, record
        stream, and verification behave exactly as on the lost disk.
        """
        src = self.datasets[rank]
        hosted = self.datasets[host]
        return replace(
            src,
            device=hosted.device,
            base_offset=hosted.replica_stores[rank],
            replica_stores={},
        )

    # ------------------------------------------------------------------

    def _node_extract(
        self, dataset: IndexedDataset, lam: float, with_normals: bool = False
    ) -> "tuple[NodeMetrics, TriangleMesh, np.ndarray | None]":
        """Query + triangulate on one node; returns metrics, mesh, and
        (optionally) payload-local gradient normals — everything a node
        can compute without the global volume."""
        t0 = time.perf_counter()
        qr = execute_query(dataset, lam, retry_policy=self.retry_policy)
        codec = dataset.codec
        meta = dataset.meta
        cells_per_metacell = int(np.prod([m - 1 for m in codec.metacell_shape]))
        normals = None
        if qr.n_active:
            values = codec.values_grid(qr.records)
            origins = meta.vertex_origins(qr.records.ids)
            out = marching_cubes_batch(
                values,
                lam,
                origins,
                spacing=meta.spacing,
                world_origin=meta.origin,
                with_normals=with_normals,
            )
            mesh, normals = out if with_normals else (out, None)
        else:
            mesh = TriangleMesh()
            if with_normals:
                normals = np.empty((0, 3))
        measured = time.perf_counter() - t0

        metrics = NodeMetrics(node_rank=dataset.node_rank)
        metrics.n_active_metacells = qr.n_active
        metrics.n_cells_examined = qr.n_active * cells_per_metacell
        metrics.n_triangles = mesh.n_triangles
        metrics.io_stats = qr.io_stats
        metrics.io_time = self.perf.io_time(qr.io_stats)
        metrics.triangulation_time = self.perf.cpu.triangulation_time(
            metrics.n_cells_examined, metrics.n_triangles
        )
        metrics.measured_seconds = measured
        return metrics, mesh, normals

    def extract(
        self,
        lam: float,
        render: bool = False,
        camera: Camera | None = None,
        keep_meshes: bool = False,
        tile_layout: TileLayout | None = None,
        smooth: bool = False,
    ) -> ClusterResult:
        """Extract (and optionally render + composite) isosurface ``lam``.

        With ``render=True``, each node rasterizes its local mesh into
        its own framebuffer and the buffers are composited sort-last;
        the returned result carries the final image.  ``smooth=True``
        renders with Gouraud shading from payload-local gradient normals
        (each node computes them from its own records — no global volume
        exists anywhere, exactly as on the paper's cluster).  Without
        rendering, the GPU time is still modeled from the triangle
        counts, and the composite is byte-accounted analytically.

        Degraded mode: a node whose disk raises a permanent
        :class:`~repro.io.faults.StorageFault` is marked failed instead
        of crashing the extraction.  If a surviving node holds a replica
        of the lost layout (``replication >= 2``), it re-runs the failed
        node's exact query against the replica region — producing the
        identical records, mesh, and framebuffer, with the extra I/O and
        compute time charged to the serving node.  Failures with no
        replica yield a *partial* result flagged ``degraded=True``: the
        sort-last composite covers the surviving framebuffers only, and
        no exception escapes.
        """
        per_node: list[NodeMetrics] = []
        meshes: list[TriangleMesh] = []
        node_normals: list = []
        want_normals = render and smooth
        failed_ranks: list[int] = []
        for dataset in self.datasets:
            try:
                m, mesh, normals = self._node_extract(
                    dataset, lam, with_normals=want_normals
                )
            except StorageFault as exc:
                m = NodeMetrics(
                    node_rank=dataset.node_rank, failed=True, failure=str(exc)
                )
                mesh = TriangleMesh()
                normals = np.empty((0, 3)) if want_normals else None
                failed_ranks.append(dataset.node_rank)
            per_node.append(m)
            meshes.append(mesh)
            node_normals.append(normals)

        # Recovery pass: serve lost bricks from surviving replicas.  The
        # recovered mesh keeps the failed node's framebuffer *slot* so
        # composite order — and hence the image — matches a healthy run
        # bit for bit; the work is accounted to the node that did it.
        for k in failed_ranks:
            for host in self._replica_hosts(k):
                if per_node[host].failed:
                    continue
                try:
                    m2, mesh2, normals2 = self._node_extract(
                        self._replica_dataset(k, host), lam, with_normals=want_normals
                    )
                except StorageFault:
                    continue
                hm = per_node[host]
                hm.n_active_metacells += m2.n_active_metacells
                hm.n_cells_examined += m2.n_cells_examined
                hm.n_triangles += m2.n_triangles
                hm.io_stats = hm.io_stats + m2.io_stats
                hm.io_time += m2.io_time
                hm.triangulation_time += m2.triangulation_time
                hm.measured_seconds += m2.measured_seconds
                hm.recovered_ranks.append(k)
                per_node[k].served_by = host
                meshes[k] = mesh2
                node_normals[k] = normals2
                break
        unrecovered = [k for k in failed_ranks if per_node[k].served_by is None]

        w, h = self.image_size
        fb_bytes = w * h * 16  # RGB f32 + depth f32 readback
        for m in per_node:
            if m.failed:
                m.render_time = 0.0
            else:
                # A node renders one buffer per layout it served (its own
                # plus any recovered ranks), each read back over PCIe.
                m.render_time = self.perf.gpu.render_time(
                    m.n_triangles, fb_bytes * (1 + len(m.recovered_ranks))
                )

        result = ClusterResult(
            lam=float(lam),
            p=self.p,
            nodes=per_node,
            degraded=bool(unrecovered),
            failed_nodes=sorted(failed_ranks),
        )
        #: Framebuffer slots that actually exist somewhere and get shipped.
        live = [i for i in range(self.p) if i not in unrecovered]

        image = None
        if render:
            cam = camera
            if cam is None:
                combined = TriangleMesh.concat([m for m in meshes if m.n_triangles])
                if combined.n_triangles == 0 and not result.degraded:
                    raise ValueError(
                        f"no geometry at isovalue {lam}; cannot auto-frame a camera"
                    )
                cam = (
                    Camera.fit_mesh(combined) if combined.n_triangles else None
                )
            if tile_layout is not None:
                w, h = tile_layout.width, tile_layout.height
            fbs = []
            for i in live:
                fb = Framebuffer(w, h)
                if cam is not None:
                    if smooth and node_normals[i] is not None:
                        render_mesh_smooth(fb, meshes[i], cam, node_normals[i])
                    else:
                        render_mesh(fb, meshes[i], cam)
                fbs.append(fb)
            if not fbs:
                # Every node failed with no replicas: an empty frame.
                image = Framebuffer(w, h)
                result.composite_bytes = 0
                n_msgs = 0
            elif tile_layout is not None:
                image, stats = direct_send(fbs, tile_layout)
                result.composite_bytes = stats.total_bytes
                n_msgs = stats.n_nodes * tile_layout.n_tiles
            else:
                image = composite(fbs)
                result.composite_bytes = sum(fb.payload_bytes for fb in fbs)
                n_msgs = len(fbs)
        else:
            # Analytic accounting: every live buffer ships once.
            result.composite_bytes = len(live) * fb_bytes
            n_msgs = len(live)

        result.composite_time = self.perf.network.transfer_time(
            result.composite_bytes, n_messages=n_msgs
        )
        result.image = image
        if keep_meshes or render:
            result.meshes = meshes
        return result

    def sweep(self, isovalues, **kwargs) -> "list[ClusterResult]":
        """Run :meth:`extract` over a sequence of isovalues."""
        return [self.extract(lam, **kwargs) for lam in isovalues]
