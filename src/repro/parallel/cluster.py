"""Simulated visualization cluster (paper Sections 5.1, 6, 7).

:class:`SimulatedCluster` reproduces the paper's execution structure
exactly:

1. preprocessing stripes the bricks across ``p`` local (simulated)
   disks;
2. an isosurface query runs *independently* on every node against its
   local index and disk — zero communication;
3. each node triangulates its active metacells and (optionally) renders
   them into a local framebuffer;
4. the only communication is the final sort-last composite of the p
   framebuffers, which is byte-accounted through the interconnect model.

Per-node stage times are modeled from counted work via
:class:`~repro.parallel.perfmodel.PerformanceModel` (see that module for
the honesty contract); actual Python wall time is recorded alongside.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.builder import IndexedDataset, build_indexed_dataset, build_striped_datasets
from repro.chaos.netfaults import COORDINATOR
from repro.core.deadline import Deadline, DeadlineReport
from repro.core.query import QueryOptions, execute_query, warn_legacy_kwargs
from repro.grid.volume import Volume
from repro.io.cache import CacheOptions
from repro.io.faults import (
    FaultInjectingDevice,
    FaultPlan,
    HedgedDevice,
    HedgePolicy,
    RetryPolicy,
    StorageFault,
)
from repro.mc.geometry import TriangleMesh
from repro.mc.marching_cubes import marching_cubes_batch
from repro.obs.tracer import NULL_TRACER, coerce_tracer
from repro.parallel.health import HealthMonitor, HealthPolicy, Observation
from repro.parallel.metrics import LoadBalance, NodeMetrics
from repro.parallel.perfmodel import PAPER_CLUSTER, PerformanceModel
from repro.parallel.scheduler import plan_speculation
from repro.render.camera import Camera
from repro.render.compositor import composite, direct_send
from repro.render.rasterizer import Framebuffer, render_mesh, render_mesh_smooth
from repro.render.tiled_display import TileLayout


@dataclass(frozen=True)
class OwnershipChange:
    """One recorded stripe reassignment (the ownership audit log row)."""

    epoch: int
    stripe: int
    old_owner: int
    new_owner: int
    reason: str = ""


class OwnershipMap:
    """Which node owns (serves the primary copy of) each brick stripe.

    The striping itself — which records land in which stripe — is fixed
    at preprocessing time exactly as in the paper; what this map makes
    dynamic is *who serves* each stripe.  The static cluster is the
    identity assignment (stripe ``s`` owned by node ``s``); the elastic
    cluster (:mod:`repro.elastic`) reassigns stripes on join / drain /
    failover.

    Every reassignment bumps :attr:`epoch` and appends an
    :class:`OwnershipChange` to :attr:`log`.  Queries are **epoch
    fenced**: :meth:`SimulatedCluster.extract` materializes its routing
    view once at entry (see ``_dataset_views``), so an in-flight query
    completes against one consistent ``(epoch, owners)`` snapshot even
    when a rebalance lands between queries, and the serving layer keys
    its cost estimates by ``(lam, epoch)`` so feasibility tracks live
    capacity.
    """

    def __init__(self, owners) -> None:
        self._owners = [int(o) for o in owners]
        self.epoch = 0
        self.log: "list[OwnershipChange]" = []
        #: Callbacks ``(stripe, new_owner, epoch, reason)`` fired after
        #: every epoch bump — how the result cache learns to fence out
        #: entries from the previous assignment.
        self.listeners: "list" = []

    @classmethod
    def identity(cls, n_stripes: int) -> "OwnershipMap":
        return cls(range(n_stripes))

    @property
    def n_stripes(self) -> int:
        return len(self._owners)

    def owner(self, stripe: int) -> int:
        return self._owners[stripe]

    def owners(self) -> "tuple[int, ...]":
        return tuple(self._owners)

    def stripes_of(self, node: int) -> "list[int]":
        return [s for s, o in enumerate(self._owners) if o == node]

    def counts(self) -> "dict[int, int]":
        """node -> number of stripes it currently owns."""
        out: "dict[int, int]" = {}
        for o in self._owners:
            out[o] = out.get(o, 0) + 1
        return out

    def snapshot(self) -> "tuple[int, tuple[int, ...]]":
        """The epoch fence: ``(epoch, owners)`` captured atomically."""
        return self.epoch, tuple(self._owners)

    def assign(self, stripe: int, new_owner: int, reason: str = "") -> int:
        """Reassign one stripe; returns the (possibly bumped) epoch."""
        old = self._owners[stripe]
        if old == int(new_owner):
            return self.epoch
        self.epoch += 1
        self._owners[stripe] = int(new_owner)
        self.log.append(OwnershipChange(
            epoch=self.epoch, stripe=stripe, old_owner=old,
            new_owner=int(new_owner), reason=reason,
        ))
        for cb in self.listeners:
            cb(stripe, int(new_owner), self.epoch, reason)
        return self.epoch


@dataclass(frozen=True)
class ExtractRequest:
    """Everything configurable about one cluster extraction, in one place.

    Replaces the kwarg sprawl of :meth:`SimulatedCluster.extract`
    (``render``, ``camera``, ``keep_meshes``, ``tile_layout``,
    ``smooth``, ``deadline``, ``hedge``, ``speculate``, plus the new
    observability hooks).  Frozen: derive variants with
    :func:`dataclasses.replace`.  See :meth:`SimulatedCluster.extract`
    for the semantics of each field.
    """

    render: bool = False
    camera: "Camera | None" = None
    keep_meshes: bool = False
    tile_layout: "TileLayout | None" = None
    smooth: bool = False
    deadline: "Deadline | float | None" = None
    hedge: "HedgePolicy | bool | None" = None
    speculate: "bool | None" = None
    #: A :class:`~repro.obs.tracer.Tracer` receiving one track per node
    #: plus a ``cluster`` track, all on the modeled clock (None: the
    #: shared no-op tracer — zero overhead).
    tracer: "object | None" = None
    #: A :class:`~repro.obs.metrics.MetricsRegistry` absorbing per-node
    #: ``IOStats``, stage times, recovery reasons, deadline coverage,
    #: and health state (None: nothing is published).
    metrics: "object | None" = None
    #: Merge adjacent brick reads whose gap is at most this many blocks
    #: into one physical extent per node query (see
    #: :attr:`repro.core.query.QueryOptions.coalesce_gap_blocks`).
    #: Modeled I/O charges are unchanged; only wall time improves.
    coalesce_gap_blocks: int = 0
    #: A :class:`~repro.parallel.pipeline.PipelineOptions` routing each
    #: node's triangulation through the stage-overlapped shared-memory
    #: executor (None: the serial kernel).  Output is bit-identical
    #: either way.
    pipeline: "object | None" = None
    #: Tenant this query is attributed to (the serving layer's
    #: multi-tenant accounting): carried through to
    #: :attr:`ClusterResult.tenant` and, with ``metrics`` set, published
    #: under ``tenant.<name>.*``.  None: unattributed (single-caller
    #: usage, the pre-serving behaviour).
    tenant: "str | None" = None
    #: A :class:`~repro.io.cache.CacheOptions` carried alongside the
    #: request (λ-bucket width for result keys / coalescing; cache byte
    #: budgets resolved by the owning cluster or server).  None: the
    #: cluster's own configuration applies.
    cache: "object | None" = None
    #: A :class:`~repro.serve.rcache.ResultCache` this extraction may
    #: probe and populate (overrides the cluster's own, if any); the
    #: epoch-fenced view is bound inside :meth:`SimulatedCluster.extract`
    #: at the same fence as the routing snapshot.
    result_cache: "object | None" = None
    #: Whether this extraction may *populate* the result cache (lookups
    #: always work).  The serving layer clears it for bulk-tier work
    #: under brownout shed so the shed class cannot churn the cache.
    cache_populate: bool = True
    #: Extraction-kernel backend every node triangulates with, resolved
    #: through :mod:`repro.mc.backends` (``"mc-batch"``: exact vectorized
    #: MC; ``"surface-nets"``: smoothed dual kernel, ~2x throughput).
    #: Inexact backends get their own result-cache key space.
    backend: str = "mc-batch"
    #: Metacells per vectorized triangulation pass (``None``: the
    #: kernel's :data:`~repro.mc.marching_cubes.DEFAULT_BATCH_CHUNK`);
    #: also the pipelined path's job-cutting unit.
    batch_chunk: "int | None" = None

    def __post_init__(self) -> None:
        if self.backend != "mc-batch":
            from repro.mc.backends import validate_backend

            validate_backend(self.backend)
        if self.batch_chunk is not None and self.batch_chunk < 1:
            raise ValueError(
                f"batch_chunk must be >= 1, got {self.batch_chunk}"
            )


#: Request used when a caller passes none.
DEFAULT_EXTRACT_REQUEST = ExtractRequest()

#: Kwargs the pre-:class:`ExtractRequest` API accepted; still honoured
#: through the deprecation shim below.
_LEGACY_EXTRACT_KWARGS = frozenset({
    "render", "camera", "keep_meshes", "tile_layout", "smooth",
    "deadline", "hedge", "speculate",
})

#: Kwargs added after the request-object migration; accepted standalone
#: (no deprecation), never mixed with legacy spellings or request=.
_MODERN_EXTRACT_KWARGS = frozenset({"backend", "batch_chunk"})


def _coerce_request(
    request: "ExtractRequest | None", kwargs: dict, fn: str
) -> ExtractRequest:
    """Resolve the ``request``-vs-legacy-kwargs call forms (the same
    warn-once deprecation contract as ``execute_query``'s options)."""
    if request is not None and not isinstance(request, ExtractRequest):
        raise TypeError(
            f"{fn}() second argument must be an ExtractRequest (got "
            f"{type(request).__name__})"
        )
    if kwargs:
        unknown = sorted(
            set(kwargs) - _LEGACY_EXTRACT_KWARGS - _MODERN_EXTRACT_KWARGS
        )
        if unknown:
            raise TypeError(f"{fn}() got unexpected keyword argument(s) {unknown}")
        if request is not None:
            raise TypeError(
                f"{fn}() got both request= and keyword(s) "
                f"{sorted(kwargs)}; pass everything in ExtractRequest"
            )
        legacy = sorted(set(kwargs) & _LEGACY_EXTRACT_KWARGS)
        modern = sorted(set(kwargs) & _MODERN_EXTRACT_KWARGS)
        if legacy and modern:
            raise TypeError(
                f"{fn}() got keyword(s) {modern} together with legacy "
                f"keyword(s) {legacy}; both spellings cannot be mixed — "
                f"pass everything in ExtractRequest"
            )
        if legacy:
            warn_legacy_kwargs(fn, kwargs, "request=ExtractRequest(...)")
        return ExtractRequest(**kwargs)
    return request if request is not None else DEFAULT_EXTRACT_REQUEST


@dataclass
class ClusterResult:
    """Outcome of one isosurface extraction on the (simulated) cluster.

    ``failed_nodes`` lists every node whose device failed during the
    run, recovered or not.  ``degraded`` is True only when at least one
    failed node had no readable replica, i.e. the result is *partial*:
    triangle counts and the image cover the surviving bricks only.  With
    replication covering every failure the result is complete and
    bit-identical to a healthy run — ``degraded`` stays False.
    """

    lam: float
    p: int
    nodes: "list[NodeMetrics]"
    composite_time: float = 0.0
    composite_bytes: int = 0
    meshes: "list[TriangleMesh] | None" = None
    image: "Framebuffer | None" = None
    degraded: bool = False
    failed_nodes: "list[int]" = field(default_factory=list)
    #: Fraction of the query's active metacells actually delivered
    #: (1.0 unless a deadline cut reads short or a failure went
    #: unrecovered).
    coverage: float = 1.0
    #: Deadline accounting when the query ran under a budget, else None.
    deadline: "DeadlineReport | None" = None
    #: Tenant the query was attributed to (see
    #: :attr:`ExtractRequest.tenant`), or None.
    tenant: "str | None" = None
    #: Ownership epoch the query was fenced to (see :class:`OwnershipMap`);
    #: 0 on a static cluster that never reassigned a stripe.
    epoch: int = 0
    #: Stripe slots grouped by the physical node that served them, for
    #: clusters where several stripe slots share one disk (the elastic
    #: cluster).  None: each slot is its own node (the static cluster).
    node_groups: "list[list[int]] | None" = None
    #: Extraction-kernel backend the nodes triangulated with (see
    #: :attr:`ExtractRequest.backend`).
    backend: str = "mc-batch"
    #: Framebuffer ranks whose composite contribution the network lost
    #: past the retry budget (chaos network fault plan only; their
    #: pixels are missing and ``degraded`` is forced True).
    net_lost_ranks: "list[int]" = field(default_factory=list)

    @property
    def unrecovered_nodes(self) -> "list[int]":
        """Failed nodes whose bricks no surviving replica could serve."""
        return [k for k in self.failed_nodes if self.nodes[k].served_by is None]

    @property
    def skipped_bricks(self) -> "dict[int, list[int]]":
        """rank -> span-space brick ids a deadline left unread."""
        return {
            m.node_rank: list(m.skipped_bricks)
            for m in self.nodes
            if m.skipped_bricks
        }

    @property
    def n_hedged_reads(self) -> int:
        return sum(n.n_hedged_reads for n in self.nodes)

    @property
    def n_hedge_wins(self) -> int:
        return sum(n.n_hedge_wins for n in self.nodes)

    @property
    def n_active_metacells(self) -> int:
        return sum(n.n_active_metacells for n in self.nodes)

    @property
    def n_triangles(self) -> int:
        return sum(n.n_triangles for n in self.nodes)

    @property
    def total_time(self) -> float:
        """Modeled wall time: slowest node plus the composite step.

        With :attr:`node_groups` set, stripe slots sharing one physical
        disk run serially on it, so the makespan is the slowest *group
        sum* — the honest figure for an over-partitioned elastic
        cluster — instead of the slowest individual slot.
        """
        if self.node_groups:
            makespan = max(
                (sum(self.nodes[i].total_time for i in group)
                 for group in self.node_groups if group),
                default=0.0,
            )
        else:
            makespan = max((n.total_time for n in self.nodes), default=0.0)
        return makespan + self.composite_time

    @property
    def triangle_rate(self) -> float:
        """Modeled million-triangles-per-second figure of the run."""
        t = self.total_time
        return self.n_triangles / t if t > 0 else 0.0

    def metacell_balance(self) -> LoadBalance:
        return LoadBalance(np.asarray([n.n_active_metacells for n in self.nodes]))

    def triangle_balance(self) -> LoadBalance:
        return LoadBalance(np.asarray([n.n_triangles for n in self.nodes]))


class SimulatedCluster:
    """A p-node cluster with striped local disks.

    Parameters
    ----------
    volume:
        Input scalar field; preprocessed at construction.
    p:
        Node count.
    metacell_shape:
        Metacell vertex dimensions (the paper's 9x9x9 by default).
    perf:
        Stage-time calibration (defaults to the paper's hardware).
    image_size:
        Framebuffer dimensions used when rendering is requested.
    replication:
        Brick replication factor ``r``: each node's layout is copied to
        the ``r - 1`` following nodes (chained declustering), letting
        :meth:`extract` survive up to ``r - 1`` node failures with a
        bit-identical result.  ``1`` (default) reproduces the paper's
        unreplicated cluster.
    fault_plans:
        Optional ``rank -> FaultPlan`` wiring fault injection onto
        individual node disks at construction.
    retry_policy:
        Retry/backoff policy handed to every node query.
    health_policy:
        Thresholds for the per-node health state machine (see
        :mod:`repro.parallel.health`); the monitor persists across
        queries, so repeatedly failing nodes get routed around
        proactively instead of rediscovered every extraction.
    cache:
        A :class:`~repro.io.cache.CacheOptions` bundling every cache
        knob.  ``block_cache_bytes`` wraps each node disk in a
        :class:`~repro.io.cache.CachedDevice` LRU (cross-query block
        reuse shows up in :meth:`cache_stats` and, with a metrics
        registry on the request, under ``cache.*`` gauges);
        ``result_cache_bytes`` attaches a cluster-owned λ-keyed
        :class:`~repro.serve.rcache.ResultCache` that serves repeat
        record prefixes and whole stripe meshes from memory, fenced to
        the ownership epoch.
    cache_blocks:
        Deprecated alias for
        ``cache=CacheOptions(block_cache_bytes=blocks * block_size)``;
        warns once per process.

    Examples
    --------
    >>> from repro.grid.datasets import sphere_field
    >>> cluster = SimulatedCluster(sphere_field((24, 24, 24)), p=4,
    ...                            metacell_shape=(5, 5, 5))
    >>> result = cluster.extract(0.5)
    >>> result.n_triangles > 0 and len(result.nodes) == 4
    True
    """

    def __init__(
        self,
        volume: Volume,
        p: int,
        metacell_shape: tuple[int, int, int] = (9, 9, 9),
        perf: PerformanceModel = PAPER_CLUSTER,
        image_size: tuple[int, int] = (256, 256),
        replication: int = 1,
        fault_plans: "dict[int, FaultPlan] | None" = None,
        retry_policy: "RetryPolicy | None" = None,
        health_policy: "HealthPolicy | None" = None,
        cache_blocks: "int | None" = None,
        cache: "CacheOptions | None" = None,
    ) -> None:
        if p < 1:
            raise ValueError(f"node count must be >= 1, got {p}")
        if cache_blocks is not None:
            warn_legacy_kwargs(
                "SimulatedCluster", {"cache_blocks": cache_blocks},
                "cache=CacheOptions(block_cache_bytes=...)",
            )
            if cache is not None:
                raise TypeError(
                    "SimulatedCluster() got both cache= and the deprecated "
                    "cache_blocks=; pass everything in CacheOptions"
                )
            cache = CacheOptions(
                block_cache_bytes=int(cache_blocks) * perf.disk.block_size
            )
        self.volume = volume
        self.p = p
        self.perf = perf
        self.image_size = image_size
        self.metacell_shape = metacell_shape
        self.replication = replication
        self.retry_policy = retry_policy
        self.health = HealthMonitor(p, health_policy)
        #: Chaos network fault session (see
        #: :meth:`install_network_faults`); None — the default — leaves
        #: every message path byte-identical to a faultless build.
        self.net = None
        self.datasets: list[IndexedDataset] = self._build_datasets(
            volume, p, metacell_shape, perf, replication
        )
        #: stripe -> owning node.  On the static cluster this is the
        #: identity assignment and never changes; the elastic subclass
        #: reassigns stripes (epoch-fenced routing, see OwnershipMap).
        self.ownership = OwnershipMap.identity(self.p)
        for rank, plan in (fault_plans or {}).items():
            self.inject_faults(rank, plan)
        #: The resolved CacheOptions this cluster was built with (None:
        #: every cache off — the pre-CacheOptions default).
        self.cache_options = cache
        #: Cluster-owned λ-keyed result cache, or None.
        self.result_cache = None
        self._rc_fingerprint = None
        if cache is not None:
            blocks = cache.block_cache_blocks(perf.disk.block_size)
            if blocks > 0:
                for rank in range(self.p):
                    self.enable_cache(rank, blocks)
            if cache.result_cache_bytes > 0:
                from repro.serve.rcache import ResultCache

                self.result_cache = ResultCache(
                    cache.result_cache_bytes,
                    lambda_bucket=cache.lambda_bucket,
                )
                self.add_ownership_listener(
                    self.result_cache.on_ownership_change
                )

    def _build_datasets(
        self,
        volume: Volume,
        p: int,
        metacell_shape: tuple[int, int, int],
        perf: PerformanceModel,
        replication: int,
    ) -> "list[IndexedDataset]":
        """Preprocess the volume into per-stripe datasets (one simulated
        disk per stripe).  The elastic cluster overrides this to stripe
        over a smaller pool of shared physical node devices."""
        if p == 1:
            if replication != 1:
                raise ValueError("replication needs p >= 2 nodes")
            return [
                build_indexed_dataset(volume, metacell_shape, cost_model=perf.disk)
            ]
        return build_striped_datasets(
            volume, p, metacell_shape, cost_model=perf.disk,
            replication=replication,
        )

    def install_network_faults(self, plan):
        """Install a :class:`~repro.chaos.netfaults.NetworkFaultPlan` on
        every message path (result returns, hedged/replica reads, tile
        contributions, elastic migration traffic); returns the live
        session or None.

        With ``None`` or an empty plan no session is created: no RNG
        exists, no ``chaos.*`` instants fire, and the cluster's traces
        and results are byte-identical to one that never saw this call.
        """
        self.net = None if plan is None else plan.session()
        return self.net

    def _net_blocked(self, src: int, dst: int) -> bool:
        """True when the installed network session partitions the link."""
        return self.net is not None and self.net.blocked(src, dst)

    def _rank_host(self, rank: int) -> int:
        """Physical endpoint id serving stripe slot ``rank`` (the rank
        itself on the static cluster; the owning node when stripes share
        disks)."""
        return self.ownership.owner(rank)

    @property
    def ownership_epoch(self) -> int:
        """Current epoch of the ownership map (0 = never reassigned)."""
        return self.ownership.epoch

    def add_ownership_listener(self, callback) -> None:
        """Register ``callback(stripe, new_owner, epoch, reason)`` to run
        after every ownership epoch bump.  Registration survives the
        elastic subclass swapping in its own ownership map (the swap
        carries listeners over)."""
        if callback not in self.ownership.listeners:
            self.ownership.listeners.append(callback)

    def _result_fingerprint(self):
        """Build-identity key for the result cache (lazy, cached)."""
        if self._rc_fingerprint is None:
            from repro.serve.rcache import cluster_fingerprint

            self._rc_fingerprint = cluster_fingerprint(self.datasets)
        return self._rc_fingerprint

    @property
    def report(self):
        """The shared preprocessing report."""
        return self.datasets[0].report

    # -- fault control -------------------------------------------------

    def inject_faults(self, rank: int, plan: FaultPlan) -> FaultInjectingDevice:
        """Wrap node ``rank``'s disk in a fault injector (idempotent:
        re-injecting replaces the plan on the existing wrapper)."""
        ds = self.datasets[rank]
        dev = ds.device
        if isinstance(dev, FaultInjectingDevice):
            dev.plan = plan
        else:
            dev = FaultInjectingDevice(dev, plan)
            ds.device = dev
        return dev

    def enable_cache(self, rank: int, capacity_blocks: int) -> None:
        """Put an LRU block cache in front of node ``rank``'s disk
        (idempotent: an existing cache just has its capacity kept)."""
        from repro.io.cache import CachedDevice

        ds = self.datasets[rank]
        if not isinstance(ds.device, CachedDevice):
            ds.device = CachedDevice(ds.device, capacity_blocks)

    def cache_stats(self):
        """Combined :class:`~repro.io.cache.CacheStats` across every
        cached node disk, or None when no node has a cache.

        Walks each node's device wrapper chain (fault injectors, hedged
        wrappers, and caches all expose ``backing``), so the caches are
        found regardless of stacking order.
        """
        from repro.io.cache import CachedDevice, CacheStats

        found = False
        total = CacheStats()
        for ds in self.datasets:
            dev = ds.device
            while dev is not None:
                if isinstance(dev, CachedDevice):
                    found = True
                    cs = dev.cache_stats
                    total.hits += cs.hits
                    total.misses += cs.misses
                    total.evictions += cs.evictions
                    total.invalidations += cs.invalidations
                dev = getattr(dev, "backing", None)
        return total if found else None

    def fail_node(self, rank: int) -> None:
        """Kill node ``rank``'s disk permanently (simulated node loss)."""
        dev = self.datasets[rank].device
        if not isinstance(dev, FaultInjectingDevice):
            dev = self.inject_faults(rank, FaultPlan())
        dev.fail()

    def heal_node(self, rank: int) -> None:
        """Bring a failed node back online."""
        dev = self.datasets[rank].device
        if isinstance(dev, FaultInjectingDevice):
            dev.heal()

    def retire_node(self, rank: int) -> None:
        """Permanently remove node ``rank`` from service.

        The health breaker enters its terminal ``retired`` state — the
        node is routed around forever and never probed again (unlike an
        open circuit, which half-opens after a cooldown).  Queries keep
        succeeding from the chained-declustering replica; with
        ``replication == 1`` the node's bricks become unreachable and
        results go degraded, exactly as an unrecovered failure would.
        """
        self.health.retire(rank)

    # -- routing views (epoch fencing) ---------------------------------

    def _dataset_views(self) -> "list[IndexedDataset]":
        """The per-stripe routing view one extraction runs against.

        Called exactly once at :meth:`extract` entry — the epoch fence.
        The static cluster's ownership never changes, so the datasets
        themselves are the view; the elastic cluster overrides this to
        materialize per-stripe views pointing at each stripe's *current*
        owner (device + base offset) under one ownership snapshot.
        """
        return list(self.datasets)

    def _result_node_groups(self) -> "list[list[int]] | None":
        """Stripe slots grouped by physical disk for makespan honesty
        (see :attr:`ClusterResult.node_groups`); None on the static
        cluster where every slot has its own disk."""
        return None

    def _default_hedge_policy(self) -> HedgePolicy:
        """Policy used when a request passes ``hedge=True``."""
        return HedgePolicy()

    def _replica_hosts(self, rank: int) -> "list[int]":
        """Surviving-candidate ranks holding a replica of ``rank``'s
        layout, nearest successor first."""
        hosts = [
            q for q in range(self.p) if rank in self.datasets[q].replica_stores
        ]
        return sorted(hosts, key=lambda q: (q - rank) % self.p)

    def _replica_dataset(self, rank: int, host: int) -> IndexedDataset:
        """A view of node ``rank``'s layout served from ``host``'s disk.

        Shares the failed node's tree, codec, and checksum tables (the
        replica bytes are identical, so the CRCs are too) but points at
        the replica region of the host device — the query plan, record
        stream, and verification behave exactly as on the lost disk.
        """
        src = self.datasets[rank]
        hosted = self.datasets[host]
        return replace(
            src,
            device=hosted.device,
            base_offset=hosted.replica_stores[rank],
            replica_stores={},
        )

    # ------------------------------------------------------------------

    def _hedged_dataset(
        self, rank: int, policy: HedgePolicy, tracer=NULL_TRACER,
        dataset: "IndexedDataset | None" = None,
    ) -> "IndexedDataset | None":
        """Node ``rank``'s dataset with its device wrapped for hedged
        replica reads, or None when no replica exists to hedge against.

        ``dataset`` is the routing view to wrap (defaults to the node's
        own dataset; the elastic cluster passes its epoch-fenced view).
        """
        hosts = self._replica_hosts(rank)
        if not hosts:
            return None
        host = hosts[0]
        if self._net_blocked(self._rank_host(rank), self._rank_host(host)):
            # An active partition cuts the replica link: hedging against
            # an unreachable copy would model reads that cannot happen.
            return None
        src = dataset if dataset is not None else self.datasets[rank]
        hosted = self.datasets[host]
        return replace(
            src,
            device=HedgedDevice(
                src.device,
                src.base_offset,
                hosted.device,
                hosted.replica_stores[rank],
                policy,
                tracer=tracer,
            ),
        )

    @staticmethod
    def _charge_to_host(host_metrics: NodeMetrics, work: NodeMetrics) -> None:
        """Account replica-served work (recovery, routing, speculation)
        to the node that physically performed it."""
        host_metrics.n_active_metacells += work.n_active_metacells
        host_metrics.n_cells_examined += work.n_cells_examined
        host_metrics.n_triangles += work.n_triangles
        host_metrics.io_stats = host_metrics.io_stats + work.io_stats
        host_metrics.io_time += work.io_time
        host_metrics.triangulation_time += work.triangulation_time
        host_metrics.measured_seconds += work.measured_seconds

    def _node_extract(
        self,
        dataset: IndexedDataset,
        lam: float,
        with_normals: bool = False,
        time_budget: "float | None" = None,
        tracer=NULL_TRACER,
        track: "str | None" = None,
        coalesce_gap_blocks: int = 0,
        pipeline=None,
        rcache=None,
        backend: str = "mc-batch",
        batch_chunk: "int | None" = None,
    ) -> "tuple[NodeMetrics, TriangleMesh, np.ndarray | None]":
        """Query + triangulate on one node; returns metrics, mesh, and
        (optionally) payload-local gradient normals — everything a node
        can compute without the global volume.

        ``rcache`` is an epoch-fenced
        :class:`~repro.serve.rcache.ResultCacheView`.  A triangle-tier
        hit short-circuits the whole node query — the stripe's complete
        prior output replays with zero modeled I/O and triangulation
        time; a miss threads the view into the query layer so record
        prefixes are served from and re-deposited into the cache.
        ``backend`` selects the extraction kernel (mesh-tier cache keys
        carry it, so inexact kernels never replay exact output).
        """
        t0 = time.perf_counter()
        stripe = dataset.node_rank
        if rcache is not None:
            hit = rcache.mesh_get(stripe, lam, with_normals, backend=backend)
            if hit is not None:
                if tracer.enabled:
                    tracer.instant(
                        "rcache.mesh_hit", track=track or "cluster",
                        category="cache",
                        args={"stripe": stripe, "lam": float(lam)},
                    )
                metrics = NodeMetrics(node_rank=stripe)
                metrics.n_active_metacells = hit.n_active
                metrics.n_cells_examined = hit.n_cells_examined
                metrics.n_triangles = hit.n_triangles
                metrics.measured_seconds = time.perf_counter() - t0
                return metrics, hit.mesh, hit.normals
        qr = execute_query(
            dataset, lam,
            QueryOptions(
                retry_policy=self.retry_policy, time_budget=time_budget,
                tracer=tracer, track=track,
                coalesce_gap_blocks=coalesce_gap_blocks,
                result_cache=rcache,
            ),
        )
        codec = dataset.codec
        meta = dataset.meta
        cells_per_metacell = int(np.prod([m - 1 for m in codec.metacell_shape]))
        normals = None
        if qr.n_active:
            values = codec.values_grid(qr.records)
            origins = meta.vertex_origins(qr.records.ids)
            if pipeline is not None:
                from repro.parallel.pipeline import pipelined_marching_cubes

                out = pipelined_marching_cubes(
                    values, lam, origins,
                    spacing=meta.spacing, world_origin=meta.origin,
                    with_normals=with_normals, options=pipeline,
                    tracer=tracer, track=track,
                    backend=backend, batch_chunk=batch_chunk,
                )
            else:
                from repro.mc.backends import get_backend
                from repro.mc.marching_cubes import DEFAULT_BATCH_CHUNK

                out = get_backend(backend).batch(
                    values,
                    lam,
                    origins,
                    spacing=meta.spacing,
                    world_origin=meta.origin,
                    chunk=(
                        DEFAULT_BATCH_CHUNK if batch_chunk is None
                        else batch_chunk
                    ),
                    with_normals=with_normals,
                )
            mesh, normals = out if with_normals else (out, None)
        else:
            mesh = TriangleMesh()
            if with_normals:
                normals = np.empty((0, 3))
        measured = time.perf_counter() - t0

        metrics = NodeMetrics(node_rank=dataset.node_rank)
        metrics.n_active_metacells = qr.n_active
        metrics.n_cells_examined = qr.n_active * cells_per_metacell
        metrics.n_triangles = mesh.n_triangles
        metrics.io_stats = qr.io_stats
        metrics.io_time = self.perf.io_time(qr.io_stats)
        metrics.triangulation_time = self.perf.cpu.triangulation_time(
            metrics.n_cells_examined, metrics.n_triangles
        )
        metrics.measured_seconds = measured
        if qr.deadline_expired:
            metrics.deadline_expired = True
            metrics.skipped_bricks = qr.skipped_bricks
            expected = dataset.tree.query_count(lam)
            if expected:
                metrics.coverage = qr.n_active / expected
            else:
                # The tree predicted zero actives, but the budget still
                # cut reads short: we cannot *know* the prediction held
                # for the unread records, so don't report full coverage.
                metrics.coverage = 0.0 if qr.n_records_skipped else 1.0
        elif (
            rcache is not None
            and not qr.n_records_skipped
            and dataset.checksums is not None
        ):
            # Full-coverage, verification-clean output: admit it to the
            # triangle tier so the same isovalue replays I/O-free.
            from repro.serve.rcache import CachedNodeResult

            rcache.mesh_put(
                stripe, lam, with_normals,
                backend=backend,
                payload=CachedNodeResult(
                    mesh=mesh, normals=normals, n_active=qr.n_active,
                    n_cells_examined=metrics.n_cells_examined,
                    n_triangles=mesh.n_triangles,
                    n_records_read=qr.n_records_read,
                ),
            )
        return metrics, mesh, normals

    def extract(
        self,
        lam: float,
        request: "ExtractRequest | None" = None,
        **legacy_kwargs,
    ) -> ClusterResult:
        """Extract (and optionally render + composite) isosurface ``lam``.

        Configuration goes through ``request``
        (:class:`ExtractRequest`); the pre-1.1 keyword arguments still
        work via a deprecation shim that warns once.

        With ``render=True``, each node rasterizes its local mesh into
        its own framebuffer and the buffers are composited sort-last;
        the returned result carries the final image.  ``smooth=True``
        renders with Gouraud shading from payload-local gradient normals
        (each node computes them from its own records — no global volume
        exists anywhere, exactly as on the paper's cluster).  Without
        rendering, the GPU time is still modeled from the triangle
        counts, and the composite is byte-accounted analytically.

        Degraded mode: a node whose disk raises a permanent
        :class:`~repro.io.faults.StorageFault` is marked failed instead
        of crashing the extraction.  If a surviving node holds a replica
        of the lost layout (``replication >= 2``), it re-runs the failed
        node's exact query against the replica region — producing the
        identical records, mesh, and framebuffer, with the extra I/O and
        compute time charged to the serving node.  Failures with no
        replica yield a *partial* result flagged ``degraded=True``: the
        sort-last composite covers the surviving framebuffers only, and
        no exception escapes.

        Time-domain resilience (see ``docs/robustness.md``):

        * ``deadline`` — a :class:`~repro.core.deadline.Deadline` or a
          plain modeled-seconds budget.  Node queries are cut off at the
          stage budget; an expired run comes back *partial* with
          per-node coverage fractions, the skipped span-space bricks,
          and a :class:`~repro.core.deadline.DeadlineReport` attached —
          never blocking on a straggler.
        * ``hedge`` — a :class:`~repro.io.faults.HedgePolicy` (or
          ``True`` for defaults): brick reads whose primary attempt
          exceeds a quantile-derived threshold are re-issued against the
          chained-declustering replica and the first completion wins,
          with bit-identical payloads.  Needs ``replication >= 2``;
          silently inert otherwise.
        * ``speculate`` — stragglers that blow their stage budget have
          their query re-executed on the replica host inside the
          speculation window (defaults to on when both ``deadline`` and
          ``hedge`` are given).

        The per-node health state machine observes every extraction;
        nodes whose circuit is open are routed to their replica host
        without touching the primary disk at all.

        Re-entrancy: ``extract`` holds no state of its own between calls
        — everything per-query lives in locals, and the only mutated
        members (the health monitor, device meters, cache contents) are
        updated once per call in a fixed order — so a serving layer may
        interleave extractions for many tenants back to back on one
        cluster and same-seed call sequences stay bit-deterministic.

        Observability: with ``request.tracer`` set, the run is traced on
        the modeled clock — live read spans per node track, post-hoc
        ``stage.io`` / ``stage.triangulate`` / ``stage.render`` summary
        spans whose totals reconcile exactly with the returned
        :class:`ClusterResult`, and a ``composite`` span on the
        ``cluster`` track.  With ``request.metrics`` set, every counter
        lands in the unified registry namespace.
        """
        req = _coerce_request(request, legacy_kwargs, "SimulatedCluster.extract")
        render = req.render
        camera = req.camera
        keep_meshes = req.keep_meshes
        tile_layout = req.tile_layout
        smooth = req.smooth
        tracer = coerce_tracer(req.tracer)

        dl = Deadline.coerce(req.deadline)
        hedge_policy = (
            self._default_hedge_policy() if req.hedge is True
            else (req.hedge or None)
        )
        do_speculate = (
            req.speculate
            if req.speculate is not None
            else (dl is not None and hedge_policy is not None)
        )
        node_budget = dl.node_budget if dl is not None else None

        self.health.begin_query()
        per_node: list[NodeMetrics] = []
        meshes: list[TriangleMesh] = []
        node_normals: list = []
        want_normals = render and smooth
        failed_ranks: list[int] = []
        routed_ranks: list[int] = []
        #: Active metacells delivered per *layout* (whoever served it).
        delivered = [0] * self.p
        # Epoch fence: the routing view (who serves each stripe, from
        # which device region) is captured once, here — membership or
        # ownership changes landing after this point apply to the *next*
        # query, never to this one.
        epoch = self.ownership.epoch
        views = self._dataset_views()
        # The result cache binds at the same fence: every key this query
        # reads or writes embeds (fingerprint, epoch), so a rebalance
        # landing mid-flight can neither serve us stale entries nor be
        # polluted by ours.
        rc = (
            req.result_cache if req.result_cache is not None
            else self.result_cache
        )
        rview = None
        if rc is not None:
            rview = rc.view(
                self._result_fingerprint(), epoch,
                populate=req.cache_populate,
            )
        expected = [ds.tree.query_count(lam) for ds in views]

        for rank, dataset in enumerate(views):
            if self.health.routed_around(rank) and self._replica_hosts(rank):
                # Circuit open: don't touch the primary disk; the layout
                # is served from a replica host after this pass.
                routed_ranks.append(rank)
                per_node.append(NodeMetrics(node_rank=rank, circuit_open=True))
                meshes.append(TriangleMesh())
                node_normals.append(np.empty((0, 3)) if want_normals else None)
                continue
            qds = dataset
            if hedge_policy is not None:
                qds = (
                    self._hedged_dataset(rank, hedge_policy, tracer, dataset)
                    or dataset
                )
            try:
                m, mesh, normals = self._node_extract(
                    qds, lam, with_normals=want_normals,
                    time_budget=node_budget,
                    tracer=tracer, track=f"node{rank}",
                    coalesce_gap_blocks=req.coalesce_gap_blocks,
                    pipeline=req.pipeline, rcache=rview,
                    backend=req.backend, batch_chunk=req.batch_chunk,
                )
                delivered[rank] = m.n_active_metacells
                if self.net is not None:
                    # The node's extracted result must cross the wire
                    # back to the coordinator.  A return lost past the
                    # retry budget is indistinguishable from a dead
                    # node at the coordinator, so it takes the same
                    # recovery path (replica re-run below).
                    d = self.net.send(
                        self._rank_host(rank), COORDINATOR,
                        tracer=tracer, track="cluster", what="result",
                    )
                    if not d.delivered:
                        m = NodeMetrics(
                            node_rank=rank, failed=True,
                            failure="network: result return lost",
                        )
                        mesh = TriangleMesh()
                        normals = np.empty((0, 3)) if want_normals else None
                        failed_ranks.append(rank)
                        delivered[rank] = 0
                    else:
                        m.net_delay += d.delay
            except StorageFault as exc:
                m = NodeMetrics(node_rank=rank, failed=True, failure=str(exc))
                mesh = TriangleMesh()
                normals = np.empty((0, 3)) if want_normals else None
                failed_ranks.append(rank)
                tracer.instant(
                    "node.failed", track="cluster", category="fault",
                    args={"rank": rank, "error": str(exc)},
                )
            per_node.append(m)
            meshes.append(mesh)
            node_normals.append(normals)

        # Health observations are taken from the *primary* outcome, before
        # any speculative rescue rewrites the flags.
        observations = {
            k: Observation(
                failed=per_node[k].failed,
                retries=per_node[k].io_stats.retries,
                checksum_failures=per_node[k].io_stats.checksum_failures,
                fault_delay=per_node[k].io_stats.fault_delay,
                deadline_expired=per_node[k].deadline_expired,
            )
            for k in range(self.p)
            if k not in routed_ranks
        }

        # Serve circuit-open nodes from their replica hosts (proactive
        # routing: the primary disk is never asked).
        for k in routed_ranks:
            served = False
            for host in self._replica_hosts(k):
                if per_node[host].failed:
                    continue
                try:
                    m2, mesh2, normals2 = self._node_extract(
                        self._replica_dataset(k, host), lam,
                        with_normals=want_normals, time_budget=node_budget,
                        tracer=tracer, track=f"node{host}",
                        coalesce_gap_blocks=req.coalesce_gap_blocks,
                        pipeline=req.pipeline, rcache=rview,
                        backend=req.backend, batch_chunk=req.batch_chunk,
                    )
                except StorageFault:
                    continue
                tracer.instant(
                    "node.routed", track="cluster", category="health",
                    args={"rank": k, "host": host,
                          "reason": "circuit open (proactive routing)"},
                )
                self._charge_to_host(per_node[host], m2)
                per_node[host].recovered_ranks.append(k)
                vm = per_node[k]
                vm.served_by = host
                vm.coverage = m2.coverage
                vm.deadline_expired = m2.deadline_expired
                vm.skipped_bricks = m2.skipped_bricks
                delivered[k] = m2.n_active_metacells
                meshes[k] = mesh2
                node_normals[k] = normals2
                served = True
                break
            if served:
                self.health.tick_routed(k)
            else:
                # Every replica host is down: forced probe of the primary.
                try:
                    m, mesh, normals = self._node_extract(
                        views[k], lam, with_normals=want_normals,
                        time_budget=node_budget,
                        tracer=tracer, track=f"node{k}",
                        coalesce_gap_blocks=req.coalesce_gap_blocks,
                        pipeline=req.pipeline, rcache=rview,
                        backend=req.backend, batch_chunk=req.batch_chunk,
                    )
                    m.circuit_open = True
                    per_node[k] = m
                    meshes[k] = mesh
                    node_normals[k] = normals
                    delivered[k] = m.n_active_metacells
                except StorageFault as exc:
                    per_node[k] = NodeMetrics(
                        node_rank=k, failed=True, failure=str(exc),
                        circuit_open=True,
                    )
                    failed_ranks.append(k)
                observations[k] = Observation(
                    failed=per_node[k].failed,
                    retries=per_node[k].io_stats.retries,
                    checksum_failures=per_node[k].io_stats.checksum_failures,
                    fault_delay=per_node[k].io_stats.fault_delay,
                    deadline_expired=per_node[k].deadline_expired,
                )

        # Recovery pass: serve lost bricks from surviving replicas.  The
        # recovered mesh keeps the failed node's framebuffer *slot* so
        # composite order — and hence the image — matches a healthy run
        # bit for bit; the work is accounted to the node that did it.
        for k in failed_ranks:
            for host in self._replica_hosts(k):
                if per_node[host].failed:
                    continue
                if self._net_blocked(self._rank_host(host), COORDINATOR):
                    # The replica host sits on the far side of an
                    # active partition: its re-run could never reach
                    # the coordinator, so don't burn its disk on it.
                    continue
                try:
                    m2, mesh2, normals2 = self._node_extract(
                        self._replica_dataset(k, host), lam,
                        with_normals=want_normals, time_budget=node_budget,
                        tracer=tracer, track=f"node{host}",
                        coalesce_gap_blocks=req.coalesce_gap_blocks,
                        pipeline=req.pipeline, rcache=rview,
                        backend=req.backend, batch_chunk=req.batch_chunk,
                    )
                except StorageFault:
                    continue
                if self.net is not None:
                    d = self.net.send(
                        self._rank_host(host), COORDINATOR,
                        tracer=tracer, track="cluster",
                        what="recovered-result",
                    )
                    if not d.delivered:
                        # The re-run completed on the host but its
                        # return was lost; try the next replica host.
                        continue
                    per_node[host].net_delay += d.delay
                tracer.instant(
                    "node.recovered", track="cluster", category="fault",
                    args={"rank": k, "host": host},
                )
                self._charge_to_host(per_node[host], m2)
                per_node[host].recovered_ranks.append(k)
                per_node[k].served_by = host
                per_node[k].coverage = m2.coverage
                per_node[k].deadline_expired = m2.deadline_expired
                per_node[k].skipped_bricks = m2.skipped_bricks
                delivered[k] = m2.n_active_metacells
                meshes[k] = mesh2
                node_normals[k] = normals2
                break
        unrecovered = [k for k in failed_ranks if per_node[k].served_by is None]
        for k in unrecovered:
            per_node[k].coverage = 0.0

        # Straggler mitigation: nodes that blew their stage budget get
        # their query speculatively re-executed on a replica host, the
        # speculative task starting at the budget mark.  The victim's
        # partial output is replaced (bit-identical records when both
        # complete); its wasted metered I/O stays on its own record.
        expired_primary = [
            k for k in range(self.p)
            if per_node[k].deadline_expired and not per_node[k].failed
        ]
        speculated: "list[int]" = []
        if dl is not None and do_speculate and expired_primary:
            hosts_map = {
                k: [h for h in self._replica_hosts(k) if not per_node[h].failed]
                for k in expired_primary
            }
            for d in plan_speculation(expired_primary, hosts_map, dl.node_budget,
                                      tracer=tracer, track="cluster"):
                try:
                    m2, mesh2, normals2 = self._node_extract(
                        self._replica_dataset(d.victim, d.host), lam,
                        with_normals=want_normals,
                        time_budget=dl.speculation_budget,
                        tracer=tracer, track=f"node{d.host}",
                        coalesce_gap_blocks=req.coalesce_gap_blocks,
                        pipeline=req.pipeline, rcache=rview,
                        backend=req.backend, batch_chunk=req.batch_chunk,
                    )
                except StorageFault:
                    continue
                vm = per_node[d.victim]
                if m2.deadline_expired and m2.coverage <= vm.coverage:
                    continue  # the re-run covered no more than the straggler
                hm = per_node[d.host]
                # The speculative task launches *at* the stage-budget
                # mark: if the host finished its own work earlier, the
                # gap is modeled idle time on the host's clock.
                before = hm.io_time + hm.triangulation_time + hm.speculation_wait
                self._charge_to_host(hm, m2)
                hm.speculation_wait += max(0.0, d.launch_time - before)
                hm.recovered_ranks.append(d.victim)
                vm.n_active_metacells = 0
                vm.n_cells_examined = 0
                vm.n_triangles = 0
                # The straggler is cancelled at the budget mark — its
                # clock stops there even though its metered I/O (the
                # wasted attempt) stays on record.
                vm.io_time = min(vm.io_time, dl.node_budget)
                vm.triangulation_time = 0.0
                vm.speculated_to = d.host
                vm.served_by = d.host
                vm.coverage = m2.coverage
                vm.deadline_expired = m2.deadline_expired
                vm.skipped_bricks = m2.skipped_bricks
                delivered[d.victim] = m2.n_active_metacells
                meshes[d.victim] = mesh2
                node_normals[d.victim] = normals2
                speculated.append(d.victim)

        for k, obs in observations.items():
            self.health.observe(k, obs)

        total_expected = sum(expected)
        if total_expected:
            coverage = sum(delivered) / total_expected
        else:
            # Zero predicted actives: full coverage only if no node's
            # own coverage was degraded (deadline cut / unrecovered
            # failure) — mirrors the per-node fallback fix.
            coverage = min((m.coverage for m in per_node), default=1.0)

        w, h = self.image_size
        fb_bytes = w * h * 16  # RGB f32 + depth f32 readback
        for m in per_node:
            if m.failed:
                m.render_time = 0.0
            else:
                # A node renders one buffer per layout it served (its own
                # plus any recovered ranks), each read back over PCIe.
                m.render_time = self.perf.gpu.render_time(
                    m.n_triangles, fb_bytes * (1 + len(m.recovered_ranks))
                )

        result = ClusterResult(
            lam=float(lam),
            p=self.p,
            nodes=per_node,
            degraded=bool(unrecovered) or coverage < 1.0 - 1e-12,
            failed_nodes=sorted(failed_ranks),
            coverage=coverage,
            tenant=req.tenant,
            epoch=epoch,
            node_groups=self._result_node_groups(),
            backend=req.backend,
        )
        #: Framebuffer slots that actually exist somewhere and get shipped.
        live = [i for i in range(self.p) if i not in unrecovered]

        image = None
        if render:
            cam = camera
            if cam is None:
                combined = TriangleMesh.concat([m for m in meshes if m.n_triangles])
                if combined.n_triangles == 0 and not result.degraded:
                    raise ValueError(
                        f"no geometry at isovalue {lam}; cannot auto-frame a camera"
                    )
                cam = (
                    Camera.fit_mesh(combined) if combined.n_triangles else None
                )
            if tile_layout is not None:
                w, h = tile_layout.width, tile_layout.height
            fbs = []
            for i in live:
                fb = Framebuffer(w, h)
                if cam is not None:
                    if smooth and node_normals[i] is not None:
                        render_mesh_smooth(fb, meshes[i], cam, node_normals[i])
                    else:
                        render_mesh(fb, meshes[i], cam)
                fbs.append(fb)
            if not fbs:
                # Every node failed with no replicas: an empty frame.
                image = Framebuffer(w, h)
                result.composite_bytes = 0
                n_msgs = 0
            elif tile_layout is not None:
                comp_budget = None
                if dl is not None:
                    node_makespan = max(
                        (n.total_time for n in per_node), default=0.0
                    )
                    comp_budget = max(dl.budget - node_makespan, 0.0)
                image, stats = direct_send(
                    fbs,
                    tile_layout,
                    interconnect=self.perf.network if dl is not None else None,
                    budget=comp_budget,
                    tracer=tracer,
                    track="cluster",
                    network=self.net,
                )
                result.composite_bytes = stats.total_bytes
                n_msgs = (
                    stats.n_nodes - len(stats.dropped_nodes)
                ) * tile_layout.n_tiles
                if stats.lost_nodes:
                    # A contribution the network lost past the retry
                    # budget is missing from the frame: never silent.
                    # (direct_send indexes the live framebuffer list,
                    # so map back to cluster ranks.)
                    result.net_lost_ranks = [live[q] for q in stats.lost_nodes]
                    result.degraded = True
            else:
                image = composite(fbs)
                result.composite_bytes = sum(fb.payload_bytes for fb in fbs)
                n_msgs = len(fbs)
        else:
            # Analytic accounting: every live buffer ships once.
            result.composite_bytes = len(live) * fb_bytes
            n_msgs = len(live)

        result.composite_time = self.perf.network.transfer_time(
            result.composite_bytes, n_messages=n_msgs
        )
        result.image = image
        if keep_meshes or render:
            result.meshes = meshes
        if dl is not None:
            result.deadline = DeadlineReport(
                budget=dl.budget,
                node_budget=dl.node_budget,
                modeled_total=result.total_time,
                coverage=coverage,
                met=coverage >= 1.0 - 1e-12
                and result.total_time <= dl.budget + 1e-12,
                expired_nodes=expired_primary,
                speculated_nodes=speculated,
            )
        if tracer.enabled:
            self._emit_summary_spans(tracer, result, n_msgs)
        if req.metrics is not None:
            self._publish_cluster_metrics(req.metrics, result)
        return result

    def _emit_summary_spans(
        self, tracer, result: ClusterResult, n_msgs: int
    ) -> None:
        """Post-hoc stage spans built from the *final* per-node metrics.

        Live read spans cover the work as it happened (including wasted
        straggler attempts and replica work charged to its host); these
        summary spans cover the work as *accounted*, so their totals
        reconcile exactly with :class:`ClusterResult` — the contract the
        acceptance test pins (``stage.io`` durations sum to the nodes'
        ``io_time``, etc.).
        """
        for m in result.nodes:
            track = f"node{m.node_rank}"
            t = 0.0
            tracer.record(
                "stage.io", track, t, m.io_time, category="stage",
                args={
                    "blocks": m.io_stats.blocks_read,
                    "seeks": m.io_stats.seeks,
                    "active_metacells": m.n_active_metacells,
                    "retries": m.n_retries,
                    "hedged_reads": m.n_hedged_reads,
                    "hedge_wins": m.n_hedge_wins,
                },
            )
            t += m.io_time
            tracer.record(
                "stage.triangulate", track, t, m.triangulation_time,
                category="stage",
                args={"cells": m.n_cells_examined,
                      "triangles": m.n_triangles,
                      "backend": result.backend},
            )
            t += m.triangulation_time
            if m.speculation_wait:
                tracer.record(
                    "stage.speculation_wait", track, t, m.speculation_wait,
                    category="stage",
                    args={"recovered_ranks": list(m.recovered_ranks)},
                )
                t += m.speculation_wait
            tracer.record(
                "stage.render", track, t, m.render_time, category="stage",
                args={"triangles": m.n_triangles,
                      "buffers": 1 + len(m.recovered_ranks)},
            )
        makespan = max((n.total_time for n in result.nodes), default=0.0)
        tracer.record(
            "composite", "cluster", makespan, result.composite_time,
            category="stage",
            args={"bytes": result.composite_bytes, "messages": n_msgs},
        )
        tracer.record(
            "cluster.extract", "cluster", 0.0, result.total_time,
            category="cluster",
            args={
                "lam": result.lam, "p": result.p,
                "coverage": result.coverage,
                "triangles": result.n_triangles,
                "degraded": result.degraded,
                "backend": result.backend,
            },
        )

    def _publish_cluster_metrics(self, registry, result: ClusterResult) -> None:
        """Fold one extraction's accounting into the unified registry."""
        for m in result.nodes:
            registry.absorb_io_stats(m.io_stats)
            registry.inc("cluster.active_metacells", m.n_active_metacells)
            registry.inc("cluster.triangles", m.n_triangles)
            registry.observe("node.io_seconds", m.io_time)
            registry.observe("node.triangulation_seconds", m.triangulation_time)
            registry.observe("node.render_seconds", m.render_time)
            registry.set_gauge(f"node.{m.node_rank}.coverage", m.coverage)
            reason = m.recovery_reason
            if reason is not None:
                registry.inc(f"cluster.recovery.{reason}")
            if m.failed:
                registry.inc("cluster.node_failures")
            if m.deadline_expired:
                registry.inc("cluster.deadline_expired_nodes")
        registry.inc("cluster.extractions")
        registry.inc(f"kernel.{result.backend}.extractions")
        registry.inc(f"kernel.{result.backend}.triangles", result.n_triangles)
        registry.inc("cluster.composite_bytes", result.composite_bytes)
        registry.set_gauge("cluster.coverage", result.coverage)
        registry.observe("cluster.total_seconds", result.total_time)
        registry.observe("cluster.composite_seconds", result.composite_time)
        if result.deadline is not None:
            registry.inc("cluster.deadline_runs")
            if result.deadline.met:
                registry.inc("cluster.deadline_met")
            registry.set_gauge("cluster.deadline_coverage",
                               result.deadline.coverage)
        if result.tenant:
            t = f"tenant.{result.tenant}"
            registry.inc(f"{t}.extractions")
            registry.inc(f"{t}.triangles", result.n_triangles)
            registry.observe(f"{t}.total_seconds", result.total_time)
            registry.set_gauge(f"{t}.coverage", result.coverage)
        cache = self.cache_stats()
        if cache is not None:
            registry.absorb_cache_stats(cache)
        if self.result_cache is not None:
            from repro.serve.rcache import publish_result_cache_stats

            publish_result_cache_stats(registry, self.result_cache)
        self.health.publish(registry)

    def estimate_extract_time(
        self, lam: float, backend: str = "mc-batch"
    ) -> float:
        """Predicted modeled seconds for :meth:`extract` at ``lam``,
        without touching any disk.

        ``backend`` names the extraction kernel the request will run
        (validated against :mod:`repro.mc.backends`).  The I/O bill this
        estimate is built from is backend-independent — the kernel only
        changes triangulation time, which the estimate deliberately
        excludes — but callers that memoize the figure (the serving
        front-end) key their cache on it, so the parameter keeps the
        estimate's signature aligned with the request it predicts.

        The per-stripe I/O bill comes from
        :func:`~repro.core.analysis.estimate_query_cost` (block-exact on
        a healthy node), summed per *current owner* under the live
        ownership map — stripes sharing one physical disk serialize on
        it, so the slowest owner's total bounds the makespan and the
        analytic composite rides on top.  On the static cluster the
        ownership is the identity and this reduces to the slowest
        single node, but during elastic scale events the estimate
        tracks live capacity: admission's deadline-feasibility gate
        sees 8-node costs right after a scale-out and 3-node costs
        after a scale-in, not the build-time node count.
        Triangulation/render time and fault mitigation are *not*
        predicted, so this is a lower bound — admission control treats
        it as "the query costs at least this much" when sizing
        backlogs, which only ever errs toward admitting.
        """
        from repro.core.analysis import estimate_query_cost
        from repro.mc.backends import validate_backend

        validate_backend(backend)
        views = self._dataset_views()
        owners = self.ownership.owners()
        per_owner: "dict[int, float]" = {}
        for s, ds in enumerate(views):
            est = estimate_query_cost(
                ds.tree, lam, ds.codec.record_size, ds.device.cost_model,
                ds.base_offset,
            )
            per_owner[owners[s]] = (
                per_owner.get(owners[s], 0.0) + est.io_time(ds.device.cost_model)
            )
        worst = max(per_owner.values(), default=0.0)
        w, h = self.image_size
        n_buffers = len(views)
        composite = self.perf.network.transfer_time(
            n_buffers * w * h * 16, n_messages=n_buffers
        )
        return worst + composite

    def sweep(
        self,
        isovalues,
        request: "ExtractRequest | None" = None,
        **legacy_kwargs,
    ) -> "list[ClusterResult]":
        """Run :meth:`extract` over a sequence of isovalues."""
        req = _coerce_request(request, legacy_kwargs, "SimulatedCluster.sweep")
        return [self.extract(lam, req) for lam in isovalues]
