"""Per-node and cluster-level measurement records.

These are the quantities the paper's tables report: active metacell
counts, triangle counts, and the three stage times (AMC retrieval,
triangulation, rendering) per node, plus the load-balance statistics of
Tables 6 and 7 and the speedup/efficiency derivations of Figures 5/6.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.io.blockdevice import IOStats


@dataclass
class NodeMetrics:
    """One cluster node's accounting for one isosurface query.

    Modeled times come from :class:`~repro.parallel.perfmodel.PerformanceModel`;
    ``measured_seconds`` is the actual Python wall time of the node's
    work in the simulator (reported for honesty, never used in
    paper-shape comparisons).
    """

    node_rank: int
    n_active_metacells: int = 0
    n_cells_examined: int = 0
    n_triangles: int = 0
    io_stats: IOStats = field(default_factory=IOStats)
    io_time: float = 0.0
    triangulation_time: float = 0.0
    render_time: float = 0.0
    measured_seconds: float = 0.0
    #: True when this node's device failed permanently during the query;
    #: its counters are zero and any replica work appears on the node
    #: named in ``served_by``.
    failed: bool = False
    #: Reason string for a failed node (the storage fault message).
    failure: str = ""
    #: Rank of the surviving node that served this node's bricks from a
    #: replica, or None if the node is healthy / unrecovered.
    served_by: "int | None" = None
    #: Ranks whose bricks *this* node additionally served from local
    #: replicas; their I/O, triangulation, and render work is included in
    #: this node's counters and times (it physically ran here).
    recovered_ranks: "list[int]" = field(default_factory=list)
    #: True when this node's query was cut short by a deadline budget
    #: (and no speculative re-execution restored full coverage).
    deadline_expired: bool = False
    #: Fraction of this node's active metacells actually retrieved
    #: (1.0 on a complete run; < 1 only under an expired deadline or an
    #: unrecovered failure).
    coverage: float = 1.0
    #: Span-space brick ids a deadline budget prevented from being read.
    skipped_bricks: "list[int]" = field(default_factory=list)
    #: Rank whose replica host speculatively re-executed this node's
    #: query after it blew its stage budget (the straggler-mitigation
    #: path), or None.
    speculated_to: "int | None" = None
    #: True when the health circuit breaker routed this node's query to
    #: its replica host without touching the primary disk at all.
    circuit_open: bool = False
    #: Modeled idle seconds this node spent waiting for the stage-budget
    #: mark before launching a speculative re-execution of a straggler's
    #: work (zero unless this node hosted a speculation).
    speculation_wait: float = 0.0
    #: Modeled seconds of network fault delay (retry backoff, reorder
    #: resequencing, latency faults) charged to this node's result
    #: return; zero unless a chaos network fault plan is installed.
    net_delay: float = 0.0

    @property
    def total_time(self) -> float:
        """Modeled node time: the three pipeline stages in sequence,
        plus any wait for a speculative launch point and any network
        fault delay on the result return."""
        return (
            self.io_time
            + self.triangulation_time
            + self.render_time
            + self.speculation_wait
            + self.net_delay
        )

    @property
    def recovery_reason(self) -> "str | None":
        """Why this node's layout was served by another node, or None.

        One of ``disk-failure`` (permanent device loss, replica
        recovery), ``straggler-speculation`` (blew the stage budget,
        re-executed on the replica host), ``circuit-open`` (health
        breaker routed around the primary proactively), or
        ``replica-read``.  This is the single classification used by the
        CLI report and the ``cluster.recovery.<reason>`` metrics.
        """
        if self.served_by is None:
            return None
        if self.failed:
            return "disk-failure"
        if self.speculated_to is not None:
            return "straggler-speculation"
        if self.circuit_open:
            return "circuit-open"
        return "replica-read"

    @property
    def n_retries(self) -> int:
        """Read attempts repeated after transient faults or CRC mismatches."""
        return self.io_stats.retries

    @property
    def n_checksum_failures(self) -> int:
        """Record CRC32 mismatches detected while serving this node's query."""
        return self.io_stats.checksum_failures

    @property
    def n_hedged_reads(self) -> int:
        """Reads whose slow primary attempt triggered a replica hedge."""
        return self.io_stats.hedged_reads

    @property
    def n_hedge_wins(self) -> int:
        """Hedged reads the replica won (the wait the consumer was spared)."""
        return self.io_stats.hedge_wins


@dataclass
class LoadBalance:
    """Distribution statistics across nodes (Tables 6 and 7)."""

    counts: np.ndarray

    def __post_init__(self) -> None:
        self.counts = np.asarray(self.counts, dtype=np.int64)

    @property
    def total(self) -> int:
        return int(self.counts.sum())

    @property
    def max(self) -> int:
        return int(self.counts.max()) if len(self.counts) else 0

    @property
    def min(self) -> int:
        return int(self.counts.min()) if len(self.counts) else 0

    @property
    def spread(self) -> int:
        return self.max - self.min

    @property
    def max_over_mean(self) -> float:
        if len(self.counts) == 0 or self.total == 0:
            return 1.0
        return float(self.max / self.counts.mean())

    @property
    def cv(self) -> float:
        """Coefficient of variation (std / mean)."""
        if len(self.counts) == 0 or self.total == 0:
            return 0.0
        return float(self.counts.std() / self.counts.mean())


def speedup(serial_time: float, parallel_time: float) -> float:
    if parallel_time <= 0:
        raise ValueError(f"parallel time must be positive, got {parallel_time}")
    return serial_time / parallel_time


def efficiency(serial_time: float, parallel_time: float, p: int) -> float:
    return speedup(serial_time, parallel_time) / p
