"""Real-process execution backend.

The simulated cluster runs its p nodes in one process for determinism
and speed.  This backend runs the *same* per-node work (out-of-core
query + triangulation) in separate OS processes via ``multiprocessing``,
demonstrating that node execution is genuinely independent: the only
data returned to the parent is each node's triangle mesh and counters —
the analogue of the frame buffer shipped for compositing.

Datasets whose devices are file-backed are re-opened inside the worker
(the file path travels, not the bytes), keeping the parent's memory
flat; in-memory simulated devices are pickled wholesale, which is fine
at example scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.builder import IndexedDataset
from repro.core.query import execute_query
from repro.mc.geometry import TriangleMesh
from repro.mc.marching_cubes import marching_cubes_batch


@dataclass
class WorkerOutput:
    """What one worker process sends back to the parent."""

    node_rank: int
    n_active_metacells: int
    n_triangles: int
    blocks_read: int
    seeks: int
    vertices: np.ndarray
    faces: np.ndarray

    def mesh(self) -> TriangleMesh:
        return TriangleMesh(self.vertices, self.faces)


def node_task(args: "tuple[IndexedDataset, float]") -> WorkerOutput:
    """Per-node extraction job (module-level so it pickles)."""
    dataset, lam = args
    qr = execute_query(dataset, lam)
    if qr.n_active:
        values = dataset.codec.values_grid(qr.records)
        origins = dataset.meta.vertex_origins(qr.records.ids)
        mesh = marching_cubes_batch(
            values, lam, origins,
            spacing=dataset.meta.spacing, world_origin=dataset.meta.origin,
        )
    else:
        mesh = TriangleMesh()
    return WorkerOutput(
        node_rank=dataset.node_rank,
        n_active_metacells=qr.n_active,
        n_triangles=mesh.n_triangles,
        blocks_read=qr.io_stats.blocks_read,
        seeks=qr.io_stats.seeks,
        vertices=mesh.vertices,
        faces=mesh.faces,
    )


def extract_parallel_mp(
    datasets: "list[IndexedDataset]",
    lam: float,
    processes: int | None = None,
) -> "list[WorkerOutput]":
    """Run each node's extraction in its own OS process.

    Parameters
    ----------
    datasets:
        Per-node indexed datasets (from
        :func:`repro.core.builder.build_striped_datasets`).
    lam:
        Isovalue.
    processes:
        Worker pool size; defaults to ``len(datasets)``.

    Returns
    -------
    list[WorkerOutput]
        One entry per node, ordered by node rank.
    """
    import multiprocessing as mp

    jobs = [(ds, float(lam)) for ds in datasets]
    n_proc = processes or len(datasets)
    if n_proc <= 1 or len(datasets) == 1:
        outs = [node_task(j) for j in jobs]
    else:
        ctx = mp.get_context("spawn")
        with ctx.Pool(n_proc) as pool:
            outs = pool.map(node_task, jobs)
    return sorted(outs, key=lambda o: o.node_rank)
