"""Real-process execution backend.

The simulated cluster runs its p nodes in one process for determinism
and speed.  This backend runs the *same* per-node work (out-of-core
query + triangulation) in separate OS processes via ``multiprocessing``,
demonstrating that node execution is genuinely independent: the only
data returned to the parent is each node's triangle mesh and counters —
the analogue of the frame buffer shipped for compositing.

Datasets that were persisted to disk travel to workers as *directory
paths* — the worker reopens the store with
:func:`repro.core.persistence.load_dataset` — so the parent never pays
pickling an entire index + brick image per job.  Purely in-memory
datasets (no :attr:`~repro.core.builder.IndexedDataset.source_dir`) are
still pickled wholesale, which is fine at example scale.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.builder import IndexedDataset
from repro.core.query import execute_query
from repro.mc.geometry import TriangleMesh
from repro.mc.marching_cubes import marching_cubes_batch
from repro.parallel.pipeline import (
    PipelineOptions,
    default_mp_context,
    pipelined_marching_cubes,
)


@dataclass
class WorkerOutput:
    """What one worker process sends back to the parent."""

    node_rank: int
    n_active_metacells: int
    n_triangles: int
    blocks_read: int
    seeks: int
    vertices: np.ndarray
    faces: np.ndarray

    def mesh(self) -> TriangleMesh:
        return TriangleMesh(self.vertices, self.faces)


def node_task(args) -> WorkerOutput:
    """Per-node extraction job (module-level so it pickles).

    ``args`` is ``(dataset_or_path, lam)`` or
    ``(dataset_or_path, lam, pipeline_options)``.  A string first element
    is a dataset directory reopened in-process via ``load_dataset`` —
    the zero-pickling path ``extract_parallel_mp`` uses whenever the
    dataset knows its ``source_dir``.

    When pipeline options are given, triangulation goes through
    :func:`repro.parallel.pipeline.pipelined_marching_cubes` — which
    falls back to the serial kernel automatically inside daemonic pool
    workers (they may not spawn their own children), so the result is
    identical either way.
    """
    if len(args) == 2:
        source, lam = args
        pipeline = None
    else:
        source, lam, pipeline = args
    if isinstance(source, str):
        from repro.core.persistence import load_dataset

        dataset = load_dataset(source)
    else:
        dataset = source
    qr = execute_query(dataset, lam)
    if qr.n_active:
        values = dataset.codec.values_grid(qr.records)
        origins = dataset.meta.vertex_origins(qr.records.ids)
        if pipeline is not None:
            mesh = pipelined_marching_cubes(
                values, lam, origins,
                spacing=dataset.meta.spacing,
                world_origin=dataset.meta.origin,
                options=pipeline,
            )
        else:
            mesh = marching_cubes_batch(
                values, lam, origins,
                spacing=dataset.meta.spacing, world_origin=dataset.meta.origin,
            )
    else:
        mesh = TriangleMesh()
    return WorkerOutput(
        node_rank=dataset.node_rank,
        n_active_metacells=qr.n_active,
        n_triangles=mesh.n_triangles,
        blocks_read=qr.io_stats.blocks_read,
        seeks=qr.io_stats.seeks,
        vertices=mesh.vertices,
        faces=mesh.faces,
    )


@dataclass(frozen=True)
class SupervisorOptions:
    """Crash-recovery policy of :func:`extract_parallel_mp`.

    Parameters
    ----------
    max_respawns:
        Times one job's worker may be respawned after dying (killed,
        segfaulted, exited nonzero without a result) before the parent
        gives up on processes and runs the job inline — which always
        completes, so a job is never lost to worker deaths.
    poll_interval:
        Seconds between parent liveness polls (wall clock).
    heartbeat_timeout:
        A worker whose heartbeat is older than this many seconds is
        declared hung and killed + retried like a dead one.  ``None``
        disables hang detection (death detection stays on).
    """

    max_respawns: int = 1
    poll_interval: float = 0.05
    heartbeat_timeout: "float | None" = None

    def __post_init__(self) -> None:
        if self.max_respawns < 0:
            raise ValueError(f"max_respawns must be >= 0, got {self.max_respawns}")
        if self.poll_interval <= 0:
            raise ValueError(
                f"poll_interval must be > 0, got {self.poll_interval}"
            )
        if self.heartbeat_timeout is not None and self.heartbeat_timeout <= 0:
            raise ValueError(
                f"heartbeat_timeout must be > 0, got {self.heartbeat_timeout}"
            )


DEFAULT_SUPERVISOR_OPTIONS = SupervisorOptions()

#: Seconds between heartbeat updates inside a worker.
HEARTBEAT_INTERVAL = 0.02


@dataclass
class SupervisorStats:
    """What the supervisor observed during one run (for tests/telemetry)."""

    respawns: int = 0
    inline_recoveries: int = 0
    dead_workers: "list[int]" = field(default_factory=list)


def _supervised_node_task(job, idx: int, queue, heartbeat) -> None:
    """Worker entry point: run the job, beating while it runs.

    The heartbeat is a shared double the worker refreshes from a
    background thread; the parent reads it to distinguish *hung* from
    merely slow.  Results and exceptions both travel back on ``queue`` —
    a worker that dies without putting anything is what the supervisor's
    liveness poll catches.
    """
    import threading

    stop = threading.Event()

    def beat() -> None:
        while not stop.is_set():
            heartbeat.value = time.monotonic()
            stop.wait(HEARTBEAT_INTERVAL)

    thread = threading.Thread(target=beat, daemon=True)
    thread.start()
    try:
        out = node_task(job)
        queue.put((idx, "ok", out))
    except BaseException as exc:  # noqa: BLE001 - relayed to the parent
        try:
            queue.put((idx, "error", exc))
        except Exception:  # pragma: no cover - unpicklable exception
            queue.put((idx, "error", RuntimeError(repr(exc))))
    finally:
        stop.set()


def _run_supervised(
    jobs: list,
    n_proc: int,
    options: SupervisorOptions,
    stats: "SupervisorStats | None" = None,
) -> list:
    """Run jobs across supervised worker processes.

    Unlike ``Pool.map`` — which never completes a job whose worker was
    SIGKILLed — every job here ends in exactly one of: a result, a
    raised exception, or (after ``max_respawns`` worker deaths) an
    inline re-run in the parent.
    """
    import queue as queue_mod

    ctx = default_mp_context()
    results: "dict[int, object]" = {}
    result_queue = ctx.Queue()
    pending = list(enumerate(jobs))
    attempts = [0] * len(jobs)
    running: "dict[int, tuple]" = {}  # idx -> (process, heartbeat)
    failure: "BaseException | None" = None

    def spawn(idx: int) -> None:
        heartbeat = ctx.Value("d", time.monotonic())
        # Daemonic, like Pool workers: a nested triangulation pipeline
        # inside the job falls back to the serial kernel instead of
        # spawning grandchildren (bit-identical either way).
        proc = ctx.Process(
            target=_supervised_node_task,
            args=(jobs[idx], idx, result_queue, heartbeat),
            daemon=True,
        )
        proc.start()
        running[idx] = (proc, heartbeat)

    try:
        while len(results) < len(jobs) and failure is None:
            while pending and len(running) < n_proc:
                idx, _ = pending.pop(0)
                spawn(idx)
            try:
                idx, status, payload = result_queue.get(
                    timeout=options.poll_interval
                )
                if status == "ok":
                    results[idx] = payload
                else:
                    failure = payload
                proc, _hb = running.pop(idx, (None, None))
                if proc is not None:
                    proc.join()
                continue
            except queue_mod.Empty:
                pass
            now = time.monotonic()
            for idx, (proc, heartbeat) in list(running.items()):
                dead = not proc.is_alive() and proc.exitcode != 0
                hung = (
                    options.heartbeat_timeout is not None
                    and now - heartbeat.value > options.heartbeat_timeout
                )
                if not dead and not hung:
                    continue
                if hung and proc.is_alive():
                    proc.kill()
                proc.join()
                running.pop(idx)
                if stats is not None:
                    stats.dead_workers.append(idx)
                attempts[idx] += 1
                if attempts[idx] <= options.max_respawns:
                    if stats is not None:
                        stats.respawns += 1
                    spawn(idx)
                else:
                    # Out of respawn budget: the parent finishes the job
                    # itself.  Guaranteed completion beats parallelism.
                    if stats is not None:
                        stats.inline_recoveries += 1
                    results[idx] = node_task(jobs[idx])
            # A worker that exited 0 after a successful put is reaped on
            # the queue-drain path above; nothing else to do here.
        if failure is not None:
            raise failure
        return [results[i] for i in range(len(jobs))]
    finally:
        for proc, _hb in running.values():
            if proc.is_alive():
                proc.kill()
            proc.join()
        result_queue.close()


def extract_parallel_mp(
    datasets: "list[IndexedDataset]",
    lam: float,
    processes: "int | None" = None,
    pipeline: "PipelineOptions | None" = None,
    supervisor: "SupervisorOptions | None" = None,
    supervisor_stats: "SupervisorStats | None" = None,
) -> "list[WorkerOutput]":
    """Run each node's extraction in its own OS process.

    Parameters
    ----------
    datasets:
        Per-node indexed datasets (from
        :func:`repro.core.builder.build_striped_datasets`).  Datasets
        with a ``source_dir`` are shipped to workers by path and
        reopened there; others are pickled.
    lam:
        Isovalue.
    processes:
        Worker pool size; defaults to ``len(datasets)``.
    pipeline:
        Optional :class:`~repro.parallel.pipeline.PipelineOptions` for
        the triangulation stage.  Effective on the inline (single
        process) path; inside supervised workers it degrades to the
        serial kernel (non-daemonic workers could fork, but the nested
        pipeline falls back identically), with identical output.
    supervisor:
        Crash-recovery policy (heartbeats, respawn budget); default
        :data:`DEFAULT_SUPERVISOR_OPTIONS`.  A worker killed mid-job is
        detected, respawned up to ``max_respawns`` times, then the job
        is finished inline — no extraction is ever lost to a dead
        worker.
    supervisor_stats:
        Optional :class:`SupervisorStats` populated with what the
        supervisor observed (deaths, respawns, inline recoveries).

    Returns
    -------
    list[WorkerOutput]
        One entry per node, ordered by node rank.
    """
    jobs = [
        (ds.source_dir if ds.source_dir else ds, float(lam), pipeline)
        for ds in datasets
    ]
    n_proc = processes or len(datasets)
    if n_proc <= 1 or len(datasets) == 1:
        outs = [node_task(j) for j in jobs]
    else:
        outs = _run_supervised(
            jobs, n_proc, supervisor or DEFAULT_SUPERVISOR_OPTIONS,
            supervisor_stats,
        )
    return sorted(outs, key=lambda o: o.node_rank)
