"""Real-process execution backend.

The simulated cluster runs its p nodes in one process for determinism
and speed.  This backend runs the *same* per-node work (out-of-core
query + triangulation) in separate OS processes via ``multiprocessing``,
demonstrating that node execution is genuinely independent: the only
data returned to the parent is each node's triangle mesh and counters —
the analogue of the frame buffer shipped for compositing.

Datasets that were persisted to disk travel to workers as *directory
paths* — the worker reopens the store with
:func:`repro.core.persistence.load_dataset` — so the parent never pays
pickling an entire index + brick image per job.  Purely in-memory
datasets (no :attr:`~repro.core.builder.IndexedDataset.source_dir`) are
still pickled wholesale, which is fine at example scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.builder import IndexedDataset
from repro.core.query import execute_query
from repro.mc.geometry import TriangleMesh
from repro.mc.marching_cubes import marching_cubes_batch
from repro.parallel.pipeline import (
    PipelineOptions,
    default_mp_context,
    pipelined_marching_cubes,
)


@dataclass
class WorkerOutput:
    """What one worker process sends back to the parent."""

    node_rank: int
    n_active_metacells: int
    n_triangles: int
    blocks_read: int
    seeks: int
    vertices: np.ndarray
    faces: np.ndarray

    def mesh(self) -> TriangleMesh:
        return TriangleMesh(self.vertices, self.faces)


def node_task(args) -> WorkerOutput:
    """Per-node extraction job (module-level so it pickles).

    ``args`` is ``(dataset_or_path, lam)`` or
    ``(dataset_or_path, lam, pipeline_options)``.  A string first element
    is a dataset directory reopened in-process via ``load_dataset`` —
    the zero-pickling path ``extract_parallel_mp`` uses whenever the
    dataset knows its ``source_dir``.

    When pipeline options are given, triangulation goes through
    :func:`repro.parallel.pipeline.pipelined_marching_cubes` — which
    falls back to the serial kernel automatically inside daemonic pool
    workers (they may not spawn their own children), so the result is
    identical either way.
    """
    if len(args) == 2:
        source, lam = args
        pipeline = None
    else:
        source, lam, pipeline = args
    if isinstance(source, str):
        from repro.core.persistence import load_dataset

        dataset = load_dataset(source)
    else:
        dataset = source
    qr = execute_query(dataset, lam)
    if qr.n_active:
        values = dataset.codec.values_grid(qr.records)
        origins = dataset.meta.vertex_origins(qr.records.ids)
        if pipeline is not None:
            mesh = pipelined_marching_cubes(
                values, lam, origins,
                spacing=dataset.meta.spacing,
                world_origin=dataset.meta.origin,
                options=pipeline,
            )
        else:
            mesh = marching_cubes_batch(
                values, lam, origins,
                spacing=dataset.meta.spacing, world_origin=dataset.meta.origin,
            )
    else:
        mesh = TriangleMesh()
    return WorkerOutput(
        node_rank=dataset.node_rank,
        n_active_metacells=qr.n_active,
        n_triangles=mesh.n_triangles,
        blocks_read=qr.io_stats.blocks_read,
        seeks=qr.io_stats.seeks,
        vertices=mesh.vertices,
        faces=mesh.faces,
    )


def extract_parallel_mp(
    datasets: "list[IndexedDataset]",
    lam: float,
    processes: "int | None" = None,
    pipeline: "PipelineOptions | None" = None,
) -> "list[WorkerOutput]":
    """Run each node's extraction in its own OS process.

    Parameters
    ----------
    datasets:
        Per-node indexed datasets (from
        :func:`repro.core.builder.build_striped_datasets`).  Datasets
        with a ``source_dir`` are shipped to workers by path and
        reopened there; others are pickled.
    lam:
        Isovalue.
    processes:
        Worker pool size; defaults to ``len(datasets)``.
    pipeline:
        Optional :class:`~repro.parallel.pipeline.PipelineOptions` for
        the triangulation stage.  Effective on the inline (single
        process) path; inside pool workers it degrades to the serial
        kernel (daemonic processes cannot fork), with identical output.

    Returns
    -------
    list[WorkerOutput]
        One entry per node, ordered by node rank.
    """
    jobs = [
        (ds.source_dir if ds.source_dir else ds, float(lam), pipeline)
        for ds in datasets
    ]
    n_proc = processes or len(datasets)
    if n_proc <= 1 or len(datasets) == 1:
        outs = [node_task(j) for j in jobs]
    else:
        ctx = default_mp_context()
        with ctx.Pool(n_proc) as pool:
            outs = pool.map(node_task, jobs)
    return sorted(outs, key=lambda o: o.node_rank)
