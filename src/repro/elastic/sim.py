"""The elastic control loop: scale plans, autoscaling, rebalance pacing.

:class:`ElasticController` is what a :class:`~repro.serve.server.QueryServer`
ticks between queries (its ``controller=`` parameter).  Each tick, in a
fixed order for determinism:

1. fire any scripted :class:`ScaleEvent` whose time has come
   (``join``/``drain`` to the target node count);
2. ask the :class:`~repro.elastic.autoscaler.Autoscaler` (if any) for a
   metric-driven decision and apply it the same way;
3. let the paced :class:`~repro.elastic.rebalance.Rebalancer` execute
   whatever moves its I/O budget affords;
4. when the move plan drains empty, *complete* the membership
   transition — SYNCING nodes activate, empty DRAINING nodes go GONE —
   and record a :class:`RebalanceEvent` carrying the cost of the whole
   rebalance plus the re-checked load-balance invariant;
5. publish ``elastic.*`` gauges.

Because ticks happen between queries and extractions are epoch fenced,
no query ever observes a half-applied membership change.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.tracer import coerce_tracer
from repro.parallel.health import HealthState

from .autoscaler import Autoscaler, ElasticSignals
from .membership import MemberState
from .rebalance import BalanceReport, Rebalancer, check_balance


@dataclass(frozen=True)
class ScaleEvent:
    """Scripted 'be at N nodes by time T' waypoint."""

    time: float
    nodes: int


@dataclass
class RebalanceEvent:
    """One completed rebalance: cost, duration, and the re-checked
    load-balance invariant (the soak asserts ``balance.ok``)."""

    started: float
    finished: float
    epoch: int
    n_moves: int
    moved_bytes: int
    migration_seconds: float
    serving_nodes: int
    balance: BalanceReport

    def as_dict(self) -> dict:
        return {
            "started": self.started, "finished": self.finished,
            "epoch": self.epoch, "n_moves": self.n_moves,
            "moved_bytes": self.moved_bytes,
            "migration_seconds": self.migration_seconds,
            "serving_nodes": self.serving_nodes,
            "balance_ok": self.balance.ok,
            "assignment_spread": self.balance.assignment_spread,
        }


@dataclass(frozen=True)
class ScaleAction:
    """Audit-log row for one applied join/drain."""

    time: float
    action: str  # "join" | "drain"
    node_id: int
    source: str  # "plan" | "autoscaler"


class ElasticController:
    """Drives an :class:`~repro.elastic.cluster.ElasticCluster` through
    scale events while a workload runs.

    Parameters
    ----------
    cluster:
        The elastic cluster under control.
    rebalancer:
        Paced mover (defaults to ``Rebalancer(cluster)``).
    plan:
        Scripted :class:`ScaleEvent` waypoints, applied when their time
        arrives (sorted internally).
    autoscaler:
        Optional :class:`~repro.elastic.autoscaler.Autoscaler` consulted
        each tick with live serving signals; its decisions join/drain
        exactly like scripted events.
    balance_isovalues:
        Isovalues the per-λ load-balance invariant is re-checked
        against whenever a rebalance completes.
    """

    def __init__(
        self,
        cluster,
        rebalancer: "Rebalancer | None" = None,
        plan=(),
        autoscaler: "Autoscaler | None" = None,
        balance_isovalues=(),
        metrics=None,
        tracer=None,
    ) -> None:
        self.cluster = cluster
        self.rebalancer = rebalancer if rebalancer is not None else Rebalancer(cluster)
        self.plan = sorted(plan, key=lambda e: e.time)
        self.autoscaler = autoscaler
        self.balance_isovalues = tuple(balance_isovalues)
        self.metrics = metrics if metrics is not None else cluster.elastic_metrics
        self.tracer = (
            coerce_tracer(tracer) if tracer is not None else cluster.elastic_tracer
        )
        self.rebalance_events: "list[RebalanceEvent]" = []
        self.scale_actions: "list[ScaleAction]" = []
        self._plan_index = 0
        self._rebalancing = False
        self._rebalance_started = 0.0
        self._migrations_at_start = 0
        self._bytes_at_start = 0
        self._seconds_at_start = 0.0

    # -- scaling ---------------------------------------------------------

    def scale_to(self, now: float, target_nodes: int,
                 source: str = "plan") -> None:
        """Join or drain until the target-state node count hits
        ``target_nodes``.  Drains shed the *newest* nodes first
        (highest ids), which keeps the long-lived members stable."""
        current = self.cluster.membership.target_ids()
        if target_nodes > len(current):
            for _ in range(target_nodes - len(current)):
                nid = self.cluster.join(now=now)
                self.scale_actions.append(
                    ScaleAction(now, "join", nid, source)
                )
        elif target_nodes < len(current):
            for nid in sorted(current, reverse=True)[: len(current) - target_nodes]:
                self.cluster.drain(nid, now=now)
                self.scale_actions.append(
                    ScaleAction(now, "drain", nid, source)
                )

    def _sample_signals(self, server) -> ElasticSignals:
        ratio = server._ratio_window.quantile(0.99)
        open_breakers = sum(
            1 for n in self.cluster.health.nodes
            if n.state is HealthState.CIRCUIT_OPEN
        )
        return ElasticSignals(
            queue_depth=server.scheduler.backlog,
            p99_budget_ratio=ratio if ratio is not None else 0.0,
            utilization=len(server._running) / server.config.n_executors,
            open_breakers=open_breakers,
        )

    # -- the tick --------------------------------------------------------

    def on_tick(self, now: float, server=None) -> None:
        """One control-loop step (see the module docstring for order)."""
        while (
            self._plan_index < len(self.plan)
            and self.plan[self._plan_index].time <= now
        ):
            self.scale_to(now, self.plan[self._plan_index].nodes, "plan")
            self._plan_index += 1
        if self.autoscaler is not None and server is not None:
            decision = self.autoscaler.decide(
                now, self._sample_signals(server),
                len(self.cluster.membership.target_ids()),
            )
            if decision is not None:
                self.scale_to(now, decision.target_nodes, "autoscaler")
                self.tracer.instant(
                    "elastic.autoscale", track="elastic", category="elastic",
                    args={"direction": decision.direction,
                          "target": decision.target_nodes,
                          "reason": decision.reason},
                )
        if not self._rebalancing and self.rebalancer.plan():
            self._rebalancing = True
            self._rebalance_started = now
            self._migrations_at_start = len(self.cluster.migrations)
            self._bytes_at_start = self.cluster.migration_bytes
            self._seconds_at_start = self.cluster.migration_seconds
            self.tracer.instant(
                "elastic.rebalance.start", track="elastic",
                category="elastic", args={"epoch": self.cluster.ownership.epoch},
            )
        self.rebalancer.step(now)
        if self._rebalancing and not self.rebalancer.plan():
            self._finish_rebalance(now)
        self.cluster.publish_elastic_metrics(self.metrics)
        if self.metrics is not None:
            self.metrics.set_gauge(
                "elastic.rebalances", len(self.rebalance_events)
            )

    def finish(self, now: float, max_rounds: "int | None" = None) -> None:
        """Run the rebalancer to completion with pacing lifted.

        Called after a workload drains: the disks are idle, so there is
        no serving I/O to pace against and no reason to leave a
        rebalance half-done.  Bounded by ``max_rounds`` (default
        ``4 * n_stripes``) and by a no-progress check, so an
        unsatisfiable plan (e.g. a replica with nowhere to go) exits
        instead of spinning.
        """
        saved = self.rebalancer.max_io_fraction
        self.rebalancer.max_io_fraction = float("inf")
        try:
            rounds = (
                max_rounds if max_rounds is not None
                else 4 * self.cluster.n_stripes
            )
            for _ in range(rounds):
                if not self.rebalancer.plan():
                    break
                before = len(self.cluster.migrations)
                self.on_tick(now)
                if len(self.cluster.migrations) == before:
                    break
            self.on_tick(now)
        finally:
            self.rebalancer.max_io_fraction = saved

    def _finish_rebalance(self, now: float) -> None:
        """The plan drained: finalize membership and log the event."""
        membership = self.cluster.membership
        for nid in membership.ids(frozenset({MemberState.SYNCING})):
            membership.transition(
                nid, MemberState.ACTIVE, now=now, reason="rebalance complete"
            )
        for nid in membership.ids(frozenset({MemberState.DRAINING})):
            if not self.cluster._holds_data(nid):
                membership.transition(
                    nid, MemberState.GONE, now=now, reason="drained"
                )
        event = RebalanceEvent(
            started=self._rebalance_started,
            finished=now,
            epoch=self.cluster.ownership.epoch,
            n_moves=len(self.cluster.migrations) - self._migrations_at_start,
            moved_bytes=self.cluster.migration_bytes - self._bytes_at_start,
            migration_seconds=(
                self.cluster.migration_seconds - self._seconds_at_start
            ),
            serving_nodes=len(membership.target_ids()),
            balance=check_balance(self.cluster, self.balance_isovalues),
        )
        self.rebalance_events.append(event)
        self._rebalancing = False
        self.tracer.instant(
            "elastic.rebalance.done", track="elastic", category="elastic",
            args=event.as_dict(),
        )
