"""Elastic cluster: over-partitioned stripes on a changing node pool.

The static :class:`~repro.parallel.cluster.SimulatedCluster` is the
paper's machine — stripe ``s`` lives on node ``s``'s disk forever.
:class:`ElasticCluster` keeps the paper's preprocessing *exactly* (the
stripes, trees, and record layouts are built once by
:func:`~repro.core.builder.build_striped_datasets` and never rewritten)
but decouples stripes from nodes:

* The volume is striped into ``n_stripes`` logical stripes — more
  stripes than nodes (*over-partitioning*), so a rebalance moves whole
  stripes instead of re-striping bricks.
* ``nodes`` physical disks each serve several stripes; the
  :class:`~repro.parallel.cluster.OwnershipMap` says who serves what,
  and :class:`~repro.elastic.membership.Membership` tracks each node's
  lifecycle.
* Every stripe keeps one chained-declustering replica on a *different*
  node.  Failover promotes the replica to primary (a metadata flip —
  zero data motion) and backfills a fresh replica; live migration
  copies a stripe to its new owner CRC-verified end to end while reads
  keep flowing from the old copy.

Epoch fencing (inherited contract): :meth:`extract` materializes its
routing view once at entry, so membership changes landing mid-workload
apply to the *next* query, never a running one.  Per-query makespans
are honest about disk sharing via ``ClusterResult.node_groups`` —
stripes on one disk serialize.

Migration I/O is metered separately from serving I/O
(:meth:`serving_io_seconds`) so the :class:`~repro.elastic.rebalance.Rebalancer`
can bound data motion to a fraction of useful work.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.builder import IndexedDataset, build_striped_datasets
from repro.grid.volume import Volume
from repro.io.blockdevice import SimulatedBlockDevice
from repro.io.faults import (
    BrickCorruptionError,
    FaultInjectingDevice,
    FaultPlan,
    HedgedDevice,
    HedgePolicy,
    RetryPolicy,
    StorageFault,
)
from repro.obs.tracer import NULL_TRACER, coerce_tracer
from repro.parallel.cluster import OwnershipMap, SimulatedCluster
from repro.parallel.health import HealthPolicy
from repro.parallel.perfmodel import PAPER_CLUSTER, PerformanceModel

from .membership import (
    MemberState,
    Membership,
    StaleCopy,
    TARGET_STATES,
)

#: Membership state codes for gauges, in lifecycle order.
MEMBER_STATE_CODES = {
    MemberState.JOINING: 0,
    MemberState.SYNCING: 1,
    MemberState.ACTIVE: 2,
    MemberState.DRAINING: 3,
    MemberState.GONE: 4,
}


@dataclass(frozen=True)
class MigrationRecord:
    """One completed data movement (audit log row + pacing input)."""

    time: float
    #: ``primary`` (stripe ownership moved), ``replica`` (replica copy
    #: placed or moved).
    kind: str
    stripe: int
    #: Node the bytes were read from.
    src_node: int
    #: Node the bytes now live on.
    dst_node: int
    nbytes: int
    #: Modeled seconds of migration I/O: source read + destination
    #: write + CRC read-back.
    modeled_seconds: float
    #: Ownership epoch after the move (unchanged for replica moves).
    epoch: int
    reason: str = ""


class ElasticCluster(SimulatedCluster):
    """A cluster whose node count changes under live queries.

    Parameters
    ----------
    volume:
        Input scalar field, preprocessed once at construction.
    nodes:
        Initial physical node count (>= 2; replication needs a second
        disk).
    n_stripes:
        Logical stripe count (defaults to ``3 * nodes``).  More stripes
        than any node count you intend to scale to keeps rebalances
        whole-stripe; the count is fixed for the cluster's lifetime.
    tracer / metrics:
        Optional :class:`~repro.obs.tracer.Tracer` /
        :class:`~repro.obs.metrics.MetricsRegistry` receiving
        ``elastic.*`` instants and gauges for membership, migration,
        and failover events (query-time observability still rides on
        each request's own tracer/metrics).
    cache:
        A :class:`~repro.io.cache.CacheOptions`.  Only the λ-keyed
        result cache is honoured here (``result_cache_bytes``); block
        caches are rejected by :meth:`enable_cache` because stripe
        migrations would need cross-device invalidation.  Result-cache
        keys embed the ownership epoch, so scale events invalidate
        stale entries automatically.

    Examples
    --------
    >>> from repro.grid.datasets import sphere_field
    >>> ec = ElasticCluster(sphere_field((24, 24, 24)), nodes=2,
    ...                     n_stripes=6, metacell_shape=(5, 5, 5))
    >>> ec.extract(0.5).coverage
    1.0
    """

    def __init__(
        self,
        volume: Volume,
        nodes: int = 4,
        n_stripes: "int | None" = None,
        metacell_shape: tuple[int, int, int] = (9, 9, 9),
        perf: PerformanceModel = PAPER_CLUSTER,
        image_size: tuple[int, int] = (256, 256),
        retry_policy: "RetryPolicy | None" = None,
        health_policy: "HealthPolicy | None" = None,
        tracer=None,
        metrics=None,
        cache=None,
    ) -> None:
        if nodes < 2:
            raise ValueError(f"elastic cluster needs >= 2 nodes, got {nodes}")
        S = n_stripes if n_stripes is not None else 3 * nodes
        if S < nodes:
            raise ValueError(
                f"n_stripes ({S}) must be >= initial nodes ({nodes})"
            )
        if (S - 1) % nodes == 0 and S > 1:
            # Round-robin replica placement (stripe s's replica rides on
            # dataset (s+1) % S) would collocate stripe S-1's replica
            # with its own primary.
            raise ValueError(
                f"n_stripes={S} with nodes={nodes} collocates a replica "
                f"with its primary; pick n_stripes not congruent to 1 "
                f"mod nodes"
            )
        self._initial_nodes = nodes
        super().__init__(
            volume, p=S, metacell_shape=metacell_shape, perf=perf,
            image_size=image_size, replication=2,
            retry_policy=retry_policy, health_policy=health_policy,
            cache=cache,
        )
        self.elastic_tracer = coerce_tracer(tracer)
        self.elastic_metrics = metrics

        self.membership = Membership()
        for dev in self._node_devices:
            self.membership.add(dev, state=MemberState.ACTIVE)
        # Ownership starts at the build-time round-robin assignment,
        # epoch 0 (stripe s served by node s % nodes).  Listeners the
        # base constructor registered (the result cache's epoch fence)
        # are carried onto the replacement map.
        carried = self.ownership.listeners
        self.ownership = OwnershipMap([s % nodes for s in range(S)])
        self.ownership.listeners.extend(carried)
        #: stripe -> byte offset of the authoritative copy on its
        #: owner's disk (the ownership map says *which* disk).
        self._primary_offset: "dict[int, int]" = {
            s: self.datasets[s].base_offset for s in range(S)
        }
        #: stripe -> (node_id, offset) of the chained-declustering
        #: replica, or None while a failover backfill is pending.
        self._replica: "dict[int, tuple[int, int] | None]" = {
            s: (((s + 1) % S) % nodes, self.datasets[(s + 1) % S].replica_stores[s])
            for s in range(S)
        }
        #: Completed data movements, oldest first.
        self.migrations: "list[MigrationRecord]" = []
        #: Migrations a network fault forced to abort-and-retry (dicts:
        #: stripe/src/dst/time/reason).  Aborts never flip ownership —
        #: the rebalancer simply re-plans the move on a later step.
        self.migrations_aborted: "list[dict]" = []
        #: Stripes with no live copy left (both the owner and the
        #: replica host died); queries over them come back degraded.
        self.lost_stripes: "list[int]" = []
        self.migration_bytes = 0
        self.migration_seconds = 0.0
        self._migration_read_seconds = 0.0

    # -- construction hook ---------------------------------------------

    def _build_datasets(self, volume, p, metacell_shape, perf, replication):
        nodes = self._initial_nodes
        self._node_devices = [
            SimulatedBlockDevice(perf.disk) for _ in range(nodes)
        ]
        return build_striped_datasets(
            volume, p, metacell_shape,
            devices=[self._node_devices[s % nodes] for s in range(p)],
            cost_model=perf.disk, replication=replication,
        )

    # -- basic views ----------------------------------------------------

    @property
    def n_stripes(self) -> int:
        return self.p

    @property
    def n_serving_nodes(self) -> int:
        return len(self.membership.serving_ids())

    def _member_device(self, node_id: int):
        return self.membership.members[node_id].device

    def _view(self, s: int) -> IndexedDataset:
        """Stripe ``s``'s routing view: its tree/codec/CRCs bound to the
        current owner's device and the authoritative copy's offset."""
        node = self.ownership.owner(s)
        return replace(
            self.datasets[s],
            device=self._member_device(node),
            base_offset=self._primary_offset[s],
            replica_stores={},
        )

    def _dataset_views(self):
        # The epoch fence: one consistent owner snapshot per extraction.
        return [self._view(s) for s in range(self.p)]

    def _result_node_groups(self):
        groups: "dict[int, list[int]]" = {}
        for s in range(self.p):
            groups.setdefault(self.ownership.owner(s), []).append(s)
        return [groups[n] for n in sorted(groups)]

    def _default_hedge_policy(self) -> HedgePolicy:
        # Elastic requests that ask for hedging also get fail-over
        # reads: a primary that dies mid-read (node killed between the
        # epoch fence and the read) falls back to the replica instead
        # of failing the stripe.
        return HedgePolicy(failover=True)

    # -- replica routing (the base extract's recovery hooks) ------------

    def _live_replica(self, rank: int) -> "tuple[int, int] | None":
        loc = self._replica.get(rank)
        if loc is None:
            return None
        member = self.membership.members[loc[0]]
        return loc if member.serving else None

    def _replica_hosts(self, rank: int) -> "list[int]":
        """Representative stripe slot of the replica-holding node.

        The base cluster charges replica-served work to ``per_node[host]``
        where ``host`` is a stripe slot, so we return the smallest slot
        the replica's node currently owns.  A replica on a node that
        owns no primaries has no slot to charge — treated as no replica
        for this query (failover, not per-query recovery, is the path
        that handles real node loss).
        """
        loc = self._live_replica(rank)
        if loc is None:
            return []
        slots = self.ownership.stripes_of(loc[0])
        return [min(slots)] if slots else []

    def _replica_dataset(self, rank: int, host: int) -> IndexedDataset:
        loc = self._replica[rank]
        return replace(
            self.datasets[rank],
            device=self._member_device(loc[0]),
            base_offset=loc[1],
            replica_stores={},
        )

    def _hedged_dataset(self, rank, policy, tracer=NULL_TRACER, dataset=None):
        loc = self._live_replica(rank)
        if loc is None:
            return None
        src = dataset if dataset is not None else self._view(rank)
        return replace(
            src,
            device=HedgedDevice(
                src.device, src.base_offset,
                self._member_device(loc[0]), loc[1],
                policy, tracer=tracer,
            ),
        )

    # -- fault / membership control (node-id keyed) ----------------------

    def inject_faults(self, node_id: int, plan: FaultPlan) -> FaultInjectingDevice:
        """Wrap *physical node* ``node_id``'s disk in a fault injector.

        Note the key change versus the base cluster: ranks here are
        member node ids, not stripe slots — one injection covers every
        stripe the node serves.
        """
        if not hasattr(self, "membership"):
            # Called from the base constructor (fault_plans kwarg) before
            # membership exists; the elastic API wires faults post-init.
            return super().inject_faults(node_id, plan)
        member = self.membership.members[node_id]
        if isinstance(member.device, FaultInjectingDevice):
            member.device.plan = plan
        else:
            member.device = FaultInjectingDevice(member.device, plan)
        return member.device

    def enable_cache(self, rank: int, capacity_blocks: int) -> None:
        """Per-node *block* caches are unsupported here — migrations
        would need cross-device invalidation.  The λ-keyed *result*
        cache (``cache=CacheOptions(result_cache_bytes=...)``) is safe
        and supported: its keys embed the ownership epoch, so every
        rebalance, failover, and migration fences it automatically."""
        raise NotImplementedError(
            "per-node block caches are not supported on the elastic "
            "cluster (migrations would need cross-device invalidation); "
            "use CacheOptions(result_cache_bytes=...) for the "
            "epoch-fenced result cache instead"
        )

    def fail_node(self, node_id: int, now: float = 0.0) -> None:
        """Kill physical node ``node_id`` (simulated node loss).

        The disk starts raising on every access, the member goes GONE,
        and failover promotes each of its stripes' replicas to primary
        — a metadata flip — then backfills fresh replicas so one more
        failure stays survivable.  Promotion happens here, at
        notification time; a node that dies *silently* is still
        handled per-query by the base recovery machinery until the
        next failover notice.
        """
        member = self.membership.members[node_id]
        if not isinstance(member.device, FaultInjectingDevice):
            member.device = FaultInjectingDevice(member.device, FaultPlan())
        member.device.fail()
        if member.state is not MemberState.GONE:
            self.membership.transition(
                node_id, MemberState.GONE, now=now, reason="failed"
            )
            self._failover(node_id, now)
        self._note("elastic.node_failed", now, node=node_id)

    def heal_node(self, node_id: int) -> None:
        """Bring the *disk* back online.  Membership is not resurrected
        — GONE is terminal; a recovered machine re-enters via
        :meth:`join` under a fresh node id, and its old bytes show up
        as stale copies in ``repro fsck``."""
        member = self.membership.members[node_id]
        if isinstance(member.device, FaultInjectingDevice):
            member.device.heal()

    def join(self, now: float = 0.0) -> int:
        """Add a fresh, empty node; returns its id.  The node starts
        JOINING and begins owning stripes only once the rebalancer
        migrates them in."""
        dev = SimulatedBlockDevice(self.perf.disk)
        node = self.membership.add(
            dev, state=MemberState.JOINING, now=now, reason="scale-out"
        )
        self._note("elastic.join", now, node=node.node_id)
        return node.node_id

    def drain(self, node_id: int, now: float = 0.0) -> None:
        """Schedule ``node_id`` for removal.  It keeps serving every
        stripe it owns; the rebalancer migrates them away, after which
        the controller marks it GONE (bytes left behind become stale
        copies, not corruption)."""
        member = self.membership.members[node_id]
        if member.state is MemberState.GONE:
            return
        if member.state is MemberState.JOINING and not self._holds_data(node_id):
            self.membership.transition(
                node_id, MemberState.GONE, now=now, reason="drained (empty)"
            )
        else:
            if member.state is MemberState.JOINING:
                self.membership.transition(
                    node_id, MemberState.SYNCING, now=now, reason="drain requested"
                )
            self.membership.transition(
                node_id, MemberState.DRAINING, now=now, reason="scale-in"
            )
        self._note("elastic.drain", now, node=node_id)

    def _holds_data(self, node_id: int) -> bool:
        if self.ownership.stripes_of(node_id):
            return True
        return any(
            loc is not None and loc[0] == node_id
            for loc in self._replica.values()
        )

    # -- data movement ---------------------------------------------------

    def _stripe_nbytes(self, s: int) -> int:
        ds = self.datasets[s]
        if ds.checksums is None:
            raise ValueError(
                "elastic migration needs checksummed layouts "
                "(build with checksum=True)"
            )
        return len(ds.checksums.record_crcs) * ds.codec.record_size

    def _read_copy(self, s: int, node_id: int, offset: int):
        """Read stripe ``s``'s full span from one copy, metered as
        migration I/O; returns ``(buf, modeled_seconds)``."""
        dev = self._member_device(node_id)
        nbytes = self._stripe_nbytes(s)
        before = dev.stats
        buf = dev.read(offset, nbytes)
        secs = (dev.stats - before).read_time(dev.cost_model)
        self._migration_read_seconds += secs
        return buf, secs

    def _verify_stripe(self, s: int, buf, where: str) -> None:
        ds = self.datasets[s]
        ok = ds.checksums.verify_span(0, buf, ds.codec.record_size)
        if ok is None:
            ok = len(ds.checksums.find_corrupt(0, buf, ds.codec.record_size)) == 0
        if not ok:
            raise BrickCorruptionError(
                f"stripe {s} failed CRC verification {where}"
            )

    def _write_copy(self, s: int, node_id: int, buf):
        """Append stripe ``s``'s bytes to a node's disk, CRC-verified
        before the write and again on read-back (PR 5's repair
        contract); returns ``(offset, modeled_seconds)``."""
        self._verify_stripe(s, buf, "reading the source copy")
        dev = self._member_device(node_id)
        before = dev.stats
        offset = dev.allocate(len(buf))
        dev.write(offset, buf)
        back = dev.read(offset, len(buf))
        self._verify_stripe(s, back, f"on read-back from node {node_id}")
        delta = dev.stats - before
        secs = (
            dev.cost_model.time_for(delta.blocks_written, 1)
            + delta.read_time(dev.cost_model)
        )
        self._migration_read_seconds += delta.read_time(dev.cost_model)
        return offset, secs

    def _abort_migration(
        self, s: int, src_node: int, dst_node: int, now: float, reason: str,
    ) -> None:
        """Record a network-forced migration abort (no ownership flip,
        no destination write; the move stays in the rebalancer's plan)."""
        self.migrations_aborted.append({
            "time": now, "stripe": s, "src_node": src_node,
            "dst_node": dst_node, "reason": reason,
        })
        if self.elastic_metrics is not None:
            self.elastic_metrics.inc("chaos.migration.aborted")
        self.elastic_tracer.instant(
            "chaos.migration.aborted", track="elastic", category="chaos",
            args={"stripe": s, "src": src_node, "dst": dst_node,
                  "reason": reason},
        )

    def _record_migration(self, rec: MigrationRecord) -> MigrationRecord:
        self.migrations.append(rec)
        self.migration_bytes += rec.nbytes
        self.migration_seconds += rec.modeled_seconds
        if self.elastic_metrics is not None:
            self.elastic_metrics.inc("elastic.migrations")
            self.elastic_metrics.inc(f"elastic.migrations.{rec.kind}")
            self.elastic_metrics.inc("elastic.migration.bytes", rec.nbytes)
            self.elastic_metrics.inc(
                "elastic.migration.seconds", rec.modeled_seconds
            )
        self.elastic_tracer.instant(
            "elastic.migrate", track="elastic", category="elastic",
            args={
                "kind": rec.kind, "stripe": rec.stripe,
                "src": rec.src_node, "dst": rec.dst_node,
                "bytes": rec.nbytes, "reason": rec.reason,
            },
        )
        return rec

    def migrate_primary(
        self, s: int, dst_node: int, now: float = 0.0,
        reason: str = "rebalance",
    ) -> "MigrationRecord | None":
        """Move stripe ``s``'s authoritative copy to ``dst_node``.

        Reads keep flowing from the old owner (or the replica) the
        whole time: the ownership flip is the *last* step, after the
        new copy is written and CRC-verified in place, so any query
        fenced to the pre-move epoch still completes against intact
        bytes.  The old copy is recorded stale, never overwritten.
        """
        owner = self.ownership.owner(s)
        if owner == dst_node:
            return None
        dst = self.membership.members[dst_node]
        if dst.state not in TARGET_STATES:
            raise ValueError(
                f"cannot migrate stripe {s} to node {dst_node} "
                f"in state {dst.state}"
            )
        if self.net is not None and self.net.blocked(owner, dst_node, now=now):
            # Split-brain between source and destination: abort before
            # touching a disk.  Ownership is untouched; the rebalancer
            # re-plans the move once the partition heals.
            self._abort_migration(s, owner, dst_node, now, "partition")
            return None
        try:
            src_node, buf, read_secs = self._read_best_copy(s)
        except StorageFault as exc:
            # Every readable copy is faulted or corrupt right now: abort
            # rather than flip ownership onto bytes nobody can verify.
            # The I/O already spent stays charged and the move stays in
            # the rebalancer's plan for when the burst passes.
            self._abort_migration(
                s, owner, dst_node, now, f"storage: {type(exc).__name__}"
            )
            return None
        if self.net is not None:
            # The stripe's bytes cross the wire src -> dst before the
            # destination can write them.  A transfer lost past the
            # retry budget (or a partition racing the read) aborts the
            # move cleanly: the read I/O is already charged — chaos is
            # paid for, not free — but nothing was written and the
            # ownership map never saw the attempt, so the unverified
            # copy can never become authoritative.
            d = self.net.send(
                src_node, dst_node, now=now, tracer=self.elastic_tracer,
                track="elastic", what=f"stripe-{s}",
            )
            if not d.delivered:
                self._abort_migration(
                    s, src_node, dst_node, now,
                    "partition" if d.blocked else "transfer lost",
                )
                return None
            read_secs += d.delay
            self._migration_read_seconds += d.delay
        try:
            offset, write_secs = self._write_copy(s, dst_node, buf)
        except StorageFault as exc:
            # Destination write or read-back verification failed: the
            # ownership map never saw the attempt, so the unverified
            # copy can never become authoritative.
            self._abort_migration(
                s, src_node, dst_node, now, f"storage: {type(exc).__name__}"
            )
            return None

        old_offset = self._primary_offset[s]
        if self.membership.members[owner].serving:
            self.membership.members[owner].stale.append(StaleCopy(
                stripe=s, node_id=owner, offset=old_offset,
                nbytes=len(buf), reason=f"primary moved to node {dst_node}",
            ))
        self._primary_offset[s] = offset
        epoch = self.ownership.assign(s, dst_node, reason=reason)
        if dst.state is MemberState.JOINING:
            self.membership.transition(
                dst_node, MemberState.SYNCING, now=now, reason="first stripe"
            )
        rec = self._record_migration(MigrationRecord(
            time=now, kind="primary", stripe=s, src_node=src_node,
            dst_node=dst_node, nbytes=len(buf),
            modeled_seconds=read_secs + write_secs, epoch=epoch,
            reason=reason,
        ))
        # A replica collocated with the new primary protects nothing:
        # retire it (stale) and re-place on another node.
        loc = self._replica.get(s)
        if loc is not None and loc[0] == dst_node:
            self._replica[s] = None
            self.membership.members[dst_node].stale.append(StaleCopy(
                stripe=s, node_id=dst_node, offset=loc[1], nbytes=len(buf),
                reason="replica collocated with migrated primary",
            ))
            self.place_replica(s, now=now, reason="re-place after primary move")
        return rec

    def _read_best_copy(self, s: int):
        """Bytes of stripe ``s`` from the primary, falling back to the
        replica when the primary's disk is unreadable — or when its
        bytes fail CRC verification (silent corruption must never be
        the copy that migration propagates)."""
        owner = self.ownership.owner(s)
        try:
            buf, secs = self._read_copy(s, owner, self._primary_offset[s])
            self._verify_stripe(s, buf, "reading the primary copy")
            return owner, buf, secs
        except StorageFault:
            loc = self._live_replica(s)
            if loc is None:
                raise
            buf, secs = self._read_copy(s, loc[0], loc[1])
            self._verify_stripe(s, buf, "reading the replica copy")
            return loc[0], buf, secs

    def place_replica(
        self, s: int, now: float = 0.0, reason: str = "backfill",
        exclude: "frozenset[int] | set[int]" = frozenset(),
    ) -> "MigrationRecord | None":
        """Write a fresh replica of stripe ``s`` on the best candidate
        node (not the owner, fewest replicas first, primaries-holding
        nodes preferred so replica-served work has a slot to charge)."""
        owner = self.ownership.owner(s)
        candidates = [
            n for n in self.membership.target_ids()
            if n != owner and n not in exclude
        ]
        if not candidates or not self.membership.members[owner].serving:
            return None
        rep_counts: "dict[int, int]" = {n: 0 for n in candidates}
        for loc in self._replica.values():
            if loc is not None and loc[0] in rep_counts:
                rep_counts[loc[0]] += 1
        owned = self.ownership.counts()
        candidates.sort(
            key=lambda n: (0 if owned.get(n, 0) else 1, rep_counts[n], n)
        )
        dst_node = candidates[0]
        try:
            src_node, buf, read_secs = self._read_best_copy(s)
            offset, write_secs = self._write_copy(s, dst_node, buf)
        except StorageFault as exc:
            # No verifiable source (or the destination faulted): skip
            # the placement — replication is re-attempted by later
            # failover/rebalance passes rather than propagating a
            # mid-rebalance crash.
            self._abort_migration(
                s, owner, dst_node, now, f"storage: {type(exc).__name__}"
            )
            return None
        self._replica[s] = (dst_node, offset)
        return self._record_migration(MigrationRecord(
            time=now, kind="replica", stripe=s, src_node=src_node,
            dst_node=dst_node, nbytes=len(buf),
            modeled_seconds=read_secs + write_secs,
            epoch=self.ownership.epoch, reason=reason,
        ))

    def move_replica(
        self, s: int, now: float = 0.0, reason: str = "drain",
    ) -> "MigrationRecord | None":
        """Re-host stripe ``s``'s replica (e.g. off a draining node).
        The new copy is placed first; only then is the old one retired
        as stale, so the stripe never has fewer live copies than now."""
        old = self._replica.get(s)
        if old is None:
            return self.place_replica(s, now=now, reason=reason)
        self._replica[s] = None
        rec = self.place_replica(s, now=now, reason=reason, exclude={old[0]})
        if rec is None:
            self._replica[s] = old
            return None
        self.membership.members[old[0]].stale.append(StaleCopy(
            stripe=s, node_id=old[0], offset=old[1],
            nbytes=self._stripe_nbytes(s), reason=reason,
        ))
        return rec

    # -- failover --------------------------------------------------------

    def _failover(self, node_id: int, now: float = 0.0) -> "list[int]":
        """Recover from the loss of ``node_id``: promote replicas of its
        stripes to primary (metadata only — the bytes are already on
        the replica host) and backfill fresh replicas so the
        replication factor is re-established.  Backfill I/O is *not*
        paced: durability beats the migration budget."""
        promoted: "list[int]" = []
        for s in self.ownership.stripes_of(node_id):
            loc = self._live_replica(s)
            if loc is None:
                if s not in self.lost_stripes:
                    self.lost_stripes.append(s)
                continue
            self._primary_offset[s] = loc[1]
            self.ownership.assign(s, loc[0], reason="failover-promotion")
            self._replica[s] = None
            promoted.append(s)
        # Replicas that lived on the dead node are gone.
        for s, loc in self._replica.items():
            if loc is not None and loc[0] == node_id:
                self._replica[s] = None
        # Re-establish r=2 wherever a live primary has no replica.
        for s in range(self.p):
            if self._replica.get(s) is None and s not in self.lost_stripes:
                if self.membership.members[self.ownership.owner(s)].serving:
                    self.place_replica(s, now=now, reason="failover-backfill")
        if self.elastic_metrics is not None:
            self.elastic_metrics.inc("elastic.failovers")
            self.elastic_metrics.inc("elastic.promotions", len(promoted))
        self.elastic_tracer.instant(
            "elastic.failover", track="elastic", category="elastic",
            args={"node": node_id, "promoted": promoted,
                  "lost": list(self.lost_stripes)},
        )
        return promoted

    # -- accounting ------------------------------------------------------

    def serving_io_seconds(self) -> float:
        """Cumulative modeled read seconds spent on *queries* across
        every member disk — migration traffic metered through
        :meth:`_read_copy` / :meth:`_write_copy` is subtracted out.
        The rebalancer paces itself against this figure."""
        total = 0.0
        for member in self.membership.members.values():
            dev = member.device
            total += dev.stats.read_time(dev.cost_model)
        return max(0.0, total - self._migration_read_seconds)

    def replica_locations(self) -> "dict[int, tuple[int, int] | None]":
        """stripe -> (node, offset) of its replica (None while pending)."""
        return dict(self._replica)

    def primary_location(self, s: int) -> "tuple[int, int]":
        return self.ownership.owner(s), self._primary_offset[s]

    def publish_elastic_metrics(self, registry=None) -> None:
        """Write membership / ownership gauges into the registry.

        Gone nodes have their ``elastic.node.<id>.*`` gauges *removed*
        (see ``MetricsRegistry.remove_prefix``) rather than frozen at
        their last value.
        """
        reg = registry if registry is not None else self.elastic_metrics
        if reg is None:
            return
        reg.set_gauge("elastic.epoch", self.ownership.epoch)
        reg.set_gauge("elastic.stripes", self.p)
        reg.set_gauge("elastic.stripes.lost", len(self.lost_stripes))
        for state, count in sorted(self.membership.counts().items()):
            reg.set_gauge(f"elastic.nodes.{state}", count)
        for state in MEMBER_STATE_CODES:
            if str(state) not in self.membership.counts():
                reg.set_gauge(f"elastic.nodes.{state}", 0)
        counts = self.ownership.counts()
        rep_counts: "dict[int, int]" = {}
        for loc in self._replica.values():
            if loc is not None:
                rep_counts[loc[0]] = rep_counts.get(loc[0], 0) + 1
        for nid, member in sorted(self.membership.members.items()):
            if member.state is MemberState.GONE:
                reg.remove_prefix(f"elastic.node.{nid}")
                continue
            reg.set_gauge(f"elastic.node.{nid}.state_code",
                          MEMBER_STATE_CODES[member.state])
            reg.set_gauge(f"elastic.node.{nid}.stripes", counts.get(nid, 0))
            reg.set_gauge(f"elastic.node.{nid}.replicas",
                          rep_counts.get(nid, 0))
            reg.set_gauge(f"elastic.node.{nid}.stale_copies",
                          len(member.stale))

    def _note(self, name: str, now: float, **args) -> None:
        if self.elastic_metrics is not None:
            self.elastic_metrics.inc(name)
        self.elastic_tracer.instant(
            name, track="elastic", category="elastic",
            args=dict(args, time=now),
        )
