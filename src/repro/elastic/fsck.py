"""Ownership-aware integrity checking for the elastic cluster.

``repro fsck`` on a static dataset knows exactly where every byte
belongs.  After elastic rebalances the picture has three copy classes
per stripe and a naive checker gets two of them wrong:

* **authoritative** — the primary on the stripe's *current* owner (the
  ownership map says where; the build-time location is long obsolete);
* **replica** — the chained-declustering copy on its current host;
* **stale** — bytes left behind on old owners and drained nodes by
  migrations.  These are *expected residue*, not corruption: flagging
  a drained node "corrupt" because it still holds readable old copies
  would page an operator for a non-event.

:func:`fsck_cluster` walks the ownership map, CRC-verifies the
authoritative and replica copy of every stripe where they live *now*,
and classifies leftovers as stale (verifying their bytes too, purely
informationally).  :func:`scrub_cluster` reuses PR 5's per-brick
:class:`~repro.io.scrub.Scrubber` against each stripe's current
routing view, so incremental scrubbing follows migrations
automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.io.faults import StorageFault


@dataclass(frozen=True)
class CopyIssue:
    """One problem found: a copy that should verify but does not."""

    stripe: int
    node_id: int
    #: ``corrupt-primary`` / ``corrupt-replica`` / ``unreadable-primary``
    #: / ``unreadable-replica`` / ``missing-replica`` / ``lost``.
    kind: str
    detail: str = ""


@dataclass(frozen=True)
class StaleCopyStatus:
    """A known-stale copy and what its bytes look like today."""

    stripe: int
    node_id: int
    offset: int
    #: ``intact`` (still CRC-clean), ``decayed`` (bytes rotted since —
    #: harmless, the copy is not authoritative), ``unreachable`` (the
    #: node's disk is dead or gone).
    status: str
    reason: str = ""


@dataclass
class ElasticFsckReport:
    """Everything :func:`fsck_cluster` found."""

    n_stripes: int = 0
    verified_primaries: int = 0
    verified_replicas: int = 0
    issues: "list[CopyIssue]" = field(default_factory=list)
    stale: "list[StaleCopyStatus]" = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when every live copy verifies.  Stale copies — intact
        or decayed — never make a cluster dirty."""
        return not self.issues

    def as_dict(self) -> dict:
        return {
            "n_stripes": self.n_stripes,
            "verified_primaries": self.verified_primaries,
            "verified_replicas": self.verified_replicas,
            "clean": self.clean,
            "issues": [
                {"stripe": i.stripe, "node": i.node_id, "kind": i.kind,
                 "detail": i.detail}
                for i in self.issues
            ],
            "stale_copies": [
                {"stripe": s.stripe, "node": s.node_id, "offset": s.offset,
                 "status": s.status, "reason": s.reason}
                for s in self.stale
            ],
        }

    def summary(self) -> str:
        lines = [
            f"elastic fsck: {self.n_stripes} stripes, "
            f"{self.verified_primaries} primaries verified, "
            f"{self.verified_replicas} replicas verified, "
            f"{len(self.stale)} stale copies, {len(self.issues)} issues",
        ]
        for i in self.issues:
            lines.append(
                f"  ISSUE stripe {i.stripe} node {i.node_id}: {i.kind}"
                + (f" ({i.detail})" if i.detail else "")
            )
        for s in self.stale:
            lines.append(
                f"  stale stripe {s.stripe} on node {s.node_id} "
                f"@{s.offset}: {s.status} ({s.reason})"
            )
        return "\n".join(lines)


def _check_copy(cluster, stripe: int, node_id: int, offset: int) -> "str | None":
    """Verify one copy in place; returns None (clean), ``corrupt``, or
    ``unreadable``.  The read is metered as maintenance I/O (it never
    feeds the rebalancer's serving budget)."""
    try:
        buf, _ = cluster._read_copy(stripe, node_id, offset)
    except StorageFault:
        return "unreadable"
    ds = cluster.datasets[stripe]
    ok = ds.checksums.verify_span(0, buf, ds.codec.record_size)
    if ok is None:
        ok = len(ds.checksums.find_corrupt(0, buf, ds.codec.record_size)) == 0
    return None if ok else "corrupt"


def fsck_cluster(cluster) -> ElasticFsckReport:
    """CRC-verify every stripe where the ownership map says it lives.

    Live copies that fail become :class:`CopyIssue` rows (the cluster
    is dirty); recorded stale copies are verified informationally and
    never dirty the report.  Stripes in ``cluster.lost_stripes`` are
    reported ``lost`` — known data loss, distinct from fresh
    corruption.
    """
    report = ElasticFsckReport(n_stripes=cluster.n_stripes)
    for s in range(cluster.n_stripes):
        if s in cluster.lost_stripes:
            report.issues.append(CopyIssue(
                stripe=s, node_id=cluster.ownership.owner(s), kind="lost",
                detail="no live copy survived the owning node's failure",
            ))
            continue
        owner, offset = cluster.primary_location(s)
        verdict = _check_copy(cluster, s, owner, offset)
        if verdict is None:
            report.verified_primaries += 1
        else:
            report.issues.append(CopyIssue(
                stripe=s, node_id=owner, kind=f"{verdict}-primary",
                detail=f"authoritative copy at offset {offset}",
            ))
        loc = cluster._replica.get(s)
        if loc is None:
            report.issues.append(CopyIssue(
                stripe=s, node_id=owner, kind="missing-replica",
                detail="replication factor not re-established",
            ))
            continue
        verdict = _check_copy(cluster, s, loc[0], loc[1])
        if verdict is None:
            report.verified_replicas += 1
        else:
            report.issues.append(CopyIssue(
                stripe=s, node_id=loc[0], kind=f"{verdict}-replica",
                detail=f"replica copy at offset {loc[1]}",
            ))
    for node in cluster.membership.members.values():
        for copy in node.stale:
            # A gone node's disk may be dead; the read attempt settles
            # it either way and never dirties the report.
            verdict = _check_copy(cluster, copy.stripe, copy.node_id,
                                  copy.offset)
            status = {
                None: "intact", "corrupt": "decayed",
                "unreadable": "unreachable",
            }[verdict]
            report.stale.append(StaleCopyStatus(
                stripe=copy.stripe, node_id=copy.node_id,
                offset=copy.offset, status=status, reason=copy.reason,
            ))
    return report


def scrub_cluster(cluster, config=None, metrics=None) -> dict:
    """Run PR 5's incremental scrubber over every stripe's *current*
    routing view; returns ``{stripe: ScrubReport}``.

    Stripes with no readable copy (lost) are skipped — fsck already
    reports them — so the scrub covers exactly the bytes queries can
    reach.
    """
    from repro.io.scrub import Scrubber

    reports = {}
    for s in range(cluster.n_stripes):
        if s in cluster.lost_stripes:
            continue
        view = cluster._view(s)
        scrubber = Scrubber(view, config, metrics=metrics)
        try:
            reports[s] = scrubber.sweep()
        except StorageFault:
            # Owner died since the last failover notice; fsck will
            # classify it — scrubbing has nothing to verify here.
            continue
    return reports
