"""Elastic cluster membership: live resharding, failover, autoscaling.

The paper's cluster has a node count fixed at preprocessing time.
This package makes it elastic on the modeled clock — nodes join,
drain, and fail under live traffic while every query still ends
``ok``/``degraded``/``shed``, never ``failed``:

* :mod:`~repro.elastic.membership` — per-node lifecycle state machine
  (joining → syncing → active → draining → gone) with validated
  transitions;
* :mod:`~repro.elastic.cluster` — :class:`ElasticCluster`:
  over-partitioned stripes over a changing disk pool, CRC-verified
  live migration, replica-promotion failover;
* :mod:`~repro.elastic.rebalance` — the paced :class:`Rebalancer` and
  the falsifiable per-λ load-balance invariant (:func:`check_balance`);
* :mod:`~repro.elastic.autoscaler` — pure metric-driven scale
  decisions with hysteresis and cooldown;
* :mod:`~repro.elastic.sim` — :class:`ElasticController`, the tick
  loop a :class:`~repro.serve.server.QueryServer` drives;
* :mod:`~repro.elastic.fsck` — ownership-aware integrity checking
  (stale copies are residue, not corruption).

See ``docs/robustness.md`` ("Elasticity") for the protocol walkthrough.
"""

from .autoscaler import (
    Autoscaler,
    AutoscalerConfig,
    ElasticSignals,
    ScaleDecision,
)
from .cluster import ElasticCluster, MigrationRecord
from .fsck import (
    CopyIssue,
    ElasticFsckReport,
    StaleCopyStatus,
    fsck_cluster,
    scrub_cluster,
)
from .membership import (
    MemberNode,
    MemberState,
    Membership,
    MembershipChange,
    StaleCopy,
)
from .rebalance import (
    BalanceReport,
    LambdaBalance,
    Move,
    Rebalancer,
    check_balance,
)
from .sim import ElasticController, RebalanceEvent, ScaleAction, ScaleEvent

__all__ = [
    "Autoscaler",
    "AutoscalerConfig",
    "BalanceReport",
    "CopyIssue",
    "ElasticCluster",
    "ElasticController",
    "ElasticFsckReport",
    "ElasticSignals",
    "LambdaBalance",
    "MemberNode",
    "MemberState",
    "Membership",
    "MembershipChange",
    "MigrationRecord",
    "Move",
    "RebalanceEvent",
    "Rebalancer",
    "ScaleAction",
    "ScaleDecision",
    "ScaleEvent",
    "StaleCopy",
    "StaleCopyStatus",
    "check_balance",
    "fsck_cluster",
    "scrub_cluster",
]
