"""Paced stripe rebalancing that preserves the paper's load balance.

Two jobs live here:

1. :class:`Rebalancer` — turns the current ownership map plus the
   membership targets into a deterministic move plan (even stripe
   counts, lowest node ids first), then executes it *paced*: the
   migration budget grows as a fixed fraction of the serving I/O the
   cluster has done since the last step, so a rebalance never starves
   live queries of disk time.  Failover backfill bypasses the pacer —
   durability is not budgeted (see ``ElasticCluster._failover``).

2. :func:`check_balance` — the falsifiable form of the paper's per-λ
   load-balance claim.  Round-robin striping guarantees that for every
   isovalue λ the number of active metacells per node differs by a
   bounded amount; with over-partitioned stripes the per-node bound
   becomes ``k_max * (c_max - c_min) + c_max`` where ``c_s`` is stripe
   ``s``'s active count at λ and ``k_max`` the largest number of
   stripes on one node.  The elastic soak asserts this after every
   completed rebalance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .membership import TARGET_STATES


@dataclass(frozen=True)
class Move:
    """One planned data movement (not yet executed)."""

    kind: str  # "primary" | "replica"
    stripe: int
    src_node: int
    #: Destination node for primary moves; -1 for replica moves, whose
    #: destination is chosen by the placement policy at execution time.
    dst_node: int = -1


@dataclass(frozen=True)
class LambdaBalance:
    """Per-isovalue balance check: spread vs the striping bound."""

    lam: float
    #: max - min active metacells across target nodes.
    spread: int
    #: k_max * (c_max - c_min) + c_max — what round-robin striping
    #: guarantees regardless of which stripes land where.
    bound: int

    @property
    def ok(self) -> bool:
        return self.spread <= self.bound


@dataclass
class BalanceReport:
    """Result of :func:`check_balance` over a set of isovalues."""

    #: max - min stripe count across target nodes (<= 1 when balanced).
    assignment_spread: int
    per_lambda: "list[LambdaBalance]" = field(default_factory=list)

    @property
    def assignment_ok(self) -> bool:
        return self.assignment_spread <= 1

    @property
    def ok(self) -> bool:
        return self.assignment_ok and all(c.ok for c in self.per_lambda)


def check_balance(cluster, isovalues=()) -> BalanceReport:
    """Verify the load-balance invariant on the live ownership map.

    ``assignment_spread`` must be <= 1 once a rebalance completes (the
    rebalancer's even-split target); each per-λ spread must stay under
    the striping bound.  Nodes not in a target state (draining, gone)
    are excluded — their stripes are by definition in motion.
    """
    targets = cluster.membership.target_ids()
    counts = [len(cluster.ownership.stripes_of(n)) for n in targets]
    if not counts:
        return BalanceReport(assignment_spread=0)
    report = BalanceReport(assignment_spread=max(counts) - min(counts))
    k_max = max(counts)
    for lam in isovalues:
        per_stripe = [
            int(cluster.datasets[s].tree.query_count(lam))
            for s in range(cluster.n_stripes)
        ]
        loads = [
            sum(per_stripe[s] for s in cluster.ownership.stripes_of(n))
            for n in targets
        ]
        c_max, c_min = max(per_stripe), min(per_stripe)
        report.per_lambda.append(LambdaBalance(
            lam=float(lam),
            spread=max(loads) - min(loads),
            bound=k_max * (c_max - c_min) + c_max,
        ))
    return report


class Rebalancer:
    """Deterministic, I/O-paced stripe rebalancing.

    Parameters
    ----------
    cluster:
        The :class:`~repro.elastic.cluster.ElasticCluster` to balance.
    max_io_fraction:
        Migration budget earned per modeled second of serving I/O
        (0.25: migrations may consume at most a quarter of the disk
        time queries do).  ``math.inf`` disables pacing — every planned
        move executes immediately (tests use this).
    max_carry_seconds:
        Cap on accumulated unspent budget, so a long quiet period does
        not bank an unbounded burst of migration I/O.  Defaults to four
        stripe-move costs.
    """

    def __init__(
        self,
        cluster,
        max_io_fraction: float = 0.25,
        max_carry_seconds: "float | None" = None,
    ) -> None:
        if max_io_fraction <= 0:
            raise ValueError(
                f"max_io_fraction must be > 0, got {max_io_fraction}"
            )
        self.cluster = cluster
        self.max_io_fraction = float(max_io_fraction)
        self.max_carry_seconds = max_carry_seconds
        self._budget = 0.0
        self._last_serving = cluster.serving_io_seconds()

    # -- planning --------------------------------------------------------

    def estimate_move_seconds(self, stripe: int) -> float:
        """Modeled cost of moving one stripe: a sequential read of the
        span, the destination write, and the CRC read-back."""
        model = self.cluster.perf.disk
        nbytes = self.cluster._stripe_nbytes(stripe)
        blocks = (nbytes + model.block_size - 1) // model.block_size
        return 3.0 * model.time_for(blocks, 1)

    def plan(self) -> "list[Move]":
        """The deterministic move list from here to balanced.

        Primary moves first (they change who serves reads), then
        replica evacuations off draining nodes.  Even split with the
        remainder on the lowest node ids; donors shed their highest
        stripe ids first so long-lived assignments stay stable.
        """
        cluster = self.cluster
        ownership = cluster.ownership
        targets = cluster.membership.target_ids()
        if not targets:
            return []
        desired = {
            n: cluster.n_stripes // len(targets)
            + (1 if i < cluster.n_stripes % len(targets) else 0)
            for i, n in enumerate(targets)
        }
        target_set = set(targets)
        movable: "list[int]" = []
        for s in range(cluster.n_stripes):
            owner = ownership.owner(s)
            if owner in target_set or s in cluster.lost_stripes:
                continue
            member = cluster.membership.members[owner]
            if member.serving or cluster._live_replica(s) is not None:
                movable.append(s)
        for n in targets:
            own = ownership.stripes_of(n)
            extra = len(own) - desired[n]
            if extra > 0:
                movable.extend(sorted(own, reverse=True)[:extra])
        recipients: "list[int]" = []
        counts = ownership.counts()
        for n in targets:
            deficit = desired[n] - min(counts.get(n, 0), desired[n])
            recipients.extend([n] * deficit)
        moves = [
            Move("primary", s, ownership.owner(s), dst)
            for s, dst in zip(sorted(movable), recipients)
        ]
        for s in range(cluster.n_stripes):
            loc = cluster._replica.get(s)
            if loc is None:
                continue
            state = cluster.membership.state(loc[0])
            if state not in TARGET_STATES:
                moves.append(Move("replica", s, loc[0]))
        return moves

    @property
    def budget_seconds(self) -> float:
        return self._budget

    # -- execution -------------------------------------------------------

    def _accrue(self) -> None:
        serving = self.cluster.serving_io_seconds()
        self._budget += self.max_io_fraction * max(
            0.0, serving - self._last_serving
        )
        self._last_serving = serving
        cap = self.max_carry_seconds
        if cap is None:
            cap = 4.0 * self.estimate_move_seconds(0)
        self._budget = min(self._budget, cap)

    def step(self, now: float = 0.0) -> "list":
        """Execute as much of the plan as the budget affords; returns
        the completed :class:`~repro.elastic.cluster.MigrationRecord`
        list (possibly empty).  Call repeatedly — e.g. once per
        controller tick — until :meth:`plan` comes back empty."""
        cluster = self.cluster
        unpaced = math.isinf(self.max_io_fraction)
        if not unpaced:
            self._accrue()
        executed = []
        for move in self.plan():
            est = self.estimate_move_seconds(move.stripe)
            if not unpaced and self._budget < est:
                break
            before = cluster.migration_seconds
            if move.kind == "primary":
                rec = cluster.migrate_primary(
                    move.stripe, move.dst_node, now=now, reason="rebalance"
                )
            else:
                rec = cluster.move_replica(
                    move.stripe, now=now, reason="drain-replica"
                )
            if rec is None:
                continue
            # Charge the *actual* cost, including any nested replica
            # re-placement the move triggered.
            self._budget -= cluster.migration_seconds - before
            executed.append(rec)
        return executed
