"""Metric-driven autoscaling decisions (hysteresis + cooldown).

The autoscaler is deliberately a pure decision function over observed
signals — it never touches the cluster itself.  The controller
(:mod:`repro.elastic.sim`) samples the signals from the serving layer's
metrics (queue depth, p99-vs-budget ratio, per-node utilization) and
the health monitor (open breakers), asks :meth:`Autoscaler.decide`,
and applies the returned decision via ``join``/``drain``.  Keeping the
policy side-effect free makes every decision unit-testable with
synthetic signals and keeps same-seed runs bit-deterministic.

Scale-up triggers on *any* pressure signal (queue backlog or tail
latency over budget); scale-down requires *every* signal calm — the
classic asymmetric hysteresis that avoids flapping — plus zero open
circuit breakers, since removing capacity while a node is quarantined
would double the hit.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class AutoscalerConfig:
    """Thresholds and limits for :class:`Autoscaler`.

    Parameters
    ----------
    min_nodes / max_nodes:
        Hard bounds on the serving node count.
    queue_high / queue_low:
        Admitted-but-waiting query counts that signal pressure / calm.
    ratio_high / ratio_low:
        p99 latency as a fraction of the deadline budget: >= ``ratio_high``
        means the tail is blowing the budget, <= ``ratio_low`` means
        ample headroom.
    util_low:
        Mean per-node utilization below which capacity is considered
        idle (scale-down requires this *and* a calm queue *and* a calm
        tail).
    cooldown:
        Modeled seconds between decisions; migrations from the last
        decision must get a chance to land before the next one.
    step:
        Nodes added or removed per decision.
    """

    min_nodes: int = 2
    max_nodes: int = 16
    queue_high: int = 12
    queue_low: int = 2
    ratio_high: float = 1.0
    ratio_low: float = 0.5
    util_low: float = 0.3
    cooldown: float = 1.0
    step: int = 1

    def __post_init__(self) -> None:
        if not 1 <= self.min_nodes <= self.max_nodes:
            raise ValueError(
                f"need 1 <= min_nodes <= max_nodes, got "
                f"{self.min_nodes}/{self.max_nodes}"
            )
        if self.queue_low > self.queue_high:
            raise ValueError("queue_low must be <= queue_high")
        if self.ratio_low > self.ratio_high:
            raise ValueError("ratio_low must be <= ratio_high")
        if self.cooldown < 0 or self.step < 1:
            raise ValueError("cooldown must be >= 0 and step >= 1")


@dataclass(frozen=True)
class ElasticSignals:
    """One sampled observation of serving pressure."""

    #: Queries admitted and waiting (not executing).
    queue_depth: int = 0
    #: Recent p99 latency / deadline budget (0 when no budget is set).
    p99_budget_ratio: float = 0.0
    #: Mean busy fraction across executors/nodes, 0..1.
    utilization: float = 0.0
    #: Nodes currently quarantined by the health monitor.
    open_breakers: int = 0


@dataclass(frozen=True)
class ScaleDecision:
    """What the autoscaler wants done, and why."""

    time: float
    #: +1 for scale-out, -1 for scale-in.
    direction: int
    #: Desired serving node count after the action.
    target_nodes: int
    reason: str


@dataclass
class Autoscaler:
    """Stateful wrapper: config + cooldown clock + decision log."""

    config: AutoscalerConfig = field(default_factory=AutoscalerConfig)
    decisions: "list[ScaleDecision]" = field(default_factory=list)
    _last_decision_at: float = field(default=float("-inf"), repr=False)

    def decide(
        self, now: float, signals: ElasticSignals, current_nodes: int
    ) -> "ScaleDecision | None":
        """The decision for one observation, or None (hold).

        Recording happens here too: every non-None decision appends to
        :attr:`decisions` and restarts the cooldown.
        """
        cfg = self.config
        if now - self._last_decision_at < cfg.cooldown:
            return None
        decision = None
        if current_nodes < cfg.max_nodes and (
            signals.queue_depth >= cfg.queue_high
            or signals.p99_budget_ratio >= cfg.ratio_high
        ):
            why = (
                f"queue depth {signals.queue_depth} >= {cfg.queue_high}"
                if signals.queue_depth >= cfg.queue_high
                else f"p99/budget {signals.p99_budget_ratio:.2f} >= "
                     f"{cfg.ratio_high:.2f}"
            )
            decision = ScaleDecision(
                time=now, direction=+1,
                target_nodes=min(cfg.max_nodes, current_nodes + cfg.step),
                reason=why,
            )
        elif (
            current_nodes > cfg.min_nodes
            and signals.queue_depth <= cfg.queue_low
            and signals.p99_budget_ratio <= cfg.ratio_low
            and signals.utilization <= cfg.util_low
            and signals.open_breakers == 0
        ):
            decision = ScaleDecision(
                time=now, direction=-1,
                target_nodes=max(cfg.min_nodes, current_nodes - cfg.step),
                reason=(
                    f"idle: queue {signals.queue_depth}, p99/budget "
                    f"{signals.p99_budget_ratio:.2f}, util "
                    f"{signals.utilization:.2f}"
                ),
            )
        if decision is not None:
            self._last_decision_at = now
            self.decisions.append(decision)
        return decision
