"""Cluster membership state machine for elastic scaling.

The paper's cluster is fixed at preprocessing time: ``p`` nodes, stripe
``s`` on node ``s``, forever.  An elastic cluster changes its node count
under live traffic, so each physical node carries an explicit lifecycle
state:

.. code-block:: text

    JOINING ──first stripe──> SYNCING ──rebalance done──> ACTIVE
       │                         │                           │
       │                         │ failed                    │ drain
       │ failed                  v                           v
       └──────────────────────> GONE <──rebalance done── DRAINING
                                  ^────────failed───────────┘

* **JOINING** — announced, empty disk; receives migrations but owns no
  stripes yet.
* **SYNCING** — owns at least one stripe (serves reads for it) while
  the rebalancer is still moving data toward the target assignment.
* **ACTIVE** — steady-state member of the serving set.
* **DRAINING** — scheduled for removal; still serves every stripe it
  owns while the rebalancer migrates them away.  No new stripes land
  here.
* **GONE** — terminal.  Either the drain completed (the node's last
  copies were migrated off; leftover bytes are recorded as *stale*, see
  :mod:`repro.elastic.fsck`) or the node failed (its copies are lost
  and failover re-establishes the replication factor elsewhere).

Transitions are validated — an illegal edge raises — and every change
is appended to an audit log, mirroring the
:class:`~repro.parallel.cluster.OwnershipChange` log one level up.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class MemberState(enum.Enum):
    JOINING = "joining"
    SYNCING = "syncing"
    ACTIVE = "active"
    DRAINING = "draining"
    GONE = "gone"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Legal edges of the membership machine.  GONE is terminal: nothing
#: leaves it — a healed ex-member re-joins under a *new* node id, which
#: keeps the audit history of the old identity intact.
ALLOWED_TRANSITIONS: "dict[MemberState, frozenset[MemberState]]" = {
    MemberState.JOINING: frozenset({MemberState.SYNCING, MemberState.GONE}),
    MemberState.SYNCING: frozenset(
        {MemberState.ACTIVE, MemberState.DRAINING, MemberState.GONE}
    ),
    MemberState.ACTIVE: frozenset({MemberState.DRAINING, MemberState.GONE}),
    MemberState.DRAINING: frozenset({MemberState.GONE}),
    MemberState.GONE: frozenset(),
}

#: States whose stripes are served (the node's disk answers reads).
SERVING_STATES = frozenset({
    MemberState.JOINING, MemberState.SYNCING, MemberState.ACTIVE,
    MemberState.DRAINING,
})

#: States allowed to *receive* stripes from the rebalancer.
TARGET_STATES = frozenset({
    MemberState.JOINING, MemberState.SYNCING, MemberState.ACTIVE,
})


@dataclass(frozen=True)
class MembershipChange:
    """One audit-log row: node ``node_id`` moved ``src`` → ``dst``."""

    time: float
    node_id: int
    src: MemberState
    dst: MemberState
    reason: str = ""


@dataclass(frozen=True)
class StaleCopy:
    """A byte range left behind by a migration or drain.

    The bytes are *not* authoritative — ownership moved on — but they
    are not corruption either: ``repro fsck`` reports them as ``stale``
    so an operator can tell "old copy on a drained node" apart from
    "bit rot on a live one".
    """

    stripe: int
    node_id: int
    offset: int
    nbytes: int
    reason: str = ""


@dataclass
class MemberNode:
    """One physical node: identity, disk, lifecycle state."""

    node_id: int
    device: object
    state: MemberState = MemberState.ACTIVE
    #: Copies abandoned on this disk by migrations (see :class:`StaleCopy`).
    stale: "list[StaleCopy]" = field(default_factory=list)

    @property
    def serving(self) -> bool:
        return self.state in SERVING_STATES


class Membership:
    """All member nodes plus the validated transition log.

    Node ids are permanent: they are never reused, so the ownership
    map, the audit logs, and the metrics namespace
    (``elastic.node.<id>.*``) all refer to one physical identity for
    the lifetime of the simulation.
    """

    def __init__(self) -> None:
        self.members: "dict[int, MemberNode]" = {}
        self.log: "list[MembershipChange]" = []
        self._next_id = 0

    def add(self, device, state: MemberState = MemberState.ACTIVE,
            now: float = 0.0, reason: str = "") -> MemberNode:
        """Register a new node (fresh, never-seen id); returns it."""
        node = MemberNode(node_id=self._next_id, device=device, state=state)
        self._next_id += 1
        self.members[node.node_id] = node
        self.log.append(MembershipChange(
            time=now, node_id=node.node_id, src=state, dst=state,
            reason=reason or "added",
        ))
        return node

    def transition(self, node_id: int, dst: MemberState,
                   now: float = 0.0, reason: str = "") -> MemberNode:
        """Move a node to ``dst``, validating the edge; returns it."""
        node = self.members[node_id]
        if dst is node.state:
            return node
        if dst not in ALLOWED_TRANSITIONS[node.state]:
            raise ValueError(
                f"illegal membership transition for node {node_id}: "
                f"{node.state} -> {dst}"
            )
        self.log.append(MembershipChange(
            time=now, node_id=node_id, src=node.state, dst=dst, reason=reason,
        ))
        node.state = dst
        return node

    def state(self, node_id: int) -> MemberState:
        return self.members[node_id].state

    def ids(self, states: "frozenset[MemberState] | None" = None) -> "list[int]":
        """Sorted node ids, optionally filtered to a state set."""
        return sorted(
            nid for nid, n in self.members.items()
            if states is None or n.state in states
        )

    def serving_ids(self) -> "list[int]":
        return self.ids(SERVING_STATES)

    def target_ids(self) -> "list[int]":
        return self.ids(TARGET_STATES)

    def active_ids(self) -> "list[int]":
        return self.ids(frozenset({MemberState.ACTIVE}))

    def counts(self) -> "dict[str, int]":
        """state name -> member count (for gauges / reports)."""
        out: "dict[str, int]" = {}
        for n in self.members.values():
            out[str(n.state)] = out.get(str(n.state), 0) + 1
        return out

    def __len__(self) -> int:
        return len(self.members)
