"""External (blocked) compact interval tree — paper Section 5, last
paragraph.

"In the unlikely case when the compact interval tree does not fit in
main memory, we use the same strategy as in [10] and group each B nodes
of the binary tree into one disk block thereby reducing the height of
the tree to O(log_B n)."

:class:`ExternalCompactIndex` serializes a built tree onto a block
device using the classic B-tree-ification: the top-most subtree that
fits in one block becomes the root block; each hanging subtree recurses
into its own block(s).  A root-to-leaf walk then touches
``O(log_B n)`` blocks instead of ``O(log2 n)``.

The walk produces exactly the same :class:`~repro.core.compact_tree.QueryPlan`
as the in-memory tree (asserted by the tests), plus an
:class:`~repro.io.blockdevice.IOStats` bill for the index traversal
itself — the first term of the paper's ``O(log_B(N/B) + T/B)`` bound,
which the in-memory path gets for free.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.core.compact_tree import (
    BrickPrefixScan,
    CompactIntervalTree,
    QueryPlan,
    SequentialRun,
)
from repro.io.blockdevice import IOStats

#: Node record: split f8 | left_block i4 | left_slot i4 | right_block i4
#: | right_slot i4 | run_start i8 | n_entries i4 (+ entries)
_NODE_HEADER = struct.Struct("<diiiiqi")
#: Entry record: vmax f8 | min_vmin f8 | start i8 | count i8
_ENTRY = struct.Struct("<ddqq")


@dataclass
class _NodeRef:
    block: int
    slot: int


class ExternalCompactIndex:
    """A compact interval tree stored on disk in blocked form.

    Parameters
    ----------
    device:
        Block device to hold the index (may be the brick device or a
        separate one — the paper keeps the index with the data).
    tree:
        The in-memory tree to serialize.  Only its structure is copied;
        the original can be discarded afterwards, which is the point.

    Notes
    -----
    Values are widened to float64 on disk for simplicity; comparisons
    are exact for every integer dtype up to 32 bits and for float32
    inputs, which covers all supported scalar types.
    """

    def __init__(self, device, tree: CompactIntervalTree) -> None:
        self.device = device
        self.block_size = device.cost_model.block_size
        self._blocks: list[int] = []  # byte offset per block id
        self._empty = tree.n_nodes == 0
        if not self._empty:
            self._root = self._serialize(tree)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _node_bytes(self, node) -> int:
        return _NODE_HEADER.size + node.n_bricks * _ENTRY.size

    def _serialize(self, tree: CompactIntervalTree) -> _NodeRef:
        """Pack subtrees into blocks, top-down, and write them."""
        placements: dict[int, _NodeRef] = {}
        block_members: list[list[int]] = []

        # Greedy top-subtree packing: BFS from each pending root, taking
        # nodes while the byte budget lasts; children that don't fit seed
        # new blocks.
        pending = [0]
        while pending:
            root = pending.pop(0)
            budget = self.block_size - 4  # block header: node count
            members: list[int] = []
            queue = [root]
            while queue:
                nid = queue.pop(0)
                # +4: the node's slot in the block directory.
                nb = self._node_bytes(tree.nodes[nid]) + 4
                if members and budget - nb < 0:
                    pending.append(nid)
                    continue
                members.append(nid)
                budget -= nb
                for child in (tree.nodes[nid].left, tree.nodes[nid].right):
                    if child >= 0:
                        queue.append(child)
            block_id = len(block_members)
            block_members.append(members)
            for slot, nid in enumerate(members):
                placements[nid] = _NodeRef(block_id, slot)

        # Write each block: slot directory (u32 offsets) + node records.
        for members in block_members:
            payloads = []
            for nid in members:
                node = tree.nodes[nid]
                left = placements.get(node.left, _NodeRef(-1, -1))
                right = placements.get(node.right, _NodeRef(-1, -1))
                head = _NODE_HEADER.pack(
                    float(node.split),
                    left.block, left.slot, right.block, right.slot,
                    node.run_start, node.n_bricks,
                )
                entries = b"".join(
                    _ENTRY.pack(
                        float(node.entry_vmax[j]),
                        float(node.entry_min_vmin[j]),
                        int(node.entry_start[j]),
                        int(node.entry_count[j]),
                    )
                    for j in range(node.n_bricks)
                )
                payloads.append(head + entries)
            dir_bytes = struct.pack(f"<{len(payloads)}I", *(
                np.cumsum([4 + 4 * len(payloads)] + [len(p) for p in payloads])[:-1]
            )) if payloads else b""
            blob = struct.pack("<I", len(payloads)) + dir_bytes + b"".join(payloads)
            if len(blob) > self.block_size:
                raise ValueError(
                    f"node block of {len(blob)} bytes exceeds device block "
                    f"size {self.block_size}; a single node's entry list does "
                    "not fit — use a larger block size"
                )
            offset = self.device.allocate(self.block_size)
            self.device.write(offset, blob)
            self._blocks.append(offset)
        return placements[0]

    @property
    def n_blocks(self) -> int:
        return len(self._blocks)

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------

    def _read_node(self, cache: dict, ref: _NodeRef):
        """Fetch (and per-query cache) one node record."""
        if ref.block not in cache:
            cache[ref.block] = self.device.read(self._blocks[ref.block], self.block_size)
        blob = cache[ref.block]
        (count,) = struct.unpack_from("<I", blob, 0)
        if not 0 <= ref.slot < count:
            raise IOError(f"corrupt index block {ref.block}: slot {ref.slot}/{count}")
        (off,) = struct.unpack_from("<I", blob, 4 + 4 * ref.slot)
        split, lb, ls, rb, rs, run_start, n_entries = _NODE_HEADER.unpack_from(blob, off)
        entries = [
            _ENTRY.unpack_from(blob, off + _NODE_HEADER.size + j * _ENTRY.size)
            for j in range(n_entries)
        ]
        return split, _NodeRef(lb, ls), _NodeRef(rb, rs), run_start, entries

    def plan_query(self, lam: float) -> tuple[QueryPlan, IOStats]:
        """Walk the blocked tree on disk; return the plan and the index
        traversal's I/O bill."""
        plan = QueryPlan(lam=float(lam), runs=[])
        before = self.device.stats.copy()
        if self._empty:
            return plan, self.device.stats.copy() - before
        cache: dict[int, bytes] = {}
        ref = self._root
        while ref.block >= 0:
            split, left, right, run_start, entries = self._read_node(cache, ref)
            plan.nodes_visited += 1
            if lam >= split:
                k = sum(1 for e in entries if e[0] >= lam)
                if k > 0:
                    count = sum(int(e[3]) for e in entries[:k])
                    plan.runs.append(
                        SequentialRun(start=run_start, count=count, node_id=-1)
                    )
                    plan.case1_nodes += 1
                ref = right
            else:
                hit = False
                for e in entries:
                    if e[1] <= lam:
                        hit = True
                        plan.runs.append(
                            BrickPrefixScan(
                                start=int(e[2]), max_count=int(e[3]),
                                node_id=-1, brick_id=-1,
                            )
                        )
                    else:
                        plan.bricks_skipped += 1
                if hit:
                    plan.case2_nodes += 1
                ref = left
        return plan, self.device.stats.copy() - before
