"""Time-varying indexing (paper Section 5.2).

Each time step gets its own compact interval tree and brick layout; the
collection of per-step indexes is small enough to keep entirely in main
memory (the paper's 270-step Richtmyer–Meshkov index totals 1.6 MB),
so selecting a time step is a dictionary lookup and a query proceeds
exactly as in the single-step case.

Construction streams the time steps one at a time — the generator
interface of :func:`repro.grid.rm_instability.rm_time_series` plugs in
directly — so the resident set stays bounded by one step regardless of
how many steps are indexed.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro.core.builder import IndexedDataset, build_indexed_dataset, build_striped_datasets
from repro.core.query import QueryResult, execute_query
from repro.grid.volume import Volume
from repro.io.cost_model import IOCostModel


class TimeVaryingIndex:
    """Per-time-step compact interval tree indexes over a time series.

    Parameters
    ----------
    p:
        Number of cluster nodes each step is striped across (1 = serial).
    metacell_shape:
        Metacell vertex dimensions, shared by all steps.
    cost_model:
        Disk calibration used for all simulated devices.
    device_factory:
        Optional callable ``(step, node_rank) -> BlockDevice`` for custom
        storage (e.g. file-backed devices); defaults to fresh in-memory
        simulated devices.
    """

    def __init__(
        self,
        p: int = 1,
        metacell_shape: tuple[int, int, int] = (9, 9, 9),
        cost_model: IOCostModel | None = None,
        device_factory: "Callable[[int, int], object] | None" = None,
    ) -> None:
        if p < 1:
            raise ValueError(f"node count must be >= 1, got {p}")
        self.p = p
        self.metacell_shape = metacell_shape
        self.cost_model = cost_model or IOCostModel()
        self.device_factory = device_factory
        self._steps: dict[int, list[IndexedDataset]] = {}

    # -- construction --------------------------------------------------------

    def add_step(self, t: int, volume: Volume) -> "list[IndexedDataset]":
        """Preprocess and index one time step."""
        if t in self._steps:
            raise ValueError(f"time step {t} already indexed")
        if self.device_factory is not None:
            devices = [self.device_factory(t, q) for q in range(self.p)]
        else:
            devices = None
        if self.p == 1:
            dev = devices[0] if devices else None
            datasets = [
                build_indexed_dataset(
                    volume, self.metacell_shape, device=dev, cost_model=self.cost_model
                )
            ]
        else:
            datasets = build_striped_datasets(
                volume, self.p, self.metacell_shape, devices=devices, cost_model=self.cost_model
            )
        self._steps[t] = datasets
        return datasets

    @classmethod
    def from_series(
        cls,
        series: "Iterable[tuple[int, Volume]]",
        p: int = 1,
        metacell_shape: tuple[int, int, int] = (9, 9, 9),
        cost_model: IOCostModel | None = None,
        device_factory=None,
    ) -> "TimeVaryingIndex":
        """Index an entire ``(t, volume)`` series, one step at a time."""
        tvi = cls(p, metacell_shape, cost_model, device_factory)
        for t, vol in series:
            tvi.add_step(t, vol)
        return tvi

    # -- access ---------------------------------------------------------------

    @property
    def steps(self) -> "list[int]":
        return sorted(self._steps)

    def __contains__(self, t: int) -> bool:
        return t in self._steps

    def __len__(self) -> int:
        return len(self._steps)

    def datasets(self, t: int) -> "list[IndexedDataset]":
        """Per-node indexed datasets of step ``t``."""
        try:
            return self._steps[t]
        except KeyError:
            raise KeyError(
                f"time step {t} not indexed; available: {self.steps}"
            ) from None

    def query(self, t: int, lam: float) -> "list[QueryResult]":
        """Run the isosurface query for step ``t`` on every node."""
        return [execute_query(ds, lam) for ds in self.datasets(t)]

    # -- accounting -----------------------------------------------------------

    def total_index_size_bytes(self) -> int:
        """Combined in-memory size of all per-step indexes.

        This is the paper's O(m n log n) quantity: for the 270-step
        Richtmyer–Meshkov run it is 1.6 MB against 2.1 TB of data.
        """
        total = 0
        for datasets in self._steps.values():
            for ds in datasets:
                total += ds.tree.index_size_bytes()
        return total

    def iter_steps(self) -> "Iterator[tuple[int, list[IndexedDataset]]]":
        for t in self.steps:
            yield t, self._steps[t]

    # -- extraction convenience -------------------------------------------

    def extract(self, t: int, lam: float):
        """Query step ``t`` and triangulate every node's share.

        Returns a list of per-node :class:`~repro.mc.geometry.TriangleMesh`
        (concatenate with ``TriangleMesh.concat`` for the full surface).
        """
        from repro.mc.geometry import TriangleMesh
        from repro.mc.marching_cubes import marching_cubes_batch

        meshes = []
        for ds, res in zip(self.datasets(t), self.query(t, lam)):
            if res.n_active:
                meshes.append(
                    marching_cubes_batch(
                        ds.codec.values_grid(res.records),
                        lam,
                        ds.meta.vertex_origins(res.records.ids),
                        spacing=ds.meta.spacing,
                        world_origin=ds.meta.origin,
                    )
                )
            else:
                meshes.append(TriangleMesh())
        return meshes

    # -- persistence --------------------------------------------------------

    def save(self, directory) -> "Path":
        """Persist every step's index + brick store under ``directory``.

        Layout: ``directory/step_<t>/node_<q>/{bricks.bin,index.npz,meta.json}``.
        Requires every device to be file-backed *or* in-memory (in-memory
        stores are copied out to files).
        """
        from pathlib import Path

        from repro.core.persistence import BRICKS_FILE, save_dataset
        from repro.io.diskfile import FileBackedDevice

        directory = Path(directory)
        for t, datasets in self.iter_steps():
            for ds in datasets:
                node_dir = directory / f"step_{t:04d}" / f"node_{ds.node_rank}"
                node_dir.mkdir(parents=True, exist_ok=True)
                bricks = node_dir / BRICKS_FILE
                # Copy without going through the metered read path (a
                # backup is not a query; stats must stay clean).
                if isinstance(ds.device, FileBackedDevice):
                    ds.device.flush()
                    if ds.device.path.resolve() != bricks.resolve():
                        import shutil

                        shutil.copyfile(ds.device.path, bricks)
                elif hasattr(ds.device, "_buf"):
                    bricks.write_bytes(bytes(ds.device._buf))
                else:
                    raise TypeError(
                        f"cannot persist device of type {type(ds.device).__name__}"
                    )
                save_dataset(ds, node_dir)
        (directory / "steps.txt").write_text(
            "\n".join(str(t) for t in self.steps) + "\n"
        )
        return directory

    @classmethod
    def load(cls, directory, cost_model: IOCostModel | None = None) -> "TimeVaryingIndex":
        """Reopen a directory written by :meth:`save`."""
        from pathlib import Path

        from repro.core.persistence import load_dataset

        directory = Path(directory)
        steps_file = directory / "steps.txt"
        if not steps_file.exists():
            raise FileNotFoundError(f"no steps.txt in {directory}")
        steps = [int(s) for s in steps_file.read_text().split()]
        tvi = None
        for t in steps:
            step_dir = directory / f"step_{t:04d}"
            node_dirs = sorted(step_dir.glob("node_*"))
            if not node_dirs:
                raise FileNotFoundError(f"no node directories in {step_dir}")
            datasets = [load_dataset(d, cost_model) for d in node_dirs]
            if tvi is None:
                tvi = cls(
                    p=len(datasets),
                    metacell_shape=datasets[0].meta.metacell_shape,
                    cost_model=cost_model,
                )
            tvi._steps[t] = datasets
        assert tvi is not None
        return tvi
