"""Write-ahead build journal: crash-consistent preprocessing state.

The journaled builder (:func:`repro.core.persistence.build_persistent_dataset`)
records its progress in a ``build.journal`` file next to the artifacts it
is producing.  The journal is the *only* authority on how far an
interrupted build got; everything else in the directory is either a
``.partial``/``.tmp`` staging file (invisible to readers) or a fully
committed artifact that was published with an atomic ``os.replace``.

Format
------
One JSON object per line, append-only, ``fsync``\\ 'd per append::

    {"type": "begin", "fingerprint": {...}, "n_records": N,
     "record_size": R, "group_records": G, "rev": 1, "crc": ...}
    {"type": "group", "index": 0, "records_done": G, "cum_crc": C0, "crc": ...}
    {"type": "group", "index": 1, "records_done": 2*G, "cum_crc": C1, "crc": ...}
    ...
    {"type": "commit", "crc": ...}

* ``fingerprint`` ties the journal to one exact build input (volume CRC,
  shapes, dtype, layout parameters).  A resumed build with a different
  fingerprint discards the journal and starts over — resuming someone
  else's half-built layout would corrupt it silently.
* each ``group`` record is appended *after* the group's record bytes are
  written **and fsync'd** to the ``.partial`` brick store, so a group
  mentioned in the journal is durable on disk up to the torn tail the
  crash itself produced.  ``cum_crc`` is the cumulative CRC32 of the
  record stream through ``records_done`` records — resuming verifies the
  claim against the actual file bytes and walks back to the last group
  that still checks out.
* ``commit`` is appended after the last artifact rename; its presence
  means the dataset is fully published and the journal is garbage.

Every line carries a ``crc`` of its own canonical serialization, so a
line torn by the crash (the exact failure mode the journal exists to
survive) is detected and treated as absent — tail-tolerant parsing, the
same discipline as any WAL.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path

#: Journal file name inside a dataset directory.
JOURNAL_FILE = "build.journal"

#: Bump when the journal record schema changes incompatibly.
JOURNAL_REV = 1


def _canonical(record: dict) -> str:
    """Deterministic serialization used for both writing and the line CRC."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def _seal(record: dict) -> str:
    """Attach the self-CRC and return the final line (without newline)."""
    body = _canonical(record)
    return _canonical({**record, "crc": zlib.crc32(body.encode("ascii"))})


def _unseal(line: str) -> "dict | None":
    """Parse one journal line; ``None`` when torn or tampered."""
    try:
        record = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None
    if not isinstance(record, dict) or "crc" not in record or "type" not in record:
        return None
    claimed = record.pop("crc")
    if zlib.crc32(_canonical(record).encode("ascii")) != claimed:
        return None
    return record


@dataclass
class JournalState:
    """What a parsed journal says about an interrupted build."""

    #: The ``begin`` record's fingerprint (``None``: no valid begin line).
    fingerprint: "dict | None" = None
    #: Layout parameters from the begin record.
    n_records: int = 0
    record_size: int = 0
    group_records: int = 0
    #: Journaled group records in append order.
    groups: "list[dict]" = field(default_factory=list)
    #: True when a ``commit`` record was found (dataset fully published).
    committed: bool = False
    #: Lines dropped by tail-tolerant parsing (torn/corrupt).
    torn_lines: int = 0

    @property
    def records_done(self) -> int:
        """Records the journal *claims* are durable (before re-verification)."""
        return int(self.groups[-1]["records_done"]) if self.groups else 0


class BuildJournal:
    """Append-only, fsync'd write-ahead journal for one build directory.

    Appends are durable before :meth:`group` / :meth:`commit` return:
    the line is written, flushed, and ``fsync``'d in one call, so a crash
    at any instruction boundary leaves at most one torn trailing line —
    which the parser drops.
    """

    def __init__(self, directory: "str | Path") -> None:
        self.path = Path(directory) / JOURNAL_FILE
        self._fh = None

    # -- writing -----------------------------------------------------------

    def _append(self, record: dict) -> None:
        if self._fh is None:
            self._fh = open(self.path, "a", encoding="ascii")
        self._fh.write(_seal(record) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def begin(
        self,
        fingerprint: dict,
        n_records: int,
        record_size: int,
        group_records: int,
    ) -> None:
        self._append(
            {
                "type": "begin",
                "rev": JOURNAL_REV,
                "fingerprint": fingerprint,
                "n_records": int(n_records),
                "record_size": int(record_size),
                "group_records": int(group_records),
            }
        )

    def group(self, index: int, records_done: int, cum_crc: int) -> None:
        self._append(
            {
                "type": "group",
                "index": int(index),
                "records_done": int(records_done),
                "cum_crc": int(cum_crc),
            }
        )

    def note(self, event: str) -> None:
        """Informational marker (e.g. ``resume``); ignored by recovery."""
        self._append({"type": "note", "event": event})

    def commit(self) -> None:
        self._append({"type": "commit"})

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def unlink(self) -> None:
        self.close()
        try:
            self.path.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __enter__(self) -> "BuildJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- reading -----------------------------------------------------------

    @classmethod
    def read_state(cls, directory: "str | Path") -> "JournalState | None":
        """Parse the directory's journal; ``None`` when there is none.

        Tail-tolerant: parsing stops at the first line that fails its
        self-CRC (a crash can tear at most the trailing append), and the
        build state reflects only the intact prefix.
        """
        path = Path(directory) / JOURNAL_FILE
        if not path.exists():
            return None
        state = JournalState()
        try:
            text = path.read_text(encoding="ascii", errors="replace")
        except OSError:  # pragma: no cover - unreadable journal
            return state
        for line in text.splitlines():
            if not line.strip():
                continue
            record = _unseal(line)
            if record is None:
                state.torn_lines += 1
                break
            if record["type"] == "begin" and state.fingerprint is None:
                state.fingerprint = record.get("fingerprint")
                state.n_records = int(record.get("n_records", 0))
                state.record_size = int(record.get("record_size", 0))
                state.group_records = int(record.get("group_records", 0))
            elif record["type"] == "group":
                state.groups.append(record)
            elif record["type"] == "commit":
                state.committed = True
        return state
