"""Dataset integrity checking (fsck for brick stores).

A persisted dataset can rot — truncated copies, version skew, bit rot —
and the query layer's invariants (`vmin` ascending within bricks, record
payloads consistent with their intervals) are exactly what make the
Case-2 early-exit *correct*, so violations silently return wrong
surfaces.  :func:`verify_dataset` re-reads the entire store and checks
every invariant, reporting structured findings rather than raising on
the first problem.

Exposed on the CLI as ``repro verify <dataset_dir>``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Records examined per chunk while sweeping the store.
VERIFY_CHUNK = 4096


@dataclass
class VerifyReport:
    """Outcome of a dataset integrity sweep.

    ``problems`` is the human-readable finding list (capped per class);
    ``corrupt_records`` / ``corrupt_bricks`` are the complete structured
    classification that ``repro fsck`` exit codes, ``--json`` output,
    and ``--repair`` all key off.
    """

    n_records_checked: int = 0
    n_bricks_checked: int = 0
    problems: "list[str]" = field(default_factory=list)
    #: Layout positions of every record whose CRC32 disagrees with the
    #: checksum table (complete, unlike the capped ``problems`` lines).
    corrupt_records: "list[int]" = field(default_factory=list)
    #: Brick ids whose rollup CRC fails or that contain corrupt records.
    corrupt_bricks: "list[int]" = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    @property
    def has_corruption(self) -> bool:
        return bool(self.corrupt_records or self.corrupt_bricks)

    def add(self, msg: str) -> None:
        self.problems.append(msg)

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "n_records_checked": self.n_records_checked,
            "n_bricks_checked": self.n_bricks_checked,
            "problems": list(self.problems),
            "corrupt_records": [int(p) for p in self.corrupt_records],
            "corrupt_bricks": [int(b) for b in self.corrupt_bricks],
        }

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.problems)} problem(s)"
        lines = [
            f"verify: {status} — {self.n_records_checked} records, "
            f"{self.n_bricks_checked} bricks checked"
        ]
        lines += [f"  - {p}" for p in self.problems[:50]]
        if len(self.problems) > 50:
            lines.append(f"  ... and {len(self.problems) - 50} more")
        return "\n".join(lines)


def verify_dataset(dataset, deep: bool = True) -> VerifyReport:
    """Check a dataset's index/store invariants.

    Structural checks (always): brick table tiles the record space; node
    entries mirror the brick table; entry ``min_vmin`` matches the first
    record; store is large enough.

    Deep checks (``deep=True``): read every record and verify (a) the
    stored ``vmin`` equals the payload minimum, (b) vmins ascend within
    each brick, (c) the payload maximum never exceeds the brick's
    ``vmax`` and is attained by at least one record per brick, (d) ids
    are unique and within the metacell grid, and (e) when the dataset
    carries CRC32 checksum tables, every record matches its stored CRC
    and every brick matches its rollup CRC.
    """
    report = VerifyReport()
    tree = dataset.tree
    codec = dataset.codec
    rec = codec.record_size

    # -- structural ----------------------------------------------------------
    n = tree.n_records
    expected_bytes = dataset.base_offset + n * rec
    if dataset.device.size < expected_bytes:
        report.add(
            f"store holds {dataset.device.size} bytes, index expects >= {expected_bytes}"
        )
        return report  # deep sweep would only cascade

    if tree.n_bricks:
        order = np.argsort(tree.brick_start)
        starts = tree.brick_start[order]
        counts = tree.brick_count[order]
        if starts[0] != 0 or not np.all(starts[1:] == starts[:-1] + counts[:-1]):
            report.add("brick table does not tile the record space contiguously")
        if starts[-1] + counts[-1] != n:
            report.add(
                f"brick table covers {starts[-1] + counts[-1]} records, index has {n}"
            )
    for node in tree.nodes:
        for j in range(node.n_bricks):
            b = int(node.brick_ids[j])
            if not 0 <= b < tree.n_bricks:
                report.add(f"node {node.node_id} references missing brick {b}")
                continue
            if int(node.entry_start[j]) != int(tree.brick_start[b]):
                report.add(f"node {node.node_id} entry {j} offset mismatch")

    if not deep or n == 0:
        report.n_bricks_checked = tree.n_bricks
        return report

    # -- deep sweep -----------------------------------------------------------
    brick_of = np.zeros(n, dtype=np.int64)
    for b in range(tree.n_bricks):
        s, c = int(tree.brick_start[b]), int(tree.brick_count[b])
        brick_of[s : s + c] = b
    seen_ids = set()
    n_grid = int(np.prod(dataset.meta.grid_shape)) if hasattr(dataset, "meta") else None
    brick_max_seen = np.full(tree.n_bricks, -np.inf)
    prev_vmin_by_brick = np.full(tree.n_bricks, -np.inf)

    checks = getattr(dataset, "checksums", None)
    if checks is not None and checks.n_records != n:
        report.add(
            f"checksum table covers {checks.n_records} records, index has {n}"
        )
        checks = None

    for start in range(0, n, VERIFY_CHUNK):
        stop = min(start + VERIFY_CHUNK, n)
        buf = dataset.device.read(dataset.record_offset(start), (stop - start) * rec)
        batch = codec.decode(buf)
        if len(batch) != stop - start:
            report.add(f"short decode at records [{start}, {stop})")
            break
        if checks is not None:
            corrupt = checks.find_corrupt(start, buf, rec)
            for i in corrupt[:10]:
                report.add(f"record {start + int(i)}: CRC32 mismatch (bit rot?)")
            if len(corrupt) > 10:
                report.add(
                    f"... and {len(corrupt) - 10} more CRC32 mismatches in "
                    f"records [{start}, {stop})"
                )
            report.corrupt_records.extend(start + int(i) for i in corrupt)
        vals = batch.values.astype(np.float64)
        vmins = batch.vmins.astype(np.float64)
        payload_min = vals.min(axis=1)
        payload_max = vals.max(axis=1)
        bad = np.flatnonzero(payload_min != vmins)
        for i in bad[:10]:
            report.add(
                f"record {start + i}: stored vmin {vmins[i]} != payload min "
                f"{payload_min[i]}"
            )
        for i in range(len(batch)):
            p = start + i
            b = brick_of[p]
            if vmins[i] < prev_vmin_by_brick[b]:
                report.add(f"record {p}: vmin descends within brick {b}")
            prev_vmin_by_brick[b] = vmins[i]
            bv = float(tree.brick_vmax[b])
            if payload_max[i] > bv + 1e-9:
                report.add(
                    f"record {p}: payload max {payload_max[i]} exceeds brick "
                    f"vmax {bv}"
                )
            brick_max_seen[b] = max(brick_max_seen[b], payload_max[i])
            rid = int(batch.ids[i])
            if rid in seen_ids:
                report.add(f"duplicate metacell id {rid} at record {p}")
            seen_ids.add(rid)
            if n_grid is not None and rid >= n_grid:
                report.add(f"record {p}: id {rid} outside metacell grid ({n_grid})")
        report.n_records_checked = stop

    for b in range(tree.n_bricks):
        if tree.brick_count[b] and brick_max_seen[b] < float(tree.brick_vmax[b]) - 1e-9:
            report.add(
                f"brick {b}: no record attains the brick vmax "
                f"{float(tree.brick_vmax[b])} (max seen {brick_max_seen[b]})"
            )
        if checks is not None and not checks.verify_brick(
            b, int(tree.brick_start[b]), int(tree.brick_count[b])
        ):
            report.add(f"brick {b}: rollup CRC32 mismatch against record CRCs")
            report.corrupt_bricks.append(b)
    if report.corrupt_records:
        bad = set(report.corrupt_bricks)
        for p in report.corrupt_records:
            bad.add(int(brick_of[p]))
        report.corrupt_bricks = sorted(bad)
    report.n_bricks_checked = tree.n_bricks
    return report
