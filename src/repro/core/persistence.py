"""Index persistence: save and reload preprocessed datasets.

The whole point of out-of-core preprocessing is to pay it once; this
module persists everything a later session needs next to the brick
store:

* the compact interval tree (all arrays + node structure) as ``.npz``;
* the dataset metadata (grid geometry, codec parameters, preprocessing
  report, base offset) as JSON.

``save_dataset`` / ``load_dataset`` pair with
:class:`repro.io.diskfile.FileBackedDevice` so a dataset directory is
fully self-describing::

    dataset_dir/
      bricks.bin     the brick layout (written during preprocessing)
      index.npz      the compact interval tree
      meta.json      codec + grid metadata + report

Only the index and metadata are (de)serialized here — the brick store is
already on disk, which is the point.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path

import numpy as np

from repro.core.builder import DatasetMeta, IndexedDataset, PreprocessReport
from repro.core.compact_tree import CompactIntervalTree, TreeNode
from repro.io.cost_model import IOCostModel
from repro.io.diskfile import FileBackedDevice
from repro.io.layout import BrickChecksums, MetacellCodec

#: Format version for forward-compatibility checks.  Version 2 added the
#: CRC32 checksum tables (``record_crcs`` / ``brick_crcs`` in the index
#: npz); version-1 stores load fine with ``checksums=None``.
FORMAT_VERSION = 2

#: Versions :func:`load_dataset` can read.
SUPPORTED_FORMAT_VERSIONS = (1, 2)

BRICKS_FILE = "bricks.bin"
INDEX_FILE = "index.npz"
META_FILE = "meta.json"

#: Staging names used by the journaled builder.  Readers never look at
#: these: an artifact is either fully committed under its final name (an
#: atomic ``os.replace`` away from its staging twin) or invisible.
BRICKS_PARTIAL_FILE = BRICKS_FILE + ".partial"
INDEX_TMP_FILE = INDEX_FILE + ".tmp"
META_TMP_FILE = META_FILE + ".tmp"


class DatasetFormatError(ValueError):
    """A dataset artifact exists but is not a format this build reads."""


class MissingArtifactError(FileNotFoundError):
    """A required dataset artifact (meta/index/bricks) is absent."""


# ---------------------------------------------------------------------------
# Tree <-> arrays
# ---------------------------------------------------------------------------


def tree_to_arrays(tree: CompactIntervalTree) -> "dict[str, np.ndarray]":
    """Flatten a compact interval tree into named arrays (npz-friendly)."""
    n_nodes = tree.n_nodes
    split = np.asarray([nd.split for nd in tree.nodes])
    lo = np.asarray([nd.lo_code for nd in tree.nodes], dtype=np.int64)
    hi = np.asarray([nd.hi_code for nd in tree.nodes], dtype=np.int64)
    left = np.asarray([nd.left for nd in tree.nodes], dtype=np.int64)
    right = np.asarray([nd.right for nd in tree.nodes], dtype=np.int64)
    # Per-node brick-id ranges into the flat brick table: node entries are
    # contiguous slices of brick ids by construction, but striped local
    # trees renumber them, so store the explicit id lists flattened.
    brick_ids_flat = (
        np.concatenate([nd.brick_ids for nd in tree.nodes])
        if n_nodes
        else np.empty(0, dtype=np.int64)
    )
    brick_ids_count = np.asarray([nd.n_bricks for nd in tree.nodes], dtype=np.int64)
    return {
        "endpoints": tree.endpoints,
        "node_split": split,
        "node_lo": lo,
        "node_hi": hi,
        "node_left": left,
        "node_right": right,
        "node_brick_ids_flat": brick_ids_flat,
        "node_brick_count": brick_ids_count,
        "record_order": tree.record_order,
        "record_vmins": tree.record_vmins,
        "record_ids": tree.record_ids,
        "brick_node": tree.brick_node,
        "brick_vmax": tree.brick_vmax,
        "brick_min_vmin": tree.brick_min_vmin,
        "brick_start": tree.brick_start,
        "brick_count": tree.brick_count,
    }


def tree_from_arrays(arrays: "dict[str, np.ndarray]") -> CompactIntervalTree:
    """Rebuild a compact interval tree from :func:`tree_to_arrays` output."""
    tree = CompactIntervalTree()
    tree.endpoints = np.asarray(arrays["endpoints"])
    tree.record_order = np.asarray(arrays["record_order"], dtype=np.int64)
    tree.record_vmins = np.asarray(arrays["record_vmins"])
    tree.record_ids = np.asarray(arrays["record_ids"], dtype=np.uint32)
    tree.brick_node = np.asarray(arrays["brick_node"], dtype=np.int64)
    tree.brick_vmax = np.asarray(arrays["brick_vmax"])
    tree.brick_min_vmin = np.asarray(arrays["brick_min_vmin"])
    tree.brick_start = np.asarray(arrays["brick_start"], dtype=np.int64)
    tree.brick_count = np.asarray(arrays["brick_count"], dtype=np.int64)

    counts = np.asarray(arrays["node_brick_count"], dtype=np.int64)
    flat = np.asarray(arrays["node_brick_ids_flat"], dtype=np.int64)
    offsets = np.concatenate([[0], np.cumsum(counts)])
    for i in range(len(counts)):
        bids = flat[offsets[i] : offsets[i + 1]]
        tree.nodes.append(
            TreeNode(
                node_id=i,
                split=arrays["node_split"][i],
                lo_code=int(arrays["node_lo"][i]),
                hi_code=int(arrays["node_hi"][i]),
                left=int(arrays["node_left"][i]),
                right=int(arrays["node_right"][i]),
                entry_vmax=tree.brick_vmax[bids],
                entry_min_vmin=tree.brick_min_vmin[bids],
                entry_start=tree.brick_start[bids],
                entry_count=tree.brick_count[bids],
                brick_ids=bids,
            )
        )
    return tree


# ---------------------------------------------------------------------------
# Dataset directory
# ---------------------------------------------------------------------------


def _meta_to_json(dataset: IndexedDataset) -> dict:
    rep = dataset.report
    return {
        "format_version": FORMAT_VERSION,
        "base_offset": dataset.base_offset,
        "node_rank": dataset.node_rank,
        "n_cluster_nodes": dataset.n_cluster_nodes,
        "has_checksums": dataset.checksums is not None,
        "codec": {
            "metacell_shape": list(dataset.codec.metacell_shape),
            "scalar_dtype": dataset.codec.scalar_dtype.str,
        },
        "meta": {
            "grid_shape": list(dataset.meta.grid_shape),
            "metacell_shape": list(dataset.meta.metacell_shape),
            "volume_shape": list(dataset.meta.volume_shape),
            "spacing": list(dataset.meta.spacing),
            "origin": list(dataset.meta.origin),
            "name": dataset.meta.name,
        },
        "report": {
            "n_metacells_total": rep.n_metacells_total,
            "n_metacells_culled": rep.n_metacells_culled,
            "n_metacells_stored": rep.n_metacells_stored,
            "original_bytes": rep.original_bytes,
            "stored_bytes": rep.stored_bytes,
            "index_bytes": rep.index_bytes,
            "n_distinct_endpoints": rep.n_distinct_endpoints,
            "n_bricks": rep.n_bricks,
            "tree_height": rep.tree_height,
        },
    }


def save_dataset(dataset: IndexedDataset, directory: str | Path) -> Path:
    """Persist the index + metadata of a file-backed dataset.

    The dataset's device must be a :class:`FileBackedDevice` whose file
    already lives at ``directory / bricks.bin`` (build it that way), or
    any device — in which case only index/meta are written and the
    caller owns brick placement.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    arrays = tree_to_arrays(dataset.tree)
    if dataset.checksums is not None:
        arrays["record_crcs"] = dataset.checksums.record_crcs
        arrays["brick_crcs"] = dataset.checksums.brick_crcs
        if dataset.checksums.cum_crcs is not None:
            arrays["cum_crcs"] = dataset.checksums.cum_crcs
    np.savez_compressed(directory / INDEX_FILE, **arrays)
    (directory / META_FILE).write_text(json.dumps(_meta_to_json(dataset), indent=2))
    if isinstance(dataset.device, FileBackedDevice):
        dataset.device.flush()
    return directory


def load_dataset(
    directory: str | Path, cost_model: IOCostModel | None = None
) -> IndexedDataset:
    """Reopen a dataset directory produced by :func:`save_dataset` +
    a ``bricks.bin`` brick store."""
    directory = Path(directory)
    meta_path = directory / META_FILE
    if not meta_path.exists():
        raise MissingArtifactError(f"no {META_FILE} in {directory}")
    blob = json.loads(meta_path.read_text())
    if blob.get("format_version") not in SUPPORTED_FORMAT_VERSIONS:
        raise DatasetFormatError(
            f"dataset format {blob.get('format_version')} not in supported "
            f"{SUPPORTED_FORMAT_VERSIONS}"
        )
    index_path = directory / INDEX_FILE
    if not index_path.exists():
        raise MissingArtifactError(f"no {INDEX_FILE} in {directory}")
    with np.load(index_path) as npz:
        arrays = {k: npz[k] for k in npz.files}
    tree = tree_from_arrays(arrays)
    checksums = None
    if "record_crcs" in arrays and "brick_crcs" in arrays:
        cum = arrays.get("cum_crcs")
        if cum is not None and len(cum) != len(arrays["record_crcs"]) + 1:
            # Truncated or stale cumulative table (e.g. a v1->v2 store
            # whose npz was rewritten partially).  The cumulative CRCs
            # are a fast-path accelerator only — drop them and fall back
            # to per-record verification instead of refusing the load.
            cum = None
        checksums = BrickChecksums(
            record_crcs=arrays["record_crcs"],
            brick_crcs=arrays["brick_crcs"],
            cum_crcs=cum,
        )

    codec = MetacellCodec(
        tuple(blob["codec"]["metacell_shape"]),
        np.dtype(blob["codec"]["scalar_dtype"]),
    )
    meta = DatasetMeta(
        grid_shape=tuple(blob["meta"]["grid_shape"]),
        metacell_shape=tuple(blob["meta"]["metacell_shape"]),
        volume_shape=tuple(blob["meta"]["volume_shape"]),
        spacing=tuple(blob["meta"]["spacing"]),
        origin=tuple(blob["meta"]["origin"]),
        name=blob["meta"]["name"],
    )
    report = PreprocessReport(**blob["report"])
    bricks = directory / BRICKS_FILE
    if not bricks.exists():
        raise MissingArtifactError(f"no {BRICKS_FILE} in {directory}")
    device = FileBackedDevice(bricks, cost_model, create=False)
    expected = blob["base_offset"] + tree.n_records * codec.record_size
    if device.size < expected:
        raise IOError(
            f"brick store {bricks} holds {device.size} bytes, index expects "
            f">= {expected}: store truncated?"
        )
    return IndexedDataset(
        tree=tree,
        device=device,
        codec=codec,
        base_offset=blob["base_offset"],
        meta=meta,
        report=report,
        node_rank=blob["node_rank"],
        n_cluster_nodes=blob["n_cluster_nodes"],
        checksums=checksums,
        source_dir=str(directory),
    )


# ---------------------------------------------------------------------------
# Journaled, crash-consistent build
# ---------------------------------------------------------------------------


def _fsync_dir(directory: Path) -> None:
    """Make a rename durable by fsyncing its containing directory."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platforms without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs does not support dir fsync
        pass
    finally:
        os.close(fd)


def build_fingerprint(volume, metacell_shape, n_records, record_size) -> dict:
    """Identity of one exact build input.

    A journal (or a committed dataset) belongs to a resumable build only
    if its fingerprint matches — resuming over a half-built layout of
    *different* data would corrupt it silently, so mismatch means start
    over.
    """
    data = np.ascontiguousarray(volume.data)
    return {
        "volume_crc": zlib.crc32(data.tobytes()),
        "volume_shape": list(volume.shape),
        "dtype": str(volume.dtype),
        "metacell_shape": list(metacell_shape),
        "n_records": int(n_records),
        "record_size": int(record_size),
        "format_version": FORMAT_VERSION,
    }


def _verified_resume_point(
    data_path: Path, state, record_size: int
) -> "tuple[int, np.ndarray, np.ndarray]":
    """Re-verify journaled groups against actual file bytes.

    The journal *claims* ``records_done`` records are durable; the crash
    may have torn the tail (or a fault-injecting device may have torn a
    write the journal never learned about).  Walk the journaled groups
    in order, recomputing the cumulative CRC32 of the file's record
    stream, and stop at the first group whose claim the bytes do not
    honor.  Returns ``(records_verified, record_crcs, cum_crcs)`` for
    the verified prefix — the checksum tables of a resumed build are
    recomputed from disk, never trusted from the journal alone.
    """
    from repro.io.layout import compute_cum_crcs, compute_record_crcs

    verified = 0
    crcs_parts: "list[np.ndarray]" = []
    cum_parts: "list[np.ndarray]" = [np.zeros(1, dtype=np.uint32)]
    cum_val = 0
    try:
        file_size = data_path.stat().st_size
    except OSError:  # pragma: no cover - racing deletion
        file_size = 0
    with open(data_path, "rb") as fh:
        for group in state.groups:
            done = int(group["records_done"])
            if done <= verified:
                # A resumed run re-journals groups it rewrote; duplicate
                # or out-of-order claims are redundant, not terminal.
                continue
            if done * record_size > file_size:
                break
            fh.seek(verified * record_size)
            blob = fh.read((done - verified) * record_size)
            if len(blob) != (done - verified) * record_size:
                break  # pragma: no cover - size raced below stat
            cum = compute_cum_crcs(blob, record_size, initial=cum_val)
            if int(cum[-1]) != int(group["cum_crc"]):
                break
            crcs_parts.append(compute_record_crcs(blob, record_size))
            cum_parts.append(cum[1:].astype(np.uint32))
            cum_val = int(cum[-1])
            verified = done
    return (
        verified,
        np.concatenate(crcs_parts) if crcs_parts else np.empty(0, dtype=np.uint32),
        np.concatenate(cum_parts),
    )


def _clear_stale_build(directory: Path) -> None:
    """Remove every artifact of an abandoned or mismatched build.

    ``meta.json`` goes *first*: its presence is what marks a directory
    as a committed dataset, so removing it makes the directory invisible
    to readers before any other artifact is touched.
    """
    from repro.core.journal import JOURNAL_FILE

    for name in (
        META_FILE,
        JOURNAL_FILE,
        INDEX_FILE,
        BRICKS_FILE,
        BRICKS_PARTIAL_FILE,
        INDEX_TMP_FILE,
        META_TMP_FILE,
    ):
        try:
            (directory / name).unlink()
        except FileNotFoundError:
            pass


def build_persistent_dataset(
    volume,
    directory: str | Path,
    metacell_shape: tuple[int, int, int] = (9, 9, 9),
    cost_model: IOCostModel | None = None,
    *,
    group_records: "int | None" = None,
    resume: bool = True,
    crash=None,
    wrap_device=None,
    verify_writes: bool = True,
) -> IndexedDataset:
    """Preprocess straight into a self-describing dataset directory —
    crash-consistently.

    The build is journaled and committed atomically: record groups go to
    ``bricks.bin.partial`` (fsync'd, then logged in ``build.journal``),
    and the final artifacts appear under their real names only via
    ``os.replace``.  At *any* kill point the directory is either (a) a
    committed, fsck-clean dataset, or (b) an in-progress build that a
    rerun with ``resume=True`` (the default) finishes — producing
    artifacts byte-identical to an uninterrupted build.

    Parameters
    ----------
    group_records:
        Records per journaled group (default
        :data:`repro.core.builder.WRITE_CHUNK_RECORDS`).  Smaller groups
        mean finer-grained resume at the cost of more fsyncs.
    resume:
        When True, continue an interrupted build of the *same* input
        (fingerprint-matched) from its last verified journaled group;
        when False, always start over.
    crash:
        A :class:`repro.io.faults.CrashSchedule` for kill-point
        injection (testing); ``None`` injects nothing.
    verify_writes:
        When True (default) every group is read back and CRC-compared
        before its journal entry is written, so a torn write the device
        silently absorbed is rewritten instead of being journaled as
        durable.  The read-back is unmetered (no modeled-cost change).
    wrap_device:
        Optional callable wrapping the staging
        :class:`~repro.io.diskfile.FileBackedDevice` (e.g. in a
        :class:`~repro.io.faults.FaultInjectingDevice` with torn
        writes).  The wrapper must pass through ``allocate`` / ``write``
        / ``fsync`` / ``close``.
    """
    from repro.core.builder import (
        WRITE_CHUNK_RECORDS,
        _make_meta,
        _make_report,
    )
    from repro.core.compact_tree import CompactIntervalTree
    from repro.core.intervals import IntervalSet
    from repro.core.journal import BuildJournal
    from repro.grid.metacell import partition_metacells
    from repro.io.faults import NULL_CRASH_SCHEDULE
    from repro.io.layout import compute_cum_crcs, compute_record_crcs

    crash = crash if crash is not None else NULL_CRASH_SCHEDULE
    group = int(group_records or WRITE_CHUNK_RECORDS)
    if group < 1:
        raise ValueError(f"group_records must be >= 1, got {group}")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    bricks = directory / BRICKS_FILE
    partial = directory / BRICKS_PARTIAL_FILE
    index_tmp = directory / INDEX_TMP_FILE
    meta_tmp = directory / META_TMP_FILE

    # The index build is pure, deterministic compute — rerunning it on
    # resume reproduces the exact record order the interrupted run used.
    partition = partition_metacells(volume, metacell_shape)
    intervals = IntervalSet.from_partition(partition, drop_constant=True)
    tree = CompactIntervalTree.build(intervals)
    codec = MetacellCodec(partition.metacell_shape, volume.dtype)
    n = tree.n_records
    rec = codec.record_size
    fingerprint = build_fingerprint(volume, partition.metacell_shape, n, rec)

    state = BuildJournal.read_state(directory)
    committed = (directory / META_FILE).exists()

    if committed and (state is None or state.committed):
        # A published dataset with no (live) journal: the previous build
        # finished.  A leftover committed journal just missed its unlink.
        if state is not None:
            BuildJournal(directory).unlink()
        if resume:
            try:
                blob = json.loads((directory / META_FILE).read_text())
            except (OSError, json.JSONDecodeError):
                blob = {}
            if blob.get("build_fingerprint") == fingerprint:
                return load_dataset(directory, cost_model)
        _clear_stale_build(directory)
        state = None

    verified = 0
    crcs = np.empty(n, dtype=np.uint32)
    cum = np.empty(n + 1, dtype=np.uint32)
    cum[0] = 0
    journal = BuildJournal(directory)
    skip_record_writes = False

    if state is not None and not state.committed:
        resumable = (
            resume
            and state.fingerprint == fingerprint
            and state.record_size == rec
            and state.n_records == n
        )
        if resumable and not partial.exists() and bricks.exists():
            # Crash landed between the bricks rename and the meta
            # commit.  The journal must account for every record; then
            # the store is complete and only index/meta publication is
            # left to redo.
            v, rcrcs, rcum = _verified_resume_point(bricks, state, rec)
            if v == n:
                verified = n
                crcs[:] = rcrcs
                cum[:] = rcum
                skip_record_writes = True
            else:
                resumable = False
        elif resumable and partial.exists():
            v, rcrcs, rcum = _verified_resume_point(partial, state, rec)
            verified = v
            crcs[:v] = rcrcs
            cum[: v + 1] = rcum
        elif resumable:
            # Journal began but no store survived: start records over
            # while keeping the (matching) journal history appendable.
            verified = 0
        if not resumable:
            _clear_stale_build(directory)
            state = None
            verified = 0
            cum[0] = 0
    elif state is None and not committed:
        # No journal: any bricks/partial here are of unknown provenance.
        _clear_stale_build(directory)

    if state is None:
        journal.begin(fingerprint, n, rec, group)
        crash.point("begin_journaled")
    else:
        journal.note("resume")

    if not skip_record_writes:
        raw = FileBackedDevice(partial, cost_model, create=(verified == 0))
        if raw.size < n * rec:
            raw.allocate(n * rec - raw.size)
        elif raw.size > n * rec:  # pragma: no cover - over-long stale partial
            raw.truncate(n * rec)
        device = wrap_device(raw) if wrap_device is not None else raw
        ids, vmins = tree.record_ids, tree.record_vmins
        for g, s in enumerate(range(0, n, group)):
            e = min(s + group, n)
            if e <= verified:
                continue
            values = partition.extract_values(ids[s:e])
            blob = codec.encode(ids[s:e], vmins[s:e], values)
            device.write(s * rec, blob)
            crcs[s:e] = compute_record_crcs(blob, rec)
            cum[s + 1 : e + 1] = compute_cum_crcs(blob, rec, initial=int(cum[s]))[1:]
            crash.point(f"group_written:{g}")
            device.fsync()
            crash.point(f"group_flushed:{g}")
            if verify_writes:
                intended = zlib.crc32(blob)
                for _attempt in range(8):
                    if zlib.crc32(raw.peek(s * rec, len(blob))) == intended:
                        break
                    # Torn/absorbed write: rewrite the whole group
                    # (through the same, possibly faulty, device).
                    device.write(s * rec, blob)
                    device.fsync()
                else:
                    from repro.io.faults import TornWriteError

                    raise TornWriteError(
                        f"group {g} failed read-back verification 8 times"
                    )
            journal.group(g, e, int(cum[e]))
            crash.point(f"group_journaled:{g}")
        device.fsync()
        device.close()
        crash.point("store_closed")
        os.replace(partial, bricks)
        _fsync_dir(directory)
        crash.point("bricks_renamed")

    final_device = FileBackedDevice(bricks, cost_model, create=False)
    dataset = IndexedDataset(
        tree=tree,
        device=final_device,
        codec=codec,
        base_offset=0,
        meta=_make_meta(volume, partition),
        report=_make_report(partition, intervals, tree, codec),
        checksums=BrickChecksums.from_record_crcs(
            crcs, tree.brick_start, tree.brick_count, cum_crcs=cum
        ),
        source_dir=str(directory),
    )

    arrays = tree_to_arrays(tree)
    arrays["record_crcs"] = dataset.checksums.record_crcs
    arrays["brick_crcs"] = dataset.checksums.brick_crcs
    arrays["cum_crcs"] = dataset.checksums.cum_crcs
    with open(index_tmp, "wb") as fh:
        np.savez_compressed(fh, **arrays)
        fh.flush()
        os.fsync(fh.fileno())
    crash.point("index_tmp_written")
    os.replace(index_tmp, directory / INDEX_FILE)
    _fsync_dir(directory)
    crash.point("index_renamed")

    meta_blob = _meta_to_json(dataset)
    meta_blob["build_fingerprint"] = fingerprint
    with open(meta_tmp, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(meta_blob, indent=2))
        fh.flush()
        os.fsync(fh.fileno())
    crash.point("meta_tmp_written")
    os.replace(meta_tmp, directory / META_FILE)
    _fsync_dir(directory)
    crash.point("meta_renamed")

    journal.commit()
    crash.point("journal_committed")
    journal.unlink()
    return dataset
