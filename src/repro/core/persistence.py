"""Index persistence: save and reload preprocessed datasets.

The whole point of out-of-core preprocessing is to pay it once; this
module persists everything a later session needs next to the brick
store:

* the compact interval tree (all arrays + node structure) as ``.npz``;
* the dataset metadata (grid geometry, codec parameters, preprocessing
  report, base offset) as JSON.

``save_dataset`` / ``load_dataset`` pair with
:class:`repro.io.diskfile.FileBackedDevice` so a dataset directory is
fully self-describing::

    dataset_dir/
      bricks.bin     the brick layout (written during preprocessing)
      index.npz      the compact interval tree
      meta.json      codec + grid metadata + report

Only the index and metadata are (de)serialized here — the brick store is
already on disk, which is the point.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.builder import DatasetMeta, IndexedDataset, PreprocessReport
from repro.core.compact_tree import CompactIntervalTree, TreeNode
from repro.io.cost_model import IOCostModel
from repro.io.diskfile import FileBackedDevice
from repro.io.layout import BrickChecksums, MetacellCodec

#: Format version for forward-compatibility checks.  Version 2 added the
#: CRC32 checksum tables (``record_crcs`` / ``brick_crcs`` in the index
#: npz); version-1 stores load fine with ``checksums=None``.
FORMAT_VERSION = 2

#: Versions :func:`load_dataset` can read.
SUPPORTED_FORMAT_VERSIONS = (1, 2)

BRICKS_FILE = "bricks.bin"
INDEX_FILE = "index.npz"
META_FILE = "meta.json"


# ---------------------------------------------------------------------------
# Tree <-> arrays
# ---------------------------------------------------------------------------


def tree_to_arrays(tree: CompactIntervalTree) -> "dict[str, np.ndarray]":
    """Flatten a compact interval tree into named arrays (npz-friendly)."""
    n_nodes = tree.n_nodes
    split = np.asarray([nd.split for nd in tree.nodes])
    lo = np.asarray([nd.lo_code for nd in tree.nodes], dtype=np.int64)
    hi = np.asarray([nd.hi_code for nd in tree.nodes], dtype=np.int64)
    left = np.asarray([nd.left for nd in tree.nodes], dtype=np.int64)
    right = np.asarray([nd.right for nd in tree.nodes], dtype=np.int64)
    # Per-node brick-id ranges into the flat brick table: node entries are
    # contiguous slices of brick ids by construction, but striped local
    # trees renumber them, so store the explicit id lists flattened.
    brick_ids_flat = (
        np.concatenate([nd.brick_ids for nd in tree.nodes])
        if n_nodes
        else np.empty(0, dtype=np.int64)
    )
    brick_ids_count = np.asarray([nd.n_bricks for nd in tree.nodes], dtype=np.int64)
    return {
        "endpoints": tree.endpoints,
        "node_split": split,
        "node_lo": lo,
        "node_hi": hi,
        "node_left": left,
        "node_right": right,
        "node_brick_ids_flat": brick_ids_flat,
        "node_brick_count": brick_ids_count,
        "record_order": tree.record_order,
        "record_vmins": tree.record_vmins,
        "record_ids": tree.record_ids,
        "brick_node": tree.brick_node,
        "brick_vmax": tree.brick_vmax,
        "brick_min_vmin": tree.brick_min_vmin,
        "brick_start": tree.brick_start,
        "brick_count": tree.brick_count,
    }


def tree_from_arrays(arrays: "dict[str, np.ndarray]") -> CompactIntervalTree:
    """Rebuild a compact interval tree from :func:`tree_to_arrays` output."""
    tree = CompactIntervalTree()
    tree.endpoints = np.asarray(arrays["endpoints"])
    tree.record_order = np.asarray(arrays["record_order"], dtype=np.int64)
    tree.record_vmins = np.asarray(arrays["record_vmins"])
    tree.record_ids = np.asarray(arrays["record_ids"], dtype=np.uint32)
    tree.brick_node = np.asarray(arrays["brick_node"], dtype=np.int64)
    tree.brick_vmax = np.asarray(arrays["brick_vmax"])
    tree.brick_min_vmin = np.asarray(arrays["brick_min_vmin"])
    tree.brick_start = np.asarray(arrays["brick_start"], dtype=np.int64)
    tree.brick_count = np.asarray(arrays["brick_count"], dtype=np.int64)

    counts = np.asarray(arrays["node_brick_count"], dtype=np.int64)
    flat = np.asarray(arrays["node_brick_ids_flat"], dtype=np.int64)
    offsets = np.concatenate([[0], np.cumsum(counts)])
    for i in range(len(counts)):
        bids = flat[offsets[i] : offsets[i + 1]]
        tree.nodes.append(
            TreeNode(
                node_id=i,
                split=arrays["node_split"][i],
                lo_code=int(arrays["node_lo"][i]),
                hi_code=int(arrays["node_hi"][i]),
                left=int(arrays["node_left"][i]),
                right=int(arrays["node_right"][i]),
                entry_vmax=tree.brick_vmax[bids],
                entry_min_vmin=tree.brick_min_vmin[bids],
                entry_start=tree.brick_start[bids],
                entry_count=tree.brick_count[bids],
                brick_ids=bids,
            )
        )
    return tree


# ---------------------------------------------------------------------------
# Dataset directory
# ---------------------------------------------------------------------------


def _meta_to_json(dataset: IndexedDataset) -> dict:
    rep = dataset.report
    return {
        "format_version": FORMAT_VERSION,
        "base_offset": dataset.base_offset,
        "node_rank": dataset.node_rank,
        "n_cluster_nodes": dataset.n_cluster_nodes,
        "has_checksums": dataset.checksums is not None,
        "codec": {
            "metacell_shape": list(dataset.codec.metacell_shape),
            "scalar_dtype": dataset.codec.scalar_dtype.str,
        },
        "meta": {
            "grid_shape": list(dataset.meta.grid_shape),
            "metacell_shape": list(dataset.meta.metacell_shape),
            "volume_shape": list(dataset.meta.volume_shape),
            "spacing": list(dataset.meta.spacing),
            "origin": list(dataset.meta.origin),
            "name": dataset.meta.name,
        },
        "report": {
            "n_metacells_total": rep.n_metacells_total,
            "n_metacells_culled": rep.n_metacells_culled,
            "n_metacells_stored": rep.n_metacells_stored,
            "original_bytes": rep.original_bytes,
            "stored_bytes": rep.stored_bytes,
            "index_bytes": rep.index_bytes,
            "n_distinct_endpoints": rep.n_distinct_endpoints,
            "n_bricks": rep.n_bricks,
            "tree_height": rep.tree_height,
        },
    }


def save_dataset(dataset: IndexedDataset, directory: str | Path) -> Path:
    """Persist the index + metadata of a file-backed dataset.

    The dataset's device must be a :class:`FileBackedDevice` whose file
    already lives at ``directory / bricks.bin`` (build it that way), or
    any device — in which case only index/meta are written and the
    caller owns brick placement.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    arrays = tree_to_arrays(dataset.tree)
    if dataset.checksums is not None:
        arrays["record_crcs"] = dataset.checksums.record_crcs
        arrays["brick_crcs"] = dataset.checksums.brick_crcs
        if dataset.checksums.cum_crcs is not None:
            arrays["cum_crcs"] = dataset.checksums.cum_crcs
    np.savez_compressed(directory / INDEX_FILE, **arrays)
    (directory / META_FILE).write_text(json.dumps(_meta_to_json(dataset), indent=2))
    if isinstance(dataset.device, FileBackedDevice):
        dataset.device.flush()
    return directory


def load_dataset(
    directory: str | Path, cost_model: IOCostModel | None = None
) -> IndexedDataset:
    """Reopen a dataset directory produced by :func:`save_dataset` +
    a ``bricks.bin`` brick store."""
    directory = Path(directory)
    meta_path = directory / META_FILE
    if not meta_path.exists():
        raise FileNotFoundError(f"no {META_FILE} in {directory}")
    blob = json.loads(meta_path.read_text())
    if blob.get("format_version") not in SUPPORTED_FORMAT_VERSIONS:
        raise ValueError(
            f"dataset format {blob.get('format_version')} not in supported "
            f"{SUPPORTED_FORMAT_VERSIONS}"
        )
    with np.load(directory / INDEX_FILE) as npz:
        arrays = {k: npz[k] for k in npz.files}
    tree = tree_from_arrays(arrays)
    checksums = None
    if "record_crcs" in arrays and "brick_crcs" in arrays:
        checksums = BrickChecksums(
            record_crcs=arrays["record_crcs"],
            brick_crcs=arrays["brick_crcs"],
            cum_crcs=arrays.get("cum_crcs"),
        )

    codec = MetacellCodec(
        tuple(blob["codec"]["metacell_shape"]),
        np.dtype(blob["codec"]["scalar_dtype"]),
    )
    meta = DatasetMeta(
        grid_shape=tuple(blob["meta"]["grid_shape"]),
        metacell_shape=tuple(blob["meta"]["metacell_shape"]),
        volume_shape=tuple(blob["meta"]["volume_shape"]),
        spacing=tuple(blob["meta"]["spacing"]),
        origin=tuple(blob["meta"]["origin"]),
        name=blob["meta"]["name"],
    )
    report = PreprocessReport(**blob["report"])
    bricks = directory / BRICKS_FILE
    if not bricks.exists():
        raise FileNotFoundError(f"no {BRICKS_FILE} in {directory}")
    device = FileBackedDevice(bricks, cost_model, create=False)
    expected = blob["base_offset"] + tree.n_records * codec.record_size
    if device.size < expected:
        raise IOError(
            f"brick store {bricks} holds {device.size} bytes, index expects "
            f">= {expected}: store truncated?"
        )
    return IndexedDataset(
        tree=tree,
        device=device,
        codec=codec,
        base_offset=blob["base_offset"],
        meta=meta,
        report=report,
        node_rank=blob["node_rank"],
        n_cluster_nodes=blob["n_cluster_nodes"],
        checksums=checksums,
        source_dir=str(directory),
    )


def build_persistent_dataset(
    volume,
    directory: str | Path,
    metacell_shape: tuple[int, int, int] = (9, 9, 9),
    cost_model: IOCostModel | None = None,
) -> IndexedDataset:
    """Preprocess straight into a self-describing dataset directory."""
    from repro.core.builder import build_indexed_dataset

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    device = FileBackedDevice(directory / BRICKS_FILE, cost_model)
    dataset = build_indexed_dataset(volume, metacell_shape, device=device)
    dataset.source_dir = str(directory)
    save_dataset(dataset, directory)
    return dataset
