"""Multi-isovalue batch queries and region-of-interest extraction.

Two exploration-oriented extensions of the single-isovalue query:

* :func:`execute_multi_query` answers several isovalues in one disk
  pass: the per-isovalue plans are unioned into non-overlapping record
  ranges, read once, and each isovalue's active subset is carved out in
  memory.  For nearby isovalues (the interactive slider case) the plans
  overlap heavily and the shared read pays for itself many times over.

* :func:`extract_region_of_interest` restricts an extraction to a
  world-space axis-aligned box.  The span-space layout cannot skip the
  I/O for out-of-box metacells (it orders records by value, not space),
  but the triangulation — the pipeline's bottleneck — only runs on the
  metacells whose bounds intersect the box.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.builder import IndexedDataset
from repro.core.compact_tree import BrickPrefixScan, SequentialRun
from repro.core.query import QueryResult, execute_query
from repro.io.blockdevice import IOStats
from repro.io.layout import MetacellRecords
from repro.mc.geometry import TriangleMesh
from repro.mc.marching_cubes import marching_cubes_batch


def _merge_ranges(ranges: "list[tuple[int, int]]") -> "list[tuple[int, int]]":
    """Union of half-open integer ranges, sorted and coalesced."""
    if not ranges:
        return []
    ranges = sorted(ranges)
    out = [ranges[0]]
    for a, b in ranges[1:]:
        la, lb = out[-1]
        if a <= lb:
            out[-1] = (la, max(lb, b))
        else:
            out.append((a, b))
    return out


@dataclass
class MultiQueryResult:
    """Shared-read answer for several isovalues."""

    lams: "list[float]"
    results: "dict[float, MetacellRecords]"
    io_stats: IOStats
    n_records_read: int

    def records_for(self, lam: float) -> MetacellRecords:
        """The active records of one of the batched isovalues."""
        return self.results[float(lam)]


def execute_multi_query(dataset: IndexedDataset, lams) -> MultiQueryResult:
    """Answer all ``lams`` with one pass over the union of their plans.

    Equivalent to running :func:`~repro.core.query.execute_query` per
    isovalue (asserted by tests) but reading every shared record once.
    """
    lams = [float(l) for l in lams]
    if not lams:
        raise ValueError("need at least one isovalue")
    tree = dataset.tree
    per_lam_ranges = {lam: tree.active_record_ranges(lam) for lam in lams}
    union = _merge_ranges([r for rs in per_lam_ranges.values() for r in rs])

    codec = dataset.codec
    rec = codec.record_size
    device = dataset.device
    before = device.stats.copy()
    chunks: dict[int, MetacellRecords] = {}
    n_read = 0
    for a, b in union:
        buf = device.read(dataset.record_offset(a), (b - a) * rec)
        chunks[a] = codec.decode(buf)
        n_read += b - a
    io = device.stats.copy() - before

    union_starts = [a for a, _ in union]
    results: dict[float, MetacellRecords] = {}
    for lam in lams:
        picks = []
        for a, b in per_lam_ranges[lam]:
            # Locate the union chunk containing [a, b).
            j = int(np.searchsorted(union_starts, a, side="right")) - 1
            ua, _ = union[j]
            batch = chunks[ua]
            picks.append(
                MetacellRecords(
                    ids=batch.ids[a - ua : b - ua],
                    vmins=batch.vmins[a - ua : b - ua],
                    values=batch.values[a - ua : b - ua],
                )
            )
        results[lam] = (
            MetacellRecords.concat(picks) if picks else MetacellRecords.empty(codec)
        )
    return MultiQueryResult(
        lams=lams, results=results, io_stats=io, n_records_read=n_read
    )


@dataclass
class ROIResult:
    """Region-of-interest extraction outcome."""

    lam: float
    box_lo: np.ndarray
    box_hi: np.ndarray
    mesh: TriangleMesh
    n_active_total: int
    n_active_in_box: int
    query: QueryResult


def extract_region_of_interest(
    dataset: IndexedDataset, lam: float, box_lo, box_hi
) -> ROIResult:
    """Extract only the part of the isosurface inside a world-space box.

    ``box_lo``/``box_hi`` are world coordinates.  Metacells whose bounds
    do not intersect the box are discarded *before* triangulation; the
    emitted triangles are those of the intersecting metacells (so the
    surface may extend slightly past the box, by at most one metacell).
    """
    box_lo = np.asarray(box_lo, dtype=np.float64)
    box_hi = np.asarray(box_hi, dtype=np.float64)
    if np.any(box_lo > box_hi):
        raise ValueError(f"empty box: lo {box_lo} > hi {box_hi}")
    qr = execute_query(dataset, lam)
    meta = dataset.meta
    if qr.n_active == 0:
        return ROIResult(
            lam=float(lam), box_lo=box_lo, box_hi=box_hi, mesh=TriangleMesh(),
            n_active_total=0, n_active_in_box=0, query=qr,
        )
    origins = meta.vertex_origins(qr.records.ids).astype(np.float64)
    spacing = np.asarray(meta.spacing, dtype=np.float64)
    world_origin = np.asarray(meta.origin, dtype=np.float64)
    mc_lo = origins * spacing + world_origin
    extent = (np.asarray(meta.metacell_shape, dtype=np.float64) - 1) * spacing
    mc_hi = mc_lo + extent
    inside = np.all(mc_hi >= box_lo, axis=1) & np.all(mc_lo <= box_hi, axis=1)

    picked = np.flatnonzero(inside)
    if len(picked):
        mesh = marching_cubes_batch(
            dataset.codec.values_grid(qr.records)[picked],
            lam,
            meta.vertex_origins(qr.records.ids[picked]),
            spacing=meta.spacing,
            world_origin=meta.origin,
        )
    else:
        mesh = TriangleMesh()
    return ROIResult(
        lam=float(lam), box_lo=box_lo, box_hi=box_hi, mesh=mesh,
        n_active_total=qr.n_active, n_active_in_box=int(inside.sum()), query=qr,
    )
