"""Multi-isovalue batch queries and region-of-interest extraction.

Two exploration-oriented extensions of the single-isovalue query:

* :func:`execute_multi_query` answers several isovalues in one disk
  pass: the per-isovalue plans are unioned into non-overlapping record
  ranges, read once, and each isovalue's active subset is carved out in
  memory.  For nearby isovalues (the interactive slider case) the plans
  overlap heavily and the shared read pays for itself many times over.

* :func:`extract_region_of_interest` restricts an extraction to a
  world-space axis-aligned box.  The span-space layout cannot skip the
  I/O for out-of-box metacells (it orders records by value, not space),
  but the triangulation — the pipeline's bottleneck — only runs on the
  metacells whose bounds intersect the box.

* :func:`execute_sweep_query` serves an *ordered parameter sweep* (the
  λ-slider, a Zipf-hot serving mix, a batch render of nearby frames)
  incrementally: each isovalue's plan is diffed against the ranges
  already materialised by earlier isovalues and only the **delta** is
  read from disk.  Where :func:`execute_multi_query` needs the whole
  batch up front to union the plans, the sweep planner streams — the
  first answer costs one cold query, every later answer costs only its
  delta.  Per-isovalue answers are bit-identical to
  :func:`~repro.core.query.execute_query` either way.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.builder import IndexedDataset
from repro.core.compact_tree import BrickPrefixScan, SequentialRun
from repro.core.query import QueryResult, execute_query
from repro.io.blockdevice import IOStats
from repro.io.layout import MetacellRecords
from repro.mc.geometry import TriangleMesh
from repro.mc.marching_cubes import marching_cubes_batch


def _merge_ranges(ranges: "list[tuple[int, int]]") -> "list[tuple[int, int]]":
    """Union of half-open integer ranges, sorted and coalesced."""
    if not ranges:
        return []
    ranges = sorted(ranges)
    out = [ranges[0]]
    for a, b in ranges[1:]:
        la, lb = out[-1]
        if a <= lb:
            out[-1] = (la, max(lb, b))
        else:
            out.append((a, b))
    return out


@dataclass
class MultiQueryResult:
    """Shared-read answer for several isovalues."""

    lams: "list[float]"
    results: "dict[float, MetacellRecords]"
    io_stats: IOStats
    n_records_read: int

    def records_for(self, lam: float) -> MetacellRecords:
        """The active records of one of the batched isovalues."""
        return self.results[float(lam)]


def execute_multi_query(dataset: IndexedDataset, lams) -> MultiQueryResult:
    """Answer all ``lams`` with one pass over the union of their plans.

    Equivalent to running :func:`~repro.core.query.execute_query` per
    isovalue (asserted by tests) but reading every shared record once.
    """
    lams = [float(l) for l in lams]
    if not lams:
        raise ValueError("need at least one isovalue")
    tree = dataset.tree
    per_lam_ranges = {lam: tree.active_record_ranges(lam) for lam in lams}
    union = _merge_ranges([r for rs in per_lam_ranges.values() for r in rs])

    codec = dataset.codec
    rec = codec.record_size
    device = dataset.device
    before = device.stats.copy()
    chunks: dict[int, MetacellRecords] = {}
    n_read = 0
    for a, b in union:
        buf = device.read(dataset.record_offset(a), (b - a) * rec)
        chunks[a] = codec.decode(buf)
        n_read += b - a
    io = device.stats.copy() - before

    union_starts = [a for a, _ in union]
    results: dict[float, MetacellRecords] = {}
    for lam in lams:
        picks = []
        for a, b in per_lam_ranges[lam]:
            # Locate the union chunk containing [a, b).
            j = int(np.searchsorted(union_starts, a, side="right")) - 1
            ua, _ = union[j]
            batch = chunks[ua]
            picks.append(
                MetacellRecords(
                    ids=batch.ids[a - ua : b - ua],
                    vmins=batch.vmins[a - ua : b - ua],
                    values=batch.values[a - ua : b - ua],
                )
            )
        results[lam] = (
            MetacellRecords.concat(picks) if picks else MetacellRecords.empty(codec)
        )
    return MultiQueryResult(
        lams=lams, results=results, io_stats=io, n_records_read=n_read
    )


def _subtract_ranges(
    ranges: "list[tuple[int, int]]", coverage: "list[tuple[int, int]]"
) -> "list[tuple[int, int]]":
    """Parts of ``ranges`` not covered by the (merged, sorted) ``coverage``."""
    out: "list[tuple[int, int]]" = []
    starts = [a for a, _ in coverage]
    for a, b in ranges:
        pos = a
        # First coverage interval that could overlap [a, b).
        j = max(0, int(np.searchsorted(starts, a, side="right")) - 1)
        while pos < b and j < len(coverage):
            ca, cb = coverage[j]
            if cb <= pos:
                j += 1
                continue
            if ca >= b:
                break
            if ca > pos:
                out.append((pos, min(ca, b)))
            pos = max(pos, cb)
            j += 1
        if pos < b:
            out.append((pos, b))
    return out


@dataclass
class SweepStep:
    """One isovalue's answer within a sweep, plus its marginal cost."""

    lam: float
    records: MetacellRecords
    n_active: int
    n_delta_records: int  #: records read from disk *for this step*
    n_reused_records: int  #: records served from earlier steps' reads


@dataclass
class SweepQueryResult:
    """Incremental delta-read answer for an isovalue sweep."""

    steps: "list[SweepStep]"
    io_stats: IOStats
    n_records_read: int  #: total records that touched the disk (once each)
    n_records_served: int  #: sum of per-step active counts (with reuse)

    def records_for(self, lam: float) -> MetacellRecords:
        """The active records of one of the swept isovalues (first
        occurrence, for sweeps that revisit a value)."""
        lam = float(lam)
        for s in self.steps:
            if s.lam == lam:
                return s.records
        raise KeyError(f"isovalue {lam} was not part of the sweep")

    @property
    def reuse_fraction(self) -> float:
        """Fraction of served records that never touched the disk."""
        if self.n_records_served == 0:
            return 0.0
        return 1.0 - self.n_records_read / max(self.n_records_served, 1)


def execute_sweep_query(dataset: IndexedDataset, lams) -> SweepQueryResult:
    """Answer ``lams`` in the given order, reading only each plan's delta.

    The planner keeps the union of record ranges materialised so far;
    each isovalue's :meth:`~repro.core.compact_tree.CompactIntervalTree.
    active_record_ranges` plan is diffed against that coverage and only
    the uncovered sub-ranges are read (Case-1 nesting makes the deltas
    of nearby isovalues tiny).  Every step's records are bit-identical
    to a standalone :func:`~repro.core.query.execute_query` — asserted
    by ``tests/test_result_cache.py``.

    Sweep order is preserved: the interactive slider sweeps in user
    order, not sorted order, and reuse works either way.
    """
    lams = [float(l) for l in lams]
    if not lams:
        raise ValueError("need at least one isovalue")
    tree = dataset.tree
    codec = dataset.codec
    rec = codec.record_size
    device = dataset.device
    before = device.stats.copy()

    coverage: "list[tuple[int, int]]" = []  # merged ranges read so far
    chunks: "list[tuple[int, int, MetacellRecords]]" = []  # sorted, disjoint
    chunk_starts: "list[int]" = []
    steps: "list[SweepStep]" = []
    n_read = 0
    n_served = 0

    def carve(a: int, b: int) -> "list[MetacellRecords]":
        """Slice [a, b) out of the materialised chunks (coverage ⊇ [a, b))."""
        picks = []
        j = max(0, int(np.searchsorted(np.asarray(chunk_starts), a,
                                       side="right")) - 1)
        pos = a
        while pos < b:
            ca, cb, batch = chunks[j]
            if cb <= pos:
                j += 1
                continue
            lo, hi = max(pos, ca), min(b, cb)
            picks.append(
                MetacellRecords(
                    ids=batch.ids[lo - ca : hi - ca],
                    vmins=batch.vmins[lo - ca : hi - ca],
                    values=batch.values[lo - ca : hi - ca],
                )
            )
            pos = hi
            j += 1
        return picks

    for lam in lams:
        ranges = tree.active_record_ranges(lam)
        deltas = _subtract_ranges(ranges, coverage)
        for a, b in deltas:
            buf = device.read(dataset.record_offset(a), (b - a) * rec)
            idx = int(np.searchsorted(np.asarray(chunk_starts, dtype=np.int64), a)) \
                if chunk_starts else 0
            chunks.insert(idx, (a, b, codec.decode(buf)))
            chunk_starts.insert(idx, a)
            n_read += b - a
        coverage = _merge_ranges(coverage + deltas)
        picks = []
        for a, b in ranges:
            picks.extend(carve(a, b))
        records = (
            MetacellRecords.concat(picks) if picks else MetacellRecords.empty(codec)
        )
        n_active = len(records.ids)
        n_delta = sum(b - a for a, b in deltas)
        n_served += n_active
        steps.append(SweepStep(
            lam=lam, records=records, n_active=n_active,
            n_delta_records=n_delta,
            n_reused_records=n_active - n_delta,
        ))

    io = device.stats.copy() - before
    return SweepQueryResult(
        steps=steps, io_stats=io, n_records_read=n_read,
        n_records_served=n_served,
    )


@dataclass
class ROIResult:
    """Region-of-interest extraction outcome."""

    lam: float
    box_lo: np.ndarray
    box_hi: np.ndarray
    mesh: TriangleMesh
    n_active_total: int
    n_active_in_box: int
    query: QueryResult


def extract_region_of_interest(
    dataset: IndexedDataset, lam: float, box_lo, box_hi
) -> ROIResult:
    """Extract only the part of the isosurface inside a world-space box.

    ``box_lo``/``box_hi`` are world coordinates.  Metacells whose bounds
    do not intersect the box are discarded *before* triangulation; the
    emitted triangles are those of the intersecting metacells (so the
    surface may extend slightly past the box, by at most one metacell).
    """
    box_lo = np.asarray(box_lo, dtype=np.float64)
    box_hi = np.asarray(box_hi, dtype=np.float64)
    if np.any(box_lo > box_hi):
        raise ValueError(f"empty box: lo {box_lo} > hi {box_hi}")
    qr = execute_query(dataset, lam)
    meta = dataset.meta
    if qr.n_active == 0:
        return ROIResult(
            lam=float(lam), box_lo=box_lo, box_hi=box_hi, mesh=TriangleMesh(),
            n_active_total=0, n_active_in_box=0, query=qr,
        )
    origins = meta.vertex_origins(qr.records.ids).astype(np.float64)
    spacing = np.asarray(meta.spacing, dtype=np.float64)
    world_origin = np.asarray(meta.origin, dtype=np.float64)
    mc_lo = origins * spacing + world_origin
    extent = (np.asarray(meta.metacell_shape, dtype=np.float64) - 1) * spacing
    mc_hi = mc_lo + extent
    inside = np.all(mc_hi >= box_lo, axis=1) & np.all(mc_lo <= box_hi, axis=1)

    picked = np.flatnonzero(inside)
    if len(picked):
        mesh = marching_cubes_batch(
            dataset.codec.values_grid(qr.records)[picked],
            lam,
            meta.vertex_origins(qr.records.ids[picked]),
            spacing=meta.spacing,
            world_origin=meta.origin,
        )
    else:
        mesh = TriangleMesh()
    return ROIResult(
        lam=float(lam), box_lo=box_lo, box_hi=box_hi, mesh=mesh,
        n_active_total=qr.n_active, n_active_in_box=int(inside.sum()), query=qr,
    )
