"""Core contribution of the paper: the compact interval tree index.

Modules
-------
``intervals``
    :class:`IntervalSet` — the (vmin, vmax) intervals of the metacells,
    with brute-force stabbing queries used as the correctness oracle.
``span_space``
    Span-space statistics and the recursive square partition of Figure 1.
``compact_tree``
    :class:`CompactIntervalTree` — the O(n log n) index of Section 4 with
    the Case 1 / Case 2 query planner of Section 5.
``builder``
    The preprocessing pipeline: volume -> metacells -> culling -> tree ->
    on-disk brick layout (single node or striped across p nodes).
``query``
    Execution of query plans against block devices, with honest
    block-granular incremental brick reads.
``striping``
    Round-robin striping of brick records across p disks (Section 5.1)
    and its provable balance bound.
``timevarying``
    Per-time-step indexing of time-varying data (Section 5.2).
"""

from repro.core.intervals import IntervalSet
from repro.core.compact_tree import CompactIntervalTree, QueryPlan
from repro.core.builder import IndexedDataset, build_indexed_dataset, build_striped_datasets
from repro.core.external_tree import ExternalCompactIndex
from repro.core.persistence import build_persistent_dataset, load_dataset, save_dataset
from repro.core.query import QueryOptions, QueryResult, execute_plan, execute_query
from repro.core.striping import stripe_brick_records, striping_balance_bound
from repro.core.timevarying import TimeVaryingIndex
from repro.core.analysis import (
    QueryCostEstimate,
    active_count_profile,
    estimate_query_cost,
    suggest_isovalues,
)
from repro.core.multi_query import (
    execute_multi_query,
    extract_region_of_interest,
)
from repro.core.span_space import SpanSpaceStats
from repro.core.streaming import (
    FunctionSlabSource,
    VolumeSlabSource,
    build_indexed_dataset_streaming,
)
from repro.core.unstructured_builder import (
    UnstructuredDataset,
    build_striped_unstructured,
    build_unstructured_dataset,
    extract_unstructured,
)

__all__ = [
    "IntervalSet",
    "CompactIntervalTree",
    "QueryPlan",
    "IndexedDataset",
    "build_indexed_dataset",
    "build_striped_datasets",
    "ExternalCompactIndex",
    "build_persistent_dataset",
    "save_dataset",
    "load_dataset",
    "QueryOptions",
    "QueryResult",
    "execute_query",
    "execute_plan",
    "stripe_brick_records",
    "striping_balance_bound",
    "TimeVaryingIndex",
    "SpanSpaceStats",
    "QueryCostEstimate",
    "estimate_query_cost",
    "active_count_profile",
    "suggest_isovalues",
    "execute_multi_query",
    "extract_region_of_interest",
    "build_indexed_dataset_streaming",
    "VolumeSlabSource",
    "FunctionSlabSource",
    "UnstructuredDataset",
    "build_unstructured_dataset",
    "build_striped_unstructured",
    "extract_unstructured",
]
