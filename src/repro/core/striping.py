"""Round-robin brick striping across processors (paper Section 5.1).

For each brick, record ``i`` (in ascending-vmin order) goes to the disk of
processor ``i mod p``.  Every processor then rebuilds the *same* tree
shape over its local records: an entry per locally non-empty brick with
the local min-vmin and a pointer to the local brick run.

Balance guarantee (the paper's provable claim): for any isovalue, the
active records of a brick form a *prefix* of the brick, and a prefix of
length ``k`` striped round-robin gives every processor either
``floor(k/p)`` or ``ceil(k/p)`` records.  Hence::

    max_q active_q - min_q active_q  <=  (# bricks with active records)

independent of the isovalue — each active brick contributes at most one
record of imbalance.  :func:`striping_balance_bound` computes this bound
and :func:`striped_active_counts` the realized distribution, which the
tests compare.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.compact_tree import CompactIntervalTree, TreeNode


@dataclass
class StripedNodeLayout:
    """One processor's share of a striped layout.

    Attributes
    ----------
    node_rank:
        Processor index in ``[0, p)``.
    tree:
        The processor-local compact interval tree (same node structure
        and splits as the global tree, entries for local bricks only).
    local_positions:
        Global record positions held by this processor, ascending — i.e.
        the processor's local layout order expressed in global positions.
    brick_global_ids:
        For each local brick (in local brick-table order), the global
        brick id it came from.
    """

    node_rank: int
    tree: CompactIntervalTree
    local_positions: np.ndarray
    brick_global_ids: np.ndarray


def _record_brick_map(tree: CompactIntervalTree) -> np.ndarray:
    """Global brick id of each record position."""
    n = tree.n_records
    out = np.empty(n, dtype=np.int64)
    for b in range(tree.n_bricks):
        s, c = int(tree.brick_start[b]), int(tree.brick_count[b])
        out[s : s + c] = b
    return out


def stripe_brick_records(
    tree: CompactIntervalTree, p: int, stagger: bool = True
) -> "list[StripedNodeLayout]":
    """Stripe a global layout across ``p`` processors, brick by brick.

    Returns one :class:`StripedNodeLayout` per processor.  The union of
    ``local_positions`` over processors is exactly ``[0, N)`` and the
    relative order of records is preserved on every processor, so node
    runs remain contiguous locally and both query cases work unchanged.

    With ``stagger=True`` (default) brick ``b``'s round-robin starts at
    processor ``b mod p`` instead of processor 0.  Each processor still
    receives floor or ceil of its fair share of every brick prefix — the
    paper's balance bound is unchanged — but the ceil ("+1 overflow")
    records rotate across processors instead of always landing on
    processor 0, which matters when bricks are small relative to ``p``
    (always true for scaled-down volumes, irrelevant at the paper's
    5000-records-per-brick scale).  ``stagger=False`` reproduces the
    paper's literal first-metacell-to-first-processor layout.
    """
    if p < 1:
        raise ValueError(f"processor count must be >= 1, got {p}")
    n = tree.n_records
    positions = np.arange(n, dtype=np.int64)
    brick_of = _record_brick_map(tree)
    offset_in_brick = positions - tree.brick_start[brick_of]
    shift = brick_of % p if stagger else np.zeros_like(brick_of)

    layouts = []
    for q in range(p):
        mask = ((offset_in_brick + shift) % p) == q
        local_pos = positions[mask]
        local_brick = brick_of[mask]

        local = CompactIntervalTree()
        local.endpoints = tree.endpoints
        local.record_order = tree.record_order[local_pos]
        local.record_vmins = tree.record_vmins[local_pos]
        local.record_ids = tree.record_ids[local_pos]

        # Local brick table: global bricks that are non-empty here, in
        # global layout order (local_pos is ascending so groups appear in
        # brick order already).
        counts = np.bincount(local_brick, minlength=tree.n_bricks).astype(np.int64)
        nonempty = np.flatnonzero(counts)
        local_starts_global = tree.brick_start[nonempty]
        # Local start = rank of the brick's first local record, whose
        # brick-local offset is (q - shift_b) mod p.
        first_offset = (q - (nonempty % p if stagger else 0)) % p
        local_start = np.searchsorted(local_pos, local_starts_global + first_offset)
        local.brick_node = tree.brick_node[nonempty]
        local.brick_vmax = tree.brick_vmax[nonempty]
        local.brick_start = local_start.astype(np.int64)
        local.brick_count = counts[nonempty]
        # Local min vmin: vmin of the brick's first local record.
        local.brick_min_vmin = local.record_vmins[local.brick_start]

        # Per-node entry arrays, restricted to locally non-empty bricks.
        global_to_local = -np.ones(tree.n_bricks, dtype=np.int64)
        global_to_local[nonempty] = np.arange(len(nonempty))
        for gnode in tree.nodes:
            keep = [
                int(global_to_local[b]) for b in gnode.brick_ids if global_to_local[b] >= 0
            ]
            lb = np.asarray(keep, dtype=np.int64)
            local.nodes.append(
                TreeNode(
                    node_id=gnode.node_id,
                    split=gnode.split,
                    lo_code=gnode.lo_code,
                    hi_code=gnode.hi_code,
                    left=gnode.left,
                    right=gnode.right,
                    entry_vmax=local.brick_vmax[lb],
                    entry_min_vmin=local.brick_min_vmin[lb],
                    entry_start=local.brick_start[lb],
                    entry_count=local.brick_count[lb],
                    brick_ids=lb,
                )
            )
        layouts.append(
            StripedNodeLayout(
                node_rank=q,
                tree=local,
                local_positions=local_pos,
                brick_global_ids=nonempty,
            )
        )
    return layouts


def striped_active_counts(layouts: "list[StripedNodeLayout]", lam: float) -> np.ndarray:
    """Active record count per processor for isovalue ``lam``."""
    return np.asarray([lay.tree.query_count(lam) for lay in layouts], dtype=np.int64)


def striping_balance_bound(tree: CompactIntervalTree, lam: float) -> int:
    """The paper's imbalance bound: number of bricks with >= 1 active record."""
    active_bricks = 0
    for a, b in tree.active_record_ranges(lam):
        # A Case-1 range may span several whole bricks; count them.
        first = int(np.searchsorted(tree.brick_start, a, side="right")) - 1
        last = int(np.searchsorted(tree.brick_start, b - 1, side="right")) - 1
        active_bricks += last - first + 1
    return active_bricks


def imbalance_ratio(counts: np.ndarray) -> float:
    """max/mean load ratio; 1.0 is perfect balance. Empty loads give 1.0."""
    counts = np.asarray(counts, dtype=np.float64)
    if counts.size == 0 or counts.sum() == 0:
        return 1.0
    return float(counts.max() / counts.mean())
